// Lock a benchmark circuit with a chosen scheme and run the attack suite.
//
//   $ ./example_lock_and_attack [circuit] [scheme] [timeout_s]
//     circuit: c432 c499 c880 c1355 c1908 c2670 c3540 c5315 c7552
//              apex2 apex4 i4 i7          (default c432)
//     scheme:  full-lock rll sarlock antisat lut-lock cross-lock
//              full-lock-cyclic          (default full-lock)
//     timeout: SAT/CycSAT attack budget in seconds (default 10)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attacks/appsat.h"
#include "attacks/double_dip.h"
#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "attacks/sat_attack.h"
#include "attacks/sensitization.h"
#include "attacks/sps.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

using namespace fl;

namespace {

core::LockedCircuit lock_circuit(const std::string& scheme,
                         const netlist::Netlist& original) {
  if (scheme == "rll") {
    lock::RllConfig c;
    c.num_keys = 32;
    return lock::rll_lock(original, c);
  }
  if (scheme == "sarlock") {
    lock::SarLockConfig c;
    c.num_keys = 12;
    return lock::sarlock_lock(original, c);
  }
  if (scheme == "antisat") {
    lock::AntiSatConfig c;
    c.block_inputs = 12;
    return lock::antisat_lock(original, c);
  }
  if (scheme == "lut-lock") {
    lock::LutLockConfig c;
    c.num_luts = 16;
    return lock::lutlock_lock(original, c);
  }
  if (scheme == "cross-lock") {
    lock::CrossLockConfig c;
    c.num_sources = 16;
    c.num_destinations = 20;
    return lock::crosslock_lock(original, c);
  }
  const core::CycleMode mode = scheme == "full-lock-cyclic"
                                   ? core::CycleMode::kForce
                                   : core::CycleMode::kAvoid;
  return core::full_lock(
      original, core::FullLockConfig::with_plrs(
                    {16}, core::ClnTopology::kBanyanNonBlocking, mode));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c432";
  const std::string scheme = argc > 2 ? argv[2] : "full-lock";
  const double timeout = argc > 3 ? std::atof(argv[3]) : 10.0;

  const netlist::Netlist original = netlist::make_circuit(circuit, 1);
  std::printf("circuit %s: %zu gates, %zu/%zu IO\n", circuit.c_str(),
              original.num_logic_gates(), original.num_inputs(),
              original.num_outputs());

  const core::LockedCircuit locked = lock_circuit(scheme, original);
  const bool cyclic = locked.netlist.is_cyclic();
  std::printf("scheme %s: %zu key bits, locked netlist %zu gates%s\n",
              locked.scheme.c_str(), locked.key_bits(),
              locked.netlist.num_logic_gates(), cyclic ? " (cyclic)" : "");
  std::printf("correct key unlocks: %s\n",
              core::verify_unlocks(original, locked, 16, 1) ? "yes" : "NO");

  const core::CorruptionStats corruption =
      core::output_corruption(original, locked, 24, 4, 5);
  std::printf("wrong-key corruption: mean %.2f%% (min %.2f%%, max %.2f%%)\n",
              corruption.mean_error_rate * 100,
              corruption.min_error_rate * 100,
              corruption.max_error_rate * 100);

  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = timeout;

  // SAT attack (CycSAT when the lock is cyclic).
  const attacks::AttackResult sat =
      cyclic ? attacks::CycSat(options).run(locked, oracle)
             : attacks::SatAttack(options).run(locked, oracle);
  std::printf("%s attack: %s, %llu iterations, %.2f s",
              cyclic ? "CycSAT" : "SAT", to_string(sat.status),
              static_cast<unsigned long long>(sat.iterations), sat.seconds);
  if (sat.status == attacks::AttackStatus::kSuccess) {
    std::printf(", key %s",
                core::verify_unlocks(original, locked.netlist, sat.key, 16, 2)
                    ? "functionally correct"
                    : "WRONG");
  }
  std::printf("\n");

  // AppSAT.
  attacks::AppSatOptions app;
  app.base.timeout_s = timeout;
  const attacks::AppSatResult approx =
      attacks::AppSat(app).run(locked, oracle);
  std::printf("AppSAT: %s%s, est. error %.4f, %llu iterations\n",
              to_string(approx.status),
              approx.approximate ? " (approximate settle)" : "",
              approx.estimated_error,
              static_cast<unsigned long long>(approx.iterations));

  // Removal (only meaningful for interconnect locks with routing hints).
  if (!locked.routing_blocks.empty()) {
    const attacks::RemovalResult removal =
        attacks::removal_attack(locked, oracle);
    std::printf("removal attack: bypassed %d block(s), error %.2f%% -> %s\n",
                removal.blocks_bypassed, removal.error_rate * 100,
                removal.exact ? "BROKEN" : "resisted");
  }

  // Double DIP and key sensitization apply to acyclic locks only.
  if (!cyclic) {
    attacks::AttackOptions dd_options;
    dd_options.timeout_s = timeout;
    const attacks::DoubleDipResult dd =
        attacks::DoubleDip(dd_options).run(locked, oracle);
    std::printf("DoubleDIP: %s, %llu 2-DIP + %llu fallback queries\n",
                to_string(dd.status),
                static_cast<unsigned long long>(dd.iterations),
                static_cast<unsigned long long>(dd.fallback_iterations));

    attacks::SensitizationOptions sens_options;
    sens_options.timeout_s = timeout;
    const attacks::SensitizationResult sens =
        attacks::sensitization_attack(locked, oracle, sens_options);
    std::printf("sensitization: %d/%zu key bits recovered\n",
                sens.num_resolved, locked.key_bits());
  }

  // SPS.
  const attacks::SpsReport sps = attacks::sps_attack(locked.netlist, 3);
  std::printf("SPS: max skew %.3f over key-dependent nets\n", sps.max_skew);

  std::printf("oracle queries consumed: %llu\n",
              static_cast<unsigned long long>(oracle.num_queries()));
  return 0;
}
