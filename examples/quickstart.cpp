// Quickstart: lock a small circuit with Full-Lock, verify the correct key
// unlocks it, measure wrong-key corruption, and run the SAT attack.
//
//   $ ./example_quickstart
#include <cstdio>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"

int main() {
  using namespace fl;

  // 1. A circuit to protect: the classic ISCAS-85 c17.
  const netlist::Netlist original = netlist::make_c17();
  std::printf("original: %zu inputs, %zu outputs, %zu gates\n",
              original.num_inputs(), original.num_outputs(),
              original.num_logic_gates());

  // 2. Lock it with one 4x4 PLR (CLN + inverters + LUT twisting).
  core::FullLockConfig config = core::FullLockConfig::with_plrs({4});
  config.seed = 42;
  core::FullLockReport report;
  const core::LockedCircuit locked = core::full_lock(original, config, &report);
  std::printf("locked:   %zu key bits, %d PLR(s), %d LUT(s), %d negated\n",
              locked.key_bits(), report.num_plrs, report.num_luts,
              report.num_negated_drivers);

  // 3. The correct key restores the function (simulation + SAT proof).
  const bool unlocked = core::verify_unlocks(original, locked, /*rounds=*/16,
                                             /*seed=*/1, /*sat=*/true);
  std::printf("correct key unlocks: %s\n", unlocked ? "yes" : "NO (bug!)");

  // 4. Wrong keys corrupt the outputs heavily (unlike point-function locks).
  const core::CorruptionStats corruption =
      core::output_corruption(original, locked, /*num_keys=*/32,
                              /*rounds_per_key=*/4, /*seed=*/7);
  std::printf("wrong-key corruption: mean %.1f%% of output bits\n",
              corruption.mean_error_rate * 100.0);

  // 5. Attack it: oracle-guided SAT attack (small CLN -> breaks quickly).
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 30.0;
  const attacks::AttackResult attack =
      attacks::SatAttack(options).run(locked, oracle);
  std::printf("SAT attack: %s after %llu iterations, %.3f s\n",
              attacks::to_string(attack.status),
              static_cast<unsigned long long>(attack.iterations),
              attack.seconds);
  if (attack.status == attacks::AttackStatus::kSuccess) {
    const bool works = core::verify_unlocks(original, locked.netlist,
                                            attack.key, 16, 2);
    std::printf("recovered key is functionally correct: %s\n",
                works ? "yes" : "NO (bug!)");
  }

  // 6. Export the locked netlist.
  std::printf("\n--- locked netlist (.bench) ---\n%s",
              netlist::write_bench_string(locked.netlist).c_str());
  return 0;
}
