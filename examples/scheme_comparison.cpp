// Side-by-side comparison of all implemented locking schemes on one host
// circuit: key budget, hardware overhead, corruption, and attack outcomes —
// the paper's security argument in one table.
//
//   $ ./example_scheme_comparison [circuit] [timeout_s]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/appsat.h"
#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"
#include "ppa/estimator.h"

using namespace fl;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const double timeout = argc > 2 ? std::atof(argv[2]) : 10.0;
  const netlist::Netlist original = netlist::make_circuit(circuit, 1);
  const ppa::PpaReport base_ppa = ppa::estimate_ppa(original);
  std::printf("host: %s (%zu gates, area %.1f um2)\n", circuit.c_str(),
              original.num_logic_gates(), base_ppa.area_um2);
  std::printf("attack timeout: %.1f s\n\n", timeout);

  struct Entry {
    std::string name;
    core::LockedCircuit locked;
  };
  std::vector<Entry> entries;
  {
    lock::RllConfig c;
    c.num_keys = 32;
    entries.push_back({"rll", lock::rll_lock(original, c)});
  }
  {
    lock::SarLockConfig c;
    c.num_keys = 12;
    entries.push_back({"sarlock", lock::sarlock_lock(original, c)});
  }
  {
    lock::AntiSatConfig c;
    c.block_inputs = 12;
    entries.push_back({"antisat", lock::antisat_lock(original, c)});
  }
  {
    lock::LutLockConfig c;
    c.num_luts = 16;
    entries.push_back({"lut-lock", lock::lutlock_lock(original, c)});
  }
  {
    lock::CrossLockConfig c;
    c.num_sources = 16;
    c.num_destinations = 20;
    entries.push_back({"cross-lock", lock::crosslock_lock(original, c)});
  }
  entries.push_back(
      {"full-lock",
       core::full_lock(original, core::FullLockConfig::with_plrs({16}))});

  std::printf("%-12s%-7s%-9s%-10s%-14s%-12s%-14s\n", "scheme", "keys",
              "area+%", "corrupt%", "sat-attack", "removal", "appsat");
  for (const Entry& e : entries) {
    const attacks::Oracle oracle(original);
    attacks::AttackOptions options;
    options.timeout_s = timeout;
    const bool cyclic = e.locked.netlist.is_cyclic();
    const attacks::AttackResult attack =
        cyclic ? attacks::CycSat(options).run(e.locked, oracle)
               : attacks::SatAttack(options).run(e.locked, oracle);
    std::string attack_text;
    if (attack.status == attacks::AttackStatus::kSuccess) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fs/%llu", attack.seconds,
                    static_cast<unsigned long long>(attack.iterations));
      attack_text = buf;
    } else {
      attack_text = "TO";
    }

    std::string removal_text = "n/a";
    if (!e.locked.routing_blocks.empty()) {
      const attacks::RemovalResult removal =
          attacks::removal_attack(e.locked, oracle);
      removal_text = removal.exact ? "BROKEN" : "resisted";
    }

    // AppSAT: the counter-attack on low-corruption point functions.
    attacks::AppSatOptions app;
    app.base.timeout_s = timeout;
    const attacks::AppSatResult approx =
        attacks::AppSat(app).run(e.locked, oracle);
    std::string appsat_text;
    if (approx.status != attacks::AttackStatus::kSuccess) {
      appsat_text = "TO";
    } else if (approx.approximate) {
      appsat_text = "settled~" + std::to_string(approx.estimated_error).substr(0, 5);
    } else {
      appsat_text = "exact";
    }

    const core::CorruptionStats corruption =
        core::output_corruption(original, e.locked, 16, 4, 3);
    const ppa::PpaReport ppa_locked = ppa::estimate_ppa(e.locked.netlist);

    std::printf("%-12s%-7zu%-9.1f%-10.2f%-14s%-12s%-14s\n", e.name.c_str(),
                e.locked.key_bits(),
                (ppa_locked.area_um2 / base_ppa.area_um2 - 1.0) * 100.0,
                corruption.mean_error_rate * 100.0, attack_text.c_str(),
                removal_text.c_str(), appsat_text.c_str());
  }
  std::printf(
      "\nReading: Full-Lock pairs high corruption with SAT resistance and\n"
      "removal resistance; point functions (sarlock/antisat) resist SAT but\n"
      "corrupt almost nothing and fall to AppSAT's approximate settlement.\n");
  return 0;
}
