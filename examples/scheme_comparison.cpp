// Side-by-side comparison of all implemented locking schemes on one host
// circuit: key budget, hardware overhead, corruption, and attack outcomes —
// the paper's security argument in one table.
//
//   $ ./example_scheme_comparison [circuit] [timeout_s]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/appsat.h"
#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "attacks/sat_attack.h"
#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/profiles.h"
#include "ppa/estimator.h"

using namespace fl;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const double timeout = argc > 2 ? std::atof(argv[2]) : 10.0;
  const netlist::Netlist original = netlist::make_circuit(circuit, 1);
  const ppa::PpaReport base_ppa = ppa::estimate_ppa(original);
  std::printf("host: %s (%zu gates, area %.1f um2)\n", circuit.c_str(),
              original.num_logic_gates(), base_ppa.area_um2);
  std::printf("attack timeout: %.1f s\n\n", timeout);

  // Every scheme comes from the registry; the params strings pick key
  // budgets comparable enough for a side-by-side table.
  struct Entry {
    std::string name;
    core::LockedCircuit locked;
  };
  const std::vector<std::pair<std::string, std::string>> configs = {
      {"rll", "keys=32"},
      {"sarlock", "keys=12"},
      {"antisat", "inputs=12"},
      {"sfll-hd", "keys=12,hd=2"},
      {"lut-lock", "luts=16"},
      {"cross-lock", "sources=16,dests=20"},
      {"interlock", "sizes=8"},
      {"full-lock", "sizes=16"},
  };
  std::vector<Entry> entries;
  for (const auto& [name, params] : configs) {
    entries.push_back(
        {name, lock::lock_with(name, original,
                               lock::make_options(1, {}, params))});
  }

  std::printf("%-12s%-7s%-9s%-10s%-14s%-12s%-14s\n", "scheme", "keys",
              "area+%", "corrupt%", "sat-attack", "removal", "appsat");
  for (const Entry& e : entries) {
    const attacks::Oracle oracle(original);
    attacks::AttackOptions options;
    options.timeout_s = timeout;
    const bool cyclic = e.locked.netlist.is_cyclic();
    const attacks::AttackResult attack =
        cyclic ? attacks::CycSat(options).run(e.locked, oracle)
               : attacks::SatAttack(options).run(e.locked, oracle);
    std::string attack_text;
    if (attack.status == attacks::AttackStatus::kSuccess) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fs/%llu", attack.seconds,
                    static_cast<unsigned long long>(attack.iterations));
      attack_text = buf;
    } else {
      attack_text = "TO";
    }

    std::string removal_text = "n/a";
    if (!e.locked.routing_blocks.empty()) {
      const attacks::RemovalResult removal =
          attacks::removal_attack(e.locked, oracle);
      removal_text = removal.exact ? "BROKEN" : "resisted";
    }

    // AppSAT: the counter-attack on low-corruption point functions.
    attacks::AppSatOptions app;
    app.base.timeout_s = timeout;
    const attacks::AppSatResult approx =
        attacks::AppSat(app).run(e.locked, oracle);
    std::string appsat_text;
    if (approx.status != attacks::AttackStatus::kSuccess) {
      appsat_text = "TO";
    } else if (approx.approximate) {
      appsat_text = "settled~" + std::to_string(approx.estimated_error).substr(0, 5);
    } else {
      appsat_text = "exact";
    }

    const core::CorruptionStats corruption =
        core::output_corruption(original, e.locked, 16, 4, 3);
    const ppa::PpaReport ppa_locked = ppa::estimate_ppa(e.locked.netlist);

    std::printf("%-12s%-7zu%-9.1f%-10.2f%-14s%-12s%-14s\n", e.name.c_str(),
                e.locked.key_bits(),
                (ppa_locked.area_um2 / base_ppa.area_um2 - 1.0) * 100.0,
                corruption.mean_error_rate * 100.0, attack_text.c_str(),
                removal_text.c_str(), appsat_text.c_str());
  }
  std::printf(
      "\nReading: Full-Lock pairs high corruption with SAT resistance and\n"
      "removal resistance; point functions (sarlock/antisat) resist SAT but\n"
      "corrupt almost nothing and fall to AppSAT's approximate settlement.\n");
  return 0;
}
