// Designer's view: sweep CLN topology and size on a host circuit and chart
// the overhead-vs-resilience trade-off that drives Table 3 / Table 5.
//
//   $ ./example_design_space [circuit] [timeout_s]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/profiles.h"
#include "ppa/estimator.h"

using namespace fl;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const double timeout = argc > 2 ? std::atof(argv[2]) : 5.0;
  const netlist::Netlist original = netlist::make_circuit(circuit, 1);
  const ppa::PpaReport base = ppa::estimate_ppa(original);
  std::printf("host: %s, area %.1f um2, delay %.3f ns, timeout %.1f s\n\n",
              circuit.c_str(), base.area_um2, base.critical_delay_ns, timeout);

  std::printf("%-14s%-6s%-8s%-9s%-9s%-10s%-12s%-10s\n", "topology", "N",
              "keys", "area+%", "delay+%", "corrupt%", "attack", "verdict");
  for (const core::ClnTopology topo :
       {core::ClnTopology::kShuffleBlocking,
        core::ClnTopology::kBanyanNonBlocking}) {
    for (const int n : {4, 8, 16, 32}) {
      core::FullLockConfig config = core::FullLockConfig::with_plrs(
          {n}, topo, core::CycleMode::kAvoid);
      config.seed = 3;
      const core::LockedCircuit locked = core::full_lock(original, config);
      const ppa::PpaReport ppa_locked = ppa::estimate_ppa(locked.netlist);
      const core::CorruptionStats corruption =
          core::output_corruption(original, locked, 12, 4, 2);

      const attacks::Oracle oracle(original);
      attacks::AttackOptions options;
      options.timeout_s = timeout;
      const attacks::AttackResult attack =
          attacks::SatAttack(options).run(locked, oracle);
      char attack_text[32];
      if (attack.status == attacks::AttackStatus::kSuccess) {
        std::snprintf(attack_text, sizeof(attack_text), "%.2fs",
                      attack.seconds);
      } else {
        std::snprintf(attack_text, sizeof(attack_text), "TO");
      }
      std::printf("%-14s%-6d%-8zu%-9.1f%-9.1f%-10.2f%-12s%-10s\n",
                  topo == core::ClnTopology::kShuffleBlocking ? "shuffle"
                                                              : "LOG(N,..)",
                  n, locked.key_bits(),
                  (ppa_locked.area_um2 / base.area_um2 - 1.0) * 100.0,
                  (ppa_locked.critical_delay_ns / base.critical_delay_ns -
                   1.0) * 100.0,
                  corruption.mean_error_rate * 100.0, attack_text,
                  attack.status == attacks::AttackStatus::kSuccess
                      ? "broken"
                      : "resilient");
    }
  }
  std::printf("\nReading: pick the smallest non-blocking CLN whose attack "
              "column says TO —\nthe paper's recommendation "
              "(LOG(N, log2N-2, 1)) reaches resilience at a\nfraction of "
              "the blocking network's overhead.\n");
  return 0;
}
