// Fig. 6 walkthrough: PLR insertion in acyclic and cyclic modes on a small
// circuit, showing the selected wires, the negated leading gates, and the
// recovered functionality under the correct key.
//
//   $ ./example_plr_insertion
#include <cstdio>

#include "core/full_lock.h"
#include "core/insertion.h"
#include "core/verify.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"

using namespace fl;

namespace {

void demonstrate(core::CycleMode mode, const char* label) {
  std::printf("\n===== %s insertion (Fig. 6%s) =====\n", label,
              mode == core::CycleMode::kAvoid ? "b" : "c");
  netlist::GeneratorConfig gen;
  gen.num_inputs = 8;
  gen.num_outputs = 4;
  gen.num_gates = 17;  // matches the scale of the paper's g1..g17 example
  gen.seed = 206;
  const netlist::Netlist original = netlist::generate_circuit(gen);
  std::printf("original circuit:\n%s",
              netlist::write_bench_string(original).c_str());

  netlist::Netlist locked = original;
  core::PlrConfig config;
  config.cln.n = 4;
  config.cycle_mode = mode;
  config.negate_probability = 1.0;  // negate every negatable leading gate
  std::mt19937_64 rng(3);
  const core::PlrInsertion plr = core::insert_plr(locked, config, rng, "plr");

  std::printf("\nselected wires (CLN inputs):");
  for (std::size_t i = 0; i < plr.selected_wires.size(); ++i) {
    const netlist::GateId w = plr.selected_wires[i];
    const bool negated = locked.gate(w).type != original.gate(w).type;
    std::printf(" %s%s", original.gate(w).name.empty()
                             ? ("#" + std::to_string(w)).c_str()
                             : original.gate(w).name.c_str(),
                negated ? "(negated)" : "");
  }
  std::printf("\nnegated leading gates: %d, key-LUTs inserted: %d\n",
              plr.num_negated_drivers, plr.num_luts);
  std::printf("realized CLN routing (output j <- input perm[j]):");
  for (const int p : plr.hint.permutation) std::printf(" %d", p);
  std::printf("\nstructurally cyclic after insertion: %s\n",
              locked.is_cyclic() ? "yes" : "no");
  std::printf("correct key restores function: %s\n",
              core::verify_unlocks(original, locked, plr.added_key_values, 16,
                                   9)
                  ? "yes"
                  : "NO (bug!)");
  std::printf("\nlocked circuit:\n%s",
              netlist::write_bench_string(locked).c_str());
}

}  // namespace

int main() {
  demonstrate(core::CycleMode::kAvoid, "acyclic");
  demonstrate(core::CycleMode::kForce, "cyclic");
  return 0;
}
