// File-based command-line front end: lock / attack / sweep / report on
// .bench netlists, the workflow an IP owner or red-team would actually run.
//
//   lock:    example_fulllock_cli lock <in.bench> <out.bench> [sizes...]
//                                      [--scheme NAME] [--opt K=V,...]
//                                      [--seed S]
//            Locks with any registered scheme (default: full-lock; run
//            `schemes` for the list). Writes the locked netlist with
//            provenance header comments, the key to <out.bench>.key, and a
//            structural Verilog view to <out.bench>.v.
//   schemes: example_fulllock_cli schemes [--names]
//            Lists every registered lock scheme with its parameters and
//            capability flags; --names prints bare names (one per line) for
//            scripting.
//   gen:     example_fulllock_cli gen <profile> <out.bench> [--seed S]
//            Writes a benchmark circuit (c17 or a Table 5 / scaled profile)
//            as .bench — the oracle/input side of a lock-attack pipeline.
//   attack:  example_fulllock_cli attack <locked.bench> <oracle.bench>
//                                        [timeout_s] [--attack NAME]
//                                        [--portfolio K] [--par-mode M]
//                                        [--encode M] [--no-preprocess]
//                                        [--require-key] [--trace FILE]
//            Runs an oracle-guided attack with the oracle circuit standing
//            in for the activated chip. The lock scheme is recovered from
//            the .bench provenance header when present. --attack picks the
//            algorithm (auto, sat, cycsat, appsat, double-dip, fall; auto =
//            cycsat on cyclic netlists, sat otherwise). --portfolio K uses
//            K solver threads; --par-mode picks how they cooperate: race
//            (independent attacks, first finisher cancels the rest), share
//            (one attack, K clause-sharing CDCL workers), or cubes
//            (cube-and-conquer over the swap-key variables). --encode
//            selects the miter encoding (auto = key-cone on acyclic locks,
//            cone, full; cone is rejected up front for cyclic-capable
//            schemes) and --no-preprocess disables base-miter CNF
//            preprocessing. --require-key exits 3 unless a verified key was
//            recovered (CI gate). --trace FILE appends one JSONL record per
//            DIP iteration (schema in EXPERIMENTS.md).
//   sweep:   example_fulllock_cli sweep <in.bench> [sizes...]
//                                       [--scheme LIST] [--opt K=V,...]
//            Locks <in.bench> once per (scheme, size, seed index) cell and
//            attacks each instance, fanning the grid out over a worker
//            pool. --scheme takes a comma-separated list of registry names
//            (default: full-lock) as an extra grid axis. --jobs N / FL_JOBS
//            sets the pool size (1 = serial reference loop); --jsonl PATH /
//            FL_JSONL records one JSON object per cell (durably — flushed +
//            fsynced as written); --resume continues an interrupted sweep,
//            skipping cells already in the file; --retries/--cell-timeout/
//            --mem-mb bound per-cell failures (see EXPERIMENTS.md).
//            FULLLOCK_SEED / FULLLOCK_SWEEP_SEEDS set the base seed and
//            per-size replica count.
//   report:  example_fulllock_cli report <netlist.bench>
//            Prints structural statistics and the PPA estimate.
//   serve:   example_fulllock_cli serve <socket> [--state FILE] [--workers N]
//                                       [--max-queue N] [--job-timeout S]
//                                       [--retries N] [--backoff S]
//                                       [--stall-grace S]
//            Runs the attack-service daemon on an AF_UNIX socket: clients
//            submit lock/attack/sweep jobs over a line-JSON protocol,
//            --state FILE makes accepted jobs crash-recoverable (a restarted
//            daemon replays unfinished jobs, sweeps resume from their JSONL
//            checkpoint). SIGINT/SIGTERM drains gracefully and exits
//            128+signo.
//   submit:  example_fulllock_cli submit <socket> lock|attack|sweep ... |
//                                        status [ID] | cancel <ID> | shutdown
//            Client for a running daemon. lock/sweep take --scheme NAME and
//            --opt K=V,...; attack takes --encode M. Streams the job's
//            event records (accepted/started/trace/cell/retry/terminal) to
//            stdout and maps the outcome to an exit code: 0 done, 1 failed,
//            2 usage, 3 rejected (overloaded/draining), 4 cancelled/
//            interrupted, 5 connection lost.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "attacks/appsat.h"
#include "attacks/cycsat.h"
#include "attacks/double_dip.h"
#include "attacks/fall.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"
#include "netlist/verilog_io.h"
#include "ppa/estimator.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "serve/client.h"
#include "serve/daemon.h"

using namespace fl;

namespace {

int cmd_lock(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string scheme = "full-lock";
  std::string opt_text;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scheme" && i + 1 < argc) {
      scheme = argv[++i];
    } else if (arg.rfind("--scheme=", 0) == 0) {
      scheme = arg.substr(9);
    } else if (arg == "--opt" && i + 1 < argc) {
      if (!opt_text.empty()) opt_text += ",";
      opt_text += argv[++i];
    } else if (arg.rfind("--opt=", 0) == 0) {
      if (!opt_text.empty()) opt_text += ",";
      opt_text += arg.substr(6);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: lock <in.bench> <out.bench> [sizes...]\n"
                 "  --scheme NAME  one of: %s (default: full-lock)\n"
                 "  --opt K=V,...  scheme parameters (run `schemes` for "
                 "each scheme's knobs)\n"
                 "  --seed S       lock seed (default: 1)\n",
                 lock::scheme_names().c_str());
    return 2;
  }
  const netlist::Netlist original = netlist::read_bench_file(positional[0]);
  std::vector<int> sizes;
  for (std::size_t i = 2; i < positional.size(); ++i) {
    sizes.push_back(std::atoi(positional[i].c_str()));
  }
  const lock::LockScheme* s = lock::find_scheme(scheme);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown lock scheme '%s'; available schemes: %s\n",
                 scheme.c_str(), lock::scheme_names().c_str());
    return 2;
  }
  lock::SchemeOptions options;
  try {
    options = lock::make_options(seed, sizes, opt_text);
    s->validate(options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "lock: %s\n", e.what());
    return 2;
  }
  const core::LockedCircuit locked = s->lock(original, options);
  if (!core::verify_unlocks(original, locked, 16, 1)) {
    std::fprintf(stderr, "internal error: correct key failed verification\n");
    return 1;
  }
  const std::string out_path = positional[1];
  lock::write_locked_circuit(locked, out_path);
  {
    std::ofstream v_file(out_path + ".v");
    netlist::write_verilog(locked.netlist, v_file);
  }
  std::printf("locked %s with %s (%s): %zu -> %zu gates, %zu key bits\n",
              positional[0].c_str(), locked.scheme.c_str(),
              locked.params.c_str(), original.num_logic_gates(),
              locked.netlist.num_logic_gates(), locked.key_bits());
  std::printf("wrote %s, %s.key, %s.v\n", out_path.c_str(), out_path.c_str(),
              out_path.c_str());
  return 0;
}

int cmd_schemes(int argc, char** argv) {
  const bool names_only = argc > 2 && std::string(argv[2]) == "--names";
  for (const lock::LockScheme* s : lock::registry()) {
    const std::string name(s->name());
    if (names_only) {
      std::printf("%s\n", name.c_str());
      continue;
    }
    const lock::SchemeCaps caps = s->caps();
    std::printf("%-11s %s\n", name.c_str(),
                std::string(s->description()).c_str());
    std::printf("            params: %s\n",
                std::string(s->params_help()).c_str());
    std::printf("            caps:%s%s%s%s\n",
                caps.may_be_cyclic ? " may-be-cyclic" : "",
                caps.removal_resilient ? " removal-resilient" : "",
                caps.point_function ? " point-function" : "",
                caps.has_routing_blocks ? " routing-blocks" : "");
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  std::vector<std::string> positional;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: gen <profile> <out.bench> [--seed S]\n"
                 "profiles: c17");
    for (const auto& p : netlist::table5_profiles()) {
      std::fprintf(stderr, ", %s", p.name.c_str());
    }
    for (const auto& p : netlist::scaled_profiles()) {
      std::fprintf(stderr, ", %s", p.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  netlist::Netlist circuit;
  if (positional[0] == "c17") {
    circuit = netlist::make_c17();
  } else {
    const auto profile = netlist::find_profile(positional[0]);
    if (!profile.has_value()) {
      std::fprintf(stderr, "unknown profile '%s' (run `gen` for the list)\n",
                   positional[0].c_str());
      return 2;
    }
    circuit = netlist::make_circuit(*profile, seed);
  }
  netlist::write_bench_file(circuit, positional[1]);
  std::printf("wrote %s: %zu inputs, %zu outputs, %zu gates\n",
              positional[1].c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_logic_gates());
  return 0;
}

// One --trace sink shared by every attack a command runs (thread-safe, so
// parallel sweep cells may interleave records).
struct TraceFile {
  explicit TraceFile(const runtime::RunnerArgs& run_args) {
    if (!run_args.trace_path.empty()) {
      file.emplace(runtime::open_jsonl(run_args.trace_path));
      sink.emplace(*file);
    }
  }
  std::optional<std::ofstream> file;
  std::optional<attacks::JsonlTraceSink> sink;
};

int cmd_attack(int argc, char** argv, const runtime::RunnerArgs& run_args) {
  // Separate flags from positionals so "--attack NAME" and "--portfolio K"
  // can sit anywhere. (--trace was already stripped into run_args.)
  std::vector<std::string> positional;
  int portfolio = 0;
  std::string attack = "auto";
  std::string par_mode = "race";
  std::string encode = "auto";
  bool preprocess = true;
  bool require_key = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--portfolio" && i + 1 < argc) {
      portfolio = std::atoi(argv[++i]);
    } else if (arg.rfind("--portfolio=", 0) == 0) {
      portfolio = std::atoi(arg.c_str() + 12);
    } else if (arg == "--par-mode" && i + 1 < argc) {
      par_mode = argv[++i];
    } else if (arg.rfind("--par-mode=", 0) == 0) {
      par_mode = arg.substr(11);
    } else if (arg == "--attack" && i + 1 < argc) {
      attack = argv[++i];
    } else if (arg.rfind("--attack=", 0) == 0) {
      attack = arg.substr(9);
    } else if (arg == "--encode" && i + 1 < argc) {
      encode = argv[++i];
    } else if (arg.rfind("--encode=", 0) == 0) {
      encode = arg.substr(9);
    } else if (arg == "--no-preprocess") {
      preprocess = false;
    } else if (arg == "--require-key") {
      require_key = true;
    } else {
      positional.push_back(arg);
    }
  }
  const std::optional<sat::ParMode> mode = sat::parse_par_mode(par_mode);
  if (!mode.has_value()) {
    std::fprintf(stderr,
                 "unknown --par-mode '%s'; available modes: race, share, "
                 "cubes\n",
                 par_mode.c_str());
    return 2;
  }
  if (!lock::known_attack(attack)) {
    std::fprintf(stderr,
                 "unknown attack '%s'; available attacks: %s\n"
                 "(add --trace FILE to record one JSONL line per DIP "
                 "iteration)\n",
                 attack.c_str(), lock::kKnownAttacks);
    return 2;
  }
  const std::optional<attacks::EncodeMode> encode_mode =
      attacks::parse_encode_mode(encode);
  if (!encode_mode.has_value()) {
    std::fprintf(stderr,
                 "unknown --encode '%s'; available modes: auto, cone, full\n",
                 encode.c_str());
    return 2;
  }
  if (positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: attack <locked.bench> <oracle.bench> [timeout_s]\n"
                 "  --attack NAME   one of: %s (default: auto)\n"
                 "  --portfolio K   use K solver threads (sat/cycsat only)\n"
                 "  --par-mode M    race (independent attacks), share "
                 "(clause-sharing workers), or cubes (cube-and-conquer)\n"
                 "  --encode M      miter encoding: auto (cone when acyclic), "
                 "cone, or full\n"
                 "  --no-preprocess disable CNF preprocessing of the base "
                 "miter\n"
                 "  --require-key   exit 3 unless a verified key was "
                 "recovered\n"
                 "  --trace FILE    per-DIP-iteration JSONL trace\n",
                 lock::kKnownAttacks);
    return 2;
  }
  // Scheme and parameters come back from the .bench provenance header when
  // the lock was made by this tool; foreign files fall back to "file".
  core::LockedCircuit locked = lock::read_locked_circuit(positional[0]);
  const netlist::Netlist oracle_netlist =
      netlist::read_bench_file(positional[1]);
  const attacks::Oracle oracle(oracle_netlist);
  const bool cyclic = locked.netlist.is_cyclic();
  // Reject --encode cone before any solver work: first against the scheme's
  // declared capabilities, then against the loaded netlist itself.
  try {
    lock::validate_encode_option(
        encode, locked.scheme, lock::make_options(1, {}, locked.params));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "attack: %s\n", e.what());
    return 2;
  }
  if (*encode_mode == attacks::EncodeMode::kCone && cyclic) {
    std::fprintf(stderr,
                 "attack: --encode cone requires an acyclic netlist, but %s "
                 "is cyclic; use --encode auto or --encode full\n",
                 positional[0].c_str());
    return 2;
  }
  attacks::AttackOptions options;
  options.timeout_s =
      positional.size() > 2 ? std::atof(positional[2].c_str()) : 60.0;
  options.portfolio = portfolio;
  options.par_mode = *mode;
  options.encode_mode = *encode_mode;
  options.preprocess = preprocess;
  options.memory_limit_mb = run_args.memory_limit_mb;
  TraceFile trace(run_args);
  if (trace.sink.has_value()) options.trace = &*trace.sink;
  attack = lock::resolve_attack(attack, cyclic);

  if (attack == "fall") {
    attacks::FallOptions fall_options;
    const attacks::FallResult fall =
        attacks::fall_attack(locked, oracle, fall_options);
    std::printf("fall attack on %s [scheme %s] (%zu key bits): %s\n",
                positional[0].c_str(), locked.scheme.c_str(),
                locked.netlist.num_keys(),
                fall.key_recovered ? "success" : "failed");
    std::printf("restore unit %s, %d protected bits, %d error patterns, "
                "%d candidates tested, stripped error rate %.4f\n",
                fall.restore_identified ? "identified" : "not found",
                fall.protected_bits, fall.error_patterns,
                fall.candidates_tested, fall.stripped_error_rate);
    if (fall.key_recovered) {
      std::printf("inferred hamming distance h = %d\n", fall.hd);
      std::printf("recovered key (verified):");
      for (const bool b : fall.key) std::printf("%d", b ? 1 : 0);
      std::printf("\n");
    }
    return require_key && !fall.key_recovered ? 3 : 0;
  }

  attacks::AttackResult result;
  std::string extra;
  if (attack == "sat") {
    result = attacks::SatAttack(options).run(locked, oracle);
  } else if (attack == "cycsat") {
    result = attacks::CycSat(options).run(locked, oracle);
  } else if (attack == "appsat") {
    attacks::AppSatOptions app_options;
    app_options.base = options;
    const attacks::AppSatResult app =
        attacks::AppSat(app_options).run(locked, oracle);
    result = app;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "appsat: %s key, estimated error %.4f\n",
                  app.approximate ? "approximate" : "exact",
                  app.estimated_error);
    extra = buf;
  } else {
    const attacks::DoubleDipResult dd =
        attacks::DoubleDip(options).run(locked, oracle);
    result = dd;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "double-dip: %llu 2-DIP iterations, %llu mop-up "
                  "iterations\n",
                  static_cast<unsigned long long>(dd.iterations),
                  static_cast<unsigned long long>(dd.fallback_iterations));
    extra = buf;
  }
  std::printf("%s attack on %s [scheme %s] (%zu key bits): %s\n",
              attack.c_str(), positional[0].c_str(), locked.scheme.c_str(),
              locked.netlist.num_keys(), to_string(result.status));
  std::printf("iterations %llu, %.2f s, %llu oracle queries, mean iteration "
              "%.4f s, mean clause/var ratio %.2f\n",
              static_cast<unsigned long long>(result.iterations),
              result.seconds,
              static_cast<unsigned long long>(result.oracle_queries),
              result.mean_iteration_seconds, result.mean_clause_var_ratio);
  if (!extra.empty()) std::fputs(extra.c_str(), stdout);
  if (result.portfolio_winner >= 0) {
    const sat::SolverConfig cfg =
        attacks::SatAttack::portfolio_config(result.portfolio_winner);
    std::printf("portfolio: config %d won (var_decay %.2f, clause_decay "
                "%.4f, restart_unit %d)\n",
                result.portfolio_winner, cfg.var_decay, cfg.clause_decay,
                cfg.restart_unit);
  }
  if (portfolio > 1 && *mode != sat::ParMode::kRace) {
    std::printf("parallel: %d %s workers, %llu clauses exported, %llu "
                "imported\n",
                portfolio, sat::to_string(*mode),
                static_cast<unsigned long long>(
                    result.solver_stats.exported_clauses),
                static_cast<unsigned long long>(
                    result.solver_stats.imported_clauses));
  }
  bool verified = false;
  if (result.status == attacks::AttackStatus::kSuccess) {
    verified = core::verify_unlocks(oracle_netlist, locked.netlist,
                                    result.key, 16, 1);
    std::printf("recovered key (%s):", verified ? "verified" : "UNVERIFIED");
    for (const bool b : result.key) std::printf("%d", b ? 1 : 0);
    std::printf("\n");
  }
  return require_key && !verified ? 3 : 0;
}

int cmd_sweep(int argc, char** argv, const runtime::RunnerArgs& run_args) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: sweep <in.bench> [sizes...] (--scheme LIST, "
                 "--opt K=V, --attack NAME, --portfolio K, "
                 "--par-mode race|share|cubes, --encode auto|cone|full, "
                 "--no-preprocess, --jobs N, --jsonl PATH, --resume, "
                 "--retries N, --cell-timeout S, --mem-mb M, --trace PATH)\n");
    return 2;
  }
  const netlist::Netlist original = netlist::read_bench_file(argv[2]);
  std::vector<int> sizes;
  std::vector<std::string> schemes;
  std::string opt_text;
  std::string attack = "auto";
  int portfolio = 0;
  std::string par_mode = "race";
  std::string encode = "auto";
  bool preprocess = true;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string scheme_list;
    if (arg == "--attack" && i + 1 < argc) {
      attack = argv[++i];
    } else if (arg.rfind("--attack=", 0) == 0) {
      attack = arg.substr(9);
    } else if (arg == "--scheme" && i + 1 < argc) {
      scheme_list = argv[++i];
    } else if (arg.rfind("--scheme=", 0) == 0) {
      scheme_list = arg.substr(9);
    } else if (arg == "--opt" && i + 1 < argc) {
      if (!opt_text.empty()) opt_text += ",";
      opt_text += argv[++i];
    } else if (arg.rfind("--opt=", 0) == 0) {
      if (!opt_text.empty()) opt_text += ",";
      opt_text += arg.substr(6);
    } else if (arg == "--portfolio" && i + 1 < argc) {
      portfolio = std::atoi(argv[++i]);
    } else if (arg.rfind("--portfolio=", 0) == 0) {
      portfolio = std::atoi(arg.c_str() + 12);
    } else if (arg == "--par-mode" && i + 1 < argc) {
      par_mode = argv[++i];
    } else if (arg.rfind("--par-mode=", 0) == 0) {
      par_mode = arg.substr(11);
    } else if (arg == "--encode" && i + 1 < argc) {
      encode = argv[++i];
    } else if (arg.rfind("--encode=", 0) == 0) {
      encode = arg.substr(9);
    } else if (arg == "--no-preprocess") {
      preprocess = false;
    } else {
      sizes.push_back(std::atoi(arg.c_str()));
    }
    // Split "a,b,c" scheme lists into grid values.
    for (std::size_t from = 0; from < scheme_list.size();) {
      std::size_t comma = scheme_list.find(',', from);
      if (comma == std::string::npos) comma = scheme_list.size();
      if (comma > from) {
        schemes.push_back(scheme_list.substr(from, comma - from));
      }
      from = comma + 1;
    }
  }
  if (schemes.empty()) schemes = {"full-lock"};
  if (!lock::known_attack(attack)) {
    std::fprintf(stderr, "unknown attack '%s'; available attacks: %s\n",
                 attack.c_str(), lock::kKnownAttacks);
    return 2;
  }
  const std::optional<attacks::EncodeMode> encode_mode =
      attacks::parse_encode_mode(encode);
  if (!encode_mode.has_value()) {
    std::fprintf(stderr,
                 "unknown --encode '%s'; available modes: auto, cone, full\n",
                 encode.c_str());
    return 2;
  }
  const std::optional<sat::ParMode> mode = sat::parse_par_mode(par_mode);
  if (!mode.has_value()) {
    std::fprintf(stderr,
                 "unknown --par-mode '%s'; available modes: race, share, "
                 "cubes\n",
                 par_mode.c_str());
    return 2;
  }
  if (sizes.empty()) sizes = {4, 8, 16};
  const int replicas =
      std::max(1, static_cast<int>(
                      std::getenv("FULLLOCK_SWEEP_SEEDS")
                          ? std::atoi(std::getenv("FULLLOCK_SWEEP_SEEDS"))
                          : 3));
  const char* base_env = std::getenv("FULLLOCK_SEED");
  const std::uint64_t base =
      base_env ? static_cast<std::uint64_t>(std::atoll(base_env)) : 17;

  // Every (scheme, size) combination is validated before the grid runs, so
  // a bad parameter fails the whole sweep at parse time, not cell 37.
  for (const std::string& scheme : schemes) {
    const lock::LockScheme* s = lock::find_scheme(scheme);
    if (s == nullptr) {
      std::fprintf(stderr,
                   "unknown lock scheme '%s'; available schemes: %s\n",
                   scheme.c_str(), lock::scheme_names().c_str());
      return 2;
    }
    try {
      for (const int size : sizes) {
        s->validate(lock::make_options(base, {size}, opt_text));
      }
      lock::validate_encode_option(encode, scheme,
                                   lock::make_options(base, sizes, opt_text));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "sweep: %s\n", e.what());
      return 2;
    }
  }

  struct Cell {
    int scheme;  // index into `schemes`
    int size;
    int replica;
    std::uint64_t seed;
  };
  struct CellResult {
    std::size_t key_bits = 0;
    bool cyclic = false;
    std::string attack_name;
    attacks::AttackResult attack;
  };
  std::vector<Cell> grid;
  for (int s = 0; s < static_cast<int>(schemes.size()); ++s) {
    for (const int size : sizes) {
      for (int r = 0; r < replicas; ++r) {
        grid.push_back({s, size, r,
                        runtime::derive_seed(
                            base, {static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(size),
                                   static_cast<std::uint64_t>(r)})});
      }
    }
  }
  std::vector<CellResult> results(grid.size());
  TraceFile trace(run_args);

  runtime::SweepSession session("cli_sweep", grid.size(), base, run_args);
  const auto record_base = [&](std::size_t i) {
    runtime::JsonObject o;
    o.field("cell", i)
        .field("bench", "cli_sweep")
        .field("circuit", original.name())
        .field("scheme", schemes[grid[i].scheme])
        .field("plr_size", grid[i].size)
        .field("replica", grid[i].replica)
        .field("seed", grid[i].seed);
    return o;
  };

  std::printf("sweep %s: %zu cells on %d worker(s), %zu already done\n",
              argv[2], grid.size(), run_args.jobs, session.num_resumed());
  const runtime::GridReport report = runtime::run_grid(
      grid.size(), session.grid_config(),
      [&](const runtime::CellContext& ctx) {
        const std::size_t i = ctx.index;
        const Cell& cell = grid[i];
        const core::LockedCircuit locked = lock::lock_with(
            schemes[cell.scheme], original,
            lock::make_options(cell.seed, {cell.size}, opt_text));
        const attacks::Oracle oracle(original);
        attacks::AttackOptions options;
        options.timeout_s = ctx.effective_timeout(
            std::getenv("FULLLOCK_TIMEOUT_S")
                ? std::atof(std::getenv("FULLLOCK_TIMEOUT_S"))
                : 10.0);
        options.interrupt = ctx.interrupt;
        options.portfolio = portfolio;
        options.par_mode = *mode;
        options.encode_mode = *encode_mode;
        options.preprocess = preprocess;
        options.memory_limit_mb = run_args.memory_limit_mb;
        if (trace.sink.has_value()) {
          options.trace = &*trace.sink;
          options.trace_cell = static_cast<long long>(i);
        }
        const bool cyclic = locked.netlist.is_cyclic();
        results[i].key_bits = locked.key_bits();
        results[i].cyclic = cyclic;
        // Resolve the attack per cell: "auto" follows cyclicity, and
        // double-dip (acyclic-only) degrades to cycsat on cyclic cells.
        const std::string cell_attack = lock::resolve_attack(attack, cyclic);
        results[i].attack_name = cell_attack;
        if (cell_attack == "sat") {
          results[i].attack = attacks::SatAttack(options).run(locked, oracle);
        } else if (cell_attack == "cycsat") {
          results[i].attack = attacks::CycSat(options).run(locked, oracle);
        } else if (cell_attack == "appsat") {
          attacks::AppSatOptions app_options;
          app_options.base = options;
          results[i].attack = attacks::AppSat(app_options).run(locked, oracle);
        } else if (cell_attack == "fall") {
          // FALL has its own result shape; map the essentials onto the
          // generic record (success iff a verified key came back).
          const attacks::FallResult fall =
              attacks::fall_attack(locked, oracle);
          results[i].attack.status =
              fall.key_recovered ? attacks::AttackStatus::kSuccess
                                 : attacks::AttackStatus::kIterationLimit;
          results[i].attack.key = fall.key;
          results[i].attack.iterations =
              static_cast<std::uint64_t>(fall.candidates_tested);
          results[i].attack.oracle_queries =
              static_cast<std::uint64_t>(fall.error_patterns);
        } else {
          results[i].attack = attacks::DoubleDip(options).run(locked, oracle);
        }
        if (results[i].attack.status == attacks::AttackStatus::kInterrupted) {
          session.note_interrupted(i);
          return;
        }
        if (session.sink() != nullptr) {
          runtime::JsonObject o = record_base(i);
          o.field("key_bits", results[i].key_bits)
              .field("cyclic", results[i].cyclic)
              .field("attack", results[i].attack_name)
              .field("status", attacks::to_string(results[i].attack.status))
              .field("stop_reason",
                     sat::to_string(results[i].attack.stop_reason))
              .field("iterations", results[i].attack.iterations)
              .field("mean_clause_var_ratio",
                     results[i].attack.mean_clause_var_ratio)
              .field("oracle_queries", results[i].attack.oracle_queries)
              .field("conflicts", results[i].attack.solver_stats.conflicts)
              .field("binary_propagations",
                     results[i].attack.solver_stats.binary_propagations)
              .field("learned_clauses",
                     results[i].attack.solver_stats.learned_clauses)
              .field("glue_learned",
                     results[i].attack.solver_stats.glue_learned)
              .field("promoted_clauses",
                     results[i].attack.solver_stats.promoted_clauses)
              .field("db_size_after_reduce",
                     results[i].attack.solver_stats.db_size_after_reduce)
              // mean_iteration_s reflects only the winning racer in race
              // mode; solver counters above aggregate every racer/worker
              // (see EXPERIMENTS.md before comparing across par modes).
              .field("mean_iteration_s",
                     results[i].attack.mean_iteration_seconds)
              .field("wall_s", results[i].attack.seconds);
          if (portfolio > 1) {
            o.field("portfolio", portfolio)
                .field("par_mode", sat::to_string(*mode))
                .field("portfolio_winner",
                       results[i].attack.portfolio_winner)
                .field("exported_clauses",
                       results[i].attack.solver_stats.exported_clauses)
                .field("imported_clauses",
                       results[i].attack.solver_stats.imported_clauses);
          }
          session.sink()->write(i, o.str());
        }
      });

  std::printf("%-11s %-6s %-8s %-10s %-12s %-10s %s\n", "scheme", "size",
              "replica", "key_bits", "status", "iters", "time_s");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const char* scheme_name = schemes[grid[i].scheme].c_str();
    if (report.cells[i].status != runtime::CellOutcome::Status::kOk) {
      std::printf("%-11s %-6d %-8d %-10s %-12s\n", scheme_name,
                  grid[i].size, grid[i].replica, "-",
                  runtime::to_string(report.cells[i].status));
      continue;
    }
    std::printf("%-11s %-6d %-8d %-10zu %-12s %-10llu %.2f\n", scheme_name,
                grid[i].size, grid[i].replica, results[i].key_bits,
                attacks::to_string(results[i].attack.status),
                static_cast<unsigned long long>(results[i].attack.iterations),
                results[i].attack.seconds);
  }
  return session.finish(report, record_base);
}

int cmd_report(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: report <netlist.bench>\n");
    return 2;
  }
  const netlist::Netlist n = netlist::read_bench_file(argv[2]);
  std::printf("%s: %zu inputs, %zu keys, %zu outputs, %zu gates%s\n",
              n.name().c_str(), n.num_inputs(), n.num_keys(), n.num_outputs(),
              n.num_logic_gates(), n.is_cyclic() ? " (cyclic)" : "");
  const auto hist = n.type_histogram();
  for (std::size_t t = 0; t < hist.size(); ++t) {
    if (hist[t] == 0) continue;
    std::printf("  %-6s %zu\n",
                std::string(netlist::to_string(
                                static_cast<netlist::GateType>(t)))
                    .c_str(),
                hist[t]);
  }
  const ppa::PpaReport ppa_report = ppa::estimate_ppa(n);
  std::printf("area %.1f um2, power %.1f nW, critical delay %.3f ns\n",
              ppa_report.area_um2, ppa_report.power_nw,
              ppa_report.critical_delay_ns);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  serve::ServeArgs args;
  try {
    args = serve::parse_serve_args(argc, argv, 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "serve: %s\nusage: serve <socket> [--state FILE] "
                 "[--workers N] [--max-queue N] [--job-timeout S] "
                 "[--retries N] [--backoff S] [--stall-grace S]\n",
                 e.what());
    return 2;
  }
  serve::Daemon daemon(std::move(args));
  return daemon.serve_forever();
}

int cmd_submit(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(
        stderr,
        "usage: submit <socket> <op> ...\n"
        "  lock <in.bench> <out.bench> [sizes...] [--scheme NAME]\n"
        "       [--opt K=V,...] [--seed S]\n"
        "  attack <locked.bench> <oracle.bench> [--attack NAME]\n"
        "         [--encode auto|cone|full] [--attack-timeout S] [--trace]\n"
        "  sweep <in.bench> --jsonl PATH [sizes...] [--scheme NAME]\n"
        "        [--opt K=V,...] [--replicas N] [--seed S] [--resume]\n"
        "        [--attack NAME] [--attack-timeout S]\n"
        "  status [ID] | cancel <ID> | shutdown\n"
        "job flags (lock/attack/sweep): --priority P, --job-timeout S,\n"
        "  --retries N, --mem-mb M, --detach\n"
        "exit codes: 0 done, 1 failed, 2 usage, 3 rejected, "
        "4 cancelled/interrupted, 5 connection lost\n");
    return 2;
  };
  if (argc < 4) return usage();
  const std::string socket_path = argv[2];
  const std::string op = argv[3];
  try {
    serve::ServeClient client(socket_path);
    if (op == "status") {
      std::optional<std::uint64_t> id;
      if (argc > 4) {
        id = static_cast<std::uint64_t>(
            runtime::parse_int_flag("status id", argv[4], 1));
      }
      return client.status(id, std::cout);
    }
    if (op == "cancel") {
      if (argc < 5) return usage();
      return client.cancel(static_cast<std::uint64_t>(runtime::parse_int_flag(
                               "cancel id", argv[4], 1)),
                           std::cout);
    }
    if (op == "shutdown") return client.shutdown(std::cout);

    serve::JobSpec spec;
    if (op == "lock") {
      spec.kind = serve::JobKind::kLock;
    } else if (op == "attack") {
      spec.kind = serve::JobKind::kAttack;
    } else if (op == "sweep") {
      spec.kind = serve::JobKind::kSweep;
    } else {
      return usage();
    }
    std::vector<std::string> positional;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument("flag " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--priority") {
        spec.priority = static_cast<int>(
            runtime::parse_int_flag("--priority", value(), -1000, 1000));
      } else if (arg == "--job-timeout") {
        spec.timeout_s = runtime::parse_seconds_flag("--job-timeout", value());
      } else if (arg == "--retries") {
        spec.retries = static_cast<int>(
            runtime::parse_int_flag("--retries", value(), 0, 1000000));
      } else if (arg == "--mem-mb") {
        spec.memory_limit_mb = static_cast<std::size_t>(
            runtime::parse_int_flag("--mem-mb", value(), 0, 1LL << 40));
      } else if (arg == "--attack") {
        spec.attack = value();
      } else if (arg == "--scheme") {
        spec.scheme = value();
      } else if (arg == "--opt") {
        if (!spec.scheme_params.empty()) spec.scheme_params += ",";
        spec.scheme_params += value();
      } else if (arg == "--encode") {
        spec.encode = value();
      } else if (arg == "--attack-timeout") {
        spec.attack_timeout_s =
            runtime::parse_seconds_flag("--attack-timeout", value());
      } else if (arg == "--jsonl") {
        spec.jsonl_path = value();
      } else if (arg == "--replicas") {
        spec.replicas = static_cast<int>(
            runtime::parse_int_flag("--replicas", value(), 1, 1000000));
      } else if (arg == "--seed") {
        spec.seed = static_cast<std::uint64_t>(
            runtime::parse_int_flag("--seed", value(), 0));
      } else if (arg == "--resume") {
        spec.resume = true;
      } else if (arg == "--detach") {
        spec.detach = true;
      } else if (arg == "--trace") {
        spec.trace = true;
      } else if (!arg.empty() && arg[0] != '-') {
        positional.push_back(arg);
      } else {
        std::fprintf(stderr, "submit: unknown flag '%s'\n", arg.c_str());
        return usage();
      }
    }
    std::size_t sizes_from = 0;
    if (spec.kind == serve::JobKind::kLock) {
      if (positional.size() < 2) return usage();
      spec.bench_path = positional[0];
      spec.out_path = positional[1];
      sizes_from = 2;
    } else if (spec.kind == serve::JobKind::kAttack) {
      if (positional.size() < 2) return usage();
      spec.locked_path = positional[0];
      spec.oracle_path = positional[1];
      sizes_from = positional.size();
    } else {
      if (positional.empty()) return usage();
      spec.bench_path = positional[0];
      sizes_from = 1;
    }
    for (std::size_t i = sizes_from; i < positional.size(); ++i) {
      spec.sizes.push_back(static_cast<int>(
          runtime::parse_int_flag("size", positional[i], 2, 4096)));
    }
    // Full admission-time validation (attack/scheme/encode names, scheme
    // parameters) lives in validate_spec, shared with the daemon.
    serve::validate_spec(spec);
    return client.submit_and_stream(spec, std::cout);
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "submit: %s\n", e.what());
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "submit: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "submit: %s\n", e.what());
    return serve::ClientExit::kConnectionLost;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    // serve/submit own their flag namespace (--jsonl names the job's
    // checkpoint, --retries the job budget, ...): stripping the shared
    // runner flags here would eat them before the subcommand parses them.
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "submit") return cmd_submit(argc, argv);
    // Strips the shared runner flags (--jobs/--jsonl/--resume/--retries/
    // --cell-timeout/--mem-mb/--trace and their FL_* envs); attack and
    // sweep consume them, the single-shot subcommands ignore them.
    const runtime::RunnerArgs run_args = runtime::parse_runner_args(argc, argv);
    if (cmd == "lock") return cmd_lock(argc, argv);
    if (cmd == "schemes") return cmd_schemes(argc, argv);
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv, run_args);
    if (cmd == "sweep") return cmd_sweep(argc, argv, run_args);
    if (cmd == "report") return cmd_report(argc, argv);
    std::fprintf(stderr,
                 "usage: %s lock|schemes|gen|attack|sweep|report|serve|submit "
                 "...\n",
                 argc > 0 ? argv[0] : "fulllock_cli");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
