// File-based command-line front end: lock / attack / report on .bench
// netlists, the workflow an IP owner or red-team would actually run.
//
//   lock:    example_fulllock_cli lock <in.bench> <out.bench> [plr sizes...]
//            Writes the locked netlist, the key to <out.bench>.key, and a
//            structural Verilog view to <out.bench>.v.
//   attack:  example_fulllock_cli attack <locked.bench> <oracle.bench>
//                                        [timeout_s]
//            Runs the (Cyc)SAT attack with the oracle circuit standing in
//            for the activated chip.
//   report:  example_fulllock_cli report <netlist.bench>
//            Prints structural statistics and the PPA estimate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "ppa/estimator.h"

using namespace fl;

namespace {

int cmd_lock(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: lock <in.bench> <out.bench> [sizes...]\n");
    return 2;
  }
  const netlist::Netlist original = netlist::read_bench_file(argv[2]);
  std::vector<int> sizes;
  for (int i = 4; i < argc; ++i) sizes.push_back(std::atoi(argv[i]));
  if (sizes.empty()) sizes = {16};
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs(sizes));
  if (!core::verify_unlocks(original, locked, 16, 1)) {
    std::fprintf(stderr, "internal error: correct key failed verification\n");
    return 1;
  }
  const std::string out_path = argv[3];
  netlist::write_bench_file(locked.netlist, out_path);
  {
    std::ofstream key_file(out_path + ".key");
    for (std::size_t i = 0; i < locked.correct_key.size(); ++i) {
      key_file << locked.netlist.gate(locked.netlist.keys()[i]).name << " "
               << (locked.correct_key[i] ? 1 : 0) << "\n";
    }
  }
  {
    std::ofstream v_file(out_path + ".v");
    netlist::write_verilog(locked.netlist, v_file);
  }
  std::printf("locked %s: %zu -> %zu gates, %zu key bits\n", argv[2],
              original.num_logic_gates(), locked.netlist.num_logic_gates(),
              locked.key_bits());
  std::printf("wrote %s, %s.key, %s.v\n", out_path.c_str(), out_path.c_str(),
              out_path.c_str());
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: attack <locked.bench> <oracle.bench> [timeout_s]\n");
    return 2;
  }
  core::LockedCircuit locked;
  locked.netlist = netlist::read_bench_file(argv[2]);
  locked.scheme = "file";
  const netlist::Netlist oracle_netlist = netlist::read_bench_file(argv[3]);
  const attacks::Oracle oracle(oracle_netlist);
  attacks::AttackOptions options;
  options.timeout_s = argc > 4 ? std::atof(argv[4]) : 60.0;
  const bool cyclic = locked.netlist.is_cyclic();
  const attacks::AttackResult result =
      cyclic ? attacks::CycSat(options).run(locked, oracle)
             : attacks::SatAttack(options).run(locked, oracle);
  std::printf("%s attack on %s (%zu key bits): %s\n",
              cyclic ? "CycSAT" : "SAT", argv[2], locked.netlist.num_keys(),
              to_string(result.status));
  std::printf("iterations %llu, %.2f s, %llu oracle queries\n",
              static_cast<unsigned long long>(result.iterations),
              result.seconds,
              static_cast<unsigned long long>(result.oracle_queries));
  if (result.status == attacks::AttackStatus::kSuccess) {
    const bool good = core::verify_unlocks(oracle_netlist, locked.netlist,
                                           result.key, 16, 1);
    std::printf("recovered key (%s):", good ? "verified" : "UNVERIFIED");
    for (const bool b : result.key) std::printf("%d", b ? 1 : 0);
    std::printf("\n");
  }
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: report <netlist.bench>\n");
    return 2;
  }
  const netlist::Netlist n = netlist::read_bench_file(argv[2]);
  std::printf("%s: %zu inputs, %zu keys, %zu outputs, %zu gates%s\n",
              n.name().c_str(), n.num_inputs(), n.num_keys(), n.num_outputs(),
              n.num_logic_gates(), n.is_cyclic() ? " (cyclic)" : "");
  const auto hist = n.type_histogram();
  for (std::size_t t = 0; t < hist.size(); ++t) {
    if (hist[t] == 0) continue;
    std::printf("  %-6s %zu\n",
                std::string(netlist::to_string(
                                static_cast<netlist::GateType>(t)))
                    .c_str(),
                hist[t]);
  }
  const ppa::PpaReport ppa_report = ppa::estimate_ppa(n);
  std::printf("area %.1f um2, power %.1f nW, critical delay %.3f ns\n",
              ppa_report.area_um2, ppa_report.power_nw,
              ppa_report.critical_delay_ns);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "lock") return cmd_lock(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
    std::fprintf(stderr, "usage: %s lock|attack|report ...\n",
                 argc > 0 ? argv[0] : "fulllock_cli");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
