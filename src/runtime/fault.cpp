#include "runtime/fault.h"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

namespace fl::runtime {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, std::string_view why) {
  throw std::invalid_argument(
      "malformed fault spec '" + std::string(spec) + "': " + std::string(why) +
      " (expected cell:<idx>|write:<seq>|site:<name>, then :<kind>[:<count>])");
}

FaultSpec parse_one(std::string_view item) {
  std::vector<std::string_view> parts;
  std::size_t at = 0;
  while (at <= item.size()) {
    const std::size_t colon = item.find(':', at);
    if (colon == std::string_view::npos) {
      parts.push_back(item.substr(at));
      break;
    }
    parts.push_back(item.substr(at, colon - at));
    at = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) bad_spec(item, "wrong arity");

  FaultSpec spec;
  const auto parse_num = [&](std::string_view text, auto* out,
                             std::string_view what) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), *out);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      bad_spec(item, what);
    }
  };

  if (parts[0] == "cell") {
    spec.selector = FaultSpec::Selector::kCell;
    parse_num(parts[1], &spec.index, "bad cell index");
  } else if (parts[0] == "write") {
    spec.selector = FaultSpec::Selector::kWrite;
    parse_num(parts[1], &spec.index, "bad sync sequence number");
  } else if (parts[0] == "site") {
    spec.selector = FaultSpec::Selector::kSite;
    if (parts[1].empty()) bad_spec(item, "empty site name");
    spec.site = std::string(parts[1]);
    spec.index = 0;  // sites fire from their first hit; count bounds them
  } else {
    bad_spec(item, "unknown selector");
  }

  if (parts[2] == "throw") {
    spec.kind = FaultKind::kThrow;
  } else if (parts[2] == "stall") {
    spec.kind = FaultKind::kStall;
  } else if (parts[2] == "oom") {
    spec.kind = FaultKind::kOom;
  } else if (parts[2] == "exit") {
    spec.kind = FaultKind::kExit;
  } else if (parts[2] == "ewrite") {
    spec.kind = FaultKind::kEWrite;
  } else if (parts[2] == "drop") {
    spec.kind = FaultKind::kDrop;
  } else {
    bad_spec(item, "unknown fault kind");
  }

  if (parts.size() == 4) {
    parse_num(parts[3], &spec.count, "bad count");
    if (spec.count < 1) bad_spec(item, "count must be >= 1");
  }
  return spec;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStall: return "stall";
    case FaultKind::kOom: return "oom";
    case FaultKind::kExit: return "exit";
    case FaultKind::kEWrite: return "ewrite";
    case FaultKind::kDrop: return "drop";
  }
  return "?";
}

FaultInjector FaultInjector::parse(std::string_view spec) {
  FaultInjector injector;
  std::size_t at = 0;
  while (at < spec.size()) {
    const std::size_t sep = spec.find_first_of(",;", at);
    const std::string_view item =
        spec.substr(at, sep == std::string_view::npos ? spec.size() - at
                                                      : sep - at);
    if (!item.empty()) injector.add(parse_one(item));
    if (sep == std::string_view::npos) break;
    at = sep + 1;
  }
  return injector;
}

const FaultInjector& FaultInjector::global() {
  static const FaultInjector injector = [] {
    const char* env = std::getenv("FL_FAULT");
    return env != nullptr ? parse(env) : FaultInjector{};
  }();
  return injector;
}

void FaultInjector::raise(const FaultSpec& spec, const std::string& where,
                          const std::function<bool()>& expired) const {
  switch (spec.kind) {
    case FaultKind::kThrow:
      throw FaultInjected(where);
    case FaultKind::kStall: {
      // A runaway task: burns its budget (polling `expired`), then dies the
      // way a real hung solve would — with an exception after the deadline.
      // Without a predicate, degrade to a short bounded stall rather than
      // hang the process forever.
      const auto hard_stop =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
      while (expired ? !expired()
                     : std::chrono::steady_clock::now() < hard_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw FaultInjected(where + " stalled past its budget");
    }
    case FaultKind::kOom:
      throw std::bad_alloc();
    case FaultKind::kExit:
      // Simulates SIGKILL / the kernel OOM-killer: no unwinding, no flush.
      // Only records already fsynced survive — exactly what the resume
      // workflow has to cope with.
      std::_Exit(137);
    case FaultKind::kEWrite:
      throw WriteFault("fault-injected: ewrite (simulated ENOSPC) at " +
                       where);
    case FaultKind::kDrop:
      throw ConnectionDropped("fault-injected: peer dropped at " + where);
  }
}

void FaultInjector::inject(const CellContext& ctx) const {
  for (const FaultSpec& spec : specs_) {
    if (spec.selector != FaultSpec::Selector::kCell) continue;
    if (spec.index != ctx.index || ctx.attempt >= spec.count) continue;
    raise(spec,
          "cell " + std::to_string(ctx.index) + " attempt " +
              std::to_string(ctx.attempt),
          // kStall burns the cell's own wall budget; a cell with no budget
          // at all throws immediately instead of hanging the sweep.
          [&ctx] { return ctx.expired() || ctx.timeout_s <= 0.0; });
  }
}

void FaultInjector::inject_write(std::uint64_t seq) const {
  for (const FaultSpec& spec : specs_) {
    if (spec.selector != FaultSpec::Selector::kWrite) continue;
    if (seq < spec.index ||
        seq >= spec.index + static_cast<std::uint64_t>(spec.count)) {
      continue;
    }
    raise(spec, "jsonl sync #" + std::to_string(seq), nullptr);
  }
}

void FaultInjector::inject_site(std::string_view site,
                                const std::function<bool()>& expired) const {
  const FaultSpec* match = nullptr;
  for (const FaultSpec& spec : specs_) {
    if (spec.selector == FaultSpec::Selector::kSite && spec.site == site) {
      match = &spec;
      break;
    }
  }
  if (match == nullptr) return;  // hit counters only exist for armed sites
  std::uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(site_state_->mu);
    hit = site_state_->hits[std::string(site)]++;
  }
  if (hit >= static_cast<std::uint64_t>(match->count)) return;
  raise(*match, "site " + std::string(site) + " hit " + std::to_string(hit),
        expired);
}

}  // namespace fl::runtime
