#include "runtime/fault.h"

#include <charconv>
#include <cstdlib>
#include <new>
#include <thread>

namespace fl::runtime {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, std::string_view why) {
  throw std::invalid_argument("malformed fault spec '" + std::string(spec) +
                              "': " + std::string(why) +
                              " (expected cell:<idx>:<kind>[:<count>])");
}

FaultSpec parse_one(std::string_view item) {
  std::vector<std::string_view> parts;
  std::size_t at = 0;
  while (at <= item.size()) {
    const std::size_t colon = item.find(':', at);
    if (colon == std::string_view::npos) {
      parts.push_back(item.substr(at));
      break;
    }
    parts.push_back(item.substr(at, colon - at));
    at = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) bad_spec(item, "wrong arity");
  if (parts[0] != "cell") bad_spec(item, "unknown selector");

  FaultSpec spec;
  const auto parse_num = [&](std::string_view text, auto* out,
                             std::string_view what) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), *out);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      bad_spec(item, what);
    }
  };
  parse_num(parts[1], &spec.cell, "bad cell index");

  if (parts[2] == "throw") {
    spec.kind = FaultKind::kThrow;
  } else if (parts[2] == "stall") {
    spec.kind = FaultKind::kStall;
  } else if (parts[2] == "oom") {
    spec.kind = FaultKind::kOom;
  } else if (parts[2] == "exit") {
    spec.kind = FaultKind::kExit;
  } else {
    bad_spec(item, "unknown fault kind");
  }

  if (parts.size() == 4) {
    parse_num(parts[3], &spec.count, "bad count");
    if (spec.count < 1) bad_spec(item, "count must be >= 1");
  }
  return spec;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStall: return "stall";
    case FaultKind::kOom: return "oom";
    case FaultKind::kExit: return "exit";
  }
  return "?";
}

FaultInjector FaultInjector::parse(std::string_view spec) {
  FaultInjector injector;
  std::size_t at = 0;
  while (at < spec.size()) {
    const std::size_t sep = spec.find_first_of(",;", at);
    const std::string_view item =
        spec.substr(at, sep == std::string_view::npos ? spec.size() - at
                                                      : sep - at);
    if (!item.empty()) injector.add(parse_one(item));
    if (sep == std::string_view::npos) break;
    at = sep + 1;
  }
  return injector;
}

const FaultInjector& FaultInjector::global() {
  static const FaultInjector injector = [] {
    const char* env = std::getenv("FL_FAULT");
    return env != nullptr ? parse(env) : FaultInjector{};
  }();
  return injector;
}

void FaultInjector::inject(const CellContext& ctx) const {
  for (const FaultSpec& spec : specs_) {
    if (spec.cell != ctx.index || ctx.attempt >= spec.count) continue;
    switch (spec.kind) {
      case FaultKind::kThrow:
        throw FaultInjected("cell " + std::to_string(ctx.index) + " attempt " +
                            std::to_string(ctx.attempt));
      case FaultKind::kStall:
        // A runaway cell: burns its whole wall budget, then dies the way a
        // real hung solve would — with an exception after the deadline. If
        // the cell has no budget at all, degrade to an immediate throw
        // rather than hang the sweep forever.
        while (!ctx.expired() && ctx.timeout_s > 0.0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw FaultInjected("cell " + std::to_string(ctx.index) +
                            " stalled past its budget");
      case FaultKind::kOom:
        throw std::bad_alloc();
      case FaultKind::kExit:
        // Simulates SIGKILL / the kernel OOM-killer: no unwinding, no
        // flush. Only records already fsynced survive — exactly what the
        // resume workflow has to cope with.
        std::_Exit(137);
    }
  }
}

}  // namespace fl::runtime
