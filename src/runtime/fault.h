// Deterministic fault injection for sweep cells, JSONL writers, and the
// serve daemon's failure paths.
//
// Faults are configured either programmatically (tests build a FaultInjector
// and hand it to GridConfig::faults) or via the FL_FAULT environment
// variable, which the global() injector parses once at first use. Three
// selectors exist:
//
//   cell:<idx>:<kind>[:<count>]   fires at the top of grid-cell attempts
//   write:<seq>:<kind>[:<count>]  fires on durable JSONL syncs, by global
//                                 0-based sync sequence number
//   site:<name>:<kind>[:<count>]  fires at a named code site, by per-site
//                                 0-based hit number (serve daemon paths)
//
//   FL_FAULT="cell:7:throw"          cell 7 throws on its first attempt
//   FL_FAULT="cell:3:stall"          cell 3 spins until its budget expires
//   FL_FAULT="cell:0:oom"            cell 0 throws std::bad_alloc
//   FL_FAULT="cell:5:exit"           cell 5 kills the whole process
//                                    (std::_Exit(137), simulating an
//                                    OOM-kill — the resume smoke test)
//   FL_FAULT="cell:2:throw:3"        fires while attempt < 3 (so a --retries
//                                    budget of >= 3 eventually succeeds)
//   FL_FAULT="write:2:ewrite"        the 3rd JsonlWriter sync fails the way
//                                    a full disk would (simulated ENOSPC)
//   FL_FAULT="write:0:ewrite:1000"   every sync fails — nothing durable
//   FL_FAULT="site:serve.stream:drop"      the daemon's first client-stream
//                                          write drops the connection
//   FL_FAULT="site:serve.job:exit"         the first serve job attempt kills
//                                          the worker (and thus the daemon)
//   FL_FAULT="site:serve.drain:stall"      shutdown drain stalls once before
//                                          completing
//   FL_FAULT="cell:1:throw,cell:4:oom"     comma/semicolon-separated list
//
// Injection is a pure function of (selector, index-or-hit-count, attempt):
// the same spec always fails the same cells/syncs/sites, which is what lets
// the crash/resume integration tests assert byte-identical output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/runner.h"

namespace fl::runtime {

enum class FaultKind : std::uint8_t {
  kThrow,   // throw FaultInjected
  kStall,   // busy-wait (polling an expiry predicate) then throw
  kOom,     // throw std::bad_alloc
  kExit,    // std::_Exit(137) — hard process death, nothing is flushed
  kEWrite,  // throw WriteFault (simulated ENOSPC/EIO on a durable write)
  kDrop,    // throw ConnectionDropped (simulated peer hangup mid-stream)
};
const char* to_string(FaultKind kind);

// The exception injected faults raise; distinguishable from real cell
// failures in tests via the "fault-injected" marker prefix in what().
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& message)
      : std::runtime_error("fault-injected: " + message) {}
};

// A durable write that failed — raised by kEWrite injection and by
// JsonlWriter when a real flush/fsync reports an error (ENOSPC, EIO). One
// type for both so every consumer handles the real failure the way the
// injected one is tested.
class WriteFault : public std::runtime_error {
 public:
  explicit WriteFault(const std::string& message)
      : std::runtime_error(message) {}
};

// A client connection that went away mid-stream (kDrop injection, or a real
// EPIPE/ECONNRESET mapped by the serve session layer).
class ConnectionDropped : public std::runtime_error {
 public:
  explicit ConnectionDropped(const std::string& message)
      : std::runtime_error(message) {}
};

struct FaultSpec {
  enum class Selector : std::uint8_t { kCell, kWrite, kSite };
  Selector selector = Selector::kCell;
  // kCell: grid index. kWrite: first failing global sync sequence number.
  // kSite: first failing hit of `site`.
  std::size_t index = 0;
  std::string site;  // kSite only
  FaultKind kind = FaultKind::kThrow;
  // kCell: fire while attempt < count. kWrite/kSite: fire while the
  // sequence/hit number is in [index, index + count).
  int count = 1;

  // Named builders mirroring the FL_FAULT selector syntax, for tests that
  // configure injectors programmatically.
  static FaultSpec at_cell(std::size_t cell, FaultKind kind, int count = 1) {
    return {Selector::kCell, cell, {}, kind, count};
  }
  static FaultSpec at_write(std::size_t seq, FaultKind kind, int count = 1) {
    return {Selector::kWrite, seq, {}, kind, count};
  }
  static FaultSpec at_site(std::string name, FaultKind kind, int count = 1) {
    return {Selector::kSite, 0, std::move(name), kind, count};
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  // Parses a spec list ("cell:7:throw,write:0:ewrite"); throws
  // std::invalid_argument on malformed input. Empty string = no faults.
  static FaultInjector parse(std::string_view spec);
  // Process-wide injector configured from FL_FAULT (parsed once, at first
  // use). Unset/empty FL_FAULT yields an inert injector.
  static const FaultInjector& global();

  void add(FaultSpec spec) { specs_.push_back(std::move(spec)); }
  bool empty() const { return specs_.empty(); }

  // Called at the top of every cell attempt; raises the configured fault
  // for (ctx.index, ctx.attempt), or returns normally.
  void inject(const CellContext& ctx) const;

  // Called by JsonlWriter before each durable sync with the global 0-based
  // sync sequence number; raises WriteFault (kEWrite) or the configured
  // fault when a `write` spec covers `seq`.
  void inject_write(std::uint64_t seq) const;

  // Called at a named serve-daemon code site. Counts hits per site (the
  // count lives in this injector, so tests with their own injector don't
  // share state with the global one) and raises the configured fault while
  // the hit number is covered. `expired` bounds kStall at sites that have a
  // natural budget; nullptr stalls for a fixed short interval instead of
  // forever, so an injected drain stall can never wedge the daemon.
  void inject_site(std::string_view site,
                   const std::function<bool()>& expired = nullptr) const;

 private:
  void raise(const FaultSpec& spec, const std::string& where,
             const std::function<bool()>& expired) const;

  std::vector<FaultSpec> specs_;
  // Per-site hit counters. Behind a shared_ptr so the injector stays
  // copyable/movable (parse() returns by value); copies deliberately share
  // their counters — they describe the same configured fault campaign.
  struct SiteState {
    std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> hits;
  };
  std::shared_ptr<SiteState> site_state_ = std::make_shared<SiteState>();
};

}  // namespace fl::runtime
