// Deterministic fault injection for sweep cells.
//
// Faults are configured either programmatically (tests build a FaultInjector
// and hand it to GridConfig::faults) or via the FL_FAULT environment
// variable, which the global() injector parses once at first use:
//
//   FL_FAULT="cell:7:throw"          cell 7 throws on its first attempt
//   FL_FAULT="cell:3:stall"          cell 3 spins until its budget expires
//   FL_FAULT="cell:0:oom"            cell 0 throws std::bad_alloc
//   FL_FAULT="cell:5:exit"           cell 5 kills the whole process
//                                    (std::_Exit(137), simulating an
//                                    OOM-kill — the resume smoke test)
//   FL_FAULT="cell:2:throw:3"        fires while attempt < 3 (so a --retries
//                                    budget of >= 3 eventually succeeds)
//   FL_FAULT="cell:1:throw,cell:4:oom"   comma/semicolon-separated list
//
// Injection is a pure function of (cell index, attempt number): the same
// spec always fails the same cells, which is what lets the crash/resume
// integration test assert byte-identical output.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/runner.h"

namespace fl::runtime {

enum class FaultKind : std::uint8_t {
  kThrow,  // throw FaultInjected
  kStall,  // busy-wait (polling CellContext::expired) then throw
  kOom,    // throw std::bad_alloc
  kExit,   // std::_Exit(137) — hard process death, nothing is flushed
};
const char* to_string(FaultKind kind);

// The exception injected faults raise; distinguishable from real cell
// failures in tests via the ".fault" marker prefix in what().
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& message)
      : std::runtime_error("fault-injected: " + message) {}
};

struct FaultSpec {
  std::size_t cell = 0;
  FaultKind kind = FaultKind::kThrow;
  int count = 1;  // fire while attempt < count
};

class FaultInjector {
 public:
  FaultInjector() = default;
  // Parses a spec list ("cell:7:throw,cell:3:oom:2"); throws
  // std::invalid_argument on malformed input. Empty string = no faults.
  static FaultInjector parse(std::string_view spec);
  // Process-wide injector configured from FL_FAULT (parsed once, at first
  // use). Unset/empty FL_FAULT yields an inert injector.
  static const FaultInjector& global();

  void add(FaultSpec spec) { specs_.push_back(spec); }
  bool empty() const { return specs_.empty(); }

  // Called at the top of every cell attempt; raises the configured fault
  // for (ctx.index, ctx.attempt), or returns normally.
  void inject(const CellContext& ctx) const;

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace fl::runtime
