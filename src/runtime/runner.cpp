#include "runtime/runner.h"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

#include "runtime/thread_pool.h"

namespace fl::runtime {

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FL_JOBS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

RunnerArgs parse_runner_args(int& argc, char** argv) {
  int requested_jobs = 0;
  RunnerArgs args;
  if (const char* env = std::getenv("FL_JSONL"); env != nullptr) {
    args.jsonl_path = env;
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto take_value = [&](std::string_view flag,
                                std::string_view* value) {
      if (arg.rfind(flag, 0) != 0) return false;
      if (arg.size() > flag.size() && arg[flag.size()] == '=') {
        *value = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg.size() == flag.size() && i + 1 < argc) {
        *value = argv[++i];
        return true;
      }
      return false;
    };
    std::string_view value;
    if (take_value("--jobs", &value)) {
      requested_jobs = std::atoi(std::string(value).c_str());
    } else if (take_value("--jsonl", &value)) {
      args.jsonl_path = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  args.jobs = resolve_jobs(requested_jobs);
  return args;
}

void run_grid(std::size_t n, int jobs,
              const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    ThreadPool pool(static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n > 0 ? n : 1)));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fl::runtime
