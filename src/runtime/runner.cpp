#include "runtime/runner.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "runtime/fault.h"
#include "runtime/thread_pool.h"

namespace fl::runtime {

namespace {

[[noreturn]] void bad_value(std::string_view what, std::string_view text,
                            std::string_view expected) {
  throw std::invalid_argument("invalid value for " + std::string(what) +
                              ": '" + std::string(text) + "' (expected " +
                              std::string(expected) + ")");
}

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string_view v = env;
  return !v.empty() && v != "0" && v != "false" && v != "no";
}

// Runs one cell to a terminal outcome: bounded retries with budget
// escalation, fault injection at every attempt, cancellation taking
// precedence over failure (an interrupted solve often surfaces as an
// exception — it must not be recorded as a failed cell, or --resume would
// wrongly consider it done).
CellOutcome run_one_cell(const GridConfig& config, const FaultInjector& faults,
                         const std::function<void(const CellContext&)>& fn,
                         std::size_t index) {
  CellOutcome outcome;
  const int max_attempts = std::max(0, config.retries) + 1;
  double budget = config.cell_timeout_s;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      outcome.status = CellOutcome::Status::kCancelled;
      return outcome;
    }
    CellContext ctx;
    ctx.index = index;
    ctx.attempt = attempt;
    ctx.timeout_s = budget;
    ctx.start = std::chrono::steady_clock::now();
    ctx.interrupt = config.cancel != nullptr ? config.cancel->flag() : nullptr;
    ++outcome.attempts;
    try {
      faults.inject(ctx);
      fn(ctx);
      outcome.status = CellOutcome::Status::kOk;
      outcome.error.clear();
      outcome.exception = nullptr;
      return outcome;
    } catch (const std::exception& e) {
      outcome.status = CellOutcome::Status::kFailed;
      outcome.error = e.what();
      outcome.exception = std::current_exception();
    } catch (...) {
      outcome.status = CellOutcome::Status::kFailed;
      outcome.error = "unknown exception";
      outcome.exception = std::current_exception();
    }
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      outcome.status = CellOutcome::Status::kCancelled;
      return outcome;
    }
    if (budget > 0.0 && config.retry_backoff > 0.0) {
      budget *= config.retry_backoff;
    }
  }
  return outcome;
}

}  // namespace

long long parse_int_flag(std::string_view what, std::string_view text,
                         long long min_value, long long max_value) {
  long long value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size() ||
      value < min_value || value > max_value) {
    bad_value(what, text,
              "integer in [" + std::to_string(min_value) + ", " +
                  std::to_string(max_value) + "]");
  }
  return value;
}

double parse_seconds_flag(std::string_view what, std::string_view text) {
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  // NB: !(value >= 0.0) also rejects NaN, which `value < 0.0` would accept.
  if (buf.empty() || end != buf.c_str() + buf.size() || !(value >= 0.0) ||
      !std::isfinite(value)) {
    bad_value(what, text, "finite seconds >= 0");
  }
  return value;
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FL_JOBS"); env != nullptr) {
    const long long n = parse_int_flag("FL_JOBS", env, 1);
    return static_cast<int>(std::min<long long>(n, 1 << 20));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

RunnerArgs parse_runner_args(int& argc, char** argv) {
  int requested_jobs = 0;
  RunnerArgs args;
  if (const char* env = std::getenv("FL_JSONL"); env != nullptr) {
    args.jsonl_path = env;
  }
  if (const char* env = std::getenv("FL_RETRIES"); env != nullptr) {
    args.retries = static_cast<int>(parse_int_flag("FL_RETRIES", env, 0, 1000000));
  }
  if (const char* env = std::getenv("FL_CELL_TIMEOUT_S"); env != nullptr) {
    args.cell_timeout_s = parse_seconds_flag("FL_CELL_TIMEOUT_S", env);
  }
  if (const char* env = std::getenv("FL_MEM_MB"); env != nullptr) {
    args.memory_limit_mb =
        static_cast<std::size_t>(parse_int_flag("FL_MEM_MB", env, 0));
  }
  if (const char* env = std::getenv("FL_TRACE"); env != nullptr) {
    args.trace_path = env;
  }
  args.resume = env_flag("FL_RESUME");
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto take_value = [&](std::string_view flag,
                                std::string_view* value) {
      if (arg.rfind(flag, 0) != 0) return false;
      if (arg.size() > flag.size() && arg[flag.size()] == '=') {
        *value = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg.size() == flag.size()) {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for " +
                                      std::string(flag));
        }
        *value = argv[++i];
        return true;
      }
      return false;
    };
    std::string_view value;
    if (arg == "--resume") {
      args.resume = true;
    } else if (take_value("--jobs", &value)) {
      requested_jobs = static_cast<int>(parse_int_flag("--jobs", value, 0, 1 << 20));
    } else if (take_value("--jsonl", &value)) {
      args.jsonl_path = value;
    } else if (take_value("--retries", &value)) {
      args.retries = static_cast<int>(parse_int_flag("--retries", value, 0, 1000000));
    } else if (take_value("--cell-timeout", &value)) {
      args.cell_timeout_s = parse_seconds_flag("--cell-timeout", value);
    } else if (take_value("--mem-mb", &value)) {
      args.memory_limit_mb =
          static_cast<std::size_t>(parse_int_flag("--mem-mb", value, 0));
    } else if (take_value("--trace", &value)) {
      args.trace_path = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  args.jobs = resolve_jobs(requested_jobs);
  return args;
}

bool CellContext::expired() const {
  if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed)) {
    return true;
  }
  if (timeout_s <= 0.0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count() >= timeout_s;
}

double CellContext::effective_timeout(double fallback) const {
  if (timeout_s <= 0.0) return fallback;
  if (fallback <= 0.0) return timeout_s;
  return std::min(timeout_s, fallback);
}

const char* to_string(CellOutcome::Status status) {
  switch (status) {
    case CellOutcome::Status::kOk: return "ok";
    case CellOutcome::Status::kFailed: return "failed";
    case CellOutcome::Status::kSkipped: return "skipped";
    case CellOutcome::Status::kCancelled: return "cancelled";
  }
  return "?";
}

GridReport run_grid(std::size_t n, const GridConfig& config,
                    const std::function<void(const CellContext&)>& fn) {
  GridReport report;
  report.cells.resize(n);
  const FaultInjector& faults =
      config.faults != nullptr ? *config.faults : FaultInjector::global();

  std::mutex mu;  // guards first_error (outcome slots are disjoint)
  const auto record = [&](std::size_t i, CellOutcome outcome) {
    if (outcome.status == CellOutcome::Status::kFailed &&
        outcome.exception != nullptr) {
      std::lock_guard<std::mutex> lock(mu);
      if (!report.first_error) report.first_error = outcome.exception;
    }
    report.cells[i] = std::move(outcome);
  };

  const auto run_one = [&](std::size_t i) {
    if (i < config.completed.size() && config.completed[i]) {
      CellOutcome skipped;
      skipped.status = CellOutcome::Status::kSkipped;
      record(i, std::move(skipped));
      return;
    }
    record(i, run_one_cell(config, faults, fn, i));
  };

  if (config.jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    ThreadPool pool(static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(config.jobs), n)));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] { run_one(i); });
    }
    pool.wait_idle();
  }

  for (const CellOutcome& cell : report.cells) {
    switch (cell.status) {
      case CellOutcome::Status::kOk: ++report.ok; break;
      case CellOutcome::Status::kFailed: ++report.failed; break;
      case CellOutcome::Status::kSkipped: ++report.skipped; break;
      case CellOutcome::Status::kCancelled: ++report.cancelled_cells; break;
    }
  }
  report.cancelled = config.cancel != nullptr && config.cancel->cancelled();
  return report;
}

void run_grid(std::size_t n, int jobs,
              const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex error_mu;
  std::exception_ptr first_error;
  // (index, what()) of every cell whose exception was suppressed so the
  // grid could drain; reported before the rethrow so a sweep failure names
  // all broken cells, not just the first.
  std::vector<std::pair<std::size_t, std::string>> failures;
  {
    ThreadPool pool(static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n > 0 ? n : 1)));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          fn(i);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failures.emplace_back(i, e.what());
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failures.emplace_back(i, "unknown exception");
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) {
    std::sort(failures.begin(), failures.end());
    for (const auto& [index, what] : failures) {
      std::cerr << "run_grid: cell " << index << " failed: " << what << "\n";
    }
    std::rethrow_exception(first_error);
  }
}

}  // namespace fl::runtime
