#include "runtime/jsonl.h"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "runtime/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fl::runtime {

namespace {
// write:<seq> fault specs select on this process-wide counter; serial runs
// make it deterministic.
std::atomic<std::uint64_t> g_sync_seq{0};
}  // namespace

namespace {

void append_escaped(std::string& buf, std::string_view s) {
  buf.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': buf += "\\\""; break;
      case '\\': buf += "\\\\"; break;
      case '\n': buf += "\\n"; break;
      case '\r': buf += "\\r"; break;
      case '\t': buf += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          buf += hex;
        } else {
          buf.push_back(c);
        }
    }
  }
  buf.push_back('"');
}

// Position of the raw value of `"key":` in `line`, or npos. Only matches a
// full key token, so "cell" does not match "cells".
std::size_t value_pos(std::string_view line, std::string_view key) {
  std::string token = "\"";
  token += key;
  token += "\":";
  const std::size_t at = line.find(token);
  return at == std::string_view::npos ? at : at + token.size();
}

}  // namespace

JsonObject& JsonObject::raw(std::string_view key, std::string_view value) {
  if (!first_) buf_.push_back(',');
  first_ = false;
  append_escaped(buf_, key);
  buf_.push_back(':');
  buf_ += value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  std::string escaped;
  append_escaped(escaped, value);
  return raw(key, escaped);
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  // Shortest round-trippable decimal; identical doubles format identically,
  // which is all the determinism guarantee needs.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw(key, buf);
}

JsonObject& JsonObject::field(std::string_view key,
                              std::span<const int> values) {
  std::string buf = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) buf.push_back(',');
    buf += std::to_string(values[i]);
  }
  buf.push_back(']');
  return raw(key, buf);
}

JsonObject& JsonObject::merge(const JsonObject& other) {
  if (other.first_) return *this;  // nothing to merge
  if (!first_) buf_.push_back(',');
  buf_.append(other.buf_, 1, std::string::npos);  // skip the opening '{'
  first_ = false;
  return *this;
}

std::string JsonObject::str() {
  buf_.push_back('}');
  return std::move(buf_);
}

void JsonlSink::drain_ready_locked() {
  bool emitted = false;
  while (true) {
    if (const auto it = pending_.find(next_); it != pending_.end()) {
      out_ << it->second << '\n';
      pending_.erase(it);
      ++next_;
      emitted = true;
    } else if (const auto sk = skipped_.find(next_); sk != skipped_.end()) {
      skipped_.erase(sk);
      ++next_;
    } else {
      break;
    }
  }
  if (emitted && sync_) sync_();
}

void JsonlSink::write(std::size_t index, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.emplace(index, std::move(line));
  drain_ready_locked();
}

void JsonlSink::skip(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < next_) return;
  skipped_.insert(index);
  drain_ready_locked();
}

void JsonlSink::write_unordered(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  if (sync_) sync_();
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [index, line] : pending_) {
    out_ << line << '\n';
    next_ = index + 1;
  }
  pending_.clear();
  skipped_.clear();
  out_.flush();
  if (sync_) sync_();
}

JsonlWriter::JsonlWriter(const std::string& path, bool append,
                         const FaultInjector* faults)
    : path_(path), faults_(faults) {
  out_.open(path, append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out_) {
    throw std::runtime_error("cannot open JSONL output file: " + path);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Second descriptor on the same inode, used only for fsync: flushing the
  // ofstream moves bytes to the kernel, fsync makes them durable.
  fd_ = ::open(path.c_str(), O_WRONLY);
#endif
}

JsonlWriter::~JsonlWriter() {
  try {
    sync();
  } catch (const std::exception& e) {
    // Destructors must not throw; by this point every committed record was
    // already synced (or its producer already failed), so losing the final
    // no-op sync only costs this diagnostic.
    std::fprintf(stderr, "JsonlWriter: final sync of %s failed: %s\n",
                 path_.c_str(), e.what());
  }
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

void JsonlWriter::sync() {
  const std::uint64_t seq =
      g_sync_seq.fetch_add(1, std::memory_order_relaxed);
  // Injected ENOSPC fires before the real flush, and poisons the stream the
  // way a real one would (badbit persists): every later record is a no-op
  // instead of silently going durable at close. The one record already
  // handed to the stream buffer may still land when the filebuf closes —
  // harmless, since a fully written record is exactly what resume scans for.
  try {
    (faults_ != nullptr ? *faults_ : FaultInjector::global()).inject_write(seq);
  } catch (...) {
    out_.setstate(std::ios::badbit);
    throw;
  }
  out_.flush();
  if (!out_) {
    throw WriteFault("JSONL flush of " + path_ +
                     " failed (disk full or I/O error?)");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0 && ::fsync(fd_) < 0) {
    throw WriteFault("fsync of " + path_ + " failed: " +
                     std::strerror(errno));
  }
#endif
}

std::uint64_t JsonlWriter::sync_sequence() {
  return g_sync_seq.load(std::memory_order_relaxed);
}

std::optional<long long> json_int_field(std::string_view line,
                                        std::string_view key) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  long long value = 0;
  const auto [end, ec] =
      std::from_chars(line.data() + at, line.data() + line.size(), value);
  if (ec != std::errc{}) return std::nullopt;
  (void)end;
  return value;
}

std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\' && at + 1 < line.size()) {
      const char esc = line[at + 1];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: out.push_back(esc);
      }
      at += 2;
    } else {
      out.push_back(line[at++]);
    }
  }
  if (at >= line.size()) return std::nullopt;  // unterminated string
  return out;
}

std::optional<double> json_double_field(std::string_view line,
                                        std::string_view key) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(line.data() + at, line.data() + line.size(), value);
  if (ec != std::errc{}) return std::nullopt;
  (void)end;
  return value;
}

std::optional<std::vector<int>> json_int_array_field(std::string_view line,
                                                     std::string_view key) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '[') {
    return std::nullopt;
  }
  ++at;
  std::vector<int> values;
  while (at < line.size() && line[at] != ']') {
    int value = 0;
    const auto [end, ec] =
        std::from_chars(line.data() + at, line.data() + line.size(), value);
    if (ec != std::errc{}) return std::nullopt;
    values.push_back(value);
    at = static_cast<std::size_t>(end - line.data());
    if (at < line.size() && line[at] == ',') ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated array
  return values;
}

std::optional<bool> json_bool_field(std::string_view line,
                                    std::string_view key) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  if (line.substr(at, 4) == "true") return true;
  if (line.substr(at, 5) == "false") return false;
  return std::nullopt;
}

std::string run_header_line(std::string_view bench, std::size_t grid_size,
                            std::uint64_t base_seed) {
  JsonObject o;
  o.field("record", "run_header")
      .field("bench", bench)
      .field("grid_cells", grid_size)
      .field("base_seed", base_seed);
  return std::move(o).str();
}

ResumeState scan_jsonl_resume(const std::string& path, std::string_view bench,
                              std::size_t grid_size) {
  ResumeState state;
  state.completed.assign(grid_size, false);
  std::ifstream in(path);
  if (!in) return state;  // nothing to resume — fresh run
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (const auto record = json_string_field(line, "record");
        record && *record == "run_header") {
      const auto header_bench = json_string_field(line, "bench");
      const auto cells = json_int_field(line, "grid_cells");
      if (!header_bench || *header_bench != bench || !cells ||
          static_cast<std::size_t>(*cells) != grid_size) {
        throw std::runtime_error(
            path + ":" + std::to_string(line_no) +
            ": run manifest does not match this sweep (bench '" +
            header_bench.value_or("?") + "', " +
            std::to_string(cells.value_or(-1)) + " cells; expected '" +
            std::string(bench) + "', " + std::to_string(grid_size) +
            " cells) — refusing to resume");
      }
      continue;
    }
    const auto cell = json_int_field(line, "cell");
    if (!cell || *cell < 0 ||
        static_cast<std::size_t>(*cell) >= grid_size) {
      continue;  // foreign or pre-resume-era record; leave it alone
    }
    const std::size_t i = static_cast<std::size_t>(*cell);
    if (!state.completed[i]) {
      state.completed[i] = true;
      ++state.num_completed;
      const auto status = json_string_field(line, "status");
      if (status && *status == "failed") ++state.num_failed;
    }
  }
  return state;
}

std::ofstream open_jsonl(const std::string& path, bool append) {
  std::ofstream out(path,
                    append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out) {
    throw std::runtime_error("cannot open JSONL output file: " + path);
  }
  return out;
}

}  // namespace fl::runtime
