#include "runtime/jsonl.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fl::runtime {

namespace {

void append_escaped(std::string& buf, std::string_view s) {
  buf.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': buf += "\\\""; break;
      case '\\': buf += "\\\\"; break;
      case '\n': buf += "\\n"; break;
      case '\r': buf += "\\r"; break;
      case '\t': buf += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          buf += hex;
        } else {
          buf.push_back(c);
        }
    }
  }
  buf.push_back('"');
}

// Position of the raw value of `"key":` in `line`, or npos. Only matches a
// full key token, so "cell" does not match "cells".
std::size_t value_pos(std::string_view line, std::string_view key) {
  std::string token = "\"";
  token += key;
  token += "\":";
  const std::size_t at = line.find(token);
  return at == std::string_view::npos ? at : at + token.size();
}

}  // namespace

JsonObject& JsonObject::raw(std::string_view key, std::string_view value) {
  if (!first_) buf_.push_back(',');
  first_ = false;
  append_escaped(buf_, key);
  buf_.push_back(':');
  buf_ += value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  std::string escaped;
  append_escaped(escaped, value);
  return raw(key, escaped);
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  // Shortest round-trippable decimal; identical doubles format identically,
  // which is all the determinism guarantee needs.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw(key, buf);
}

std::string JsonObject::str() {
  buf_.push_back('}');
  return std::move(buf_);
}

void JsonlSink::drain_ready_locked() {
  bool emitted = false;
  while (true) {
    if (const auto it = pending_.find(next_); it != pending_.end()) {
      out_ << it->second << '\n';
      pending_.erase(it);
      ++next_;
      emitted = true;
    } else if (const auto sk = skipped_.find(next_); sk != skipped_.end()) {
      skipped_.erase(sk);
      ++next_;
    } else {
      break;
    }
  }
  if (emitted && sync_) sync_();
}

void JsonlSink::write(std::size_t index, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.emplace(index, std::move(line));
  drain_ready_locked();
}

void JsonlSink::skip(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < next_) return;
  skipped_.insert(index);
  drain_ready_locked();
}

void JsonlSink::write_unordered(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  if (sync_) sync_();
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [index, line] : pending_) {
    out_ << line << '\n';
    next_ = index + 1;
  }
  pending_.clear();
  skipped_.clear();
  out_.flush();
  if (sync_) sync_();
}

JsonlWriter::JsonlWriter(const std::string& path, bool append) {
  out_.open(path, append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out_) {
    throw std::runtime_error("cannot open JSONL output file: " + path);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Second descriptor on the same inode, used only for fsync: flushing the
  // ofstream moves bytes to the kernel, fsync makes them durable.
  fd_ = ::open(path.c_str(), O_WRONLY);
#endif
}

JsonlWriter::~JsonlWriter() {
  sync();
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

void JsonlWriter::sync() {
  out_.flush();
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::fsync(fd_);
#endif
}

std::optional<long long> json_int_field(std::string_view line,
                                        std::string_view key) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  long long value = 0;
  const auto [end, ec] =
      std::from_chars(line.data() + at, line.data() + line.size(), value);
  if (ec != std::errc{}) return std::nullopt;
  (void)end;
  return value;
}

std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\' && at + 1 < line.size()) {
      const char esc = line[at + 1];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: out.push_back(esc);
      }
      at += 2;
    } else {
      out.push_back(line[at++]);
    }
  }
  if (at >= line.size()) return std::nullopt;  // unterminated string
  return out;
}

std::string run_header_line(std::string_view bench, std::size_t grid_size,
                            std::uint64_t base_seed) {
  JsonObject o;
  o.field("record", "run_header")
      .field("bench", bench)
      .field("grid_cells", grid_size)
      .field("base_seed", base_seed);
  return std::move(o).str();
}

ResumeState scan_jsonl_resume(const std::string& path, std::string_view bench,
                              std::size_t grid_size) {
  ResumeState state;
  state.completed.assign(grid_size, false);
  std::ifstream in(path);
  if (!in) return state;  // nothing to resume — fresh run
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (const auto record = json_string_field(line, "record");
        record && *record == "run_header") {
      const auto header_bench = json_string_field(line, "bench");
      const auto cells = json_int_field(line, "grid_cells");
      if (!header_bench || *header_bench != bench || !cells ||
          static_cast<std::size_t>(*cells) != grid_size) {
        throw std::runtime_error(
            path + ":" + std::to_string(line_no) +
            ": run manifest does not match this sweep (bench '" +
            header_bench.value_or("?") + "', " +
            std::to_string(cells.value_or(-1)) + " cells; expected '" +
            std::string(bench) + "', " + std::to_string(grid_size) +
            " cells) — refusing to resume");
      }
      continue;
    }
    const auto cell = json_int_field(line, "cell");
    if (!cell || *cell < 0 ||
        static_cast<std::size_t>(*cell) >= grid_size) {
      continue;  // foreign or pre-resume-era record; leave it alone
    }
    const std::size_t i = static_cast<std::size_t>(*cell);
    if (!state.completed[i]) {
      state.completed[i] = true;
      ++state.num_completed;
      const auto status = json_string_field(line, "status");
      if (status && *status == "failed") ++state.num_failed;
    }
  }
  return state;
}

std::ofstream open_jsonl(const std::string& path, bool append) {
  std::ofstream out(path,
                    append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out) {
    throw std::runtime_error("cannot open JSONL output file: " + path);
  }
  return out;
}

}  // namespace fl::runtime
