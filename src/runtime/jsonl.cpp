#include "runtime/jsonl.h"

#include <cstdio>
#include <stdexcept>

namespace fl::runtime {

namespace {

void append_escaped(std::string& buf, std::string_view s) {
  buf.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': buf += "\\\""; break;
      case '\\': buf += "\\\\"; break;
      case '\n': buf += "\\n"; break;
      case '\r': buf += "\\r"; break;
      case '\t': buf += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          buf += hex;
        } else {
          buf.push_back(c);
        }
    }
  }
  buf.push_back('"');
}

}  // namespace

JsonObject& JsonObject::raw(std::string_view key, std::string_view value) {
  if (!first_) buf_.push_back(',');
  first_ = false;
  append_escaped(buf_, key);
  buf_.push_back(':');
  buf_ += value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  std::string escaped;
  append_escaped(escaped, value);
  return raw(key, escaped);
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  // Shortest round-trippable decimal; identical doubles format identically,
  // which is all the determinism guarantee needs.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw(key, buf);
}

std::string JsonObject::str() {
  buf_.push_back('}');
  return std::move(buf_);
}

void JsonlSink::write(std::size_t index, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.emplace(index, std::move(line));
  while (!pending_.empty() && pending_.begin()->first == next_) {
    out_ << pending_.begin()->second << '\n';
    pending_.erase(pending_.begin());
    ++next_;
  }
}

void JsonlSink::write_unordered(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [index, line] : pending_) {
    out_ << line << '\n';
    next_ = index + 1;
  }
  pending_.clear();
  out_.flush();
}

std::ofstream open_jsonl(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open JSONL output file: " + path);
  }
  return out;
}

}  // namespace fl::runtime
