// Crash-safe sweep harness shared by the bench drivers and the CLI.
//
// SweepSession bundles everything a resumable sweep needs around run_grid:
//   - a durable JSONL sink (JsonlWriter + fsync after every committed line)
//     with an atomic run-manifest header on fresh runs,
//   - --resume: scan the existing file, mark completed cells, skip them,
//   - SIGINT/SIGTERM → CancelToken so in-flight solves stop and the file
//     stays resumable,
//   - structured failure records for cells that exhausted their retries,
//   - the process exit code (0 / 1 on failures / 128+signo on interrupt).
//
// Driver shape:
//
//   auto args = parse_runner_args(argc, argv);
//   SweepSession session("table2", grid.size(), base_seed, args);
//   const auto base = [&](std::size_t i) {        // deterministic fields
//     JsonObject o;                               // shared by result and
//     o.field("cell", i).field("bench", "table2") // failure records
//         .field("n", grid[i].n).field("seed", grid[i].seed);
//     return o;
//   };
//   GridReport report = run_grid(grid.size(), session.grid_config(),
//       [&](const CellContext& ctx) {
//         results[ctx.index] = run_cell(grid[ctx.index], ctx);
//         if (interrupted) { session.note_interrupted(ctx.index); return; }
//         if (session.sink()) { auto o = base(ctx.index); ...;
//                               session.sink()->write(ctx.index, o.str()); }
//       });
//   print_table(...);
//   return session.finish(report, base);
//
// Interrupted cells write no record (note_interrupted unblocks the in-order
// sink), so --resume re-runs them; failed cells get a failure record
// ("status":"failed") and are NOT re-run — a terminal outcome, not a hole.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "runtime/cancel.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/signal.h"

namespace fl::runtime {

class SweepSession {
 public:
  // Opens the JSONL file named by `args` (append mode when resuming onto an
  // existing file, after validating its manifest against `bench` and
  // `grid_size`), writes + syncs the run header on fresh runs, and installs
  // the signal handler. Throws std::runtime_error on an unwritable path or
  // a manifest mismatch.
  SweepSession(std::string bench, std::size_t grid_size,
               std::uint64_t base_seed, RunnerArgs args);
  ~SweepSession();
  SweepSession(const SweepSession&) = delete;
  SweepSession& operator=(const SweepSession&) = delete;

  // nullptr when the sweep runs without --jsonl.
  JsonlSink* sink() { return sink_ ? &*sink_ : nullptr; }
  const RunnerArgs& args() const { return args_; }
  const CancelToken& cancel() const { return cancel_; }
  bool cancelled() const { return cancel_.cancelled(); }
  // Cells already completed in the resumed file (0 on fresh runs).
  std::size_t num_resumed() const { return resume_.num_completed; }

  // Grid execution config wired to this session: jobs/retries/cell budget
  // from the runner args, the signal-backed cancel token, and the resume
  // mask. Pass to run_grid(n, config, fn).
  GridConfig grid_config() const;

  // A cell observed cancellation and wrote no record: unblocks the in-order
  // sink so records of later cells are not held back.
  void note_interrupted(std::size_t index);

  // Writes a structured failure record ("status":"failed", "reason",
  // "attempt") for every kFailed cell — `record_base(i)` supplies the
  // deterministic coordinate fields, starting with "cell" — prints a
  // one-line outcome summary, drains + syncs the sink, and returns the
  // process exit code: 128+signo when interrupted, 1 when any cell failed,
  // 0 otherwise.
  int finish(const GridReport& report,
             const std::function<JsonObject(std::size_t)>& record_base);

 private:
  std::string bench_;
  std::size_t grid_size_;
  RunnerArgs args_;
  ResumeState resume_;
  CancelToken cancel_;
  std::optional<JsonlWriter> writer_;
  std::optional<JsonlSink> sink_;      // after writer_: flushed before sync fd closes
  std::optional<ScopedSignalHandler> signals_;  // last: uninstalled first
};

}  // namespace fl::runtime
