// Crash-safe sweep harness shared by the bench drivers and the CLI.
//
// SweepSession bundles everything a resumable sweep needs around run_grid:
//   - a durable JSONL sink (JsonlWriter + fsync after every committed line)
//     with an atomic run-manifest header on fresh runs,
//   - --resume: scan the existing file, mark completed cells, skip them,
//   - SIGINT/SIGTERM → CancelToken so in-flight solves stop and the file
//     stays resumable,
//   - structured failure records for cells that exhausted their retries,
//   - the process exit code (0 / 1 on failures / 128+signo on interrupt).
//
// Driver shape:
//
//   auto args = parse_runner_args(argc, argv);
//   SweepSession session("table2", grid.size(), base_seed, args);
//   const auto base = [&](std::size_t i) {        // deterministic fields
//     JsonObject o;                               // shared by result and
//     o.field("cell", i).field("bench", "table2") // failure records
//         .field("n", grid[i].n).field("seed", grid[i].seed);
//     return o;
//   };
//   GridReport report = run_grid(grid.size(), session.grid_config(),
//       [&](const CellContext& ctx) {
//         results[ctx.index] = run_cell(grid[ctx.index], ctx);
//         if (interrupted) { session.note_interrupted(ctx.index); return; }
//         if (session.sink()) { auto o = base(ctx.index); ...;
//                               session.sink()->write(ctx.index, o.str()); }
//       });
//   print_table(...);
//   return session.finish(report, base);
//
// Interrupted cells write no record (note_interrupted unblocks the in-order
// sink), so --resume re-runs them; failed cells get a failure record
// ("status":"failed") and are NOT re-run — a terminal outcome, not a hole.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "runtime/cancel.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/signal.h"

namespace fl::runtime {

class FaultInjector;

// Embedding knobs for hosts that are not a standalone sweep process. The
// serve daemon runs many SweepSessions inside one process that already owns
// the (process-global) signal handler: each job session gets the daemon's
// per-job cancel token instead of installing its own handler.
struct SweepSessionOptions {
  // Install the process-wide SIGINT/SIGTERM handler (standalone drivers).
  // Must be false when an enclosing component already owns it.
  bool install_signal_handler = true;
  // External cancellation source used instead of the session's own token
  // (the daemon's per-job token, pre-wired to its drain logic).
  const CancelToken* cancel = nullptr;
  // Fault injector for the durable writer and the grid (tests); nullptr =
  // the global FL_FAULT-configured one.
  const FaultInjector* faults = nullptr;
};

class SweepSession {
 public:
  // Opens the JSONL file named by `args` (append mode when resuming onto an
  // existing file, after validating its manifest against `bench` and
  // `grid_size`), writes + syncs the run header on fresh runs, and installs
  // the signal handler (unless `options` opts out). Throws
  // std::runtime_error on an unwritable path or a manifest mismatch.
  SweepSession(std::string bench, std::size_t grid_size,
               std::uint64_t base_seed, RunnerArgs args,
               SweepSessionOptions options = {});
  ~SweepSession();
  SweepSession(const SweepSession&) = delete;
  SweepSession& operator=(const SweepSession&) = delete;

  // nullptr when the sweep runs without --jsonl.
  JsonlSink* sink() { return sink_ ? &*sink_ : nullptr; }
  const RunnerArgs& args() const { return args_; }
  const CancelToken& cancel() const {
    return options_.cancel != nullptr ? *options_.cancel : cancel_;
  }
  bool cancelled() const { return cancel().cancelled(); }
  // Cells already completed in the resumed file (0 on fresh runs).
  std::size_t num_resumed() const { return resume_.num_completed; }

  // Grid execution config wired to this session: jobs/retries/cell budget
  // from the runner args, the signal-backed cancel token, and the resume
  // mask. Pass to run_grid(n, config, fn).
  GridConfig grid_config() const;

  // A cell observed cancellation and wrote no record: unblocks the in-order
  // sink so records of later cells are not held back.
  void note_interrupted(std::size_t index);

  // Writes a structured failure record ("status":"failed", "reason",
  // "attempt") for every kFailed cell — `record_base(i)` supplies the
  // deterministic coordinate fields, starting with "cell" — prints a
  // one-line outcome summary, drains + syncs the sink, and returns the
  // process exit code: 128+signo when interrupted, 1 when any cell failed,
  // 0 otherwise. A checkpoint write/fsync failure here (ENOSPC mid-drain)
  // is reported on stderr and forces exit code 1 — a sweep whose results
  // never became durable must not exit 0.
  int finish(const GridReport& report,
             const std::function<JsonObject(std::size_t)>& record_base);

 private:
  std::string bench_;
  std::size_t grid_size_;
  RunnerArgs args_;
  SweepSessionOptions options_;
  ResumeState resume_;
  CancelToken cancel_;
  std::optional<JsonlWriter> writer_;
  std::optional<JsonlSink> sink_;      // after writer_: flushed before sync fd closes
  std::optional<ScopedSignalHandler> signals_;  // last: uninstalled first
};

}  // namespace fl::runtime
