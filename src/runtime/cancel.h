// Cooperative cancellation for long-running jobs.
#pragma once

#include <atomic>

namespace fl::runtime {

// One-shot cancellation flag. The requesting side calls request(); workers
// poll cancelled() at iteration boundaries, or hand flag() to a component
// with its own polling loop (Solver::set_interrupt, AttackOptions::interrupt)
// so a solve in flight is cut short too. Relaxed ordering is enough: the
// flag carries no data, only "stop soon".
class CancelToken {
 public:
  void request() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  const std::atomic<bool>* flag() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fl::runtime
