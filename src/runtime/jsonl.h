// Thread-safe JSONL result sink for sweep drivers.
//
// Schema convention (documented in EXPERIMENTS.md): one JSON object per
// line; wall-clock fields carry an `_s` suffix (`wall_s`,
// `mean_iteration_s`) and are the only fields allowed to differ between two
// runs of the same seed grid — everything else must be a deterministic
// function of the grid coordinates, which is what the serial-vs-parallel
// determinism test asserts.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace fl::runtime {

// Builder for one JSONL record. Fields keep insertion order; keys are
// assumed to be plain identifiers (not escaped), values are escaped.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, bool value);
  JsonObject& field(std::string_view key, double value);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonObject& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return raw(key, std::to_string(static_cast<long long>(value)));
    } else {
      return raw(key, std::to_string(static_cast<unsigned long long>(value)));
    }
  }

  // Closes the object. The builder is spent afterwards.
  std::string str();

 private:
  JsonObject& raw(std::string_view key, std::string_view value);

  std::string buf_ = "{";
  bool first_ = true;
};

// Appends records to a stream in index order no matter which thread (or in
// which order) produced them: write(i, line) buffers until every line with a
// smaller index has been flushed. A parallel sweep therefore emits the same
// byte stream as a serial one, give or take the wall-clock field values.
class JsonlSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  ~JsonlSink() { flush(); }
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  // In-order append; `index` is the job's grid index, each used once.
  void write(std::size_t index, std::string line);
  // Immediate append for records outside any grid (e.g. a run header).
  void write_unordered(const std::string& line);
  // Drains records still waiting on a gap (jobs that never reported).
  void flush();

 private:
  std::ostream& out_;
  std::mutex mu_;
  std::size_t next_ = 0;
  std::map<std::size_t, std::string> pending_;
};

// Opens (truncates) a JSONL output file, throwing std::runtime_error when
// the path is unwritable — a sweep must not silently drop its results.
std::ofstream open_jsonl(const std::string& path);

}  // namespace fl::runtime
