// Thread-safe JSONL result sink for sweep drivers.
//
// Schema convention (documented in EXPERIMENTS.md): one JSON object per
// line; wall-clock fields carry an `_s` suffix (`wall_s`,
// `mean_iteration_s`) and are the only fields allowed to differ between two
// runs of the same seed grid — everything else must be a deterministic
// function of the grid coordinates, which is what the serial-vs-parallel
// determinism test asserts.
//
// Crash safety: JsonlWriter opens the file (optionally in append mode for
// --resume) and exposes sync() = flush + fsync; JsonlSink calls it after
// every committed line, so a record that reached the file survives a crash
// or OOM-kill. scan_jsonl_resume() parses a previous run's file back into
// a completed-cell mask keyed by each record's `cell` field.
//
// Failure surfacing: a checkpoint that silently stops being durable is worse
// than a crash, so JsonlWriter::sync() throws WriteFault (fault.h) when the
// stream flush or the fsync reports an error (ENOSPC, EIO) — and consults
// the fault injector first (FL_FAULT="write:<seq>:ewrite") so the disk-full
// path is deterministically testable. Callers let the exception fail the
// producing cell/job; SweepSession::finish turns it into a nonzero exit.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fl::runtime {

class FaultInjector;

// Builder for one JSONL record. Fields keep insertion order; keys are
// assumed to be plain identifiers (not escaped), values are escaped.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, bool value);
  JsonObject& field(std::string_view key, double value);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonObject& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return raw(key, std::to_string(static_cast<long long>(value)));
    } else {
      return raw(key, std::to_string(static_cast<unsigned long long>(value)));
    }
  }

  // Flat integer array value ("[4,8,16]") — the only non-scalar shape the
  // repo's JSONL records use (job specs in the serve journal).
  JsonObject& field(std::string_view key, std::span<const int> values);

  // Appends every field of `other` (a still-open builder — str() not yet
  // called). Lets a component merge fields produced elsewhere, e.g. the
  // serve scheduler folding runner-supplied fields into a terminal record.
  JsonObject& merge(const JsonObject& other);

  // True while no field has been added.
  bool empty() const { return first_; }

  // Closes the object. The builder is spent afterwards.
  std::string str();

 private:
  JsonObject& raw(std::string_view key, std::string_view value);

  std::string buf_ = "{";
  bool first_ = true;
};

// Appends records to a stream in index order no matter which thread (or in
// which order) produced them: write(i, line) buffers until every line with a
// smaller index has been flushed. A parallel sweep therefore emits the same
// byte stream as a serial one, give or take the wall-clock field values.
class JsonlSink {
 public:
  // `sync` (optional) is invoked — with the sink's lock held — every time at
  // least one buffered line was committed to the stream; a durable sink
  // passes JsonlWriter::sync so committed records survive a crash.
  explicit JsonlSink(std::ostream& out, std::function<void()> sync = {})
      : out_(out), sync_(std::move(sync)) {}
  // Best-effort drain: a sync failure during destruction (e.g. the disk
  // filled while a failure record was being appended) cannot be surfaced as
  // an exception — callers that need the error must call flush() themselves
  // first (SweepSession::finish does).
  ~JsonlSink() {
    try {
      flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  // In-order append; `index` is the job's grid index, each used once.
  void write(std::size_t index, std::string line);
  // Marks `index` as never-coming (cell skipped by --resume): later indices
  // are not held back waiting for it. Each index is either written or
  // skipped, never both.
  void skip(std::size_t index);
  // Immediate append for records outside any grid (e.g. a run header).
  void write_unordered(const std::string& line);
  // Drains records still waiting on a gap (jobs that never reported).
  void flush();

 private:
  void drain_ready_locked();  // emits pending lines / skips at next_

  std::ostream& out_;
  std::function<void()> sync_;
  std::mutex mu_;
  std::size_t next_ = 0;
  std::map<std::size_t, std::string> pending_;
  std::set<std::size_t> skipped_;
};

// Durable file-backed target for a JsonlSink: owns the output stream plus a
// raw descriptor on the same file so sync() can flush user-space buffers
// AND fsync the kernel page cache — the property the --resume workflow
// relies on after a SIGKILL/OOM-kill.
class JsonlWriter {
 public:
  // Truncates by default; append = true continues an existing file
  // (--resume). Throws std::runtime_error when the path is unwritable —
  // a sweep must not silently drop its results. `faults` overrides the
  // global FL_FAULT injector for the write-failure site (tests); nullptr
  // uses FaultInjector::global().
  explicit JsonlWriter(const std::string& path, bool append = false,
                       const FaultInjector* faults = nullptr);
  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  std::ostream& stream() { return out_; }
  // Flush + fsync. Throws WriteFault when either fails (a record that never
  // became durable must not look committed) or when a write:<seq>:ewrite
  // fault covers this sync. Safe to call from the sink's sync hook; the
  // destructor calls it too but demotes failures to stderr (destructors
  // must not throw).
  void sync();
  // Global 0-based counter of sync() calls across every JsonlWriter in the
  // process — the sequence number write-fault specs select on. Exposed so
  // tests can compute which sync a spec will hit.
  static std::uint64_t sync_sequence();

 private:
  std::ofstream out_;
  std::string path_;
  int fd_ = -1;
  const FaultInjector* faults_ = nullptr;
};

// Minimal field extraction for the repo's own (flat, non-nested) JSONL
// records; enough for resume scans and tests, not a general JSON parser.
std::optional<long long> json_int_field(std::string_view line,
                                        std::string_view key);
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key);
std::optional<double> json_double_field(std::string_view line,
                                        std::string_view key);
// Parses a flat integer array value ("[4,8,16]"; "[]" yields an empty
// vector). Anything else under the key yields nullopt.
std::optional<std::vector<int>> json_int_array_field(std::string_view line,
                                                     std::string_view key);
std::optional<bool> json_bool_field(std::string_view line,
                                    std::string_view key);

// What scan_jsonl_resume() recovered from a previous (possibly interrupted)
// run of the same sweep.
struct ResumeState {
  std::vector<bool> completed;     // by grid index; true = skip on resume
  std::size_t num_completed = 0;   // popcount of `completed`
  std::size_t num_failed = 0;      // completed cells whose record is a
                                   // structured failure record
};

// Parses `path` and marks every grid index that already has a record (a
// `"cell":i` field). Failure records count as completed — a cell that
// exhausted its retries is a terminal outcome, not a hole. Validates the
// run-manifest header when present: `bench` and `grid_cells` must match, or
// the scan throws std::runtime_error (resuming a different sweep onto this
// file would corrupt it). A missing file yields an empty state (fresh run).
ResumeState scan_jsonl_resume(const std::string& path, std::string_view bench,
                              std::size_t grid_size);

// The atomic run-manifest header every logging sweep writes (and syncs)
// before its first cell record; scan_jsonl_resume() checks it on --resume.
std::string run_header_line(std::string_view bench, std::size_t grid_size,
                            std::uint64_t base_seed);

// Opens (truncates, or appends when `append`) a JSONL output file, throwing
// std::runtime_error when the path is unwritable — a sweep must not
// silently drop its results. Prefer JsonlWriter for crash-safe sweeps; this
// remains for plain stream consumers.
std::ofstream open_jsonl(const std::string& path, bool append = false);

}  // namespace fl::runtime
