#include "runtime/signal.h"

#include <atomic>
#include <csignal>
#include <stdexcept>

namespace fl::runtime {

namespace {

// Signal handlers may only touch lock-free atomics; the CancelToken's flag
// qualifies (std::atomic<bool> is lock-free on every supported target).
std::atomic<CancelToken*> g_token{nullptr};
std::atomic<int> g_last_signal{0};

void on_signal(int signo) {
  g_last_signal.store(signo, std::memory_order_relaxed);
  if (CancelToken* token = g_token.load(std::memory_order_relaxed)) {
    token->request();
  }
  // One shot: the next signal of this kind gets the default disposition
  // (process death), so a stuck sweep can still be killed with Ctrl-C.
  std::signal(signo, SIG_DFL);
}

}  // namespace

ScopedSignalHandler::ScopedSignalHandler(CancelToken& token) {
  CancelToken* expected = nullptr;
  if (!g_token.compare_exchange_strong(expected, &token)) {
    throw std::logic_error(
        "ScopedSignalHandler: another instance is already installed");
  }
  g_last_signal.store(0, std::memory_order_relaxed);
  prev_int_ = std::signal(SIGINT, on_signal);
  prev_term_ = std::signal(SIGTERM, on_signal);
}

ScopedSignalHandler::~ScopedSignalHandler() {
  std::signal(SIGINT, prev_int_ == SIG_ERR ? SIG_DFL : prev_int_);
  std::signal(SIGTERM, prev_term_ == SIG_ERR ? SIG_DFL : prev_term_);
  g_token.store(nullptr, std::memory_order_relaxed);
}

int ScopedSignalHandler::last_signal() {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace fl::runtime
