// Sweep-grid execution: the one entry point every bench driver and the CLI
// use to fan (benchmark × scheme × key-width × seed) grids over workers.
//
//   auto args = fl::runtime::parse_runner_args(argc, argv);  // --jobs/--jsonl
//   fl::runtime::run_grid(grid.size(), args.jobs,
//                         [&](std::size_t i) { results[i] = run_cell(grid[i]); });
//
// jobs <= 1 runs the plain serial loop on the calling thread, in index
// order — the reference behavior the parallel path must reproduce
// field-for-field (modulo wall-clock) for identical seeds.
//
// The crash-safe entry point is the GridConfig overload: per-cell fault
// isolation (a throwing cell becomes a structured CellOutcome instead of
// poisoning the grid), bounded retry with budget escalation, a resume mask
// of already-completed cells, cooperative cancellation, and deterministic
// fault injection (fault.h) for testing all of the above.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "runtime/cancel.h"

namespace fl::runtime {

class FaultInjector;

// Worker count resolution: `requested` if > 0, else the FL_JOBS environment
// variable, else std::thread::hardware_concurrency() (min 1). Throws
// std::invalid_argument when FL_JOBS is set but not a positive integer.
int resolve_jobs(int requested = 0);

// Strict whole-string flag parsing, shared by every subcommand that takes
// numeric knobs (sweep runners, the serve daemon). Junk ("", "4x", "1e3"),
// out-of-range and overflowing values throw std::invalid_argument naming
// the flag and the accepted range — a long-running job must not silently
// start with a zero budget because "10s" parsed as 0.
long long parse_int_flag(std::string_view what, std::string_view text,
                         long long min_value,
                         long long max_value = (1LL << 62));
// Seconds >= 0; rejects negatives, junk, and non-finite values ("inf",
// "nan" — an infinite budget is spelled 0, not inf).
double parse_seconds_flag(std::string_view what, std::string_view text);

// Flags every sweep driver shares. parse_runner_args strips the flags it
// recognizes out of argv (leaving positional arguments for the driver),
// validates their values (std::invalid_argument on junk — a sweep must not
// silently run with the wrong worker count or budget), and resolves the
// worker count:
//   --jobs N | --jobs=N            worker threads (env FL_JOBS; 0 = auto)
//   --jsonl PATH | --jsonl=PATH    JSONL result file (env FL_JSONL)
//   --resume                       append to --jsonl, skip completed cells
//                                  (env FL_RESUME=1)
//   --retries N | --retries=N      per-cell retry budget on failure
//                                  (env FL_RETRIES, default 0)
//   --cell-timeout S               per-cell-attempt wall budget in seconds,
//                                  escalated 2x per retry (env
//                                  FL_CELL_TIMEOUT_S, 0 = none)
//   --mem-mb M | --mem-mb=M        solver memory budget per cell, MB (env
//                                  FL_MEM_MB, 0 = unlimited)
//   --trace PATH | --trace=PATH    per-DIP-iteration JSONL trace file (env
//                                  FL_TRACE; see attacks::JsonlTraceSink)
struct RunnerArgs {
  int jobs = 1;
  std::string jsonl_path;
  bool resume = false;
  int retries = 0;
  double cell_timeout_s = 0.0;
  std::size_t memory_limit_mb = 0;
  std::string trace_path;
};
RunnerArgs parse_runner_args(int& argc, char** argv);

// Per-attempt view handed to each grid cell by the GridConfig overload.
struct CellContext {
  std::size_t index = 0;  // grid index
  int attempt = 0;        // 0-based; > 0 on retries
  // This attempt's wall budget (0 = unlimited). Cells running an attack
  // should cap their own timeout with effective_timeout() and forward
  // `interrupt` so a cancelled sweep cuts in-flight solves short.
  double timeout_s = 0.0;
  std::chrono::steady_clock::time_point start{};
  const std::atomic<bool>* interrupt = nullptr;

  // Budget elapsed or cancellation requested. Poll point for cooperative
  // cells (and for FaultKind::kStall).
  bool expired() const;
  // min(timeout_s, fallback) over the non-zero ones.
  double effective_timeout(double fallback) const;
};

// Terminal outcome of one grid cell under the GridConfig overload.
struct CellOutcome {
  enum class Status : std::uint8_t {
    kOk,         // fn returned normally
    kFailed,     // every attempt threw; `error` is the last what()
    kSkipped,    // masked off by GridConfig::completed (--resume)
    kCancelled,  // cancellation arrived before/while the cell ran
  };
  Status status = Status::kOk;
  int attempts = 0;    // attempts actually made
  std::string error;   // last failure message (kFailed)
  std::exception_ptr exception;  // last failure, for rethrow by callers
};
const char* to_string(CellOutcome::Status status);

struct GridConfig {
  int jobs = 1;
  // Per-cell retry budget: a cell that throws is retried up to `retries`
  // more times before its failure is recorded. Each retry escalates the
  // attempt's wall budget by `retry_backoff`.
  int retries = 0;
  double cell_timeout_s = 0.0;  // first attempt's budget (0 = none)
  double retry_backoff = 2.0;   // budget multiplier per retry
  // Cooperative cancellation (signal handler, tests). Cells not yet started
  // when it fires are marked kCancelled; in-flight cells see it through
  // CellContext::interrupt.
  const CancelToken* cancel = nullptr;
  // Resume mask: cells marked true are not run (kSkipped).
  std::vector<bool> completed;
  // Fault injector consulted at every cell attempt; nullptr = the global
  // FL_FAULT-configured injector.
  const FaultInjector* faults = nullptr;
};

// What a GridConfig run produced, one outcome per cell. Exceptions never
// escape run_grid in this form — `first_error` keeps the completion-order
// first failure for callers that want legacy rethrow semantics.
struct GridReport {
  std::vector<CellOutcome> cells;
  std::exception_ptr first_error;
  bool cancelled = false;
  std::size_t ok = 0, failed = 0, skipped = 0, cancelled_cells = 0;
};

// Crash-safe grid execution. Runs fn for every unmasked cell on
// `config.jobs` workers (serially when <= 1), retrying failed cells per the
// config, and reports per-cell outcomes instead of throwing.
GridReport run_grid(std::size_t n, const GridConfig& config,
                    const std::function<void(const CellContext&)>& fn);

// Legacy entry point. Runs fn(0), ..., fn(n-1) on `jobs` workers (serially
// when jobs <= 1). Blocks until the whole grid finished. Serial runs throw
// the first exception immediately (reference loop); parallel runs drain the
// grid, report every suppressed cell failure (index + what()) to stderr,
// then rethrow the first exception by completion order.
void run_grid(std::size_t n, int jobs,
              const std::function<void(std::size_t)>& fn);

}  // namespace fl::runtime
