// Sweep-grid execution: the one entry point every bench driver and the CLI
// use to fan (benchmark × scheme × key-width × seed) grids over workers.
//
//   auto args = fl::runtime::parse_runner_args(argc, argv);  // --jobs/--jsonl
//   fl::runtime::run_grid(grid.size(), args.jobs,
//                         [&](std::size_t i) { results[i] = run_cell(grid[i]); });
//
// jobs <= 1 runs the plain serial loop on the calling thread, in index
// order — the reference behavior the parallel path must reproduce
// field-for-field (modulo wall-clock) for identical seeds.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace fl::runtime {

// Worker count resolution: `requested` if > 0, else the FL_JOBS environment
// variable, else std::thread::hardware_concurrency() (min 1).
int resolve_jobs(int requested = 0);

// Flags every sweep driver shares. parse_runner_args strips the flags it
// recognizes out of argv (leaving positional arguments for the driver) and
// resolves the worker count:
//   --jobs N | --jobs=N      worker threads (env fallback FL_JOBS)
//   --jsonl PATH | --jsonl=PATH   JSONL result file (env fallback FL_JSONL)
struct RunnerArgs {
  int jobs = 1;
  std::string jsonl_path;
};
RunnerArgs parse_runner_args(int& argc, char** argv);

// Runs fn(0), ..., fn(n-1) on `jobs` workers (serially when jobs <= 1).
// Blocks until the whole grid finished. If any job throws, the first
// exception (by completion order) is rethrown after the grid drains; the
// remaining jobs still run.
void run_grid(std::size_t n, int jobs,
              const std::function<void(std::size_t)>& fn);

}  // namespace fl::runtime
