// Deterministic per-job seed derivation for parallel sweeps.
//
// Every job in a sweep grid derives its RNG seed by hashing its grid
// coordinates into a base seed, never by drawing from a shared generator.
// Job (i, j) therefore gets the same seed whether it runs first or last,
// serially or on 16 workers — the property the serial/parallel determinism
// guarantee rests on.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace fl::runtime {

// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom number
// generators"): a bijective 64-bit mixer with full avalanche.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Folds grid coordinates into `base`. Order-sensitive: {a, b} and {b, a}
// yield different seeds, so (topology, n) and (n, topology) don't collide.
constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::initializer_list<std::uint64_t> coords) {
  std::uint64_t s = splitmix64(base);
  for (const std::uint64_t c : coords) s = splitmix64(s ^ splitmix64(c));
  return s;
}

}  // namespace fl::runtime
