#include "runtime/sweep.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <utility>

#include "runtime/fault.h"

namespace fl::runtime {

SweepSession::SweepSession(std::string bench, std::size_t grid_size,
                           std::uint64_t base_seed, RunnerArgs args,
                           SweepSessionOptions options)
    : bench_(std::move(bench)),
      grid_size_(grid_size),
      args_(std::move(args)),
      options_(options) {
  resume_.completed.assign(grid_size_, false);
  if (!args_.jsonl_path.empty()) {
    // Resume only has meaning when there is a file to resume; a missing
    // file degrades to a fresh run (same flags work for the first launch
    // and every relaunch).
    const bool have_file =
        args_.resume && std::ifstream(args_.jsonl_path).good();
    if (have_file) {
      resume_ = scan_jsonl_resume(args_.jsonl_path, bench_, grid_size_);
    }
    writer_.emplace(args_.jsonl_path, /*append=*/have_file, options_.faults);
    sink_.emplace(writer_->stream(), [w = &*writer_] { w->sync(); });
    if (!have_file) {
      // Manifest header first, made durable before any cell runs, so a
      // crash at any later point leaves a resumable file.
      sink_->write_unordered(run_header_line(bench_, grid_size_, base_seed));
    }
    for (std::size_t i = 0; i < resume_.completed.size(); ++i) {
      if (resume_.completed[i]) sink_->skip(i);
    }
  }
  if (options_.install_signal_handler) signals_.emplace(cancel_);
}

SweepSession::~SweepSession() = default;

GridConfig SweepSession::grid_config() const {
  GridConfig config;
  config.jobs = args_.jobs;
  config.retries = args_.retries;
  config.cell_timeout_s = args_.cell_timeout_s;
  config.cancel = &cancel();
  config.completed = resume_.completed;
  config.faults = options_.faults;
  return config;
}

void SweepSession::note_interrupted(std::size_t index) {
  if (sink_) sink_->skip(index);
}

int SweepSession::finish(
    const GridReport& report,
    const std::function<JsonObject(std::size_t)>& record_base) {
  // A sink write below may itself hit the failure it is reporting (the disk
  // that swallowed a cell's record is still full). Keep going: every broken
  // cell is still named on stderr, and the lost-durability exit code wins.
  bool sink_broken = false;
  const auto sink_write = [&](std::size_t index, std::string line) {
    if (!sink_ || sink_broken) return;
    try {
      sink_->write(index, std::move(line));
    } catch (const std::exception& e) {
      sink_broken = true;
      std::fprintf(stderr, "%s: checkpoint write failed: %s\n", bench_.c_str(),
                   e.what());
    }
  };

  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellOutcome& cell = report.cells[i];
    if (cell.status != CellOutcome::Status::kFailed) continue;
    JsonObject o = record_base(i);
    o.field("status", "failed")
        .field("reason", cell.error)
        .field("attempt", cell.attempts);
    sink_write(i, o.str());
    std::fprintf(stderr, "%s: cell %zu failed after %d attempt(s): %s\n",
                 bench_.c_str(), i, cell.attempts, cell.error.c_str());
  }
  if (sink_ && !sink_broken) {
    try {
      sink_->flush();
    } catch (const std::exception& e) {
      sink_broken = true;
      std::fprintf(stderr, "%s: checkpoint flush failed: %s\n", bench_.c_str(),
                   e.what());
    }
  }

  std::fprintf(stderr,
               "%s: %zu ok, %zu failed, %zu resumed, %zu cancelled of %zu "
               "cells%s\n",
               bench_.c_str(), report.ok, report.failed, report.skipped,
               report.cancelled_cells, report.cells.size(),
               report.cancelled ? " (interrupted — rerun with --resume)" : "");

  if (report.cancelled) {
    const int signo = ScopedSignalHandler::last_signal();
    return 128 + (signo > 0 ? signo : SIGINT);
  }
  return (report.failed > 0 || sink_broken) ? 1 : 0;
}

}  // namespace fl::runtime
