// Graceful SIGINT/SIGTERM shutdown for sweep drivers.
//
// A ScopedSignalHandler routes the first SIGINT/SIGTERM to a CancelToken:
// in-flight solves observe the token (AttackOptions::interrupt →
// Solver::set_interrupt) and return kUndef/kInterrupted, the sweep stops
// dispatching cells, the JSONL sink drains and fsyncs on destruction, and
// the process exits with the conventional 128+signo — leaving the result
// file resumable with --resume. The handler resets to SIG_DFL after the
// first signal, so a second Ctrl-C kills the process immediately (the
// escape hatch when a solve ignores the token).
#pragma once

#include "runtime/cancel.h"

namespace fl::runtime {

class ScopedSignalHandler {
 public:
  // Installs handlers for SIGINT and SIGTERM that request() `token`. Only
  // one instance may be live at a time (signal handlers are process-global);
  // a second concurrent instance throws std::logic_error.
  explicit ScopedSignalHandler(CancelToken& token);
  // Restores the previous handlers.
  ~ScopedSignalHandler();
  ScopedSignalHandler(const ScopedSignalHandler&) = delete;
  ScopedSignalHandler& operator=(const ScopedSignalHandler&) = delete;

  // The signal that fired, or 0. Use 128 + last_signal() as the exit code
  // of an interrupted sweep.
  static int last_signal();

 private:
  void (*prev_int_)(int) = nullptr;
  void (*prev_term_)(int) = nullptr;
};

}  // namespace fl::runtime
