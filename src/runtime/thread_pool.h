// Fixed-size thread pool with a FIFO job queue.
//
// The pool is deliberately minimal: submit() enqueues a closure, wait_idle()
// blocks until the queue is empty and every worker is resting. Sweep drivers
// should prefer run_grid() (runner.h), which adds the serial fallback and
// exception propagation on top.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fl::runtime {

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers immediately.
  explicit ThreadPool(int num_threads);
  // Drains the queue (pending jobs still run), then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  // Blocks until the queue is empty and no job is executing.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on submit / shutdown
  std::condition_variable idle_cv_;   // signalled when a worker finishes a job
  std::size_t active_ = 0;            // jobs currently executing
  bool stop_ = false;
};

}  // namespace fl::runtime
