// Tseytin transformation of netlists into CNF (Table 1 of the paper).
//
// The encoder writes clauses into a ClauseSink so the same code can target
// the incremental CDCL solver (attacks) or a plain Cnf container (DIMACS
// export, the clause/variable-ratio measurements of Fig. 7).
//
// With `fold_constants` (acyclic netlists only) the encoder propagates
// constants and buffers/inverters without allocating variables — essential
// for the SAT attack, where each DIP adds two circuit copies with all
// primary inputs fixed.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sat/solver.h"
#include "sat/types.h"

namespace fl::cnf {

// Abstract destination for fresh variables and clauses.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  virtual sat::Var new_var() = 0;
  virtual void add_clause(sat::Clause clause) = 0;
};

class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(sat::SolverIface& solver) : solver_(solver) {}
  sat::Var new_var() override { return solver_.new_var(); }
  void add_clause(sat::Clause clause) override {
    solver_.add_clause(std::move(clause));
  }

 private:
  sat::SolverIface& solver_;
};

class CnfSink final : public ClauseSink {
 public:
  explicit CnfSink(sat::Cnf& cnf) : cnf_(cnf) {}
  sat::Var new_var() override { return cnf_.new_var(); }
  void add_clause(sat::Clause clause) override { cnf_.add(std::move(clause)); }

 private:
  sat::Cnf& cnf_;
};

// A net's CNF representation: a literal, or a folded-away constant.
struct NetLit {
  enum class Kind : std::uint8_t { kLit, kConst0, kConst1 };
  Kind kind = Kind::kConst0;
  sat::Lit lit;

  static NetLit constant(bool v) {
    NetLit n;
    n.kind = v ? Kind::kConst1 : Kind::kConst0;
    return n;
  }
  static NetLit of(sat::Lit l) {
    NetLit n;
    n.kind = Kind::kLit;
    n.lit = l;
    return n;
  }
  bool is_const() const { return kind != Kind::kLit; }
  bool const_value() const { return kind == Kind::kConst1; }
  NetLit operator~() const {
    if (is_const()) return constant(!const_value());
    return of(~lit);
  }
};

struct EncodeOptions {
  // Requires an acyclic netlist; cyclic netlists are encoded gate-per-var.
  bool fold_constants = true;
  // If non-empty: primary inputs take these constant values (size must equal
  // num_inputs()).
  std::vector<bool> fixed_inputs;  // empty = free inputs
  // With fixed_inputs: allocate input variables and pin them with unit
  // clauses instead of substituting constants. This is what naive CNF
  // generators (the paper's MiniSAT-based tooling) emit, and is the mode
  // the Fig. 7 clauses/variables measurements are defined over.
  bool inputs_as_unit_clauses = false;
  // If non-empty: reuse these solver variables for the key inputs instead of
  // allocating fresh ones (size must equal num_keys()).
  std::span<const sat::Var> shared_key_vars = {};
  // If non-empty: reuse these solver variables for the primary inputs (size
  // must equal num_inputs()). Miter constructions encode two copies of a
  // circuit over the *same* input vector; sharing the variables directly is
  // both smaller and propagates better than fresh variables chained with
  // pairwise equality clauses. Mutually exclusive with fixed_inputs.
  std::span<const sat::Var> shared_input_vars = {};
  // Cone-restricted encode (netlist::KeyConePartition): `frontier_lits`
  // non-empty selects the mode. Only the gates in `cone_topo` (topologically
  // ordered, sources excluded) are encoded; every other net — primary
  // inputs included — takes its value from `frontier_lits`, indexed by
  // GateId: a literal of a previously encoded copy (miter copies), or a
  // constant swept out of the fixed region by simulation (DIP constraints).
  // Key variables are allocated (or shared) as usual and overwrite the key
  // gates' frontier entries. frontier_lits.size() must equal num_gates();
  // input_vars stays all-kNullVar. Mutually exclusive with fixed_inputs /
  // inputs_as_unit_clauses / shared_input_vars / restrict_topo, and
  // requires fold_constants.
  std::span<const netlist::GateId> cone_topo = {};
  std::span<const NetLit> frontier_lits = {};
  // Support-restricted full encode: inputs and keys get variables as usual,
  // but only the gates in `restrict_topo` (topologically ordered, sources
  // excluded) are walked; unlisted nets keep const-0. Sound when the listed
  // set is fanin-closed and unlisted nets are read only by unlisted gates
  // and don't-care output ports (KeyConePartition::support_topo()).
  // Requires fold_constants and an acyclic netlist.
  std::span<const netlist::GateId> restrict_topo = {};
  // Drop logic that cannot reach a non-constant output. The encoder runs a
  // shadow fold pass first (no clauses emitted), marks the fanin cone of
  // every output whose folded value stayed symbolic, and only emits
  // variables/clauses for marked gates. Tseytin definitions outside that
  // cone are a pure definitional extension — they never constrain the
  // inputs/keys — so satisfiability and the model projection onto
  // input/key/output variables are unchanged. Used for DIP constraint
  // copies, where constant inputs mask almost all key-dependent logic off
  // the pinned outputs. `net` entries of pruned gates are unspecified.
  // Requires fold_constants and an acyclic netlist.
  bool prune_dead_logic = false;
};

struct EncodedCircuit {
  std::vector<NetLit> net;           // indexed by GateId
  std::vector<sat::Var> input_vars;  // kNullVar when fixed
  std::vector<sat::Var> key_vars;    // shared or fresh
  std::vector<NetLit> outputs;       // per output port
  std::size_t vars_added = 0;
  std::size_t clauses_added = 0;
};

// Throws std::invalid_argument on size mismatches or if a cyclic netlist is
// combined with fixed inputs that cannot be folded (cyclic encoding simply
// disables folding; it never throws for cyclicity alone).
EncodedCircuit encode(const netlist::Netlist& netlist, ClauseSink& sink,
                      const EncodeOptions& options = {});

// Standalone CNF of a netlist (all inputs/keys free). Used for ratio
// measurements and DIMACS export.
sat::Cnf to_cnf(const netlist::Netlist& netlist);

// Emits "XOR/OR difference" logic: a literal that is true iff the two output
// vectors differ. Both vectors must have equal size >= 1; constants fold.
NetLit encode_difference(std::span<const NetLit> a, std::span<const NetLit> b,
                         ClauseSink& sink);

// Free-standing expression builders (constants fold; vars allocated lazily).
// Used by attacks that synthesize side conditions (e.g. CycSAT's
// no-structural-cycle clauses) directly over existing solver variables.
NetLit emit_and(ClauseSink& sink, std::vector<NetLit> terms);
NetLit emit_or(ClauseSink& sink, std::vector<NetLit> terms);
NetLit emit_xor(ClauseSink& sink, NetLit a, NetLit b);
// Adds clauses asserting `lit` is true (no-op for const-1; empty clause,
// i.e. UNSAT, for const-0).
void assert_true(ClauseSink& sink, NetLit lit);

}  // namespace fl::cnf
