#include "cnf/tseytin.h"

#include <algorithm>
#include <stdexcept>

namespace fl::cnf {

using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using sat::Lit;
using sat::Var;

namespace {

class Encoder {
 public:
  Encoder(ClauseSink& sink, EncodedCircuit& out) : sink_(sink), out_(out) {}

  Var fresh() {
    ++out_.vars_added;
    return sink_.new_var();
  }

  // Adds a clause over NetLits: const-1 literals satisfy the clause (it is
  // dropped), const-0 literals are removed.
  void emit(std::initializer_list<NetLit> lits) {
    sat::Clause clause;
    for (const NetLit& n : lits) {
      if (n.is_const()) {
        if (n.const_value()) return;  // satisfied
        continue;                     // falsified literal drops out
      }
      clause.push_back(n.lit);
    }
    ++out_.clauses_added;
    sink_.add_clause(std::move(clause));
  }

  void emit_vec(sat::Clause clause) {
    ++out_.clauses_added;
    sink_.add_clause(std::move(clause));
  }

  // out <-> AND(fanins) / OR(fanins), with `invert_inputs` for the OR dual.
  void define_and(NetLit out, std::span<const NetLit> fanins) {
    // out -> f_i, and (AND f_i) -> out.
    for (const NetLit& f : fanins) emit({~out, f});
    // clause: {~f_0, ..., ~f_k, out}
    sat::Clause big;
    bool satisfied = false;
    for (const NetLit& f : fanins) {
      const NetLit nf = ~f;
      if (nf.is_const()) {
        if (nf.const_value()) {
          satisfied = true;
          break;
        }
        continue;
      }
      big.push_back(nf.lit);
    }
    if (!satisfied) {
      if (!out.is_const()) {
        big.push_back(out.lit);
      } else if (out.const_value()) {
        return;  // clause satisfied by constant out
      }
      emit_vec(std::move(big));
    }
  }

  void define_or(NetLit out, std::span<const NetLit> fanins) {
    // OR(f) = ~AND(~f): define ~out <-> AND(~f_i).
    std::vector<NetLit> inv;
    inv.reserve(fanins.size());
    for (const NetLit& f : fanins) inv.push_back(~f);
    define_and(~out, inv);
  }

  void define_xor(NetLit out, NetLit a, NetLit b) {
    emit({~a, ~b, ~out});
    emit({a, b, ~out});
    emit({a, ~b, out});
    emit({~a, b, out});
  }

  void define_mux(NetLit out, NetLit s, NetLit a, NetLit b) {
    // out = s ? b : a  (Table 1: C = A·~S + B·S)
    emit({s, ~a, out});
    emit({s, a, ~out});
    emit({~s, ~b, out});
    emit({~s, b, ~out});
  }

  void define_equal(NetLit out, NetLit in) {
    emit({~out, in});
    emit({out, ~in});
  }

  // ---- folding constructors (return a NetLit, allocate vars lazily) ----

  NetLit make_and(std::vector<NetLit> fanins, bool negate_out) {
    std::vector<NetLit> lits;
    for (const NetLit& f : fanins) {
      if (f.is_const()) {
        if (!f.const_value()) return NetLit::constant(negate_out);
        continue;  // AND with 1 is identity
      }
      lits.push_back(f);
    }
    if (lits.empty()) return NetLit::constant(!negate_out);
    if (lits.size() == 1) return negate_out ? ~lits[0] : lits[0];
    const NetLit out = NetLit::of(sat::pos(fresh()));
    define_and(out, lits);
    return negate_out ? ~out : out;
  }

  NetLit make_or(std::vector<NetLit> fanins, bool negate_out) {
    for (NetLit& f : fanins) f = ~f;
    return ~make_and(std::move(fanins), negate_out);
  }

  NetLit make_xor2(NetLit a, NetLit b) {
    if (a.is_const()) return a.const_value() ? ~b : b;
    if (b.is_const()) return b.const_value() ? ~a : a;
    if (a.lit == b.lit) return NetLit::constant(false);
    if (a.lit == ~b.lit) return NetLit::constant(true);
    const NetLit out = NetLit::of(sat::pos(fresh()));
    define_xor(out, a, b);
    return out;
  }

  NetLit make_xor(std::span<const NetLit> fanins, bool negate_out) {
    NetLit acc = fanins[0];
    for (std::size_t i = 1; i < fanins.size(); ++i) {
      acc = make_xor2(acc, fanins[i]);
    }
    return negate_out ? ~acc : acc;
  }

  NetLit make_mux(NetLit s, NetLit a, NetLit b) {
    if (s.is_const()) return s.const_value() ? b : a;
    if (a.is_const() && b.is_const()) {
      if (a.const_value() == b.const_value()) return a;
      return b.const_value() ? s : ~s;
    }
    if (!a.is_const() && !b.is_const() && a.lit == b.lit) return a;
    if (a.is_const()) {
      // out = s ? b : const
      return a.const_value() ? make_or({~s, b}, false)   // ~s | b
                             : make_and({s, b}, false);  // s & b
    }
    if (b.is_const()) {
      return b.const_value() ? make_or({s, a}, false)     // s | a
                             : make_and({~s, a}, false);  // ~s & a
    }
    const NetLit out = NetLit::of(sat::pos(fresh()));
    define_mux(out, s, a, b);
    return out;
  }

  NetLit fold_gate(const Gate& gate, std::vector<NetLit> fan) {
    switch (gate.type) {
      case GateType::kBuf: return fan[0];
      case GateType::kNot: return ~fan[0];
      case GateType::kAnd: return make_and(std::move(fan), false);
      case GateType::kNand: return make_and(std::move(fan), true);
      case GateType::kOr: return make_or(std::move(fan), false);
      case GateType::kNor: return make_or(std::move(fan), true);
      case GateType::kXor: return make_xor(fan, false);
      case GateType::kXnor: return make_xor(fan, true);
      case GateType::kMux: return make_mux(fan[0], fan[1], fan[2]);
      default: throw std::logic_error("fold_gate: unexpected source gate");
    }
  }

  // Non-folding: `out` is a pre-allocated variable; emit defining clauses.
  void define_gate(NetLit out, const Gate& gate, std::span<const NetLit> fan) {
    switch (gate.type) {
      case GateType::kBuf:
        define_equal(out, fan[0]);
        return;
      case GateType::kNot:
        define_equal(out, ~fan[0]);
        return;
      case GateType::kAnd:
        define_and(out, fan);
        return;
      case GateType::kNand:
        define_and(~out, fan);
        return;
      case GateType::kOr:
        define_or(out, fan);
        return;
      case GateType::kNor:
        define_or(~out, fan);
        return;
      case GateType::kXor:
      case GateType::kXnor: {
        NetLit acc = fan[0];
        for (std::size_t i = 1; i + 1 < fan.size(); ++i) {
          const NetLit aux = NetLit::of(sat::pos(fresh()));
          define_xor(aux, acc, fan[i]);
          acc = aux;
        }
        const NetLit target = gate.type == GateType::kXor ? out : ~out;
        define_xor(target, acc, fan.back());
        return;
      }
      case GateType::kMux:
        define_mux(out, fan[0], fan[1], fan[2]);
        return;
      default:
        throw std::logic_error("define_gate: unexpected source gate");
    }
  }

 private:
  ClauseSink& sink_;
  EncodedCircuit& out_;
};

// Variable source for the shadow pass of prune_dead_logic: hands out fresh
// ids above every real variable the options can inject, drops all clauses.
class ShadowSink final : public ClauseSink {
 public:
  explicit ShadowSink(Var first) : next_(first) {}
  Var new_var() override { return next_++; }
  void add_clause(sat::Clause) override {}

 private:
  Var next_;
};

EncodedCircuit encode_impl(const Netlist& netlist, ClauseSink& sink,
                           const EncodeOptions& options,
                           const std::vector<char>* needed,
                           const EncodedCircuit* shadow);

}  // namespace

EncodedCircuit encode(const Netlist& netlist, ClauseSink& sink,
                      const EncodeOptions& options) {
  const bool cone_mode = !options.frontier_lits.empty();
  if (!options.fixed_inputs.empty() &&
      options.fixed_inputs.size() != netlist.num_inputs()) {
    throw std::invalid_argument("fixed_inputs size mismatch");
  }
  if (!options.shared_key_vars.empty() &&
      options.shared_key_vars.size() != netlist.num_keys()) {
    throw std::invalid_argument("shared_key_vars size mismatch");
  }
  if (!options.shared_input_vars.empty()) {
    if (options.shared_input_vars.size() != netlist.num_inputs()) {
      throw std::invalid_argument("shared_input_vars size mismatch");
    }
    if (!options.fixed_inputs.empty()) {
      throw std::invalid_argument(
          "shared_input_vars and fixed_inputs are mutually exclusive");
    }
  }
  if (cone_mode) {
    if (options.frontier_lits.size() != netlist.num_gates()) {
      throw std::invalid_argument("frontier_lits size mismatch");
    }
    if (!options.fixed_inputs.empty() || options.inputs_as_unit_clauses ||
        !options.shared_input_vars.empty() || !options.restrict_topo.empty() ||
        !options.fold_constants) {
      throw std::invalid_argument(
          "cone-restricted encode is incompatible with input fixing/sharing, "
          "restrict_topo and unfolded encoding");
    }
  }
  if (!options.restrict_topo.empty() &&
      (!options.fold_constants || netlist.is_cyclic())) {
    throw std::invalid_argument(
        "restrict_topo needs fold_constants and an acyclic netlist");
  }
  if (options.prune_dead_logic) {
    if (!options.fold_constants || netlist.is_cyclic()) {
      throw std::invalid_argument(
          "prune_dead_logic needs fold_constants and an acyclic netlist");
    }
    // Shadow pass: same fold walk, clauses discarded, fresh variables drawn
    // from above every injected real variable so literal-identity folding
    // (XOR cancellation, MUX collapse) behaves exactly as the real pass
    // will. The walks are isomorphic up to an injective variable renaming,
    // so a gate folds to a constant in the shadow pass iff it does in the
    // emitting pass.
    Var max_var = 0;
    for (const Var v : options.shared_key_vars) max_var = std::max(max_var, v);
    for (const Var v : options.shared_input_vars) {
      max_var = std::max(max_var, v);
    }
    for (const NetLit& n : options.frontier_lits) {
      if (!n.is_const()) max_var = std::max(max_var, n.lit.var());
    }
    ShadowSink shadow_sink(max_var + 1);
    const EncodedCircuit shadow =
        encode_impl(netlist, shadow_sink, options, nullptr, nullptr);
    // Fanin cone of every output that stayed symbolic; everything else is
    // either constant (its value survives into the real pass) or feeds only
    // constant-valued outputs and is dropped.
    std::vector<char> needed(netlist.num_gates(), 0);
    std::vector<GateId> stack;
    for (const netlist::OutputPort& o : netlist.outputs()) {
      if (!shadow.net[o.gate].is_const() && !needed[o.gate]) {
        needed[o.gate] = 1;
        stack.push_back(o.gate);
      }
    }
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (const GateId f : netlist.fanin(g)) {
        if (!needed[f] && !shadow.net[f].is_const()) {
          needed[f] = 1;
          stack.push_back(f);
        }
      }
    }
    return encode_impl(netlist, sink, options, &needed, &shadow);
  }
  return encode_impl(netlist, sink, options, nullptr, nullptr);
}

namespace {

EncodedCircuit encode_impl(const Netlist& netlist, ClauseSink& sink,
                           const EncodeOptions& options,
                           const std::vector<char>* needed,
                           const EncodedCircuit* shadow) {
  const bool cone_mode = !options.frontier_lits.empty();
  EncodedCircuit out;
  Encoder enc(sink, out);
  if (cone_mode) {
    // Every net starts at its frontier value; the cone walk below overwrites
    // exactly the key gates and the cone gates.
    out.net.assign(options.frontier_lits.begin(), options.frontier_lits.end());
  } else {
    out.net.assign(netlist.num_gates(), NetLit::constant(false));
  }
  out.input_vars.assign(netlist.num_inputs(), sat::kNullVar);
  out.key_vars.assign(netlist.num_keys(), sat::kNullVar);

  // Sources first (identical for every path; cone mode reads its inputs out
  // of frontier_lits and allocates no input variables).
  if (!cone_mode) {
    for (std::size_t i = 0; i < netlist.num_inputs(); ++i) {
      const GateId g = netlist.inputs()[i];
      if (!options.shared_input_vars.empty()) {
        const Var v = options.shared_input_vars[i];
        out.input_vars[i] = v;
        out.net[g] = NetLit::of(sat::pos(v));
      } else if (!options.fixed_inputs.empty() &&
                 !options.inputs_as_unit_clauses) {
        out.net[g] = NetLit::constant(options.fixed_inputs[i]);
      } else {
        const Var v = enc.fresh();
        out.input_vars[i] = v;
        out.net[g] = NetLit::of(sat::pos(v));
        if (!options.fixed_inputs.empty()) {
          enc.emit({NetLit::of(sat::Lit(v, !options.fixed_inputs[i]))});
        }
      }
    }
  }
  for (std::size_t i = 0; i < netlist.num_keys(); ++i) {
    const GateId g = netlist.keys()[i];
    const Var v = options.shared_key_vars.empty() ? enc.fresh()
                                                  : options.shared_key_vars[i];
    out.key_vars[i] = v;
    out.net[g] = NetLit::of(sat::pos(v));
  }
  if (!cone_mode) {
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const GateType t = netlist.gate(static_cast<GateId>(g)).type;
      if (t == GateType::kConst0) out.net[g] = NetLit::constant(false);
      if (t == GateType::kConst1) out.net[g] = NetLit::constant(true);
    }
  }

  const auto fold_walk = [&](std::span<const GateId> walk) {
    for (const GateId g : walk) {
      const Gate& gate = netlist.gate(g);
      if (netlist::is_source(gate.type)) continue;
      if (needed != nullptr && !(*needed)[g]) {
        // Pruned gate: constants survive (an emitted consumer may read
        // them); symbolic values are read only by other pruned gates.
        if (shadow->net[g].is_const()) out.net[g] = shadow->net[g];
        continue;
      }
      std::vector<NetLit> fan;
      fan.reserve(gate.fanin.size());
      for (const GateId f : gate.fanin) fan.push_back(out.net[f]);
      out.net[g] = enc.fold_gate(gate, std::move(fan));
    }
  };

  const auto order = netlist.topological_order();
  if (cone_mode) {
    fold_walk(options.cone_topo);
  } else if (!options.restrict_topo.empty()) {
    fold_walk(options.restrict_topo);
  } else if (order && options.fold_constants) {
    fold_walk(*order);
  } else {
    // Gate-per-variable encoding (works for cyclic netlists).
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const Gate& gate = netlist.gate(static_cast<GateId>(g));
      if (netlist::is_source(gate.type)) continue;
      out.net[g] = NetLit::of(sat::pos(enc.fresh()));
    }
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const Gate& gate = netlist.gate(static_cast<GateId>(g));
      if (netlist::is_source(gate.type)) continue;
      std::vector<NetLit> fan;
      fan.reserve(gate.fanin.size());
      for (const GateId f : gate.fanin) fan.push_back(out.net[f]);
      enc.define_gate(out.net[g], gate, fan);
    }
  }

  out.outputs.reserve(netlist.num_outputs());
  for (const netlist::OutputPort& o : netlist.outputs()) {
    out.outputs.push_back(out.net[o.gate]);
  }
  return out;
}

}  // namespace

sat::Cnf to_cnf(const Netlist& netlist) {
  sat::Cnf cnf;
  CnfSink sink(cnf);
  encode(netlist, sink, EncodeOptions{});
  return cnf;
}

NetLit encode_difference(std::span<const NetLit> a, std::span<const NetLit> b,
                         ClauseSink& sink) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("encode_difference: size mismatch");
  }
  EncodedCircuit scratch;
  Encoder enc(sink, scratch);
  std::vector<NetLit> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetLit d = enc.make_xor2(a[i], b[i]);
    if (d.is_const()) {
      if (d.const_value()) return NetLit::constant(true);
      continue;
    }
    diffs.push_back(d);
  }
  if (diffs.empty()) return NetLit::constant(false);
  if (diffs.size() == 1) return diffs[0];
  return enc.make_or(std::move(diffs), false);
}

NetLit emit_and(ClauseSink& sink, std::vector<NetLit> terms) {
  EncodedCircuit scratch;
  Encoder enc(sink, scratch);
  if (terms.empty()) return NetLit::constant(true);
  return enc.make_and(std::move(terms), false);
}

NetLit emit_or(ClauseSink& sink, std::vector<NetLit> terms) {
  EncodedCircuit scratch;
  Encoder enc(sink, scratch);
  if (terms.empty()) return NetLit::constant(false);
  return enc.make_or(std::move(terms), false);
}

NetLit emit_xor(ClauseSink& sink, NetLit a, NetLit b) {
  EncodedCircuit scratch;
  Encoder enc(sink, scratch);
  return enc.make_xor2(a, b);
}

void assert_true(ClauseSink& sink, NetLit lit) {
  if (lit.is_const()) {
    if (!lit.const_value()) sink.add_clause({});
    return;
  }
  sink.add_clause({lit.lit});
}

}  // namespace fl::cnf
