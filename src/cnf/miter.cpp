#include "cnf/miter.h"

#include <random>
#include <stdexcept>

namespace fl::cnf {

using netlist::Netlist;
using sat::Lit;
using sat::Var;

AttackMiter encode_attack_miter(const Netlist& locked,
                                sat::SolverIface& solver,
                                netlist::KeyConePartition* cone) {
  SolverSink sink(solver);
  if (locked.num_keys() == 0) {
    // No key inputs: both copies are identical functions by construction.
    AttackMiter miter;
    miter.trivially_equal = true;
    miter.activate = sat::pos(solver.new_var());
    return miter;
  }
  EncodeOptions options;  // inputs free, fresh keys
  if (cone != nullptr) {
    // Key-independent outputs are equal in both copies whatever the keys
    // are, so the miter only needs the fanin cone of the key-dependent
    // outputs from the full copy.
    options.restrict_topo = cone->support_topo();
  }
  const EncodedCircuit copy1 = encode(locked, sink, options);

  // Second copy with its own key set, built directly over the first copy's
  // input variables. (An earlier version allocated a second input vector
  // and tied the copies with 2n equality clauses; the solver then had to
  // re-derive x1_i = x2_i by propagation in every conflict, and the extra
  // variables diluted VSIDS onto literals that carry no information.)
  EncodeOptions options2;
  if (cone != nullptr) {
    // Cone-restricted second copy: everything outside the key cone is the
    // same function of the same inputs in both copies, so it is *shared*
    // (via copy1's nets) rather than re-encoded, and the output difference
    // below folds the key-independent ports away structurally.
    options2.cone_topo = cone->cone_topo();
    options2.frontier_lits = copy1.net;
  } else {
    options2.shared_input_vars = copy1.input_vars;
  }
  const EncodedCircuit copy2 = encode(locked, sink, options2);

  AttackMiter miter;
  miter.inputs = copy1.input_vars;
  miter.key1 = copy1.key_vars;
  miter.key2 = copy2.key_vars;

  const NetLit diff = encode_difference(copy1.outputs, copy2.outputs, sink);
  if (diff.is_const()) {
    if (diff.const_value()) {
      // Outputs always differ: degenerate, signal via an always-true lit.
      const Var t = solver.new_var();
      solver.add_clause({sat::pos(t)});
      miter.activate = sat::pos(t);
    } else {
      miter.trivially_equal = true;
      const Var t = solver.new_var();
      miter.activate = sat::pos(t);
    }
    return miter;
  }
  // Fresh activation literal: act -> diff.
  const Var act = solver.new_var();
  solver.add_clause({sat::neg(act), diff.lit});
  miter.activate = sat::pos(act);
  return miter;
}

namespace {

// Pins every encoded output to the oracle response; a constant output that
// contradicts the response empties the key space (matches what folding the
// mismatch through a unit clause would do).
void pin_outputs(sat::SolverIface& solver, const EncodedCircuit& copy,
                 const std::vector<bool>& response) {
  for (std::size_t i = 0; i < response.size(); ++i) {
    const NetLit o = copy.outputs[i];
    if (o.is_const()) {
      if (o.const_value() != response[i]) {
        solver.add_clause({});  // contradiction: key space empty
      }
      continue;
    }
    solver.add_clause({response[i] ? o.lit : ~o.lit});
  }
}

}  // namespace

void add_io_constraint(const Netlist& locked, sat::SolverIface& solver,
                       std::span<const sat::Var> key_vars,
                       const std::vector<bool>& pattern,
                       const std::vector<bool>& response) {
  if (response.size() != locked.num_outputs()) {
    throw std::invalid_argument("add_io_constraint: response size mismatch");
  }
  SolverSink sink(solver);
  EncodeOptions options;
  options.fixed_inputs = pattern;
  options.shared_key_vars = key_vars;
  const EncodedCircuit copy = encode(locked, sink, options);
  pin_outputs(solver, copy, response);
}

void add_io_constraint_cone(const Netlist& locked, sat::SolverIface& solver,
                            std::span<const sat::Var> key_vars,
                            std::span<const netlist::GateId> cone_topo,
                            std::span<const NetLit> frontier_lits,
                            const std::vector<bool>& response) {
  if (response.size() != locked.num_outputs()) {
    throw std::invalid_argument(
        "add_io_constraint_cone: response size mismatch");
  }
  SolverSink sink(solver);
  EncodeOptions options;
  options.cone_topo = cone_topo;
  options.frontier_lits = frontier_lits;
  options.shared_key_vars = key_vars;
  // With the frontier swept to constants, most of the key cone folds off the
  // pinned outputs (a masked fanin kills the key dependence long before an
  // output port); only the residue that still reaches a symbolic output pin
  // carries information about the key.
  options.prune_dead_logic = true;
  const EncodedCircuit copy = encode(locked, sink, options);
  pin_outputs(solver, copy, response);
}

double deobfuscation_cnf_ratio(const Netlist& locked, int num_dips,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  sat::Cnf cnf;
  CnfSink sink(cnf);

  // Double-key miter: two unfolded copies sharing input variables via
  // equality clauses, plus the output-difference tree.
  EncodeOptions raw;
  raw.fold_constants = false;
  const EncodedCircuit copy1 = encode(locked, sink, raw);
  const EncodedCircuit copy2 = encode(locked, sink, raw);
  for (std::size_t i = 0; i < copy1.input_vars.size(); ++i) {
    const sat::Lit a = sat::pos(copy1.input_vars[i]);
    const sat::Lit b = sat::pos(copy2.input_vars[i]);
    cnf.add({~a, b});
    cnf.add({a, ~b});
  }
  const NetLit diff = encode_difference(copy1.outputs, copy2.outputs, sink);
  if (!diff.is_const()) cnf.add({diff.lit});

  // DIP constraint copies: random fixed inputs as unit clauses, outputs
  // pinned (the pin value does not change the count).
  for (int d = 0; d < num_dips; ++d) {
    EncodeOptions dip;
    dip.fold_constants = false;
    dip.inputs_as_unit_clauses = true;
    dip.fixed_inputs.resize(locked.num_inputs());
    for (std::size_t i = 0; i < locked.num_inputs(); ++i) {
      dip.fixed_inputs[i] = (rng() & 1) != 0;
    }
    dip.shared_key_vars = (d % 2 == 0) ? copy1.key_vars : copy2.key_vars;
    const EncodedCircuit copy = encode(locked, sink, dip);
    for (const NetLit& o : copy.outputs) {
      if (!o.is_const()) cnf.add({(rng() & 1) != 0 ? o.lit : ~o.lit});
    }
  }
  return cnf.clause_to_var_ratio();
}

bool check_equivalence(const Netlist& a, const std::vector<bool>& key_a,
                       const Netlist& b, const std::vector<bool>& key_b,
                       std::vector<bool>* counterexample) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("check_equivalence: interface mismatch");
  }
  if (a.is_cyclic() || b.is_cyclic()) {
    throw std::invalid_argument("check_equivalence: needs acyclic netlists");
  }
  if (key_a.size() != a.num_keys() || key_b.size() != b.num_keys()) {
    throw std::invalid_argument("check_equivalence: key size mismatch");
  }
  sat::Solver solver;
  SolverSink sink(solver);

  EncodeOptions options_a;
  const EncodedCircuit enc_a = encode(a, sink, options_a);
  for (std::size_t i = 0; i < key_a.size(); ++i) {
    solver.add_clause({Lit(enc_a.key_vars[i], !key_a[i])});
  }

  EncodeOptions options_b;
  options_b.shared_input_vars = enc_a.input_vars;
  const EncodedCircuit enc_b = encode(b, sink, options_b);
  for (std::size_t i = 0; i < key_b.size(); ++i) {
    solver.add_clause({Lit(enc_b.key_vars[i], !key_b[i])});
  }
  const NetLit diff = encode_difference(enc_a.outputs, enc_b.outputs, sink);
  if (diff.is_const()) return !diff.const_value();
  solver.add_clause({diff.lit});
  const sat::LBool result = solver.solve();
  if (result == sat::LBool::kTrue && counterexample != nullptr) {
    counterexample->assign(a.num_inputs(), false);
    for (std::size_t i = 0; i < enc_a.input_vars.size(); ++i) {
      (*counterexample)[i] = solver.value_of(enc_a.input_vars[i]);
    }
  }
  return result == sat::LBool::kFalse;
}

}  // namespace fl::cnf
