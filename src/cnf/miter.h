// Miter construction for oracle-guided attacks and equivalence checking.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cnf/tseytin.h"
#include "netlist/netlist.h"
#include "netlist/structure.h"
#include "sat/solver.h"

namespace fl::cnf {

// The double-key attack miter of Subramanyan et al.: two copies of the
// locked circuit share the primary inputs but carry independent key vectors
// K1/K2; assuming `activate` forces at least one output to differ.
struct AttackMiter {
  std::vector<sat::Var> inputs;
  std::vector<sat::Var> key1;
  std::vector<sat::Var> key2;
  sat::Lit activate;       // assume this to search for a DIP
  bool trivially_equal = false;  // outputs identical for all keys (no DIP)
};

// With `cone` non-null (acyclic locks), the first copy is restricted to the
// partition's miter support and the second copy re-encodes only the key
// cone against the first copy's nets — the key-independent outputs cancel
// structurally instead of clause-by-clause. With cone == nullptr both
// copies encode the full circuit (the legacy shape).
AttackMiter encode_attack_miter(const netlist::Netlist& locked,
                                sat::SolverIface& solver,
                                netlist::KeyConePartition* cone = nullptr);

// Adds the constraint "locked(pattern, K) == response" for the key variables
// `key_vars` (one circuit copy with inputs fixed; constants are folded when
// the netlist is acyclic).
void add_io_constraint(const netlist::Netlist& locked,
                       sat::SolverIface& solver,
                       std::span<const sat::Var> key_vars,
                       const std::vector<bool>& pattern,
                       const std::vector<bool>& response);

// Cone-restricted form of add_io_constraint: `frontier_lits` (indexed by
// GateId, size num_gates) carries the fixed-region net values already
// evaluated under the DIP — at minimum at every KeyConePartition tap — so
// only the gates in `cone_topo` are re-encoded. Key-independent outputs are
// still checked against `response` (a mismatch empties the key space,
// matching the full encode).
void add_io_constraint_cone(const netlist::Netlist& locked,
                            sat::SolverIface& solver,
                            std::span<const sat::Var> key_vars,
                            std::span<const netlist::GateId> cone_topo,
                            std::span<const NetLit> frontier_lits,
                            const std::vector<bool>& response);

// Clauses-to-variables ratio of the deobfuscation CNF as a naive
// MiniSAT-frontend (the paper's tooling, Fig. 7) sees it: a double-key
// miter plus `num_dips` I/O-constraint circuit copies, all encoded without
// constant folding and with DIP inputs pinned by unit clauses. Random DIP
// patterns are drawn from `seed`; oracle responses are irrelevant to the
// ratio (unit clauses either way).
double deobfuscation_cnf_ratio(const netlist::Netlist& locked, int num_dips,
                               std::uint64_t seed);

// SAT equivalence check of two acyclic netlists with equal PI/PO counts.
// Keys of either netlist are fixed to the supplied constants (pass empty
// spans for key-less netlists). Returns true iff functionally equivalent.
// Throws std::invalid_argument on interface mismatches or cyclic inputs.
bool check_equivalence(const netlist::Netlist& a, const std::vector<bool>& key_a,
                       const netlist::Netlist& b, const std::vector<bool>& key_b,
                       std::vector<bool>* counterexample = nullptr);

}  // namespace fl::cnf
