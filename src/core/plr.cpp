#include "core/plr.h"

#include <stdexcept>

#include "netlist/simulator.h"

namespace fl::core {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::Word;

bool lut_replaceable(const Netlist& netlist, GateId gate) {
  const netlist::Gate& g = netlist.gate(gate);
  if (netlist::is_source(g.type)) return false;
  return !g.fanin.empty() &&
         g.fanin.size() <= static_cast<std::size_t>(kMaxLutInputs);
}

namespace {

// Truth table of a single gate: bit `idx` of the result = gate output when
// fanin i carries bit i of idx.
std::vector<bool> gate_truth_table(const netlist::Gate& gate) {
  const std::size_t k = gate.fanin.size();
  const std::size_t rows = std::size_t{1} << k;
  std::vector<bool> table(rows);
  std::vector<Word> fan(k);
  for (std::size_t idx = 0; idx < rows; ++idx) {
    for (std::size_t i = 0; i < k; ++i) {
      fan[i] = ((idx >> i) & 1) != 0 ? ~Word{0} : Word{0};
    }
    table[idx] = (netlist::eval_gate(gate.type, fan) & 1) != 0;
  }
  return table;
}

// tree over key leaves [lo, hi) selecting on fanin bit `depth` (MSB-first).
GateId build_mux_tree(Netlist& netlist, const std::vector<GateId>& leaves,
                      const std::vector<GateId>& selects, std::size_t lo,
                      std::size_t hi, int depth) {
  if (depth < 0) return leaves[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  const GateId low = build_mux_tree(netlist, leaves, selects, lo, mid, depth - 1);
  const GateId high =
      build_mux_tree(netlist, leaves, selects, mid, hi, depth - 1);
  // Truth-table index bit i == fanin i, so level `depth` selects on
  // selects[depth]: 0 -> lower half, 1 -> upper half.
  return netlist.add_gate(GateType::kMux, {selects[depth], low, high});
}

}  // namespace

KeyLutResult replace_with_key_lut(Netlist& netlist, GateId gate,
                                  const std::string& name_prefix) {
  if (!lut_replaceable(netlist, gate)) {
    throw std::invalid_argument("gate is not LUT-replaceable");
  }
  const netlist::Gate snapshot = netlist.gate(gate);  // copy before edits
  const int k = static_cast<int>(snapshot.fanin.size());
  const std::size_t rows = std::size_t{1} << k;

  KeyLutResult result;
  result.correct_key = gate_truth_table(snapshot);
  result.key_gates.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    result.key_gates.push_back(
        netlist.add_key("keyinput_" + name_prefix + "_t" + std::to_string(r)));
  }
  result.root = build_mux_tree(netlist, result.key_gates, snapshot.fanin, 0,
                               rows, k - 1);
  netlist.replace_net(gate, result.root);
  return result;
}

}  // namespace fl::core
