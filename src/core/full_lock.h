// Full-Lock: the paper's top-level locking transform.
//
// Inserts one or more PLRs (CLN routing network + key-configurable
// inverters + key-programmable LUTs) into a netlist and returns the locked
// circuit together with its correct key.
#pragma once

#include <cstdint>
#include <vector>

#include "core/insertion.h"
#include "core/locked_circuit.h"

namespace fl::core {

struct FullLockConfig {
  std::vector<PlrConfig> plrs;  // one entry per PLR to insert
  std::uint64_t seed = 1;
  // Lower the host to 2-input gates before inserting PLRs (§3.2): every
  // twisted consumer then becomes a 4-entry LUT, minimizing STT-LUT cost.
  bool decompose_two_input = false;

  // Convenience: k PLRs with n-input CLNs sharing common settings, e.g.
  // FullLockConfig::with_plrs({16, 16, 8}).
  static FullLockConfig with_plrs(std::vector<int> cln_sizes,
                                  ClnTopology topology =
                                      ClnTopology::kBanyanNonBlocking,
                                  CycleMode cycle_mode = CycleMode::kAvoid,
                                  bool twist_luts = true,
                                  double negate_probability = 0.5,
                                  std::uint64_t seed = 1);
};

struct FullLockReport {
  int num_plrs = 0;
  int num_luts = 0;
  int num_negated_drivers = 0;
  std::size_t key_bits = 0;
};

// Locks a copy of `original`. Throws std::invalid_argument if the circuit
// has too few wires for a requested CLN size.
LockedCircuit full_lock(const netlist::Netlist& original,
                        const FullLockConfig& config,
                        FullLockReport* report = nullptr);

}  // namespace fl::core
