#include "core/full_lock.h"

#include <random>

#include "netlist/structure.h"

namespace fl::core {

using netlist::GateId;
using netlist::Netlist;

FullLockConfig FullLockConfig::with_plrs(std::vector<int> cln_sizes,
                                         ClnTopology topology,
                                         CycleMode cycle_mode, bool twist_luts,
                                         double negate_probability,
                                         std::uint64_t seed) {
  FullLockConfig config;
  config.seed = seed;
  for (const int n : cln_sizes) {
    PlrConfig plr;
    plr.cln.n = n;
    plr.cln.topology = topology;
    plr.cycle_mode = cycle_mode;
    plr.twist_luts = twist_luts;
    plr.negate_probability = negate_probability;
    config.plrs.push_back(plr);
  }
  return config;
}

LockedCircuit full_lock(const Netlist& original, const FullLockConfig& config,
                        FullLockReport* report) {
  std::mt19937_64 rng(config.seed);
  LockedCircuit locked;
  locked.scheme = "full-lock";
  locked.netlist = config.decompose_two_input
                       ? netlist::decompose_to_two_input(original)
                       : original;
  locked.netlist.set_name(original.name() + "_fulllock");

  FullLockReport rep;
  for (std::size_t p = 0; p < config.plrs.size(); ++p) {
    PlrInsertion insertion = insert_plr(locked.netlist, config.plrs[p], rng,
                                        "plr" + std::to_string(p));
    locked.correct_key.insert(locked.correct_key.end(),
                              insertion.added_key_values.begin(),
                              insertion.added_key_values.end());
    locked.routing_blocks.push_back(std::move(insertion.hint));
    ++rep.num_plrs;
    rep.num_luts += insertion.num_luts;
    rep.num_negated_drivers += insertion.num_negated_drivers;
  }

  // Strip the dead originals left behind by LUT replacement, remapping the
  // removal-attack hints onto the compacted ids.
  std::vector<GateId> remap;
  locked.netlist = netlist::compact(locked.netlist, &remap);
  for (RoutingBlockHint& hint : locked.routing_blocks) {
    for (GateId& g : hint.block_inputs) g = remap[g];
    for (GateId& g : hint.block_outputs) g = remap[g];
  }

  rep.key_bits = locked.correct_key.size();
  if (report != nullptr) *report = rep;
  return locked;
}

}  // namespace fl::core
