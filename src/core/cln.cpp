#include "core/cln.h"

#include <bit>
#include <set>
#include <stdexcept>

namespace fl::core {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

int log2_exact(int n) {
  if (n < 4 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("CLN size must be a power of two >= 4");
  }
  return std::countr_zero(static_cast<unsigned>(n));
}

void check_config(const ClnConfig& config) {
  log2_exact(config.n);
  if (config.extra_stages < -1) {
    throw std::invalid_argument("CLN extra_stages must be >= -1");
  }
  if (config.copies < 1) {
    throw std::invalid_argument("CLN copies must be >= 1");
  }
}

int effective_extra_stages(const ClnConfig& config) {
  const int b = log2_exact(config.n);
  return config.extra_stages < 0 ? b - 2 : config.extra_stages;
}

// Perfect shuffle moves the wire at position i to position rotl(i); the
// stage's source mapping is therefore the inverse rotation.
int rotr_bits(int value, int bits) {
  return ((value >> 1) | ((value & 1) << (bits - 1))) & ((1 << bits) - 1);
}

std::vector<std::pair<int, int>> stride_pairs(int n, int stride) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(n / 2);
  for (int i = 0; i < n; ++i) {
    if ((i & stride) == 0) pairs.emplace_back(i, i + stride);
  }
  return pairs;
}

std::vector<ClnStage> make_stages(const ClnConfig& config) {
  const int n = config.n;
  const int b = log2_exact(n);
  std::vector<ClnStage> stages;
  if (config.topology == ClnTopology::kShuffleBlocking) {
    // Omega network: each of the log2(n) stages shuffles then pairs
    // adjacent wires.
    std::vector<int> shuffle_src(n);
    for (int p = 0; p < n; ++p) shuffle_src[p] = rotr_bits(p, b);
    std::vector<std::pair<int, int>> adjacent;
    for (int i = 0; i < n; i += 2) adjacent.emplace_back(i, i + 1);
    for (int s = 0; s < b; ++s) {
      stages.push_back(ClnStage{shuffle_src, adjacent});
    }
  } else {
    // LOG(N, M, 1) core: butterfly strides n/2 ... 1, then M extra stages
    // cycling through the mirrored strides 2, 4, ... (M = log2N-2 yields
    // a Benes network minus its final stage — the paper's default; for
    // n == 4 that degenerates to the plain 2-stage butterfly).
    for (int stride = n / 2; stride >= 1; stride /= 2) {
      stages.push_back(ClnStage{{}, stride_pairs(n, stride)});
    }
    const int extra = effective_extra_stages(config);
    int stride = 2;
    for (int s = 0; s < extra; ++s) {
      stages.push_back(ClnStage{{}, stride_pairs(n, stride)});
      stride = stride >= n / 2 ? 2 : stride * 2;
    }
  }
  return stages;
}

}  // namespace

int cln_num_stages(const ClnConfig& config) {
  check_config(config);
  const int b = log2_exact(config.n);
  if (config.topology == ClnTopology::kShuffleBlocking) return b;
  return b + effective_extra_stages(config);
}

int cln_num_swbs(const ClnConfig& config) {
  const int copies =
      config.topology == ClnTopology::kShuffleBlocking ? 1 : config.copies;
  return config.n / 2 * cln_num_stages(config) * copies;
}

int cln_copy_select_bits(const ClnConfig& config) {
  if (config.topology == ClnTopology::kShuffleBlocking || config.copies <= 1) {
    return 0;
  }
  return std::bit_width(static_cast<unsigned>(config.copies - 1));
}

int cln_num_keys(const ClnConfig& config) {
  const int per_swb = config.independent_selects ? 2 : 1;
  int keys = cln_num_swbs(config) * per_swb;
  keys += config.n * cln_copy_select_bits(config);
  if (config.with_inverters) keys += config.n;
  return keys;
}

int ClnInstance::num_swbs() const {
  const int copies =
      config.topology == ClnTopology::kShuffleBlocking ? 1 : config.copies;
  int per_copy = 0;
  for (const ClnStage& s : stages) {
    per_copy += static_cast<int>(s.pairs.size());
  }
  return per_copy * copies;
}

namespace {

// Runs one vertical copy's index routing. `key` supplies matched/independent
// SwB bits starting at `k`, which is advanced past this copy's bits.
std::vector<int> trace_copy(const ClnConfig& config,
                            const std::vector<ClnStage>& stages,
                            const std::vector<bool>& key, std::size_t& k) {
  std::vector<int> cur(config.n);
  for (int i = 0; i < config.n; ++i) cur[i] = i;
  std::vector<int> next(config.n);
  for (const ClnStage& stage : stages) {
    if (!stage.pre_wiring.empty()) {
      for (int p = 0; p < config.n; ++p) next[p] = cur[stage.pre_wiring[p]];
      std::swap(cur, next);
    }
    for (const auto& [a, b] : stage.pairs) {
      const bool k0 = key[k++];
      const bool k1 = config.independent_selects ? key[k++] : k0;
      const int va = cur[a];
      const int vb = cur[b];
      const int out_a = k0 ? vb : va;
      const int out_b = k1 ? va : vb;
      if (out_a == out_b) {
        throw std::invalid_argument(
            "trace_permutation: SwB in broadcast configuration");
      }
      cur[a] = out_a;
      cur[b] = out_b;
    }
  }
  return cur;
}

}  // namespace

std::vector<int> ClnInstance::trace_permutation(
    const std::vector<bool>& key) const {
  if (key.size() < static_cast<std::size_t>(num_select_keys)) {
    throw std::invalid_argument("trace_permutation: key too short");
  }
  const int copies =
      config.topology == ClnTopology::kShuffleBlocking ? 1 : config.copies;
  std::size_t k = 0;
  std::vector<std::vector<int>> per_copy;
  per_copy.reserve(copies);
  for (int c = 0; c < copies; ++c) {
    per_copy.push_back(trace_copy(config, stages, key, k));
  }
  std::vector<int> result(config.n);
  if (copies == 1) {
    result = per_copy[0];
  } else {
    const int bits = cln_copy_select_bits(config);
    for (int j = 0; j < config.n; ++j) {
      std::size_t index = 0;
      for (int b = 0; b < bits; ++b) {
        index |= static_cast<std::size_t>(key[k++]) << b;
      }
      // The builder pads the MUX leaves by cycling the copies.
      const int copy = static_cast<int>(index % copies);
      result[j] = per_copy[copy][j];
    }
  }
  std::set<int> seen(result.begin(), result.end());
  if (seen.size() != static_cast<std::size_t>(config.n)) {
    throw std::invalid_argument(
        "trace_permutation: copy-mixed routing is not a permutation");
  }
  return result;
}

ClnBuilder::ClnBuilder(ClnConfig config) : config_(config) {
  check_config(config_);
  stages_ = make_stages(config_);
}

ClnInstance ClnBuilder::build(Netlist& netlist,
                              std::span<const GateId> inputs,
                              const std::string& name_prefix) const {
  if (inputs.size() != static_cast<std::size_t>(config_.n)) {
    throw std::invalid_argument("ClnBuilder::build: input count mismatch");
  }
  ClnInstance inst;
  inst.config = config_;
  inst.stages = stages_;
  inst.inputs.assign(inputs.begin(), inputs.end());

  int key_counter = 0;
  // "keyinput" prefix: the .bench logic-locking convention, so locked
  // netlists survive write/read round-trips with keys classified correctly.
  auto new_key = [&]() {
    return netlist.add_key("keyinput_" + name_prefix + "_k" +
                           std::to_string(key_counter++));
  };

  const int copies =
      config_.topology == ClnTopology::kShuffleBlocking ? 1 : config_.copies;
  std::vector<std::vector<GateId>> copy_outputs;
  copy_outputs.reserve(copies);
  for (int c = 0; c < copies; ++c) {
    std::vector<GateId> cur(inputs.begin(), inputs.end());
    std::vector<GateId> next(config_.n);
    for (const ClnStage& stage : stages_) {
      if (!stage.pre_wiring.empty()) {
        for (int p = 0; p < config_.n; ++p) {
          next[p] = cur[stage.pre_wiring[p]];
        }
        std::swap(cur, next);
      }
      for (const auto& [a, b] : stage.pairs) {
        const GateId k0 = new_key();
        inst.key_gates.push_back(k0);
        GateId k1 = k0;
        if (config_.independent_selects) {
          k1 = new_key();
          inst.key_gates.push_back(k1);
        }
        const GateId in_a = cur[a];
        const GateId in_b = cur[b];
        // out_a = k0 ? in_b : in_a ; out_b = k1 ? in_a : in_b.
        const GateId out_a =
            netlist.add_gate(GateType::kMux, {k0, in_a, in_b});
        const GateId out_b =
            netlist.add_gate(GateType::kMux, {k1, in_b, in_a});
        cur[a] = out_a;
        cur[b] = out_b;
      }
    }
    copy_outputs.push_back(std::move(cur));
  }
  inst.num_swb_keys = key_counter;

  std::vector<GateId> merged(config_.n);
  if (copies == 1) {
    merged = copy_outputs[0];
  } else {
    // Key-selected P:1 output MUX column; leaves padded by cycling copies.
    const int bits = cln_copy_select_bits(config_);
    const std::size_t padded = std::size_t{1} << bits;
    for (int j = 0; j < config_.n; ++j) {
      std::vector<GateId> selects(bits);
      for (int b = 0; b < bits; ++b) {
        selects[b] = new_key();
        inst.key_gates.push_back(selects[b]);
      }
      std::vector<GateId> layer(padded);
      for (std::size_t l = 0; l < padded; ++l) {
        layer[l] = copy_outputs[l % copies][j];
      }
      for (int b = 0; b < bits; ++b) {
        std::vector<GateId> next_layer(layer.size() / 2);
        for (std::size_t l = 0; l < next_layer.size(); ++l) {
          if (layer[2 * l] == layer[2 * l + 1]) {
            next_layer[l] = layer[2 * l];
          } else {
            // Leaf index bit b selects between even (0) and odd (1) halves
            // of consecutive pairs.
            next_layer[l] = netlist.add_gate(
                GateType::kMux, {selects[b], layer[2 * l], layer[2 * l + 1]});
          }
        }
        layer = std::move(next_layer);
      }
      merged[j] = layer[0];
    }
  }
  inst.num_copy_keys = key_counter - inst.num_swb_keys;
  inst.num_select_keys = key_counter;

  if (config_.with_inverters) {
    for (int p = 0; p < config_.n; ++p) {
      const GateId kv = new_key();
      inst.key_gates.push_back(kv);
      merged[p] = netlist.add_gate(GateType::kXor, {merged[p], kv});
    }
  }
  inst.num_inverter_keys = key_counter - inst.num_select_keys;
  inst.outputs = merged;
  return inst;
}

std::vector<bool> ClnBuilder::random_routing_key(std::mt19937_64& rng) const {
  std::vector<bool> key;
  std::uniform_int_distribution<int> coin(0, 1);
  const int copies =
      config_.topology == ClnTopology::kShuffleBlocking ? 1 : config_.copies;
  for (int c = 0; c < copies; ++c) {
    for (const ClnStage& stage : stages_) {
      for (std::size_t i = 0; i < stage.pairs.size(); ++i) {
        const bool swap_bit = coin(rng) == 1;
        key.push_back(swap_bit);
        if (config_.independent_selects) key.push_back(swap_bit);
      }
    }
  }
  if (copies > 1) {
    // One shared random copy so the merged routing stays a permutation.
    const int bits = cln_copy_select_bits(config_);
    std::uniform_int_distribution<int> pick(0, copies - 1);
    const int copy = pick(rng);
    for (int j = 0; j < config_.n; ++j) {
      for (int b = 0; b < bits; ++b) {
        key.push_back(((copy >> b) & 1) != 0);
      }
    }
  }
  return key;
}

}  // namespace fl::core
