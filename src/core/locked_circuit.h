// Common result type for every locking scheme in this library.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fl::core {

// Structural hint describing one inserted routing block, consumed by the
// removal attack (which models an attacker who has already identified the
// block and recovered its routing — the strongest removal adversary).
struct RoutingBlockHint {
  // Wire that fed network input position i (the *driver* side, possibly a
  // negated gate).
  std::vector<netlist::GateId> block_inputs;
  // Network output gate at position j (post-inverter-layer).
  std::vector<netlist::GateId> block_outputs;
  // permutation[j] = input position routed to output j under the correct key.
  std::vector<int> permutation;
  // inverted[j]: output j is negated relative to its source wire's *current*
  // (possibly negated) driver under the correct key.
  std::vector<bool> inverted;
};

struct LockedCircuit {
  netlist::Netlist netlist;        // carries the key inputs
  std::vector<bool> correct_key;   // aligned with netlist.keys()
  std::string scheme;              // e.g. "full-lock", "rll", "sarlock"
  // Canonical "key=value,key=value" parameter list when the lock was made
  // through the scheme registry (lock::lock_with). Stamped into the .bench
  // header / .key file so the attack side recovers full provenance.
  std::string params;
  std::vector<RoutingBlockHint> routing_blocks;  // empty for logic-only locks

  std::size_t key_bits() const { return correct_key.size(); }
};

}  // namespace fl::core
