#include "core/insertion.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/plr.h"
#include "netlist/structure.h"

namespace fl::core {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool negatable_gate(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
    case GateType::kBuf:
    case GateType::kNot:
      return true;
    default:
      return false;
  }
}

GateType negated_gate_type(GateType type) {
  switch (type) {
    case GateType::kAnd: return GateType::kNand;
    case GateType::kNand: return GateType::kAnd;
    case GateType::kOr: return GateType::kNor;
    case GateType::kNor: return GateType::kOr;
    case GateType::kXor: return GateType::kXnor;
    case GateType::kXnor: return GateType::kXor;
    case GateType::kBuf: return GateType::kNot;
    case GateType::kNot: return GateType::kBuf;
    default: throw std::logic_error("gate type is not negatable");
  }
}

namespace {

// Wires eligible to feed a CLN: logic gates or primary inputs with at least
// one *live* reader (a reader feeding some primary output — otherwise the
// rerouted/negated wire would be functionally invisible). Key inputs,
// constants, and anything downstream of a key (i.e. inside a previously
// inserted PLR) are excluded — PLRs lock the original logic, not each
// other.
std::vector<GateId> candidate_wires(const Netlist& netlist) {
  const auto fanout = netlist.fanout_map();
  const std::vector<bool> live = netlist::live_gates(netlist);
  std::vector<bool> is_output(netlist.num_gates(), false);
  for (const netlist::OutputPort& o : netlist.outputs()) is_output[o.gate] = true;
  std::vector<bool> key_tainted(netlist.num_gates(), false);
  {
    std::vector<GateId> stack(netlist.keys().begin(), netlist.keys().end());
    for (const GateId k : stack) key_tainted[k] = true;
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (const GateId out : fanout[g]) {
        if (!key_tainted[out]) {
          key_tainted[out] = true;
          stack.push_back(out);
        }
      }
    }
  }
  std::vector<GateId> candidates;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const GateType t = netlist.gate(g).type;
    if (t == GateType::kKey || t == GateType::kConst0 ||
        t == GateType::kConst1 || key_tainted[g]) {
      continue;
    }
    bool has_live_reader = is_output[g];
    for (const GateId r : fanout[g]) {
      if (live[r]) {
        has_live_reader = true;
        break;
      }
    }
    if (!has_live_reader) continue;
    candidates.push_back(g);
  }
  return candidates;
}

}  // namespace

std::vector<GateId> select_routing_wires(const Netlist& netlist, int n,
                                         CycleMode mode,
                                         std::mt19937_64& rng) {
  std::vector<GateId> candidates = candidate_wires(netlist);
  if (static_cast<int>(candidates.size()) < n) {
    throw std::invalid_argument("not enough candidate wires for PLR");
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  if (mode == CycleMode::kAllow) {
    candidates.resize(n);
    return candidates;
  }
  netlist::Reachability reach(netlist);
  std::vector<GateId> chosen;
  if (mode == CycleMode::kForce) {
    // Find a comparable pair (a reaches b) so the rewiring closes a cycle.
    for (std::size_t i = 0; i < candidates.size() && chosen.empty(); ++i) {
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (i == j) continue;
        if (reach.reaches(candidates[i], candidates[j])) {
          chosen.push_back(candidates[i]);
          chosen.push_back(candidates[j]);
          break;
        }
      }
    }
    if (chosen.empty()) {
      throw std::invalid_argument("no comparable wire pair; cannot force cycle");
    }
    for (const GateId c : candidates) {
      if (static_cast<int>(chosen.size()) == n) break;
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
        chosen.push_back(c);
      }
    }
  } else {  // kAvoid: antichain in the reachability order
    // Greedy with random restarts; narrow circuits may need several tries.
    constexpr int kRestarts = 32;
    for (int attempt = 0; attempt < kRestarts; ++attempt) {
      chosen.clear();
      for (const GateId c : candidates) {
        if (static_cast<int>(chosen.size()) == n) break;
        bool comparable = false;
        for (const GateId s : chosen) {
          if (reach.reaches(s, c) || reach.reaches(c, s)) {
            comparable = true;
            break;
          }
        }
        if (!comparable) chosen.push_back(c);
      }
      if (static_cast<int>(chosen.size()) == n) break;
      std::shuffle(candidates.begin(), candidates.end(), rng);
    }
  }
  if (static_cast<int>(chosen.size()) < n) {
    throw std::invalid_argument(
        "could not select enough wires under the cycle-mode constraint");
  }
  chosen.resize(n);
  return chosen;
}

namespace {

struct Reader {
  GateId gate;       // kNullGate for output ports
  std::size_t slot;  // fanin pin, or output-port index
};

}  // namespace

PlrInsertion insert_plr(Netlist& netlist, const PlrConfig& config,
                        std::mt19937_64& rng, const std::string& name_prefix) {
  if (config.negate_probability > 0.0 && !config.cln.with_inverters) {
    throw std::invalid_argument(
        "leading-gate negation requires the CLN inverter layer");
  }
  const int n = config.cln.n;
  const std::vector<GateId> wires =
      select_routing_wires(netlist, n, config.cycle_mode, rng);

  // Record every reader of each selected wire before any edit.
  std::vector<std::vector<Reader>> readers(n);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      const auto it = std::find(wires.begin(), wires.end(), gate.fanin[pin]);
      if (it != wires.end()) {
        readers[it - wires.begin()].push_back(Reader{g, pin});
      }
    }
  }
  for (std::size_t oi = 0; oi < netlist.num_outputs(); ++oi) {
    const auto it =
        std::find(wires.begin(), wires.end(), netlist.outputs()[oi].gate);
    if (it != wires.end()) {
      readers[it - wires.begin()].push_back(Reader{netlist::kNullGate, oi});
    }
  }

  PlrInsertion result;
  result.selected_wires.assign(wires.begin(), wires.end());

  // Negate a random subset of the leading (driver) gates; the CLN's inverter
  // layer will undo the negation under the correct key.
  std::vector<bool> negated(n, false);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    if (negatable_gate(netlist.gate(wires[i]).type) &&
        coin(rng) < config.negate_probability) {
      netlist.retype(wires[i], negated_gate_type(netlist.gate(wires[i]).type));
      negated[i] = true;
      ++result.num_negated_drivers;
    }
  }

  // Build the CLN fed by the selected wires.
  const ClnBuilder builder(config.cln);
  const ClnInstance cln = builder.build(netlist, wires, name_prefix);

  // Choose the correct routing key, derive the realized permutation, and set
  // the inverter bits to absorb the driver negations.
  const std::vector<bool> select_key = builder.random_routing_key(rng);
  const std::vector<int> perm = cln.trace_permutation(select_key);
  std::vector<bool> inverter_key;
  if (config.cln.with_inverters) {
    inverter_key.resize(n);
    for (int j = 0; j < n; ++j) inverter_key[j] = negated[perm[j]];
  }

  // Rewire: readers of wire perm[j] now read CLN output j.
  for (int j = 0; j < n; ++j) {
    const int i = perm[j];
    for (const Reader& r : readers[i]) {
      if (r.gate == netlist::kNullGate) {
        netlist.set_output_gate(r.slot, cln.outputs[j]);
      } else {
        // Replace only this pin.
        std::vector<GateId> fanin = netlist.gate(r.gate).fanin_vector();
        fanin[r.slot] = cln.outputs[j];
        netlist.set_fanin(r.gate, std::move(fanin));
      }
    }
  }

  result.added_key_values = select_key;
  result.added_key_values.insert(result.added_key_values.end(),
                                 inverter_key.begin(), inverter_key.end());

  // LUT-twist the consuming gates (paper §3.2): every gate reading a CLN
  // output becomes a key-programmable LUT.
  std::map<GateId, GateId> replaced;  // old gate -> LUT tree root
  if (config.twist_luts) {
    std::vector<GateId> consumers;
    for (int i = 0; i < n; ++i) {
      for (const Reader& r : readers[i]) {
        if (r.gate != netlist::kNullGate &&
            std::find(consumers.begin(), consumers.end(), r.gate) ==
                consumers.end()) {
          consumers.push_back(r.gate);
        }
      }
    }
    for (const GateId g : consumers) {
      if (!lut_replaceable(netlist, g)) continue;
      if (replaced.count(g) != 0) continue;
      const KeyLutResult lut = replace_with_key_lut(
          netlist, g, name_prefix + "_lut" + std::to_string(result.num_luts));
      replaced[g] = lut.root;
      result.added_key_values.insert(result.added_key_values.end(),
                                     lut.correct_key.begin(),
                                     lut.correct_key.end());
      ++result.num_luts;
    }
  }

  // Removal-attack hint (drivers may have been LUT-replaced in cyclic mode).
  result.hint.block_inputs.reserve(n);
  for (const GateId w : wires) {
    const auto it = replaced.find(w);
    result.hint.block_inputs.push_back(it == replaced.end() ? w : it->second);
  }
  result.hint.block_outputs = cln.outputs;
  result.hint.permutation = perm;
  result.hint.inverted.assign(n, false);
  if (config.cln.with_inverters) result.hint.inverted = inverter_key;
  return result;
}

}  // namespace fl::core
