// PLR insertion (§3.3): grabs a group of wires, routes them through a CLN,
// negates a subset of the driving ("leading") gates (absorbed by the CLN's
// key-configurable inverters), and replaces the consuming ("proceeding")
// gates with key-programmable LUTs.
#pragma once

#include <cstdint>
#include <random>

#include "core/cln.h"
#include "core/locked_circuit.h"

namespace fl::core {

enum class CycleMode : std::uint8_t {
  kAvoid,  // antichain wire selection: locked netlist stays acyclic (Fig 6b)
  kAllow,  // unconstrained random selection (may create cycles)
  kForce,  // deliberately pick wires on a common path (Fig 6c)
};

struct PlrConfig {
  ClnConfig cln;
  CycleMode cycle_mode = CycleMode::kAvoid;
  bool twist_luts = true;             // LUT-ify the consuming gates
  double negate_probability = 0.5;    // leading-gate negation rate
};

struct PlrInsertion {
  RoutingBlockHint hint;
  // Correct values for the key inputs appended to the netlist by this
  // insertion, in netlist key order (CLN selects, inverters, LUT bits).
  std::vector<bool> added_key_values;
  int num_luts = 0;
  int num_negated_drivers = 0;
  std::vector<int> selected_wires;  // original GateIds, input-position order
};

// Inserts one PLR. Throws std::invalid_argument if the netlist has fewer
// candidate wires than config.cln.n, or if negation is requested with the
// inverter layer disabled.
PlrInsertion insert_plr(netlist::Netlist& netlist, const PlrConfig& config,
                        std::mt19937_64& rng, const std::string& name_prefix);

// Building blocks shared with other routing-based schemes (InterLock).

// True for the gate types whose polarity can be flipped by a retype
// (AND<->NAND, OR<->NOR, XOR<->XNOR, BUF<->NOT).
bool negatable_gate(netlist::GateType type);
// The negated counterpart; throws std::logic_error if !negatable_gate.
netlist::GateType negated_gate_type(netlist::GateType type);

// Selects `n` distinct routing-eligible wires (live logic gates or primary
// inputs, outside any key cone) under the cycle-mode constraint: kAvoid
// picks an antichain, kForce a comparable pair plus fill, kAllow anything.
// Throws std::invalid_argument when the netlist cannot supply them.
std::vector<netlist::GateId> select_routing_wires(const netlist::Netlist&
                                                      netlist,
                                                  int n, CycleMode mode,
                                                  std::mt19937_64& rng);

}  // namespace fl::core
