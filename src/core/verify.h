// Verification and corruption metrics for locked circuits.
#pragma once

#include <cstdint>
#include <random>

#include "core/locked_circuit.h"

namespace fl::core {

// Checks that `locked` under `key` matches `original` on `rounds` x 64
// random patterns (relaxation simulation if the locked netlist is cyclic).
// For acyclic locked netlists, pass `also_sat_check` to additionally run a
// complete SAT equivalence proof.
bool verify_unlocks(const netlist::Netlist& original,
                    const netlist::Netlist& locked,
                    const std::vector<bool>& key, int rounds, std::uint64_t seed,
                    bool also_sat_check = false);

inline bool verify_unlocks(const netlist::Netlist& original,
                           const LockedCircuit& locked, int rounds,
                           std::uint64_t seed, bool also_sat_check = false) {
  return verify_unlocks(original, locked.netlist, locked.correct_key, rounds,
                        seed, also_sat_check);
}

// Fraction of (pattern, output-bit) pairs that differ from the original
// under `key`, over `rounds` x 64 random patterns. Patterns that fail to
// converge (cyclic oscillation) count as fully corrupted.
double error_rate(const netlist::Netlist& original,
                  const netlist::Netlist& locked, const std::vector<bool>& key,
                  int rounds, std::uint64_t seed);

// Average error rate over `num_keys` uniformly random keys — the paper's
// "output corruption" claim (Full-Lock corrupts heavily under wrong keys,
// unlike SARLock/Anti-SAT point functions).
struct CorruptionStats {
  double mean_error_rate = 0.0;
  double min_error_rate = 1.0;
  double max_error_rate = 0.0;
  int keys_sampled = 0;
};
CorruptionStats output_corruption(const netlist::Netlist& original,
                                  const LockedCircuit& locked, int num_keys,
                                  int rounds_per_key, std::uint64_t seed);

}  // namespace fl::core
