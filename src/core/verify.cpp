#include "core/verify.h"

#include <bit>

#include "cnf/miter.h"
#include "netlist/simulator.h"

namespace fl::core {

using netlist::Netlist;
using netlist::Word;

namespace {

std::vector<Word> random_words(std::size_t n, std::mt19937_64& rng) {
  std::vector<Word> w(n);
  for (Word& x : w) x = rng();
  return w;
}

std::vector<Word> key_words(const std::vector<bool>& key) {
  std::vector<Word> w(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    w[i] = key[i] ? ~Word{0} : Word{0};
  }
  return w;
}

// Returns (#differing bits, #total bits) for one 64-pattern round against a
// cyclic locked netlist.
std::pair<std::uint64_t, std::uint64_t> diff_round_cyclic(
    const netlist::Simulator& gold, const Netlist& locked,
    const std::vector<bool>& key, std::mt19937_64& rng) {
  const std::vector<Word> inputs = random_words(locked.num_inputs(), rng);
  const std::vector<Word> kw = key_words(key);
  const std::vector<Word> expected = gold.run(inputs, {});
  const netlist::CyclicSimResult r =
      netlist::simulate_cyclic(locked, inputs, kw);
  std::uint64_t diff = 0;
  for (std::size_t o = 0; o < expected.size(); ++o) {
    // Non-converged patterns count as wrong on every output.
    diff += std::popcount((expected[o] ^ r.outputs[o]) | ~r.converged);
  }
  return {diff, expected.size() * 64};
}

// All rounds at once through the wide simulator (acyclic locked netlists).
// Draws the RNG in the same round-major order as the per-round path, so
// results are bit-identical for a given seed.
std::pair<std::uint64_t, std::uint64_t> diff_batch(
    const netlist::Simulator& gold, const netlist::Simulator& locked_sim,
    const std::vector<bool>& key, int rounds, std::mt19937_64& rng) {
  const std::size_t n_in = gold.netlist().num_inputs();
  const std::size_t n_out = gold.netlist().num_outputs();
  const std::size_t n_words = static_cast<std::size_t>(rounds < 0 ? 0 : rounds);
  std::vector<Word> inputs(n_in * n_words);
  for (std::size_t r = 0; r < n_words; ++r) {
    for (std::size_t i = 0; i < n_in; ++i) inputs[i * n_words + r] = rng();
  }
  const std::vector<Word> kw = key_words(key);
  netlist::Simulator::Scratch scratch;
  std::vector<Word> expected(n_out * n_words);
  std::vector<Word> got(n_out * n_words);
  gold.run_batch(inputs, {}, n_words, scratch, expected);
  locked_sim.run_batch(inputs, kw, n_words, scratch, got);
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff += std::popcount(expected[i] ^ got[i]);
  }
  return {diff, expected.size() * 64};
}

}  // namespace

bool verify_unlocks(const Netlist& original, const Netlist& locked,
                    const std::vector<bool>& key, int rounds, std::uint64_t seed,
                    bool also_sat_check) {
  if (original.num_inputs() != locked.num_inputs() ||
      original.num_outputs() != locked.num_outputs()) {
    return false;
  }
  std::mt19937_64 rng(seed);
  const netlist::Simulator gold(original);
  const bool cyclic = locked.is_cyclic();
  if (cyclic) {
    for (int r = 0; r < rounds; ++r) {
      const auto [diff, total] = diff_round_cyclic(gold, locked, key, rng);
      if (diff != 0) return false;
    }
  } else {
    const netlist::Simulator locked_sim(locked);
    const auto [diff, total] = diff_batch(gold, locked_sim, key, rounds, rng);
    if (diff != 0) return false;
  }
  if (also_sat_check && !cyclic) {
    return cnf::check_equivalence(original, {}, locked, key);
  }
  return true;
}

double error_rate(const Netlist& original, const Netlist& locked,
                  const std::vector<bool>& key, int rounds, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const netlist::Simulator gold(original);
  const bool cyclic = locked.is_cyclic();
  if (!cyclic) {
    const netlist::Simulator locked_sim(locked);
    const auto [diff, total] = diff_batch(gold, locked_sim, key, rounds, rng);
    return total == 0 ? 0.0 : static_cast<double>(diff) / total;
  }
  std::uint64_t diff = 0, total = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto [d, t] = diff_round_cyclic(gold, locked, key, rng);
    diff += d;
    total += t;
  }
  return total == 0 ? 0.0 : static_cast<double>(diff) / total;
}

CorruptionStats output_corruption(const Netlist& original,
                                  const LockedCircuit& locked, int num_keys,
                                  int rounds_per_key, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  CorruptionStats stats;
  for (int k = 0; k < num_keys; ++k) {
    std::vector<bool> key(locked.correct_key.size());
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = (rng() & 1) != 0;
    if (key == locked.correct_key) continue;  // want wrong keys only
    const double e =
        error_rate(original, locked.netlist, key, rounds_per_key, rng());
    stats.mean_error_rate += e;
    stats.min_error_rate = std::min(stats.min_error_rate, e);
    stats.max_error_rate = std::max(stats.max_error_rate, e);
    ++stats.keys_sampled;
  }
  if (stats.keys_sampled > 0) stats.mean_error_rate /= stats.keys_sampled;
  return stats;
}

}  // namespace fl::core
