// Key-Configurable Logarithmic-based Network (CLN) — §3.1 of the paper.
//
// A CLN is a cascade of stages of 2x2 switch-boxes (SwB). Each SwB is two
// 2:1 MUXes whose selects are key inputs; each network output optionally
// passes through a key-configurable inverter (XOR with a key bit).
//
// Topologies:
//  * kShuffleBlocking   — omega/shuffle network (Fig. 3): log2(N) stages of
//                         perfect-shuffle wiring + adjacent SwBs;
//                         N/2*log2(N) SwBs; blocking.
//  * kBanyanNonBlocking — the LOG(N, M, P) family of Shyy & Lea that the
//                         paper builds on: a butterfly (strides N/2 .. 1)
//                         followed by M extra mirrored stages, vertically
//                         cascaded P times with a key-selected output MUX
//                         column. The paper's recommended configuration is
//                         LOG(N, log2(N)-2, 1) — "almost non-blocking" at
//                         ~2x the blocking cost (Fig. 4); LOG(64, 3, 6) is
//                         the strictly non-blocking point (5x area).
//
// Each stage is described as a fixed pre-wiring permutation followed by a
// column of SwBs on explicit position pairs; this uniform form drives both
// netlist construction and key-to-permutation tracing.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace fl::core {

enum class ClnTopology : std::uint8_t {
  kShuffleBlocking,
  kBanyanNonBlocking,
};

struct ClnConfig {
  int n = 8;  // inputs/outputs; power of two, >= 4
  ClnTopology topology = ClnTopology::kBanyanNonBlocking;
  // Extra cascaded stages M beyond the log2(N) butterfly (banyan topology
  // only). -1 selects the paper's default M = log2(N) - 2; 0 is the plain
  // blocking butterfly; larger M cycles through mirrored strides.
  int extra_stages = -1;
  // Vertical copies P (banyan topology only). P > 1 replicates the switch
  // fabric and adds a key-selected P:1 MUX column on the outputs —
  // LOG(N, M, P) in Shyy & Lea's notation.
  int copies = 1;
  // Two independent select keys per SwB (one per MUX). When false the two
  // MUXes share one swap bit (permutation-only configurations).
  bool independent_selects = true;
  // Key-configurable inverter on every network output.
  bool with_inverters = true;
};

struct ClnStage {
  // cur'[p] = cur[pre_wiring[p]]; empty means identity.
  std::vector<int> pre_wiring;
  // SwB position pairs (a, b): SwB reads positions a,b and writes a,b.
  std::vector<std::pair<int, int>> pairs;
};

int cln_num_stages(const ClnConfig& config);  // per vertical copy
int cln_num_swbs(const ClnConfig& config);    // across all copies
// Key-bit budget: SwB selects (all copies) + copy-select bits + inverters.
int cln_num_keys(const ClnConfig& config);
// ceil(log2(copies)); 0 when copies == 1.
int cln_copy_select_bits(const ClnConfig& config);

// Structural description of one built CLN, independent of key values.
struct ClnInstance {
  ClnConfig config;
  std::vector<ClnStage> stages;  // one vertical copy (all copies identical)
  std::vector<netlist::GateId> inputs;     // as passed to build
  std::vector<netlist::GateId> outputs;    // after inverter layer
  // Key order: [copy 0 SwB selects][copy 1 ...]...[copy selects][inverters].
  std::vector<netlist::GateId> key_gates;
  int num_select_keys = 0;    // SwB + copy-select bits (leading portion)
  int num_swb_keys = 0;       // of which SwB select bits
  int num_copy_keys = 0;      // of which copy-select bits
  int num_inverter_keys = 0;  // trailing portion

  int num_stages() const { return static_cast<int>(stages.size()); }
  int num_swbs() const;  // across all copies

  // For a routing-key assignment (first num_select_keys bits of `key`; any
  // extra bits are ignored), returns the realized routing ignoring the
  // inverter layer: result[j] = input index appearing at output j.
  // Throws std::invalid_argument if the configuration does not route a
  // permutation (a SwB in broadcast configuration, or colliding
  // copy-mixed sources).
  std::vector<int> trace_permutation(const std::vector<bool>& key) const;
};

class ClnBuilder {
 public:
  // Throws std::invalid_argument unless config.n is a power of two >= 4,
  // extra_stages >= -1 and copies >= 1.
  explicit ClnBuilder(ClnConfig config);

  // Appends the CLN to `netlist`, fed by `inputs` (size must equal
  // config.n). New key inputs are appended to the netlist.
  ClnInstance build(netlist::Netlist& netlist,
                    std::span<const netlist::GateId> inputs,
                    const std::string& name_prefix = "cln") const;

  // Uniformly random permutation-routing key assignment: matched SwB bits
  // in every copy (no broadcast), one shared random copy choice. Size ==
  // num_select_keys of the built instance.
  std::vector<bool> random_routing_key(std::mt19937_64& rng) const;

  const ClnConfig& config() const { return config_; }
  const std::vector<ClnStage>& stages() const { return stages_; }

 private:
  ClnConfig config_;
  std::vector<ClnStage> stages_;
};

}  // namespace fl::core
