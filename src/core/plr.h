// Key-programmable LUTs (the "L" of PLR) — §3.2 of the paper.
//
// A gate is replaced by a MUX tree selecting among 2^k key bits, with the
// gate's original fanins as the tree selects: exactly the STT-LUT structure
// the paper describes ("each LUT will be translated to MUXes", adding up to
// k levels to the DPLL recursion below the CLN).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace fl::core {

inline constexpr int kMaxLutInputs = 5;  // paper: max ISCAS/MCNC fan-in is 5

struct KeyLutResult {
  netlist::GateId root = netlist::kNullGate;   // output of the MUX tree
  std::vector<netlist::GateId> key_gates;      // 2^k bits, truth-table order
  std::vector<bool> correct_key;               // truth table of the old gate
};

// True if `gate` can be LUT-ified: a logic gate with 1..kMaxLutInputs fanins.
bool lut_replaceable(const netlist::Netlist& netlist, netlist::GateId gate);

// Builds the MUX tree for `gate`'s function and redirects every reader of
// `gate` (including output ports) to the tree root. The original gate is
// left in place but dead (strip with netlist::compact-style cleanup by the
// caller if desired). Truth-table index: bit i = value of fanin i.
// Throws std::invalid_argument if !lut_replaceable.
KeyLutResult replace_with_key_lut(netlist::Netlist& netlist,
                                  netlist::GateId gate,
                                  const std::string& name_prefix);

}  // namespace fl::core
