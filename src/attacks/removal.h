// Removal attack (§4.2.2): models the *strongest* removal adversary — one
// who has located every inserted routing block AND recovered its correct
// permutation — and bypasses the blocks by wiring each network output
// straight to its routed source wire.
//
// Against a routing-only interconnect lock this recovers the circuit
// exactly. Against Full-Lock it fails: the leading gates were negated (the
// bypass skips the key-configurable inverters that undo the negation), so
// the recovered netlist mis-computes even with all remaining (LUT) keys set
// correctly.
#pragma once

#include "attacks/oracle.h"
#include "core/locked_circuit.h"

namespace fl::attacks {

struct RemovalResult {
  netlist::Netlist recovered;   // blocks bypassed; key inputs remain
  double error_rate = 1.0;      // vs oracle, remaining keys set correctly
  bool exact = false;           // error_rate == 0 (attack succeeded)
  int blocks_bypassed = 0;
};

RemovalResult removal_attack(const core::LockedCircuit& locked,
                             const Oracle& oracle, int rounds = 16,
                             std::uint64_t seed = 1);

}  // namespace fl::attacks
