#include "attacks/double_dip.h"

#include <chrono>

#include "cnf/miter.h"

namespace fl::attacks {

using Clock = std::chrono::steady_clock;

namespace {

std::vector<cnf::NetLit> key_lits(const cnf::EncodedCircuit& copy) {
  std::vector<cnf::NetLit> lits;
  lits.reserve(copy.key_vars.size());
  for (const sat::Var v : copy.key_vars) {
    lits.push_back(cnf::NetLit::of(sat::pos(v)));
  }
  return lits;
}

}  // namespace

DoubleDipResult DoubleDip::run(const core::LockedCircuit& locked,
                               const Oracle& oracle) const {
  const auto start = Clock::now();
  const auto deadline =
      options_.timeout_s > 0.0
          ? std::optional(start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          options_.timeout_s)))
          : std::nullopt;

  DoubleDipResult result;
  const auto finish = [&](AttackStatus status) {
    result.status = status;
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  };

  if (locked.netlist.num_keys() == 0) {
    result.key.clear();
    return finish(AttackStatus::kSuccess);
  }

  sat::Solver solver;
  cnf::SolverSink sink(solver);

  // Four circuit copies sharing the primary inputs. A 2-DIP is an input x
  // with two *distinct* keys (k1 != k2) agreeing on one output vector and
  // two distinct keys (k3 != k4) agreeing on a different one; whichever
  // side the oracle contradicts, at least two wrong keys die per query
  // (Shen & Zhou's guarantee).
  cnf::EncodeOptions free_inputs;
  const cnf::EncodedCircuit a = cnf::encode(locked.netlist, sink, free_inputs);
  const cnf::EncodedCircuit b = cnf::encode(locked.netlist, sink, free_inputs);
  const cnf::EncodedCircuit c = cnf::encode(locked.netlist, sink, free_inputs);
  const cnf::EncodedCircuit d = cnf::encode(locked.netlist, sink, free_inputs);
  const auto tie_inputs = [&](const cnf::EncodedCircuit& other) {
    for (std::size_t i = 0; i < a.input_vars.size(); ++i) {
      const sat::Lit x = sat::pos(a.input_vars[i]);
      const sat::Lit y = sat::pos(other.input_vars[i]);
      solver.add_clause({~x, y});
      solver.add_clause({x, ~y});
    }
  };
  tie_inputs(b);
  tie_inputs(c);
  tie_inputs(d);

  const cnf::NetLit ab_out_diff =
      cnf::encode_difference(a.outputs, b.outputs, sink);
  const cnf::NetLit cd_out_diff =
      cnf::encode_difference(c.outputs, d.outputs, sink);
  const cnf::NetLit ac_out_diff =
      cnf::encode_difference(a.outputs, c.outputs, sink);
  const std::vector<cnf::NetLit> ka = key_lits(a), kb = key_lits(b),
                                 kc = key_lits(c), kd = key_lits(d);
  const cnf::NetLit ab_key_diff = cnf::encode_difference(ka, kb, sink);
  const cnf::NetLit cd_key_diff = cnf::encode_difference(kc, kd, sink);

  if (ac_out_diff.is_const() && !ac_out_diff.const_value()) {
    // Output never depends on the key: any key unlocks.
    result.key.assign(locked.netlist.num_keys(), false);
    return finish(AttackStatus::kSuccess);
  }

  // Activation: (A==B) & (C==D) & (A!=C) & (kA!=kB) & (kC!=kD).
  const sat::Var act = solver.new_var();
  const auto guard = [&](cnf::NetLit condition, bool want) {
    if (condition.is_const()) {
      if (condition.const_value() != want) solver.add_clause({sat::neg(act)});
      return;
    }
    solver.add_clause({sat::neg(act), want ? condition.lit : ~condition.lit});
  };
  guard(ab_out_diff, false);
  guard(cd_out_diff, false);
  guard(ac_out_diff, true);
  guard(ab_key_diff, true);
  guard(cd_key_diff, true);
  const sat::Lit activate[] = {sat::pos(act)};

  // Best-effort key for early exits, sized to the key width so consumers
  // never index an empty vector.
  const auto best_effort_key = [&] {
    std::vector<bool> key(a.key_vars.size());
    for (std::size_t i = 0; i < a.key_vars.size(); ++i) {
      key[i] = solver.value_of(a.key_vars[i]);
    }
    return key;
  };

  while (true) {
    if (options_.max_iterations != 0 &&
        result.iterations >= options_.max_iterations) {
      result.key = best_effort_key();
      return finish(AttackStatus::kIterationLimit);
    }
    solver.set_deadline(deadline);
    const sat::LBool found = solver.solve(activate);
    if (found == sat::LBool::kUndef) {
      result.key = best_effort_key();
      return finish(AttackStatus::kTimeout);
    }
    if (found == sat::LBool::kFalse) break;

    std::vector<bool> pattern(a.input_vars.size());
    for (std::size_t i = 0; i < a.input_vars.size(); ++i) {
      pattern[i] = solver.value_of(a.input_vars[i]);
    }
    const std::vector<bool> response = oracle.query(pattern);
    for (const std::span<const sat::Var> keys :
         {std::span<const sat::Var>(a.key_vars), std::span(b.key_vars),
          std::span(c.key_vars), std::span(d.key_vars)}) {
      cnf::add_io_constraint(locked.netlist, solver, keys, pattern, response);
    }
    ++result.iterations;
  }

  // No 2-DIP remains: mop up with the plain SAT attack (keys the weaker
  // 2-DIP condition cannot distinguish), reusing whatever budget is left.
  AttackOptions rest = options_;
  if (options_.timeout_s > 0.0) {
    const double used =
        std::chrono::duration<double>(Clock::now() - start).count();
    rest.timeout_s = std::max(0.1, options_.timeout_s - used);
  }
  const AttackResult mop_up = SatAttack(rest).run(locked, oracle);
  result.fallback_iterations = mop_up.iterations;
  result.key = mop_up.key;
  return finish(mop_up.status);
}

}  // namespace fl::attacks
