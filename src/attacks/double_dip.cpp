#include "attacks/double_dip.h"

#include <algorithm>
#include <optional>

#include "attacks/sat_attack.h"
#include "cnf/tseytin.h"

namespace fl::attacks {

namespace {

std::vector<cnf::NetLit> key_lits(const cnf::EncodedCircuit& copy) {
  std::vector<cnf::NetLit> lits;
  lits.reserve(copy.key_vars.size());
  for (const sat::Var v : copy.key_vars) {
    lits.push_back(cnf::NetLit::of(sat::pos(v)));
  }
  return lits;
}

// The 2-DIP miter: four circuit copies sharing the primary inputs. A 2-DIP
// is an input x with two *distinct* keys (k1 != k2) agreeing on one output
// vector and two distinct keys (k3 != k4) agreeing on a different one;
// whichever side the oracle contradicts, at least two wrong keys die per
// query (Shen & Zhou's guarantee).
MiterContext::Parts encode_two_dip_miter(const netlist::Netlist& net,
                                         sat::SolverIface& solver,
                                         netlist::KeyConePartition* cone) {
  cnf::SolverSink sink(solver);
  // With a partition, copy A is restricted to the fanin support of the
  // key-dependent outputs and copies B/C/D re-encode only the key cone over
  // A's nets — the shared key-free region is encoded once instead of four
  // times. Output differences over key-independent ports fold away.
  cnf::EncodeOptions first;
  if (cone != nullptr) first.restrict_topo = cone->support_topo();
  const cnf::EncodedCircuit a = cnf::encode(net, sink, first);
  cnf::EncodeOptions shared;
  if (cone != nullptr) {
    shared.cone_topo = cone->cone_topo();
    shared.frontier_lits = a.net;
  } else {
    shared.shared_input_vars = a.input_vars;
  }
  const cnf::EncodedCircuit b = cnf::encode(net, sink, shared);
  const cnf::EncodedCircuit c = cnf::encode(net, sink, shared);
  const cnf::EncodedCircuit d = cnf::encode(net, sink, shared);

  const cnf::NetLit ab_out_diff =
      cnf::encode_difference(a.outputs, b.outputs, sink);
  const cnf::NetLit cd_out_diff =
      cnf::encode_difference(c.outputs, d.outputs, sink);
  const cnf::NetLit ac_out_diff =
      cnf::encode_difference(a.outputs, c.outputs, sink);
  const std::vector<cnf::NetLit> ka = key_lits(a), kb = key_lits(b),
                                 kc = key_lits(c), kd = key_lits(d);
  const cnf::NetLit ab_key_diff = cnf::encode_difference(ka, kb, sink);
  const cnf::NetLit cd_key_diff = cnf::encode_difference(kc, kd, sink);

  MiterContext::Parts parts;
  parts.inputs = a.input_vars;
  parts.key_copies = {a.key_vars, b.key_vars, c.key_vars, d.key_vars};
  if (ac_out_diff.is_const() && !ac_out_diff.const_value()) {
    // Output never depends on the key: any key unlocks.
    parts.trivially_equal = true;
    return parts;
  }

  // Activation: (A==B) & (C==D) & (A!=C) & (kA!=kB) & (kC!=kD).
  const sat::Var act = solver.new_var();
  const auto guard = [&](cnf::NetLit condition, bool want) {
    if (condition.is_const()) {
      if (condition.const_value() != want) solver.add_clause({sat::neg(act)});
      return;
    }
    solver.add_clause({sat::neg(act), want ? condition.lit : ~condition.lit});
  };
  guard(ab_out_diff, false);
  guard(cd_out_diff, false);
  guard(ac_out_diff, true);
  guard(ab_key_diff, true);
  guard(cd_key_diff, true);
  parts.activate = sat::pos(act);
  return parts;
}

// The 2-DIP policy: one oracle query per 2-DIP, I/O constraints on all four
// key copies; when no 2-DIP remains, mop up with the plain SAT attack
// (keys the weaker 2-DIP condition cannot distinguish), reusing whatever
// budget is left.
class DoubleDipPolicy final : public DipPolicy {
 public:
  DoubleDipPolicy(const core::LockedCircuit& locked, const Oracle& oracle,
                  const AttackOptions& options)
      : locked_(locked), oracle_(oracle), options_(options) {}

  const std::optional<AttackResult>& mop_up() const { return mop_up_; }

  LoopAction on_dip(MiterContext& ctx, const BudgetGuard&,
                    const std::vector<bool>& pattern, AttackResult&) override {
    ctx.constrain_io(pattern, oracle_.query(pattern));
    return LoopAction::kContinue;
  }

  LoopAction on_no_dip(MiterContext&, const BudgetGuard& budget,
                       AttackResult& result) override {
    AttackOptions rest = options_;
    if (budget.limited()) {
      rest.timeout_s = std::max(0.1, budget.remaining_s());
    }
    mop_up_ = SatAttack(rest).run(locked_, oracle_);
    result.status = mop_up_->status;
    result.key = mop_up_->key;
    result.banned_keys += mop_up_->banned_keys;
    return LoopAction::kDone;
  }

 private:
  const core::LockedCircuit& locked_;
  const Oracle& oracle_;
  const AttackOptions& options_;
  std::optional<AttackResult> mop_up_;
};

}  // namespace

DoubleDipResult DoubleDip::run(const core::LockedCircuit& locked,
                               const Oracle& oracle) const {
  DoubleDipResult result;
  if (locked.netlist.num_keys() == 0) {
    result.status = AttackStatus::kSuccess;
    return result;
  }

  const BudgetGuard budget(options_);
  MiterContext ctx(locked, encode_two_dip_miter, options_);
  DoubleDipPolicy policy(locked, oracle, options_);
  static_cast<AttackResult&>(result) =
      DipLoop(oracle, options_, budget, "double-dip").run(ctx, policy);
  if (policy.mop_up().has_value()) {
    // The decisive solve was the mop-up's, not the 2-DIP miter's: surface
    // its stop reason (the engine stamped the 2-DIP solver's, i.e. kNone)
    // and count its DIP-loop queries separately.
    result.stop_reason = policy.mop_up()->stop_reason;
    result.fallback_iterations = policy.mop_up()->iterations;
  }
  return result;
}

}  // namespace fl::attacks
