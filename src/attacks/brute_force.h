// Brute-force key sweep — the baseline the introduction argues against
// (2^k candidate keys). Practical only for tiny key spaces; used by tests
// and as a sanity cross-check of the SAT attack.
#pragma once

#include <cstdint>

#include "attacks/oracle.h"
#include "core/locked_circuit.h"

namespace fl::attacks {

struct BruteForceResult {
  bool found = false;
  std::vector<bool> key;
  std::uint64_t keys_tried = 0;
  double seconds = 0.0;
};

// Tries keys 0, 1, 2, ... (little-endian over the key bits) and returns the
// first key matching the oracle on `rounds` x 64 random patterns.
// Throws std::invalid_argument if the circuit has more than 24 key bits.
BruteForceResult brute_force_attack(const core::LockedCircuit& locked,
                                    const Oracle& oracle, int rounds = 4,
                                    std::uint64_t seed = 1);

}  // namespace fl::attacks
