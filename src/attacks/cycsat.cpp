#include "attacks/cycsat.h"

#include <chrono>
#include <limits>
#include <map>

#include "cnf/tseytin.h"
#include "netlist/structure.h"

namespace fl::attacks {

using cnf::NetLit;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Blocking condition of the edge source->consumer[pin] under a key copy:
// the edge is blocked iff the consumer is a MUX with a key-driven select
// that picks the *other* data input. Non-MUX edges and select pins are
// never blocked (const false).
NetLit edge_blocked(const Netlist& netlist, GateId consumer, std::size_t pin,
                    std::span<const sat::Var> key_vars) {
  const netlist::Gate& gate = netlist.gate(consumer);
  if (gate.type != GateType::kMux || pin == 0) return NetLit::constant(false);
  const GateId sel = gate.fanin[0];
  const int ki = netlist.key_index(sel);
  if (ki < 0) return NetLit::constant(false);
  // pin 1 ("a") is selected when sel == 0, so it is blocked when sel == 1.
  const bool blocked_when_true = pin == 1;
  return NetLit::of(sat::Lit(key_vars[ki], !blocked_when_true));
}

// Work budgets per key copy: beyond either, the builder degrades to an
// *under*-approximation of `open` (weaker NC conditions). That only costs
// attack speed, never soundness — the DIP loop bans stateful keys on
// repeated DIPs and the final key is functionally validated against the
// DIP history (see SatAttack::run). The step budget also bounds the DFS
// itself: path enumeration inside strongly-connected regions is
// exponential in the worst case even when most branches fold to constants.
constexpr std::size_t kNcTermBudget = 200'000;
constexpr std::size_t kNcStepBudget = 4'000'000;

class NcBuilder {
 public:
  NcBuilder(const Netlist& netlist, cnf::ClauseSink& sink,
            std::span<const sat::Var> key_vars, const BudgetGuard* budget)
      : netlist_(netlist), sink_(sink), key_vars_(key_vars), budget_(budget) {
    fanout_.resize(netlist.num_gates());
    for (GateId g = 0; g < netlist.num_gates(); ++g) {
      const netlist::Gate& gate = netlist.gate(g);
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        fanout_[gate.fanin[pin]].push_back({g, pin});
      }
    }
  }

  // Condition "an open structural path exists from the output of `from`
  // back to the output of `target`" — exact over simple paths. DFS with
  // on-stack cycle cutting; a node's result is memoized only when its DFS
  // subtree never touched the active stack (Tarjan-lowlink gate), because
  // results that depended on the current path are not reusable. This keeps
  // the (acyclic bulk of the) host graph linear while nodes inside
  // strongly-connected regions are re-expanded per path, which is what
  // makes the condition exact — an under-approximated "open" here would
  // re-admit cycle-latching keys and trap the DIP loop in fake DIPs.
  NetLit open_path(GateId from, GateId target) {
    if (target != memo_target_) {
      memo_.clear();
      memo_target_ = target;
    }
    stack_depth_.assign(netlist_.num_gates(), -1);
    depth_ = 0;
    int lowlink = 0;
    return open_rec(from, target, lowlink);
  }

 private:
  // `lowlink` (out): smallest stack depth this subtree reached; INT_MAX if
  // it never touched the active stack.
  NetLit open_rec(GateId x, GateId target, int& lowlink) {
    lowlink = std::numeric_limits<int>::max();
    if (x == target) return NetLit::constant(true);
    if (terms_emitted_ > kNcTermBudget || ++steps_ > kNcStepBudget ||
        budget_exhausted()) {
      lowlink = 0;  // path-dependent: never memoized
      return NetLit::constant(false);
    }
    if (stack_depth_[x] >= 0) {
      lowlink = stack_depth_[x];
      return NetLit::constant(false);
    }
    const auto hit = memo_.find(x);
    if (hit != memo_.end()) return hit->second;
    stack_depth_[x] = depth_++;
    std::vector<NetLit> terms;
    int subtree_low = std::numeric_limits<int>::max();
    for (const auto& [g, pin] : fanout_[x]) {
      const NetLit blocked = edge_blocked(netlist_, g, pin, key_vars_);
      if (blocked.is_const() && blocked.const_value()) continue;
      int child_low = 0;
      const NetLit downstream = open_rec(g, target, child_low);
      subtree_low = std::min(subtree_low, child_low);
      if (downstream.is_const() && !downstream.const_value()) continue;
      terms.push_back(cnf::emit_and(sink_, {~blocked, downstream}));
      ++terms_emitted_;
    }
    --depth_;
    stack_depth_[x] = -1;
    const NetLit result = cnf::emit_or(sink_, std::move(terms));
    if (subtree_low >= depth_) {
      // Subtree never reached a *proper* ancestor (reaching x itself is
      // fine — paths revisiting x are non-simple regardless of context):
      // the result is path-independent and safe to cache. Reusing it in a
      // context where it would thread through an on-stack node only
      // over-approximates `open` toward closed *walks*, and a closed
      // unblocked walk always contains a closed unblocked simple cycle, so
      // the NC conditions stay exact on the key space.
      memo_.emplace(x, result);
      lowlink = std::numeric_limits<int>::max();
    } else {
      lowlink = subtree_low;
    }
    return result;
  }

  // Attack-level budget check, on a stride (exhausted() reads the clock)
  // and sticky once tripped: like the term/step budgets, the cut degrades
  // every remaining condition uniformly.
  bool budget_exhausted() {
    if (budget_cut_) return true;
    if (budget_ != nullptr && (steps_ & 2047) == 0 &&
        budget_->exhausted().has_value()) {
      budget_cut_ = true;
    }
    return budget_cut_;
  }

 public:
  bool budget_cut() const { return budget_cut_; }

 private:
  const Netlist& netlist_;
  cnf::ClauseSink& sink_;
  std::span<const sat::Var> key_vars_;
  const BudgetGuard* budget_ = nullptr;
  bool budget_cut_ = false;
  std::vector<std::vector<std::pair<GateId, std::size_t>>> fanout_;
  std::map<GateId, NetLit> memo_;
  GateId memo_target_ = netlist::kNullGate;
  std::vector<int> stack_depth_;
  int depth_ = 0;
  std::size_t terms_emitted_ = 0;
  std::size_t steps_ = 0;
};

}  // namespace

CycSatStats add_nc_conditions(const Netlist& locked,
                              sat::SolverIface& solver,
                              std::span<const sat::Var> key1,
                              std::span<const sat::Var> key2,
                              const BudgetGuard* budget) {
  CycSatStats stats;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<netlist::Edge> feedback = netlist::feedback_edges(locked);
  stats.feedback_edges = static_cast<int>(feedback.size());
  if (!feedback.empty()) {
    cnf::SolverSink sink(solver);
    for (const std::span<const sat::Var> keys : {key1, key2}) {
      NcBuilder builder(locked, sink, keys, budget);
      for (const netlist::Edge& e : feedback) {
        // Cycle through e is open iff the edge itself is unblocked and an
        // open path leads from the consumer back to the source. Admissible
        // keys must break it.
        const NetLit blk = edge_blocked(locked, e.gate, e.pin, keys);
        const NetLit open_back = builder.open_path(e.gate, e.source);
        cnf::assert_true(sink, cnf::emit_or(sink, {blk, ~open_back}));
      }
      stats.budget_cut = stats.budget_cut || builder.budget_cut();
    }
  }
  stats.preprocess_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

void CycSat::add_preconditions(const Netlist& locked,
                               sat::SolverIface& solver,
                               std::span<const sat::Var> key1,
                               std::span<const sat::Var> key2,
                               const BudgetGuard& budget) const {
  stats_ = add_nc_conditions(locked, solver, key1, key2, &budget);
}

}  // namespace fl::attacks
