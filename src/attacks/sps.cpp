#include "attacks/sps.h"

#include <algorithm>
#include <cmath>

#include "netlist/structure.h"

namespace fl::attacks {

using netlist::GateId;

SpsReport sps_attack(const netlist::Netlist& locked, int top_k) {
  const std::vector<double> p = netlist::signal_probabilities(locked);

  // Key-dependent nets: transitive fanout of the key inputs.
  const auto fanout = locked.fanout_map();
  std::vector<bool> key_dep(locked.num_gates(), false);
  std::vector<GateId> stack(locked.keys().begin(), locked.keys().end());
  for (const GateId k : stack) key_dep[k] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId out : fanout[g]) {
      if (!key_dep[out]) {
        key_dep[out] = true;
        stack.push_back(out);
      }
    }
  }

  SpsReport report;
  std::vector<SkewedNet> nets;
  for (GateId g = 0; g < locked.num_gates(); ++g) {
    if (!key_dep[g] || netlist::is_source(locked.gate(g).type)) continue;
    const double skew = std::abs(p[g] - 0.5) * 2.0;
    nets.push_back(SkewedNet{g, p[g], skew});
    report.max_skew = std::max(report.max_skew, skew);
    report.mean_skew += skew;
  }
  if (!nets.empty()) report.mean_skew /= static_cast<double>(nets.size());
  std::sort(nets.begin(), nets.end(),
            [](const SkewedNet& a, const SkewedNet& b) {
              return a.skew > b.skew;
            });
  if (static_cast<int>(nets.size()) > top_k) nets.resize(top_k);
  report.top = std::move(nets);
  return report;
}

}  // namespace fl::attacks
