// Activated-chip oracle: the attacker's black-box access to a functional
// (unlocked) IC. Counts queries, as oracle access is the scarce resource in
// the threat model.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "netlist/simulator.h"

namespace fl::attacks {

class Oracle {
 public:
  // `original` must be key-free and acyclic.
  explicit Oracle(netlist::Netlist original);

  // Single-pattern query. Counts as 1 query.
  std::vector<bool> query(const std::vector<bool>& input) const;

  // Bit-parallel batch (one word per input net, up to 64 patterns packed).
  // `n_patterns` (1..64) is how many bit lanes actually carry patterns;
  // exactly that many queries are charged.
  std::vector<netlist::Word> query_words(std::span<const netlist::Word> inputs,
                                         std::size_t n_patterns) const;

  // Wide batch over net-major matrices: inputs[i * n_words + w] is word w of
  // input i (inputs.size() == num_inputs * n_words) and outputs is written
  // likewise (num_outputs * n_words). Charges `n_patterns` queries
  // (n_patterns <= n_words * 64). Runs through the SIMD simulator with a
  // thread_local scratch, so repeated large batches do not allocate.
  void query_batch(std::span<const netlist::Word> inputs, std::size_t n_words,
                   std::size_t n_patterns,
                   std::span<netlist::Word> outputs) const;

  std::uint64_t num_queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  const netlist::Netlist& circuit() const { return original_; }

 private:
  netlist::Netlist original_;
  netlist::Simulator simulator_;
  // Atomic so one oracle can serve concurrent attacks (portfolio racers,
  // parallel sweep jobs); Simulator::run is const with per-call scratch.
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace fl::attacks
