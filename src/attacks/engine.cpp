#include "attacks/engine.h"

#include <cstdio>
#include <stdexcept>

#include "cnf/miter.h"
#include "runtime/jsonl.h"

namespace fl::attacks {

using Clock = BudgetGuard::Clock;

const char* to_string(AttackStatus status) {
  switch (status) {
    case AttackStatus::kSuccess: return "success";
    case AttackStatus::kTimeout: return "timeout";
    case AttackStatus::kIterationLimit: return "iteration-limit";
    case AttackStatus::kKeySpaceEmpty: return "key-space-empty";
    case AttackStatus::kInterrupted: return "interrupted";
    case AttackStatus::kOutOfMemory: return "out-of-memory";
  }
  return "?";
}

const char* to_string(EncodeMode mode) {
  switch (mode) {
    case EncodeMode::kAuto: return "auto";
    case EncodeMode::kCone: return "cone";
    case EncodeMode::kFull: return "full";
  }
  return "?";
}

std::optional<EncodeMode> parse_encode_mode(std::string_view name) {
  if (name == "auto") return EncodeMode::kAuto;
  if (name == "cone") return EncodeMode::kCone;
  if (name == "full") return EncodeMode::kFull;
  return std::nullopt;
}

void JsonlTraceSink::record(const IterationTrace& trace) {
  runtime::JsonObject o;
  o.field("attack", trace.attack);
  if (trace.cell >= 0) o.field("cell", trace.cell);
  o.field("iter", trace.iteration)
      .field("dip", trace.dip)
      .field("cv_ratio", trace.cv_ratio)
      .field("decisions", trace.decisions)
      .field("propagations", trace.propagations)
      .field("conflicts", trace.conflicts)
      .field("solve_s", trace.solve_s)
      .field("clauses_added", trace.clauses_added)
      .field("vars_added", trace.vars_added)
      .field("encode_s", trace.encode_s);
  const std::string line = o.str();
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();  // a trace is for post-mortems; don't buffer past a crash
}

BudgetGuard::BudgetGuard(const AttackOptions& options, Clock::time_point start)
    : start_(start), interrupt_(options.interrupt),
      race_cancel_(options.race_cancel) {
  if (options.timeout_s > 0.0) {
    deadline_ = start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(options.timeout_s));
  }
  // An enclosing job budget caps the attack's own timeout, never extends it.
  if (options.deadline.has_value() &&
      (!deadline_ || *options.deadline < *deadline_)) {
    deadline_ = *options.deadline;
  }
}

double BudgetGuard::elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

double BudgetGuard::remaining_s() const {
  if (!deadline_) return 0.0;
  return std::max(
      0.0, std::chrono::duration<double>(*deadline_ - Clock::now()).count());
}

void BudgetGuard::arm(sat::SolverIface& solver) const {
  solver.set_deadline(deadline_);
  solver.set_interrupts(interrupt_, race_cancel_);
}

std::optional<AttackStatus> BudgetGuard::exhausted() const {
  for (const std::atomic<bool>* flag : {interrupt_, race_cancel_}) {
    if (flag != nullptr && flag->load(std::memory_order_relaxed)) {
      return AttackStatus::kInterrupted;
    }
  }
  if (deadline_ && Clock::now() >= *deadline_) return AttackStatus::kTimeout;
  return std::nullopt;
}

AttackStatus BudgetGuard::undef_status(const sat::SolverIface& solver) const {
  switch (solver.last_stop_reason()) {
    case sat::StopReason::kInterrupt: return AttackStatus::kInterrupted;
    case sat::StopReason::kOutOfMemory: return AttackStatus::kOutOfMemory;
    default: return AttackStatus::kTimeout;
  }
}

sat::SolverConfig solver_config_for(const AttackOptions& options,
                                    sat::SolverConfig base) {
  if (options.memory_limit_mb > 0) {
    base.memory_limit_mb = options.memory_limit_mb;
  }
  return base;
}

MiterContext::Encoder MiterContext::double_key() {
  return [](const netlist::Netlist& locked, sat::SolverIface& solver,
            netlist::KeyConePartition* cone) {
    const cnf::AttackMiter miter =
        cnf::encode_attack_miter(locked, solver, cone);
    Parts parts;
    parts.inputs = miter.inputs;
    parts.key_copies = {miter.key1, miter.key2};
    parts.activate = miter.activate;
    parts.trivially_equal = miter.trivially_equal;
    return parts;
  };
}

MiterContext::MiterContext(const core::LockedCircuit& locked,
                           const Encoder& encoder,
                           const sat::SolverConfig& config)
    : locked_(&locked), solver_(std::make_unique<sat::Solver>(config)) {
  const auto t0 = Clock::now();
  parts_ = encoder(locked.netlist, *solver_, nullptr);
  encode_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
}

MiterContext::MiterContext(const core::LockedCircuit& locked,
                           const Encoder& encoder,
                           const AttackOptions& options,
                           const sat::SolverConfig& config)
    : locked_(&locked) {
  const sat::SolverConfig base = solver_config_for(options, config);
  std::unique_ptr<sat::SolverIface> engine;
  if (options.portfolio > 1 && options.par_mode != sat::ParMode::kRace) {
    sat::ParallelConfig pc;
    pc.num_workers = options.portfolio;
    pc.mode = options.par_mode;
    pc.base = base;
    pc.cube_depth = options.cube_depth;
    engine = std::make_unique<sat::ParallelSolver>(pc);
  } else {
    engine = std::make_unique<sat::Solver>(base);
  }
  parallel_ = dynamic_cast<sat::ParallelSolver*>(engine.get());
  if (options.preprocess) {
    // The wrapper never renumbers, so variable ids handed out below (split
    // candidates, assumption literals) stay valid across the flush.
    inner_solver_ = std::move(engine);
    auto pre = std::make_unique<sat::PreprocessSolver>(
        *inner_solver_, options.preprocess_config);
    pre_ = pre.get();
    solver_ = std::move(pre);
  } else {
    solver_ = std::move(engine);
  }
  init_cone(options.encode_mode);
  const auto t0 = Clock::now();
  parts_ = encoder(locked.netlist, *solver_, cone_.get());
  encode_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
  freeze_interface();
  if (parallel_ != nullptr) {
    // Cube-and-conquer splits on the CLN swap-key variables: hand the
    // splitter every key copy's variables; it ranks them by VSIDS activity
    // (or occurrence counts before any search history exists).
    std::vector<sat::Var> keys;
    for (const std::vector<sat::Var>& copy : parts_.key_copies) {
      keys.insert(keys.end(), copy.begin(), copy.end());
    }
    parallel_->set_split_candidates(std::move(keys));
  }
}

void MiterContext::init_cone(EncodeMode mode) {
  const netlist::Netlist& net = locked_->netlist;
  bool want = false;
  switch (mode) {
    case EncodeMode::kFull:
      return;
    case EncodeMode::kCone:
      if (net.is_cyclic()) {
        throw std::invalid_argument(
            "MiterContext: cone encoding needs an acyclic lock (cyclic locks "
            "fall back to full encoding under kAuto)");
      }
      want = net.num_keys() > 0;
      break;
    case EncodeMode::kAuto:
      want = !net.is_cyclic() && net.num_keys() > 0;
      break;
  }
  if (!want) return;
  cone_ = std::make_unique<netlist::KeyConePartition>(net);
  fixed_sim_ = std::make_unique<netlist::Simulator>(cone_->fixed_region());
  // Only tap entries are ever read by the cone encoder; the const-0 default
  // covers the rest of the GateId space.
  frontier_.assign(net.num_gates(), cnf::NetLit::constant(false));
}

void MiterContext::freeze_interface() {
  if (pre_ == nullptr) return;
  for (const sat::Var v : parts_.inputs) {
    if (v != sat::kNullVar) pre_->freeze(v);
  }
  for (const std::vector<sat::Var>& copy : parts_.key_copies) {
    for (const sat::Var v : copy) {
      if (v != sat::kNullVar) pre_->freeze(v);
    }
  }
  if (parts_.activate.var() >= 0) pre_->freeze(parts_.activate.var());
}

void MiterContext::finalize_encoding() {
  if (finalized_) return;
  finalized_ = true;
  if (pre_ != nullptr) pre_->flush();
  base_clauses_ = solver_->num_clauses();
  base_vars_ = static_cast<std::size_t>(solver_->num_vars());
}

sat::PreprocessStats MiterContext::preprocess_stats() const {
  return pre_ != nullptr ? pre_->preprocess_stats() : sat::PreprocessStats{};
}

void MiterContext::sample_ratio() {
  if (solver_->num_vars() > 0) {
    last_ratio_ = static_cast<double>(solver_->num_clauses()) /
                  static_cast<double>(solver_->num_vars());
    ratio_sum_ += last_ratio_;
    ++ratio_samples_;
  }
}

double MiterContext::mean_ratio() const {
  return ratio_samples_ > 0 ? ratio_sum_ / static_cast<double>(ratio_samples_)
                            : 0.0;
}

std::vector<bool> MiterContext::extract_pattern() const {
  std::vector<bool> pattern(parts_.inputs.size());
  for (std::size_t i = 0; i < parts_.inputs.size(); ++i) {
    pattern[i] = solver_->value_of(parts_.inputs[i]);
  }
  return pattern;
}

std::vector<bool> MiterContext::extract_key(
    std::span<const sat::Var> key_vars) const {
  std::vector<bool> key(key_vars.size());
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    key[i] = solver_->value_of(key_vars[i]);
  }
  return key;
}

void MiterContext::constrain_io(const std::vector<bool>& pattern,
                                const std::vector<bool>& response) {
  constrain_io_batch({&pattern, 1}, {&response, 1});
}

void MiterContext::constrain_io_batch(
    std::span<const std::vector<bool>> patterns,
    std::span<const std::vector<bool>> responses) {
  if (patterns.size() != responses.size()) {
    throw std::invalid_argument(
        "MiterContext::constrain_io_batch: pattern/response count mismatch");
  }
  if (patterns.empty()) return;
  const auto t0 = Clock::now();
  if (cone_ == nullptr) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      for (const std::vector<sat::Var>& keys : parts_.key_copies) {
        cnf::add_io_constraint(locked_->netlist, *solver_, keys, patterns[p],
                               responses[p]);
      }
    }
  } else {
    // One bit-parallel sweep of the key-free region for the whole batch
    // (pattern p lives in bit p%64 of word p/64), then a cone-only Tseytin
    // encode per pattern and key copy against the swept constants.
    const std::size_t n = patterns.size();
    const std::size_t n_words = (n + 63) / 64;
    const std::size_t n_in = locked_->netlist.num_inputs();
    std::vector<netlist::Word> in(n_in * n_words, 0);
    for (std::size_t p = 0; p < n; ++p) {
      const std::vector<bool>& pat = patterns[p];
      if (pat.size() != n_in) {
        throw std::invalid_argument(
            "MiterContext::constrain_io_batch: pattern size mismatch");
      }
      for (std::size_t i = 0; i < n_in; ++i) {
        if (pat[i]) in[i * n_words + p / 64] |= netlist::Word{1} << (p % 64);
      }
    }
    const std::span<const netlist::GateId> taps = cone_->taps();
    std::vector<netlist::Word> out(taps.size() * n_words);
    fixed_sim_->run_batch(in, {}, n_words, fixed_scratch_, out);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t t = 0; t < taps.size(); ++t) {
        const bool v = ((out[t * n_words + p / 64] >> (p % 64)) & 1) != 0;
        frontier_[static_cast<std::size_t>(taps[t])] =
            cnf::NetLit::constant(v);
      }
      for (const std::vector<sat::Var>& keys : parts_.key_copies) {
        cnf::add_io_constraint_cone(locked_->netlist, *solver_, keys,
                                    cone_->cone_topo(), frontier_,
                                    responses[p]);
      }
    }
  }
  encode_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
}

void MiterContext::ban_key(std::span<const sat::Var> key_vars,
                           const std::vector<bool>& key) {
  sat::Clause ban;
  ban.reserve(key_vars.size());
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    ban.push_back(sat::Lit(key_vars[i], key[i]));
  }
  solver_->add_clause(std::move(ban));
}

LoopAction DipPolicy::after_iteration(MiterContext&, const BudgetGuard&,
                                      AttackResult&) {
  return LoopAction::kContinue;
}

LoopAction DipPolicy::on_no_dip(MiterContext& ctx, const BudgetGuard& budget,
                                AttackResult& result) {
  // No distinguishing input remains: any model of the surviving key space is
  // functionally correct.
  budget.arm(ctx.solver());
  const sat::LBool key_found = ctx.solver().solve();
  if (key_found == sat::LBool::kUndef) {
    result.status = budget.undef_status(ctx.solver());
    return LoopAction::kDone;
  }
  if (key_found == sat::LBool::kFalse) {
    result.status = AttackStatus::kKeySpaceEmpty;
    return LoopAction::kDone;
  }
  result.key = ctx.extract_key();
  result.status = AttackStatus::kSuccess;
  return LoopAction::kDone;
}

DipLoop::DipLoop(const Oracle& oracle, const AttackOptions& options,
                 const BudgetGuard& budget, std::string name)
    : oracle_(oracle), options_(options), budget_(budget),
      name_(std::move(name)) {}

AttackResult DipLoop::run(MiterContext& ctx, DipPolicy& policy) {
  AttackResult result;
  const std::uint64_t queries_before = oracle_.num_queries();
  sat::SolverIface& solver = ctx.solver();

  // Commit the staged base encoding (preprocessing runs here, over the
  // miter plus whatever preconditions the attack added before this loop).
  ctx.finalize_encoding();

  // Wall time spent inside completed DIP iterations (DIP solve + policy's
  // oracle query + constraint encoding); the divisor for
  // mean_iteration_seconds. Miter encoding (before this loop) and the final
  // key extraction are excluded.
  double dip_loop_seconds = 0.0;

  const auto finish = [&]() -> AttackResult& {
    result.seconds = budget_.elapsed_s();
    result.mean_iteration_seconds =
        result.iterations > 0
            ? dip_loop_seconds / static_cast<double>(result.iterations)
            : 0.0;
    result.mean_clause_var_ratio = ctx.mean_ratio();
    result.solver_stats = solver.stats();
    result.stop_reason = solver.last_stop_reason();
    result.oracle_queries = oracle_.num_queries() - queries_before;
    result.base_clauses = ctx.base_clauses();
    result.base_vars = ctx.base_vars();
    result.clauses_added = static_cast<long long>(solver.num_clauses()) -
                           static_cast<long long>(ctx.base_clauses());
    result.vars_added = static_cast<long long>(solver.num_vars()) -
                        static_cast<long long>(ctx.base_vars());
    result.encode_seconds = ctx.encode_seconds();
    result.cone_encoding = ctx.cone_encoding();
    result.preprocess = ctx.preprocess_stats();
    // Non-success exits keep the best-effort key sized to the key width so
    // consumers never index an empty vector.
    if (result.key.empty()) result.key = ctx.extract_key();
    return result;
  };

  if (ctx.trivially_equal()) {
    // Output does not depend on the key at all: any key unlocks.
    result.key.assign(ctx.locked().netlist.num_keys(), false);
    result.status = AttackStatus::kSuccess;
    return finish();
  }

  const sat::Lit activate[] = {ctx.activate()};
  while (true) {
    if (options_.max_iterations != 0 &&
        result.iterations >= options_.max_iterations) {
      result.status = AttackStatus::kIterationLimit;
      return finish();
    }
    const auto iteration_start = Clock::now();
    const auto iter_clauses = static_cast<long long>(solver.num_clauses());
    const auto iter_vars = static_cast<long long>(solver.num_vars());
    const double iter_encode_s = ctx.encode_seconds();
    budget_.arm(solver);
    ctx.sample_ratio();
    const double ratio = ctx.last_ratio();
    const sat::CounterSnapshot before = solver.counters();
    const auto solve_start = Clock::now();
    const sat::LBool dip_found = solver.solve(activate);
    const double solve_s =
        std::chrono::duration<double>(Clock::now() - solve_start).count();
    if (dip_found == sat::LBool::kUndef) {
      result.status = budget_.undef_status(solver);
      return finish();
    }
    if (dip_found == sat::LBool::kFalse) {
      if (policy.on_no_dip(ctx, budget_, result) == LoopAction::kRetry) {
        continue;  // e.g. a stateful key candidate was banned
      }
      return finish();
    }

    const std::vector<bool> pattern = ctx.extract_pattern();
    const LoopAction action = policy.on_dip(ctx, budget_, pattern, result);
    if (action == LoopAction::kRetry) continue;  // uncounted (key bans)
    if (action == LoopAction::kDone) return finish();

    ++result.iterations;
    dip_loop_seconds +=
        std::chrono::duration<double>(Clock::now() - iteration_start).count();
    if (options_.trace != nullptr) {
      IterationTrace trace;
      trace.attack = name_;
      trace.cell = options_.trace_cell;
      trace.iteration = result.iterations - 1;
      trace.dip.reserve(pattern.size());
      for (const bool bit : pattern) trace.dip.push_back(bit ? '1' : '0');
      trace.cv_ratio = ratio;
      const sat::CounterSnapshot after = solver.counters();
      trace.decisions = after.decisions - before.decisions;
      trace.propagations = after.propagations - before.propagations;
      trace.conflicts = after.conflicts - before.conflicts;
      trace.solve_s = solve_s;
      trace.clauses_added =
          static_cast<long long>(solver.num_clauses()) - iter_clauses;
      trace.vars_added = static_cast<long long>(solver.num_vars()) - iter_vars;
      trace.encode_s = ctx.encode_seconds() - iter_encode_s;
      options_.trace->record(trace);
    }
    if (options_.verbose) {
      std::fprintf(stderr, "[%s] iter %llu, %d vars, %zu clauses\n",
                   name_.c_str(),
                   static_cast<unsigned long long>(result.iterations),
                   solver.num_vars(), solver.num_clauses());
    }
    if (policy.after_iteration(ctx, budget_, result) == LoopAction::kDone) {
      return finish();
    }
  }
}

}  // namespace fl::attacks
