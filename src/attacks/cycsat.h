// CycSAT (Zhou et al., ICCAD'17): SAT attack on cyclic logic locking.
//
// Pre-processing derives, for every feedback edge of the locked netlist, a
// "no structural cycle" (NC) condition over the key inputs: a key is only
// admissible if every structural cycle through that edge is broken by some
// key-controlled MUX select on the path. The conditions are asserted for
// both key copies of the attack miter; the standard DIP loop then runs on
// the (constraint-wise acyclic) problem.
#pragma once

#include "attacks/sat_attack.h"

namespace fl::attacks {

struct CycSatStats {
  int feedback_edges = 0;
  double preprocess_seconds = 0.0;
  // True when the NC builder degraded to weaker (under-approximated)
  // conditions because the attack's wall budget or interrupt tripped
  // mid-preprocessing. Sound: the DIP loop still bans stateful keys.
  bool budget_cut = false;
};

// Derives and asserts the NC ("no structural cycle") key conditions for
// both key-variable sets. No-op for acyclic netlists. Shared by CycSat and
// AppSat (the paper runs AppSAT on top of CycSAT for cyclic Full-Lock).
// When `budget` is given, an exhausted budget degrades the conditions
// instead of letting preprocessing overshoot the attack's deadline.
CycSatStats add_nc_conditions(const netlist::Netlist& locked,
                              sat::SolverIface& solver,
                              std::span<const sat::Var> key1,
                              std::span<const sat::Var> key2,
                              const BudgetGuard* budget = nullptr);

class CycSat final : public SatAttack {
 public:
  explicit CycSat(AttackOptions options = {}) : SatAttack(options) {}

  const CycSatStats& preprocess_stats() const { return stats_; }

 protected:
  void add_preconditions(const netlist::Netlist& locked,
                         sat::SolverIface& solver,
                         std::span<const sat::Var> key1,
                         std::span<const sat::Var> key2,
                         const BudgetGuard& budget) const override;

  const char* name() const override { return "cycsat"; }

 private:
  mutable CycSatStats stats_;
};

}  // namespace fl::attacks
