// AppSAT (Shamsi et al., HOST'17): approximate SAT attack.
//
// Runs the standard DIP loop (via the shared engine, attacks/engine.h), but
// every `settle_every` iterations extracts the current key candidate and
// estimates its error rate against the oracle on random queries. If the
// error drops below `error_threshold` the attack settles for the
// approximate key (this is what defeats point-function schemes like
// SARLock/Anti-SAT, whose wrong keys err on ~one input). Failing random
// queries are fed back as additional I/O constraints.
#pragma once

#include "attacks/engine.h"

namespace fl::attacks {

struct AppSatOptions {
  AttackOptions base;
  int settle_every = 4;         // DIP iterations between settlement checks
  int rounds_per_check = 8;     // 64-pattern rounds per error estimate
  double error_threshold = 0.005;
};

// Everything AttackResult reports (iterations, budgets, per-iteration
// means, solver stats) plus the approximation verdict.
struct AppSatResult : AttackResult {
  bool approximate = false;      // true if settled below the threshold
  double estimated_error = 1.0;  // error rate of `key` vs the oracle
};

class AppSat {
 public:
  explicit AppSat(AppSatOptions options = {}) : options_(options) {}

  AppSatResult run(const core::LockedCircuit& locked,
                   const Oracle& oracle) const;

 private:
  AppSatOptions options_;
};

}  // namespace fl::attacks
