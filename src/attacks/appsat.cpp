#include "attacks/appsat.h"

#include <bit>
#include <chrono>
#include <optional>
#include <random>

#include "attacks/cycsat.h"
#include "cnf/miter.h"
#include "netlist/simulator.h"

namespace fl::attacks {

using Clock = std::chrono::steady_clock;
using netlist::Word;

namespace {

std::vector<Word> key_to_words(const std::vector<bool>& key) {
  std::vector<Word> w(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    w[i] = key[i] ? ~Word{0} : Word{0};
  }
  return w;
}

}  // namespace

AppSatResult AppSat::run(const core::LockedCircuit& locked,
                         const Oracle& oracle) const {
  const auto start = Clock::now();
  const auto deadline =
      options_.base.timeout_s > 0.0
          ? std::optional(start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          options_.base.timeout_s)))
          : std::nullopt;
  std::mt19937_64 rng(0xA99547ull);

  AppSatResult result;
  sat::Solver solver;
  const cnf::AttackMiter miter =
      cnf::encode_attack_miter(locked.netlist, solver);
  if (locked.netlist.is_cyclic()) {
    add_nc_conditions(locked.netlist, solver, miter.key1, miter.key2);
  }

  const bool cyclic = locked.netlist.is_cyclic();
  std::optional<netlist::Simulator> locked_sim;
  if (!cyclic) locked_sim.emplace(locked.netlist);

  const auto finish = [&](AttackStatus status) {
    result.status = status;
    // Keep the key sized to the key width on every exit path (best-effort
    // solver assignment when no candidate was extracted) so consumers never
    // index an empty vector.
    if (result.key.empty()) {
      result.key.resize(miter.key1.size());
      for (std::size_t i = 0; i < miter.key1.size(); ++i) {
        result.key[i] = solver.value_of(miter.key1[i]);
      }
    }
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  };

  const auto extract_key = [&]() {
    std::vector<bool> key(miter.key1.size());
    for (std::size_t i = 0; i < miter.key1.size(); ++i) {
      key[i] = solver.value_of(miter.key1[i]);
    }
    return key;
  };

  // Estimates the error of `key` on random queries; feeds at most one
  // failing pattern per round back into the solver (query reinforcement).
  const auto estimate_error = [&](const std::vector<bool>& key) {
    const std::vector<Word> kw = key_to_words(key);
    std::uint64_t wrong_bits = 0, total_bits = 0;
    for (int round = 0; round < options_.rounds_per_check; ++round) {
      std::vector<Word> inputs(locked.netlist.num_inputs());
      for (Word& w : inputs) w = rng();
      const std::vector<Word> golden = oracle.query_words(inputs);
      std::vector<Word> got;
      Word valid = ~Word{0};
      if (cyclic) {
        const auto sim = netlist::simulate_cyclic(locked.netlist, inputs, kw);
        got = sim.outputs;
        valid = sim.converged;
      } else {
        got = locked_sim->run(inputs, kw);
      }
      Word any_diff = 0;
      for (std::size_t o = 0; o < golden.size(); ++o) {
        const Word diff = (golden[o] ^ got[o]) | ~valid;
        any_diff |= diff;
        wrong_bits += std::popcount(diff);
        total_bits += 64;
      }
      if (any_diff != 0) {
        // Reinforce with the first failing pattern of this round.
        const int bit = std::countr_zero(any_diff);
        std::vector<bool> pattern(inputs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          pattern[i] = ((inputs[i] >> bit) & 1) != 0;
        }
        std::vector<bool> response(golden.size());
        for (std::size_t o = 0; o < golden.size(); ++o) {
          response[o] = ((golden[o] >> bit) & 1) != 0;
        }
        cnf::add_io_constraint(locked.netlist, solver, miter.key1, pattern,
                               response);
        cnf::add_io_constraint(locked.netlist, solver, miter.key2, pattern,
                               response);
      }
    }
    return total_bits == 0 ? 0.0
                           : static_cast<double>(wrong_bits) / total_bits;
  };

  if (miter.trivially_equal) {
    result.key.assign(locked.netlist.num_keys(), false);
    result.estimated_error = 0.0;
    return finish(AttackStatus::kSuccess);
  }

  const sat::Lit activate[] = {miter.activate};
  while (true) {
    if (options_.base.max_iterations != 0 &&
        result.iterations >= options_.base.max_iterations) {
      return finish(AttackStatus::kIterationLimit);
    }
    solver.set_deadline(deadline);
    const sat::LBool dip_found = solver.solve(activate);
    if (dip_found == sat::LBool::kUndef) return finish(AttackStatus::kTimeout);
    if (dip_found == sat::LBool::kFalse) {
      solver.set_deadline(deadline);
      const sat::LBool key_found = solver.solve();
      if (key_found == sat::LBool::kUndef) {
        return finish(AttackStatus::kTimeout);
      }
      if (key_found == sat::LBool::kFalse) {
        return finish(AttackStatus::kKeySpaceEmpty);
      }
      result.key = extract_key();
      result.approximate = false;
      result.estimated_error = estimate_error(result.key);
      return finish(AttackStatus::kSuccess);
    }

    std::vector<bool> pattern(miter.inputs.size());
    for (std::size_t i = 0; i < miter.inputs.size(); ++i) {
      pattern[i] = solver.value_of(miter.inputs[i]);
    }
    const std::vector<bool> response = oracle.query(pattern);
    cnf::add_io_constraint(locked.netlist, solver, miter.key1, pattern,
                           response);
    cnf::add_io_constraint(locked.netlist, solver, miter.key2, pattern,
                           response);
    ++result.iterations;

    if (result.iterations % options_.settle_every == 0) {
      solver.set_deadline(deadline);
      const sat::LBool settled = solver.solve();
      if (settled == sat::LBool::kUndef) return finish(AttackStatus::kTimeout);
      if (settled == sat::LBool::kFalse) {
        return finish(AttackStatus::kKeySpaceEmpty);
      }
      const std::vector<bool> candidate = extract_key();
      const double error = estimate_error(candidate);
      if (error <= options_.error_threshold) {
        result.key = candidate;
        result.approximate = true;
        result.estimated_error = error;
        return finish(AttackStatus::kSuccess);
      }
    }
  }
}

}  // namespace fl::attacks
