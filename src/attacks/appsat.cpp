#include "attacks/appsat.h"

#include <bit>
#include <optional>
#include <random>

#include "attacks/cycsat.h"
#include "netlist/simulator.h"

namespace fl::attacks {

using netlist::Word;

namespace {

std::vector<Word> key_to_words(const std::vector<bool>& key) {
  std::vector<Word> w(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    w[i] = key[i] ? ~Word{0} : Word{0};
  }
  return w;
}

// The AppSAT policy: the plain single-DIP step, interleaved with
// settlement checks that may end the attack early on an approximate key.
class AppSatPolicy final : public DipPolicy {
 public:
  AppSatPolicy(const core::LockedCircuit& locked, const Oracle& oracle,
               const AppSatOptions& options)
      : locked_(locked), oracle_(oracle), options_(options),
        cyclic_(locked.netlist.is_cyclic()), rng_(0xA99547ull) {
    if (!cyclic_) locked_sim_.emplace(locked.netlist);
  }

  bool approximate() const { return approximate_; }
  double estimated_error() const { return estimated_error_; }

  LoopAction on_dip(MiterContext& ctx, const BudgetGuard&,
                    const std::vector<bool>& pattern, AttackResult&) override {
    ctx.constrain_io(pattern, oracle_.query(pattern));
    return LoopAction::kContinue;
  }

  LoopAction after_iteration(MiterContext& ctx, const BudgetGuard& budget,
                             AttackResult& result) override {
    if (result.iterations %
            static_cast<std::uint64_t>(options_.settle_every) !=
        0) {
      return LoopAction::kContinue;
    }
    budget.arm(ctx.solver());
    const sat::LBool settled = ctx.solver().solve();
    if (settled == sat::LBool::kUndef) {
      result.status = budget.undef_status(ctx.solver());
      return LoopAction::kDone;
    }
    if (settled == sat::LBool::kFalse) {
      result.status = AttackStatus::kKeySpaceEmpty;
      return LoopAction::kDone;
    }
    const std::vector<bool> candidate = ctx.extract_key();
    const double error = estimate_error(ctx, candidate);
    if (error <= options_.error_threshold) {
      result.key = candidate;
      result.status = AttackStatus::kSuccess;
      approximate_ = true;
      estimated_error_ = error;
      return LoopAction::kDone;
    }
    return LoopAction::kContinue;
  }

  LoopAction on_no_dip(MiterContext& ctx, const BudgetGuard& budget,
                       AttackResult& result) override {
    const LoopAction base = DipPolicy::on_no_dip(ctx, budget, result);
    if (base == LoopAction::kDone &&
        result.status == AttackStatus::kSuccess) {
      // Exact endgame: no DIP remains, the key is provably correct — the
      // estimate only reports its (sampled) residual error.
      approximate_ = false;
      estimated_error_ = estimate_error(ctx, result.key);
    }
    return base;
  }

 private:
  // Estimates the error of `key` on random queries; feeds at most one
  // failing pattern per round back into the solver (query reinforcement).
  double estimate_error(MiterContext& ctx, const std::vector<bool>& key) {
    const std::vector<Word> kw = key_to_words(key);
    std::uint64_t wrong_bits = 0, total_bits = 0;
    for (int round = 0; round < options_.rounds_per_check; ++round) {
      std::vector<Word> inputs(locked_.netlist.num_inputs());
      for (Word& w : inputs) w = rng_();
      const std::vector<Word> golden = oracle_.query_words(inputs);
      std::vector<Word> got;
      Word valid = ~Word{0};
      if (cyclic_) {
        const auto sim = netlist::simulate_cyclic(locked_.netlist, inputs, kw);
        got = sim.outputs;
        valid = sim.converged;
      } else {
        got = locked_sim_->run(inputs, kw);
      }
      Word any_diff = 0;
      for (std::size_t o = 0; o < golden.size(); ++o) {
        const Word diff = (golden[o] ^ got[o]) | ~valid;
        any_diff |= diff;
        wrong_bits += std::popcount(diff);
        total_bits += 64;
      }
      if (any_diff != 0) {
        // Reinforce with the first failing pattern of this round.
        const int bit = std::countr_zero(any_diff);
        std::vector<bool> pattern(inputs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          pattern[i] = ((inputs[i] >> bit) & 1) != 0;
        }
        std::vector<bool> response(golden.size());
        for (std::size_t o = 0; o < golden.size(); ++o) {
          response[o] = ((golden[o] >> bit) & 1) != 0;
        }
        ctx.constrain_io(pattern, response);
      }
    }
    return total_bits == 0 ? 0.0
                           : static_cast<double>(wrong_bits) / total_bits;
  }

  const core::LockedCircuit& locked_;
  const Oracle& oracle_;
  const AppSatOptions& options_;
  const bool cyclic_;
  std::optional<netlist::Simulator> locked_sim_;
  std::mt19937_64 rng_;
  bool approximate_ = false;
  double estimated_error_ = 1.0;
};

}  // namespace

AppSatResult AppSat::run(const core::LockedCircuit& locked,
                         const Oracle& oracle) const {
  const BudgetGuard budget(options_.base);
  MiterContext ctx(locked, MiterContext::double_key(), options_.base);
  if (locked.netlist.is_cyclic()) {
    // The paper runs AppSAT on top of CycSAT for cyclic Full-Lock.
    add_nc_conditions(locked.netlist, ctx.solver(), ctx.key_copy(0),
                      ctx.key_copy(1), &budget);
  }
  AppSatPolicy policy(locked, oracle, options_);
  AppSatResult result;
  static_cast<AttackResult&>(result) =
      DipLoop(oracle, options_.base, budget, "appsat").run(ctx, policy);
  result.approximate = policy.approximate();
  result.estimated_error = policy.estimated_error();
  if (ctx.trivially_equal()) result.estimated_error = 0.0;
  return result;
}

}  // namespace fl::attacks
