#include "attacks/appsat.h"

#include <bit>
#include <optional>
#include <random>

#include "attacks/cycsat.h"
#include "netlist/simulator.h"

namespace fl::attacks {

using netlist::Word;

namespace {

std::vector<Word> key_to_words(const std::vector<bool>& key) {
  std::vector<Word> w(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    w[i] = key[i] ? ~Word{0} : Word{0};
  }
  return w;
}

// The AppSAT policy: the plain single-DIP step, interleaved with
// settlement checks that may end the attack early on an approximate key.
class AppSatPolicy final : public DipPolicy {
 public:
  AppSatPolicy(const core::LockedCircuit& locked, const Oracle& oracle,
               const AppSatOptions& options)
      : locked_(locked), oracle_(oracle), options_(options),
        cyclic_(locked.netlist.is_cyclic()), rng_(0xA99547ull) {
    if (!cyclic_) locked_sim_.emplace(locked.netlist);
  }

  bool approximate() const { return approximate_; }
  double estimated_error() const { return estimated_error_; }

  LoopAction on_dip(MiterContext& ctx, const BudgetGuard&,
                    const std::vector<bool>& pattern, AttackResult&) override {
    ctx.constrain_io(pattern, oracle_.query(pattern));
    return LoopAction::kContinue;
  }

  LoopAction after_iteration(MiterContext& ctx, const BudgetGuard& budget,
                             AttackResult& result) override {
    if (result.iterations %
            static_cast<std::uint64_t>(options_.settle_every) !=
        0) {
      return LoopAction::kContinue;
    }
    budget.arm(ctx.solver());
    const sat::LBool settled = ctx.solver().solve();
    if (settled == sat::LBool::kUndef) {
      result.status = budget.undef_status(ctx.solver());
      return LoopAction::kDone;
    }
    if (settled == sat::LBool::kFalse) {
      result.status = AttackStatus::kKeySpaceEmpty;
      return LoopAction::kDone;
    }
    const std::vector<bool> candidate = ctx.extract_key();
    const double error = estimate_error(ctx, candidate);
    if (error <= options_.error_threshold) {
      result.key = candidate;
      result.status = AttackStatus::kSuccess;
      approximate_ = true;
      estimated_error_ = error;
      return LoopAction::kDone;
    }
    return LoopAction::kContinue;
  }

  LoopAction on_no_dip(MiterContext& ctx, const BudgetGuard& budget,
                       AttackResult& result) override {
    const LoopAction base = DipPolicy::on_no_dip(ctx, budget, result);
    if (base == LoopAction::kDone &&
        result.status == AttackStatus::kSuccess) {
      // Exact endgame: no DIP remains, the key is provably correct — the
      // estimate only reports its (sampled) residual error.
      approximate_ = false;
      estimated_error_ = estimate_error(ctx, result.key);
    }
    return base;
  }

 private:
  // Estimates the error of `key` on random queries; feeds at most one
  // failing pattern per round back into the solver (query reinforcement).
  // Acyclic circuits settle all rounds in one oracle/simulator batch; cyclic
  // ones fall back to per-round relaxation. Both draw the same RNG stream.
  double estimate_error(MiterContext& ctx, const std::vector<bool>& key) {
    const std::vector<Word> kw = key_to_words(key);
    if (!cyclic_) return estimate_error_batch(ctx, kw);
    std::uint64_t wrong_bits = 0, total_bits = 0;
    for (int round = 0; round < options_.rounds_per_check; ++round) {
      std::vector<Word> inputs(locked_.netlist.num_inputs());
      for (Word& w : inputs) w = rng_();
      const std::vector<Word> golden = oracle_.query_words(inputs, 64);
      const auto sim = netlist::simulate_cyclic(locked_.netlist, inputs, kw);
      const std::vector<Word>& got = sim.outputs;
      const Word valid = sim.converged;
      Word any_diff = 0;
      for (std::size_t o = 0; o < golden.size(); ++o) {
        const Word diff = (golden[o] ^ got[o]) | ~valid;
        any_diff |= diff;
        wrong_bits += std::popcount(diff);
        total_bits += 64;
      }
      if (any_diff != 0) {
        reinforce(ctx, inputs, 1, golden, 1, 0, std::countr_zero(any_diff));
      }
    }
    return total_bits == 0 ? 0.0
                           : static_cast<double>(wrong_bits) / total_bits;
  }

  double estimate_error_batch(MiterContext& ctx, const std::vector<Word>& kw) {
    const std::size_t n_in = locked_.netlist.num_inputs();
    const std::size_t n_out = locked_.netlist.num_outputs();
    const std::size_t rounds =
        static_cast<std::size_t>(options_.rounds_per_check);
    if (rounds == 0) return 0.0;
    // Net-major matrix, one word (column) per round. Filled round-by-round
    // so the RNG stream matches the per-round path exactly.
    std::vector<Word> inputs(n_in * rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n_in; ++i) inputs[i * rounds + r] = rng_();
    }
    std::vector<Word> golden(n_out * rounds);
    oracle_.query_batch(inputs, rounds, rounds * 64, golden);
    std::vector<Word> got(n_out * rounds);
    locked_sim_->run_batch(inputs, kw, rounds, sim_scratch_, got);
    std::uint64_t wrong_bits = 0, total_bits = 0;
    // Failing rounds are reinforced in one batch so cone-mode encoding can
    // sweep the key-free region for all of them in a single bit-parallel
    // simulator pass.
    std::vector<std::vector<bool>> patterns, responses;
    for (std::size_t r = 0; r < rounds; ++r) {
      Word any_diff = 0;
      for (std::size_t o = 0; o < n_out; ++o) {
        const Word diff = golden[o * rounds + r] ^ got[o * rounds + r];
        any_diff |= diff;
        wrong_bits += std::popcount(diff);
        total_bits += 64;
      }
      if (any_diff != 0) {
        const int bit = std::countr_zero(any_diff);
        std::vector<bool> pattern(n_in);
        for (std::size_t i = 0; i < n_in; ++i) {
          pattern[i] = ((inputs[i * rounds + r] >> bit) & 1) != 0;
        }
        std::vector<bool> response(n_out);
        for (std::size_t o = 0; o < n_out; ++o) {
          response[o] = ((golden[o * rounds + r] >> bit) & 1) != 0;
        }
        patterns.push_back(std::move(pattern));
        responses.push_back(std::move(response));
      }
    }
    ctx.constrain_io_batch(patterns, responses);
    return total_bits == 0 ? 0.0
                           : static_cast<double>(wrong_bits) / total_bits;
  }

  // Constrains the solver with pattern `bit` of word-column `word` taken
  // from net-major matrices with the given strides.
  void reinforce(MiterContext& ctx, std::span<const Word> inputs,
                 std::size_t in_stride, std::span<const Word> golden,
                 std::size_t out_stride, std::size_t word, int bit) {
    const std::size_t n_in = inputs.size() / in_stride;
    const std::size_t n_out = golden.size() / out_stride;
    std::vector<bool> pattern(n_in);
    for (std::size_t i = 0; i < n_in; ++i) {
      pattern[i] = ((inputs[i * in_stride + word] >> bit) & 1) != 0;
    }
    std::vector<bool> response(n_out);
    for (std::size_t o = 0; o < n_out; ++o) {
      response[o] = ((golden[o * out_stride + word] >> bit) & 1) != 0;
    }
    ctx.constrain_io(pattern, response);
  }

  const core::LockedCircuit& locked_;
  const Oracle& oracle_;
  const AppSatOptions& options_;
  const bool cyclic_;
  std::optional<netlist::Simulator> locked_sim_;
  netlist::Simulator::Scratch sim_scratch_;
  std::mt19937_64 rng_;
  bool approximate_ = false;
  double estimated_error_ = 1.0;
};

}  // namespace

AppSatResult AppSat::run(const core::LockedCircuit& locked,
                         const Oracle& oracle) const {
  const BudgetGuard budget(options_.base);
  MiterContext ctx(locked, MiterContext::double_key(), options_.base);
  if (locked.netlist.is_cyclic()) {
    // The paper runs AppSAT on top of CycSAT for cyclic Full-Lock.
    add_nc_conditions(locked.netlist, ctx.solver(), ctx.key_copy(0),
                      ctx.key_copy(1), &budget);
  }
  AppSatPolicy policy(locked, oracle, options_);
  AppSatResult result;
  static_cast<AttackResult&>(result) =
      DipLoop(oracle, options_.base, budget, "appsat").run(ctx, policy);
  result.approximate = policy.approximate();
  result.estimated_error = policy.estimated_error();
  if (ctx.trivially_equal()) result.estimated_error = 0.0;
  return result;
}

}  // namespace fl::attacks
