// FALL-style structural/functional attack on SFLL (Sirone & Subramanyan,
// DATE'19, adapted to SFLL-HD's functional model).
//
// SFLL's weakness is the seam it cannot hide: the locked output is
// XOR(stripped_function, restore_unit), where the stripped cone is key-free
// and the restore cone carries every key bit. The attack
//   1. locates that seam structurally and strips the restore unit,
//   2. maps each key bit to its protected primary input through the
//      restore unit's x XOR k comparator layer,
//   3. collects input patterns where the stripped function disagrees with
//      the oracle (each lies at Hamming distance exactly h from K*), and
//   4. solves the system "HD(pattern_t, K) == h for every t" over (h, K)
//      with the SAT solver, validating candidates against the oracle until
//      one unlocks the circuit exactly.
// Removal alone (step 1) is *not* enough — the stripped function errs on
// the whole h-shell of K*, which is what stripped_error_rate reports.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/oracle.h"
#include "core/locked_circuit.h"

namespace fl::attacks {

struct FallOptions {
  int max_patterns = 64;    // error patterns to collect (SAT-enumerated)
  int max_candidates = 64;  // key candidates tested per Hamming distance
  int verify_rounds = 32;   // random-simulation rounds per candidate
  std::uint64_t seed = 1;
};

struct FallResult {
  // Step 1: a stripped-function / restore-unit seam was found.
  bool restore_identified = false;
  // Step 4: a key passing full verification was recovered.
  bool key_recovered = false;
  std::vector<bool> key;       // valid when key_recovered
  int hd = -1;                 // inferred Hamming distance h
  int protected_bits = 0;      // key bits mapped to primary inputs
  int error_patterns = 0;      // disagreement patterns collected
  int candidates_tested = 0;   // (h, K) candidates checked on the oracle
  // Error rate of the stripped function alone vs the oracle — the residual
  // a pure removal attacker is left with.
  double stripped_error_rate = 0.0;
};

// Runs the attack. Returns early (restore_identified == false) when the
// locked netlist has no key-cone/key-free XOR seam on any output — the
// attack is SFLL-specific by design.
FallResult fall_attack(const core::LockedCircuit& locked,
                       const Oracle& oracle, const FallOptions& options = {});

}  // namespace fl::attacks
