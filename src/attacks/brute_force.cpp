#include "attacks/brute_force.h"

#include <chrono>
#include <stdexcept>

#include "core/verify.h"

namespace fl::attacks {

BruteForceResult brute_force_attack(const core::LockedCircuit& locked,
                                    const Oracle& oracle, int rounds,
                                    std::uint64_t seed) {
  const std::size_t k = locked.netlist.num_keys();
  if (k > 24) {
    throw std::invalid_argument("brute force limited to <= 24 key bits");
  }
  const auto start = std::chrono::steady_clock::now();
  BruteForceResult result;
  const std::uint64_t space = std::uint64_t{1} << k;
  std::vector<bool> key(k);
  for (std::uint64_t candidate = 0; candidate < space; ++candidate) {
    for (std::size_t i = 0; i < k; ++i) key[i] = ((candidate >> i) & 1) != 0;
    ++result.keys_tried;
    if (core::verify_unlocks(oracle.circuit(), locked.netlist, key, rounds,
                             seed)) {
      result.found = true;
      result.key = key;
      break;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace fl::attacks
