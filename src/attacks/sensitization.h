// Key-sensitization attack (Rajendran et al., DAC'12 — the paper's [18]).
//
// For each key bit the attacker searches for a *golden pattern*: an input x
// and an output o where that bit propagates to o regardless of every other
// key bit (no interference/muting needed). One oracle query at x then reads
// the bit directly — no SAT attack loop, and only |K| queries in the best
// case.
//
// Primitive schemes (RLL) leave most key gates individually sensitizable
// and fall to this; Full-Lock's CLN entangles every key with its
// neighbours, leaving (almost) nothing golden — which the tests assert.
#pragma once

#include <cstdint>

#include "attacks/engine.h"
#include "attacks/oracle.h"
#include "core/locked_circuit.h"

namespace fl::attacks {

struct SensitizationOptions {
  int attempts_per_key = 6;  // candidate patterns tried per key bit
  double timeout_s = 0.0;    // 0 = unlimited (whole attack)
  // Cooperative cancellation, same contract as AttackOptions::interrupt.
  const std::atomic<bool>* interrupt = nullptr;
};

struct SensitizationResult {
  // kSuccess when the peeling loop ran to its fixpoint (even if some bits
  // stayed unresolved — that is the scheme resisting, not a budget);
  // kTimeout / kInterrupted when a budget cut the sweep short, with the
  // same mapping every engine-based attack uses.
  AttackStatus status = AttackStatus::kSuccess;
  // Per key bit: -1 unknown, 0/1 recovered value.
  std::vector<int> resolved;
  int num_resolved = 0;
  bool complete = false;  // every key bit recovered
  // Recovered bits verified-correct count (filled by tests via the real
  // key; the attack itself has no ground truth).
  std::uint64_t oracle_queries = 0;
  double seconds = 0.0;
};

// Requires an acyclic locked netlist.
SensitizationResult sensitization_attack(
    const core::LockedCircuit& locked, const Oracle& oracle,
    const SensitizationOptions& options = {});

}  // namespace fl::attacks
