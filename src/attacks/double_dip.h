// Double DIP (Shen & Zhou, GLSVLSI'17) — the 2-DIP attack the paper cites
// among the approximate-attack family ([22]).
//
// Each query is chosen so that two key candidates agree with each other
// while a third disagrees: whatever the oracle answers, at least one key is
// eliminated, and when the oracle contradicts the consensus at least *two*
// are — doubling the worst-case pruning rate against point-function schemes
// (SARLock's "one key per DIP" floor). The four-copy 2-DIP miter plugs into
// the shared engine (attacks/engine.h) as a custom encoder; when no 2-DIP
// remains, the attack falls back to the standard SAT attack to finish.
#pragma once

#include "attacks/engine.h"

namespace fl::attacks {

// Everything AttackResult reports; `iterations` counts 2-DIP queries.
struct DoubleDipResult : AttackResult {
  std::uint64_t fallback_iterations = 0;  // plain-DIP mop-up queries
};

class DoubleDip {
 public:
  explicit DoubleDip(AttackOptions options = {}) : options_(options) {}

  // Requires an acyclic locked netlist (run CycSat for cyclic locks).
  DoubleDipResult run(const core::LockedCircuit& locked,
                      const Oracle& oracle) const;

 private:
  AttackOptions options_;
};

}  // namespace fl::attacks
