#include "attacks/sat_attack.h"

#include <iterator>
#include <set>
#include <thread>
#include <utility>

#include "netlist/simulator.h"

namespace fl::attacks {

namespace {

// True iff `key` is single-valued and oracle-consistent on `pattern`:
// relaxation simulation from the all-zeros and all-ones initial states must
// both converge to `response`. The correct key of any locked circuit breaks
// every structural cycle, so it always passes.
bool functionally_pins(const netlist::Netlist& locked,
                       const std::vector<bool>& key,
                       const std::vector<bool>& pattern,
                       const std::vector<bool>& response) {
  std::vector<netlist::Word> in(pattern.size());
  std::vector<netlist::Word> kw(key.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    in[i] = pattern[i] ? ~netlist::Word{0} : 0;
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    kw[i] = key[i] ? ~netlist::Word{0} : 0;
  }
  for (const bool init_ones : {false, true}) {
    const netlist::CyclicSimResult sim =
        netlist::simulate_cyclic(locked, in, kw, 0, init_ones);
    if (sim.converged != ~netlist::Word{0}) return false;
    for (std::size_t o = 0; o < response.size(); ++o) {
      if (((sim.outputs[o] & 1) != 0) != response[o]) return false;
    }
  }
  return true;
}

// The classic single-DIP policy: one oracle query per DIP, I/O constraints
// on both key copies. On cyclic locks the CNF can take stateful
// (multi-valued) assignments that dodge the constraint copies (BeSAT's
// observation), so repeated DIPs trigger key bans and extracted candidates
// are functionally validated against the whole DIP history.
class SingleDipPolicy final : public DipPolicy {
 public:
  SingleDipPolicy(const core::LockedCircuit& locked, const Oracle& oracle)
      : locked_(locked), oracle_(oracle),
        cyclic_(locked.netlist.is_cyclic()) {}

  LoopAction on_dip(MiterContext& ctx, const BudgetGuard&,
                    const std::vector<bool>& pattern,
                    AttackResult& result) override {
    if (!seen_dips_.insert(pattern).second) {
      // A repeated DIP means the I/O constraints did not prune this key
      // pair. Ban every involved key that is not functionally pinned to the
      // oracle on this pattern; the correct key is always single-valued and
      // oracle-consistent, so it is never banned.
      const std::vector<bool> response = oracle_.query(pattern);
      bool banned_any = false;
      for (std::size_t k = 0; k < ctx.num_key_copies(); ++k) {
        const std::vector<bool> key = ctx.extract_key(ctx.key_copy(k));
        if (!functionally_pins(locked_.netlist, key, pattern, response)) {
          ctx.ban_key(ctx.key_copy(k), key);
          banned_any = true;
          ++result.banned_keys;
        }
      }
      if (!banned_any) {
        // Should be unreachable (a repeat requires a non-functional copy);
        // ban the second key to guarantee progress — a key that is
        // functionally pinned here but re-selected is stateful elsewhere.
        ctx.ban_key(ctx.key_copy(1), ctx.extract_key(ctx.key_copy(1)));
        ++result.banned_keys;
      }
      return LoopAction::kRetry;
    }
    const std::vector<bool> response = oracle_.query(pattern);
    dip_history_.emplace_back(pattern, response);
    // Both key copies must reproduce the oracle on this pattern.
    ctx.constrain_io(pattern, response);
    return LoopAction::kContinue;
  }

  LoopAction on_no_dip(MiterContext& ctx, const BudgetGuard& budget,
                       AttackResult& result) override {
    const LoopAction base = DipPolicy::on_no_dip(ctx, budget, result);
    if (cyclic_ && base == LoopAction::kDone &&
        result.status == AttackStatus::kSuccess) {
      // The CNF may still admit stateful keys: validate the candidate
      // functionally against every observed DIP; reject-and-ban until a
      // functional key (the correct key always qualifies) survives.
      for (const auto& [pattern, response] : dip_history_) {
        if (!functionally_pins(locked_.netlist, result.key, pattern,
                               response)) {
          ctx.ban_key(ctx.key_copy(0), result.key);
          ++result.banned_keys;
          result.key.clear();
          return LoopAction::kRetry;
        }
      }
    }
    return base;
  }

 private:
  const core::LockedCircuit& locked_;
  const Oracle& oracle_;
  const bool cyclic_;
  std::set<std::vector<bool>> seen_dips_;
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> dip_history_;
};

}  // namespace

void SatAttack::add_preconditions(const netlist::Netlist&, sat::SolverIface&,
                                  std::span<const sat::Var>,
                                  std::span<const sat::Var>,
                                  const BudgetGuard&) const {}

AttackResult SatAttack::run(const core::LockedCircuit& locked,
                            const Oracle& oracle) const {
  // Race mode spawns independent attacks; share/cubes cooperate inside one
  // attack through a ParallelSolver (built by the MiterContext), so they go
  // down the single-attack path.
  if (options_.portfolio > 1 && options_.par_mode == sat::ParMode::kRace) {
    return run_portfolio(locked, oracle);
  }
  return run_single(locked, oracle, sat::SolverConfig{}, options_.interrupt,
                    nullptr);
}

AttackResult SatAttack::run_portfolio(const core::LockedCircuit& locked,
                                      const Oracle& oracle) const {
  const int width = options_.portfolio;
  const std::uint64_t queries_before = oracle.num_queries();
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::vector<AttackResult> results(static_cast<std::size_t>(width));
  std::vector<std::thread> racers;
  racers.reserve(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    racers.emplace_back([&, k] {
      // Each racer watches both the caller's interrupt and the shared race
      // cancel token directly inside its solver's interrupt chain; no
      // forwarding thread is needed to relay external cancellation.
      results[k] = run_single(locked, oracle, portfolio_config(k),
                              options_.interrupt, &cancel);
      const bool decisive = results[k].status == AttackStatus::kSuccess ||
                            results[k].status == AttackStatus::kKeySpaceEmpty;
      if (decisive) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, k)) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : racers) t.join();

  // Aggregate every racer's solver counters before moving anything out: the
  // losers' work (conflicts, propagations, learnt clauses) is real attack
  // cost and must not vanish from sweep records.
  sat::SolverStats aggregate;
  for (const AttackResult& r : results) {
    sat::aggregate_stats(aggregate, r.solver_stats);
  }

  const int w = winner.load();
  AttackResult result;
  if (w >= 0) {
    result = std::move(results[w]);
  } else if (options_.interrupt != nullptr &&
             options_.interrupt->load(std::memory_order_relaxed)) {
    // Genuinely interrupted from outside: any racer's kInterrupted stands.
    result = std::move(results[0]);
    result.status = AttackStatus::kInterrupted;
  } else {
    // No winner and no external interrupt: every kInterrupted here is a
    // loser cancelled by a racer that then failed to finish decisively
    // (can't happen today, but don't let it leak). Prefer a result that
    // carries a real terminal status (timeout, iteration limit, OOM).
    std::size_t pick = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != AttackStatus::kInterrupted) {
        pick = i;
        break;
      }
    }
    result = std::move(results[pick]);
  }
  result.portfolio_winner = w;
  result.solver_stats = aggregate;
  // The racers share one oracle, so per-racer query deltas interleave;
  // report the total the whole portfolio consumed instead.
  result.oracle_queries = oracle.num_queries() - queries_before;
  return result;
}

AttackResult SatAttack::run_single(const core::LockedCircuit& locked,
                                   const Oracle& oracle,
                                   const sat::SolverConfig& config,
                                   const std::atomic<bool>* interrupt,
                                   const std::atomic<bool>* race_cancel) const {
  AttackOptions options = options_;
  options.interrupt = interrupt;
  options.race_cancel = race_cancel;
  const BudgetGuard budget(options);
  MiterContext ctx(locked, MiterContext::double_key(), options, config);
  add_preconditions(locked.netlist, ctx.solver(), ctx.key_copy(0),
                    ctx.key_copy(1), budget);
  SingleDipPolicy policy(locked, oracle);
  return DipLoop(oracle, options, budget, name()).run(ctx, policy);
}

}  // namespace fl::attacks
