#include "attacks/sat_attack.h"

#include <chrono>
#include <cstdio>
#include <set>

#include "cnf/miter.h"
#include "netlist/simulator.h"

namespace fl::attacks {

using Clock = std::chrono::steady_clock;

namespace {

// True iff `key` is single-valued and oracle-consistent on `pattern`:
// relaxation simulation from the all-zeros and all-ones initial states must
// both converge to `response`. The correct key of any locked circuit breaks
// every structural cycle, so it always passes.
bool functionally_pins(const netlist::Netlist& locked,
                       const std::vector<bool>& key,
                       const std::vector<bool>& pattern,
                       const std::vector<bool>& response) {
  std::vector<netlist::Word> in(pattern.size());
  std::vector<netlist::Word> kw(key.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    in[i] = pattern[i] ? ~netlist::Word{0} : 0;
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    kw[i] = key[i] ? ~netlist::Word{0} : 0;
  }
  for (const bool init_ones : {false, true}) {
    const netlist::CyclicSimResult sim =
        netlist::simulate_cyclic(locked, in, kw, 0, init_ones);
    if (sim.converged != ~netlist::Word{0}) return false;
    for (std::size_t o = 0; o < response.size(); ++o) {
      if (((sim.outputs[o] & 1) != 0) != response[o]) return false;
    }
  }
  return true;
}

}  // namespace

const char* to_string(AttackStatus status) {
  switch (status) {
    case AttackStatus::kSuccess: return "success";
    case AttackStatus::kTimeout: return "timeout";
    case AttackStatus::kIterationLimit: return "iteration-limit";
    case AttackStatus::kKeySpaceEmpty: return "key-space-empty";
  }
  return "?";
}

void SatAttack::add_preconditions(const netlist::Netlist&, sat::Solver&,
                                  std::span<const sat::Var>,
                                  std::span<const sat::Var>) const {}

AttackResult SatAttack::run(const core::LockedCircuit& locked,
                            const Oracle& oracle) const {
  const auto start = Clock::now();
  const auto deadline =
      options_.timeout_s > 0.0
          ? std::optional(start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          options_.timeout_s)))
          : std::nullopt;

  AttackResult result;
  const std::uint64_t queries_before = oracle.num_queries();

  sat::Solver solver;
  const cnf::AttackMiter miter =
      cnf::encode_attack_miter(locked.netlist, solver);
  add_preconditions(locked.netlist, solver, miter.key1, miter.key2);

  double ratio_sum = 0.0;
  std::uint64_t ratio_samples = 0;
  const auto sample_ratio = [&]() {
    if (solver.num_vars() > 0) {
      ratio_sum += static_cast<double>(solver.num_clauses()) /
                   static_cast<double>(solver.num_vars());
      ++ratio_samples;
    }
  };
  sample_ratio();

  const auto extract_key = [&](std::span<const sat::Var> key_vars) {
    std::vector<bool> key(key_vars.size());
    for (std::size_t i = 0; i < key_vars.size(); ++i) {
      key[i] = solver.value_of(key_vars[i]);
    }
    return key;
  };

  const auto finish = [&](AttackStatus status) {
    result.status = status;
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    result.mean_iteration_seconds =
        result.iterations > 0 ? result.seconds / result.iterations : 0.0;
    result.mean_clause_var_ratio =
        ratio_samples > 0 ? ratio_sum / ratio_samples : 0.0;
    result.solver_stats = solver.stats();
    result.oracle_queries = oracle.num_queries() - queries_before;
    return result;
  };

  if (miter.trivially_equal) {
    // Output does not depend on the key at all: any key unlocks.
    result.key.assign(locked.netlist.num_keys(), false);
    return finish(AttackStatus::kSuccess);
  }

  const sat::Lit activate[] = {miter.activate};
  std::set<std::vector<bool>> seen_dips;
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> dip_history;
  const bool cyclic = locked.netlist.is_cyclic();
  while (true) {
    if (options_.max_iterations != 0 &&
        result.iterations >= options_.max_iterations) {
      return finish(AttackStatus::kIterationLimit);
    }
    solver.set_deadline(deadline);
    const sat::LBool dip_found = solver.solve(activate);
    if (dip_found == sat::LBool::kUndef) {
      return finish(AttackStatus::kTimeout);
    }
    if (dip_found == sat::LBool::kFalse) {
      // No distinguishing input remains: extract a key. On cyclic locks the
      // CNF may still admit stateful keys, so validate the candidate
      // functionally against every observed DIP; reject-and-ban until a
      // functional key (the correct key always qualifies) survives.
      solver.set_deadline(deadline);
      const sat::LBool key_found = solver.solve();
      if (key_found == sat::LBool::kUndef) {
        return finish(AttackStatus::kTimeout);
      }
      if (key_found == sat::LBool::kFalse) {
        return finish(AttackStatus::kKeySpaceEmpty);
      }
      std::vector<bool> key = extract_key(miter.key1);
      if (cyclic) {
        bool functional = true;
        for (const auto& [pattern, response] : dip_history) {
          if (!functionally_pins(locked.netlist, key, pattern, response)) {
            functional = false;
            break;
          }
        }
        if (!functional) {
          sat::Clause ban;
          for (std::size_t i = 0; i < miter.key1.size(); ++i) {
            ban.push_back(sat::Lit(miter.key1[i], key[i]));
          }
          solver.add_clause(std::move(ban));
          ++result.banned_keys;
          continue;
        }
      }
      result.key = std::move(key);
      return finish(AttackStatus::kSuccess);
    }

    // Extract the DIP and query the oracle.
    std::vector<bool> pattern(miter.inputs.size());
    for (std::size_t i = 0; i < miter.inputs.size(); ++i) {
      pattern[i] = solver.value_of(miter.inputs[i]);
    }
    if (!seen_dips.insert(pattern).second) {
      // A repeated DIP means the I/O constraints did not prune this key
      // pair — on cyclic netlists the CNF can take stateful (multi-valued)
      // assignments that dodge the constraint copies (BeSAT's
      // observation). Ban every involved key that is not functionally
      // pinned to the oracle on this pattern; the correct key is always
      // single-valued and oracle-consistent, so it is never banned.
      const std::vector<bool> response = oracle.query(pattern);
      bool banned_any = false;
      for (const std::span<const sat::Var> key_vars :
           {std::span<const sat::Var>(miter.key1),
            std::span<const sat::Var>(miter.key2)}) {
        std::vector<bool> key(key_vars.size());
        for (std::size_t i = 0; i < key_vars.size(); ++i) {
          key[i] = solver.value_of(key_vars[i]);
        }
        if (!functionally_pins(locked.netlist, key, pattern, response)) {
          sat::Clause ban;
          for (std::size_t i = 0; i < key_vars.size(); ++i) {
            ban.push_back(sat::Lit(key_vars[i], key[i]));
          }
          solver.add_clause(std::move(ban));
          banned_any = true;
          ++result.banned_keys;
        }
      }
      if (!banned_any) {
        // Should be unreachable (a repeat requires a non-functional copy);
        // ban the second key to guarantee progress — a key that is
        // functionally pinned here but re-selected is stateful elsewhere.
        sat::Clause ban;
        for (const sat::Var v : miter.key2) {
          ban.push_back(sat::Lit(v, solver.value_of(v)));
        }
        solver.add_clause(std::move(ban));
        ++result.banned_keys;
      }
      continue;
    }
    const std::vector<bool> response = oracle.query(pattern);
    dip_history.emplace_back(pattern, response);

    // Both key copies must reproduce the oracle on this pattern.
    cnf::add_io_constraint(locked.netlist, solver, miter.key1, pattern,
                           response);
    cnf::add_io_constraint(locked.netlist, solver, miter.key2, pattern,
                           response);
    ++result.iterations;
    sample_ratio();
    if (options_.verbose) {
      std::fprintf(stderr, "[sat-attack] iter %llu, %d vars, %zu clauses\n",
                   static_cast<unsigned long long>(result.iterations),
                   solver.num_vars(), solver.num_clauses());
    }
  }
}

}  // namespace fl::attacks
