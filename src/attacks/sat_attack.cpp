#include "attacks/sat_attack.h"

#include <chrono>
#include <cstdio>
#include <iterator>
#include <set>
#include <thread>

#include "cnf/miter.h"
#include "netlist/simulator.h"

namespace fl::attacks {

using Clock = std::chrono::steady_clock;

namespace {

// True iff `key` is single-valued and oracle-consistent on `pattern`:
// relaxation simulation from the all-zeros and all-ones initial states must
// both converge to `response`. The correct key of any locked circuit breaks
// every structural cycle, so it always passes.
bool functionally_pins(const netlist::Netlist& locked,
                       const std::vector<bool>& key,
                       const std::vector<bool>& pattern,
                       const std::vector<bool>& response) {
  std::vector<netlist::Word> in(pattern.size());
  std::vector<netlist::Word> kw(key.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    in[i] = pattern[i] ? ~netlist::Word{0} : 0;
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    kw[i] = key[i] ? ~netlist::Word{0} : 0;
  }
  for (const bool init_ones : {false, true}) {
    const netlist::CyclicSimResult sim =
        netlist::simulate_cyclic(locked, in, kw, 0, init_ones);
    if (sim.converged != ~netlist::Word{0}) return false;
    for (std::size_t o = 0; o < response.size(); ++o) {
      if (((sim.outputs[o] & 1) != 0) != response[o]) return false;
    }
  }
  return true;
}

}  // namespace

const char* to_string(AttackStatus status) {
  switch (status) {
    case AttackStatus::kSuccess: return "success";
    case AttackStatus::kTimeout: return "timeout";
    case AttackStatus::kIterationLimit: return "iteration-limit";
    case AttackStatus::kKeySpaceEmpty: return "key-space-empty";
    case AttackStatus::kInterrupted: return "interrupted";
    case AttackStatus::kOutOfMemory: return "out-of-memory";
  }
  return "?";
}

void SatAttack::add_preconditions(const netlist::Netlist&, sat::Solver&,
                                  std::span<const sat::Var>,
                                  std::span<const sat::Var>) const {}

AttackResult SatAttack::run(const core::LockedCircuit& locked,
                            const Oracle& oracle) const {
  if (options_.portfolio > 1) return run_portfolio(locked, oracle);
  return run_single(locked, oracle, sat::SolverConfig{}, options_.interrupt);
}

sat::SolverConfig SatAttack::portfolio_config(int k) {
  // Diversity along the two axes CDCL portfolios classically race: VSIDS
  // agility (decay) and restart cadence. Entry 0 keeps the MiniSat defaults.
  static constexpr struct {
    double var_decay;
    double clause_decay;
    int restart_unit;
  } kConfigs[] = {
      {0.95, 0.999, 128},   // MiniSat defaults
      {0.80, 0.999, 32},    // agile: fast decay, rapid restarts
      {0.99, 0.995, 512},   // sluggish: long-horizon activity, rare restarts
      {0.90, 0.9995, 64},   // moderately agile
      {0.95, 0.999, 1024},  // default decay, near-monolithic runs
      {0.85, 0.99, 256},
  };
  constexpr int n = static_cast<int>(std::size(kConfigs));
  const auto& c = kConfigs[((k % n) + n) % n];
  return {c.var_decay, c.clause_decay, c.restart_unit};
}

AttackResult SatAttack::run_portfolio(const core::LockedCircuit& locked,
                                      const Oracle& oracle) const {
  const int width = options_.portfolio;
  const std::uint64_t queries_before = oracle.num_queries();
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::vector<AttackResult> results(static_cast<std::size_t>(width));
  std::vector<std::thread> racers;
  racers.reserve(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    racers.emplace_back([&, k] {
      results[k] = run_single(locked, oracle, portfolio_config(k), &cancel);
      const bool decisive = results[k].status == AttackStatus::kSuccess ||
                            results[k].status == AttackStatus::kKeySpaceEmpty;
      if (decisive) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, k)) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  // Forward external cancellation into the race while the racers run.
  std::atomic<bool> race_done{false};
  std::thread watcher;
  if (options_.interrupt != nullptr) {
    watcher = std::thread([&] {
      while (!race_done.load(std::memory_order_relaxed)) {
        if (options_.interrupt->load(std::memory_order_relaxed)) {
          cancel.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (std::thread& t : racers) t.join();
  race_done.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();

  const int w = winner.load();
  AttackResult result = w >= 0 ? std::move(results[w]) : std::move(results[0]);
  result.portfolio_winner = w;
  // The racers share one oracle, so per-racer query deltas interleave;
  // report the total the whole portfolio consumed instead.
  result.oracle_queries = oracle.num_queries() - queries_before;
  return result;
}

AttackResult SatAttack::run_single(const core::LockedCircuit& locked,
                                   const Oracle& oracle,
                                   const sat::SolverConfig& config,
                                   const std::atomic<bool>* interrupt) const {
  const auto start = Clock::now();
  const auto deadline =
      options_.timeout_s > 0.0
          ? std::optional(start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          options_.timeout_s)))
          : std::nullopt;

  AttackResult result;
  const std::uint64_t queries_before = oracle.num_queries();

  sat::SolverConfig solver_config = config;
  if (options_.memory_limit_mb > 0) {
    solver_config.memory_limit_mb = options_.memory_limit_mb;
  }
  sat::Solver solver(solver_config);
  solver.set_interrupt(interrupt);
  const cnf::AttackMiter miter =
      cnf::encode_attack_miter(locked.netlist, solver);
  add_preconditions(locked.netlist, solver, miter.key1, miter.key2);

  // One ratio sample per DIP-miter solve: exactly the CNF snapshots the
  // solver worked on, each counted once (the final key-extraction solve
  // reuses the last snapshot, so it adds no sample).
  double ratio_sum = 0.0;
  std::uint64_t ratio_samples = 0;
  const auto sample_ratio = [&]() {
    if (solver.num_vars() > 0) {
      ratio_sum += static_cast<double>(solver.num_clauses()) /
                   static_cast<double>(solver.num_vars());
      ++ratio_samples;
    }
  };

  // Wall time spent inside completed DIP iterations (DIP solve + oracle
  // query + constraint encoding); the divisor for mean_iteration_seconds.
  // Miter encoding above and the final key extraction are excluded.
  double dip_loop_seconds = 0.0;

  const auto extract_key = [&](std::span<const sat::Var> key_vars) {
    std::vector<bool> key(key_vars.size());
    for (std::size_t i = 0; i < key_vars.size(); ++i) {
      key[i] = solver.value_of(key_vars[i]);
    }
    return key;
  };

  const auto finish = [&](AttackStatus status) {
    result.status = status;
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    result.mean_iteration_seconds =
        result.iterations > 0 ? dip_loop_seconds / result.iterations : 0.0;
    result.mean_clause_var_ratio =
        ratio_samples > 0 ? ratio_sum / ratio_samples : 0.0;
    result.solver_stats = solver.stats();
    result.stop_reason = solver.last_stop_reason();
    result.oracle_queries = oracle.num_queries() - queries_before;
    // Non-success exits keep the best-effort key sized to the key width so
    // consumers never index an empty vector.
    if (result.key.empty()) result.key = extract_key(miter.key1);
    return result;
  };

  // Maps the solver's kUndef back to an attack status: an external
  // cancellation and a tripped memory budget are not the paper's "TO".
  const auto undef_status = [&] {
    switch (solver.last_stop_reason()) {
      case sat::StopReason::kInterrupt: return AttackStatus::kInterrupted;
      case sat::StopReason::kOutOfMemory: return AttackStatus::kOutOfMemory;
      default: return AttackStatus::kTimeout;
    }
  };

  if (miter.trivially_equal) {
    // Output does not depend on the key at all: any key unlocks.
    result.key.assign(locked.netlist.num_keys(), false);
    return finish(AttackStatus::kSuccess);
  }

  const sat::Lit activate[] = {miter.activate};
  std::set<std::vector<bool>> seen_dips;
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> dip_history;
  const bool cyclic = locked.netlist.is_cyclic();
  while (true) {
    if (options_.max_iterations != 0 &&
        result.iterations >= options_.max_iterations) {
      return finish(AttackStatus::kIterationLimit);
    }
    const auto iteration_start = Clock::now();
    solver.set_deadline(deadline);
    sample_ratio();
    const sat::LBool dip_found = solver.solve(activate);
    if (dip_found == sat::LBool::kUndef) {
      return finish(undef_status());
    }
    if (dip_found == sat::LBool::kFalse) {
      // No distinguishing input remains: extract a key. On cyclic locks the
      // CNF may still admit stateful keys, so validate the candidate
      // functionally against every observed DIP; reject-and-ban until a
      // functional key (the correct key always qualifies) survives.
      solver.set_deadline(deadline);
      const sat::LBool key_found = solver.solve();
      if (key_found == sat::LBool::kUndef) {
        return finish(undef_status());
      }
      if (key_found == sat::LBool::kFalse) {
        return finish(AttackStatus::kKeySpaceEmpty);
      }
      std::vector<bool> key = extract_key(miter.key1);
      if (cyclic) {
        bool functional = true;
        for (const auto& [pattern, response] : dip_history) {
          if (!functionally_pins(locked.netlist, key, pattern, response)) {
            functional = false;
            break;
          }
        }
        if (!functional) {
          sat::Clause ban;
          for (std::size_t i = 0; i < miter.key1.size(); ++i) {
            ban.push_back(sat::Lit(miter.key1[i], key[i]));
          }
          solver.add_clause(std::move(ban));
          ++result.banned_keys;
          continue;
        }
      }
      result.key = std::move(key);
      return finish(AttackStatus::kSuccess);
    }

    // Extract the DIP and query the oracle.
    std::vector<bool> pattern(miter.inputs.size());
    for (std::size_t i = 0; i < miter.inputs.size(); ++i) {
      pattern[i] = solver.value_of(miter.inputs[i]);
    }
    if (!seen_dips.insert(pattern).second) {
      // A repeated DIP means the I/O constraints did not prune this key
      // pair — on cyclic netlists the CNF can take stateful (multi-valued)
      // assignments that dodge the constraint copies (BeSAT's
      // observation). Ban every involved key that is not functionally
      // pinned to the oracle on this pattern; the correct key is always
      // single-valued and oracle-consistent, so it is never banned.
      const std::vector<bool> response = oracle.query(pattern);
      bool banned_any = false;
      for (const std::span<const sat::Var> key_vars :
           {std::span<const sat::Var>(miter.key1),
            std::span<const sat::Var>(miter.key2)}) {
        std::vector<bool> key(key_vars.size());
        for (std::size_t i = 0; i < key_vars.size(); ++i) {
          key[i] = solver.value_of(key_vars[i]);
        }
        if (!functionally_pins(locked.netlist, key, pattern, response)) {
          sat::Clause ban;
          for (std::size_t i = 0; i < key_vars.size(); ++i) {
            ban.push_back(sat::Lit(key_vars[i], key[i]));
          }
          solver.add_clause(std::move(ban));
          banned_any = true;
          ++result.banned_keys;
        }
      }
      if (!banned_any) {
        // Should be unreachable (a repeat requires a non-functional copy);
        // ban the second key to guarantee progress — a key that is
        // functionally pinned here but re-selected is stateful elsewhere.
        sat::Clause ban;
        for (const sat::Var v : miter.key2) {
          ban.push_back(sat::Lit(v, solver.value_of(v)));
        }
        solver.add_clause(std::move(ban));
        ++result.banned_keys;
      }
      continue;
    }
    const std::vector<bool> response = oracle.query(pattern);
    dip_history.emplace_back(pattern, response);

    // Both key copies must reproduce the oracle on this pattern.
    cnf::add_io_constraint(locked.netlist, solver, miter.key1, pattern,
                           response);
    cnf::add_io_constraint(locked.netlist, solver, miter.key2, pattern,
                           response);
    ++result.iterations;
    dip_loop_seconds +=
        std::chrono::duration<double>(Clock::now() - iteration_start).count();
    if (options_.verbose) {
      std::fprintf(stderr, "[sat-attack] iter %llu, %d vars, %zu clauses\n",
                   static_cast<unsigned long long>(result.iterations),
                   solver.num_vars(), solver.num_clauses());
    }
  }
}

}  // namespace fl::attacks
