#include "attacks/removal.h"

#include "core/verify.h"

namespace fl::attacks {

using netlist::GateId;

RemovalResult removal_attack(const core::LockedCircuit& locked,
                             const Oracle& oracle, int rounds,
                             std::uint64_t seed) {
  RemovalResult result;
  result.recovered = locked.netlist;
  for (const core::RoutingBlockHint& hint : locked.routing_blocks) {
    const std::size_t n = hint.block_outputs.size();
    for (std::size_t j = 0; j < n; ++j) {
      const GateId out = hint.block_outputs[j];
      const GateId src = hint.block_inputs[hint.permutation[j]];
      if (out == netlist::kNullGate || src == netlist::kNullGate) continue;
      // Wire consumers of the network output directly to the routed source,
      // skipping the MUX fabric and the inverter layer.
      result.recovered.replace_net(out, src);
    }
    ++result.blocks_bypassed;
  }
  // Most generous grading: the attacker even knows the correct values for
  // all remaining key inputs (e.g. LUT truth tables).
  result.error_rate = core::error_rate(oracle.circuit(), result.recovered,
                                       locked.correct_key, rounds, seed);
  result.exact = result.error_rate == 0.0;
  return result;
}

}  // namespace fl::attacks
