#include "attacks/sensitization.h"

#include <random>

#include "cnf/miter.h"

namespace fl::attacks {

namespace {

// Attempts to recover key bit `target` with golden-pattern sensitization,
// treating already-`known` bits as constants (iterative peeling). Returns
// -1 (unresolved) or the recovered bit.
int attack_one_key(const core::LockedCircuit& locked, const Oracle& oracle,
                   std::size_t target, const std::vector<int>& known,
                   int attempts, const BudgetGuard& budget) {
  const netlist::Netlist& net = locked.netlist;
  sat::Solver solver;
  cnf::SolverSink sink(solver);

  // Shared structure: one input vector, one "rest of the key" vector; the
  // two copies differ only in the target bit (fixed 0 in A, 1 in B).
  // Previously recovered bits are pinned — each peel pass shrinks the
  // interference the goldenness proof must quantify over.
  std::vector<sat::Var> shared_keys(net.num_keys());
  for (auto& v : shared_keys) v = solver.new_var();
  for (std::size_t i = 0; i < known.size(); ++i) {
    if (known[i] >= 0 && i != target) {
      solver.add_clause({sat::Lit(shared_keys[i], known[i] == 0)});
    }
  }
  std::vector<sat::Var> keys_a = shared_keys;
  std::vector<sat::Var> keys_b = shared_keys;
  keys_a[target] = solver.new_var();
  keys_b[target] = solver.new_var();
  solver.add_clause({sat::neg(keys_a[target])});  // A: bit = 0
  solver.add_clause({sat::pos(keys_b[target])});  // B: bit = 1

  cnf::EncodeOptions options_a;
  options_a.shared_key_vars = keys_a;
  const cnf::EncodedCircuit a = cnf::encode(net, sink, options_a);
  cnf::EncodeOptions options_b;
  options_b.shared_key_vars = keys_b;
  options_b.shared_input_vars = a.input_vars;  // one input vector, two copies
  const cnf::EncodedCircuit b = cnf::encode(net, sink, options_b);

  // Per-output difference literals (we need to know *which* output flips).
  std::vector<cnf::NetLit> diffs(net.num_outputs());
  std::vector<cnf::NetLit> diff_terms;
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    diffs[o] = cnf::emit_xor(sink, a.outputs[o], b.outputs[o]);
    if (!diffs[o].is_const() || diffs[o].const_value()) {
      diff_terms.push_back(diffs[o]);
    }
  }
  const cnf::NetLit any_diff = cnf::emit_or(sink, diff_terms);
  if (any_diff.is_const() && !any_diff.const_value()) {
    return -1;  // key bit never observable
  }
  const sat::Var act = solver.new_var();
  if (!any_diff.is_const()) {
    solver.add_clause({sat::neg(act), any_diff.lit});
  }

  // Candidate patterns are phase-randomized per attempt. Left to its own
  // devices the solver clusters models around its phase-saving state, so a
  // blocked candidate is re-found with a couple of bits flipped and all
  // `attempts` tries probe the same non-golden neighbourhood. Random
  // polarities make the tries independent draws, which is what the
  // golden-pattern density argument behind this attack assumes.
  std::mt19937_64 rng(0x5e5117 ^ (static_cast<std::uint64_t>(target) << 20));
  for (int attempt = 0; attempt < attempts; ++attempt) {
    for (const sat::Var v : a.input_vars) {
      solver.set_phase(v, (rng() & 1) != 0);
    }
    budget.arm(solver);
    const sat::Lit find[] = {sat::pos(act)};
    if (solver.solve(find) != sat::LBool::kTrue) return -1;

    // Candidate pattern + observing output.
    std::vector<bool> pattern(a.input_vars.size());
    std::vector<sat::Lit> pin_x;
    for (std::size_t i = 0; i < a.input_vars.size(); ++i) {
      pattern[i] = solver.value_of(a.input_vars[i]);
      pin_x.push_back(sat::Lit(a.input_vars[i], !pattern[i]));
    }
    int obs = -1;
    bool v0 = false;
    for (std::size_t o = 0; o < diffs.size(); ++o) {
      const bool flipped = diffs[o].is_const()
                               ? diffs[o].const_value()
                               : (solver.value_of(diffs[o].lit.var()) !=
                                  diffs[o].lit.negated());
      if (flipped) {
        obs = static_cast<int>(o);
        v0 = a.outputs[o].is_const()
                 ? a.outputs[o].const_value()
                 : (solver.value_of(a.outputs[o].lit.var()) !=
                    a.outputs[o].lit.negated());
        break;
      }
    }
    if (obs < 0) return -1;  // should not happen

    // Goldenness: at this x, output `obs` must be v0 for *every* rest-key
    // under bit=0, and ~v0 under bit=1. Two UNSAT checks.
    const auto constant_under = [&](const cnf::EncodedCircuit& copy,
                                    bool expected) {
      std::vector<sat::Lit> assume = pin_x;
      const cnf::NetLit out = copy.outputs[obs];
      if (out.is_const()) return out.const_value() == expected;
      assume.push_back(expected ? ~out.lit : out.lit);  // seek a violation
      budget.arm(solver);
      return solver.solve(assume) == sat::LBool::kFalse;
    };
    if (constant_under(a, v0) && constant_under(b, !v0)) {
      const std::vector<bool> response = oracle.query(pattern);
      return response[obs] == v0 ? 0 : 1;
    }
    // Not golden: exclude this input pattern and retry.
    sat::Clause block;
    for (std::size_t i = 0; i < a.input_vars.size(); ++i) {
      block.push_back(sat::Lit(a.input_vars[i], pattern[i]));
    }
    solver.add_clause(std::move(block));
  }
  return -1;
}

}  // namespace

SensitizationResult sensitization_attack(const core::LockedCircuit& locked,
                                         const Oracle& oracle,
                                         const SensitizationOptions& options) {
  // Reuse the engine's budget handling so timeout/interrupt map to the same
  // AttackStatus values as every DIP-loop attack.
  AttackOptions budget_options;
  budget_options.timeout_s = options.timeout_s;
  budget_options.interrupt = options.interrupt;
  const BudgetGuard budget(budget_options);
  const std::uint64_t queries_before = oracle.num_queries();
  SensitizationResult result;
  result.resolved.assign(locked.netlist.num_keys(), -1);
  // Peel until a fixpoint: every recovered bit may unlock further bits.
  bool progress = true;
  while (progress && result.status == AttackStatus::kSuccess) {
    progress = false;
    for (std::size_t i = 0; i < locked.netlist.num_keys(); ++i) {
      if (result.resolved[i] >= 0) continue;
      if (const auto cut = budget.exhausted()) {
        result.status = *cut;
        break;
      }
      result.resolved[i] =
          attack_one_key(locked, oracle, i, result.resolved,
                         options.attempts_per_key, budget);
      if (result.resolved[i] >= 0) {
        ++result.num_resolved;
        progress = true;
      }
    }
  }
  result.complete =
      result.num_resolved == static_cast<int>(locked.netlist.num_keys());
  result.oracle_queries = oracle.num_queries() - queries_before;
  result.seconds = budget.elapsed_s();
  return result;
}

}  // namespace fl::attacks
