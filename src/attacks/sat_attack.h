// Oracle-guided SAT attack (Subramanyan et al., HOST'15).
//
// Iteratively finds Discriminating Input Patterns with a double-key miter,
// queries the oracle, and constrains the key space until no DIP remains;
// any remaining key is then functionally correct.
//
// The miter setup, DIP loop, budget handling and key extraction live in the
// shared engine (attacks/engine.h); this class supplies the single-DIP
// policy: one oracle query per DIP, I/O constraints on both key copies, and
// BeSAT-style stateful-key banning on cyclic locks. Reports the statistics
// the paper's evaluation tables are built from: iteration count, wall time,
// per-iteration time, and the average clauses-to-variables ratio of the CNF
// the solver worked on (Fig. 7).
#pragma once

#include "attacks/engine.h"

namespace fl::attacks {

class SatAttack {
 public:
  explicit SatAttack(AttackOptions options = {}) : options_(options) {}

  AttackResult run(const core::LockedCircuit& locked,
                   const Oracle& oracle) const;

  // The solver configuration racer `k` uses in race mode. Config 0 is the
  // default SolverConfig, so a 1-wide portfolio degenerates to the plain
  // attack; further entries diversify restart cadence and decay, with
  // deterministic jitter past the hand-picked table so arbitrarily wide
  // portfolios never duplicate a schedule (sat::diversified_config).
  static sat::SolverConfig portfolio_config(int k) {
    return sat::diversified_config(k);
  }

 protected:
  // Hook for CycSAT: add pre-conditions on the two key-variable sets before
  // the DIP loop starts. `budget` lets long preprocessing degrade instead
  // of blowing the attack's wall budget.
  virtual void add_preconditions(const netlist::Netlist& locked,
                                 sat::SolverIface& solver,
                                 std::span<const sat::Var> key1,
                                 std::span<const sat::Var> key2,
                                 const BudgetGuard& budget) const;

  // Engine label for trace records and verbose output.
  virtual const char* name() const { return "sat"; }

 public:
  virtual ~SatAttack() = default;

 private:
  AttackResult run_single(const core::LockedCircuit& locked,
                          const Oracle& oracle,
                          const sat::SolverConfig& config,
                          const std::atomic<bool>* interrupt,
                          const std::atomic<bool>* race_cancel) const;
  AttackResult run_portfolio(const core::LockedCircuit& locked,
                             const Oracle& oracle) const;

  AttackOptions options_;
};

}  // namespace fl::attacks
