// Oracle-guided SAT attack (Subramanyan et al., HOST'15).
//
// Iteratively finds Discriminating Input Patterns with a double-key miter,
// queries the oracle, and constrains the key space until no DIP remains;
// any remaining key is then functionally correct.
//
// Reports the statistics the paper's evaluation tables are built from:
// iteration count, wall time, per-iteration time, and the average
// clauses-to-variables ratio of the CNF the solver worked on (Fig. 7).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "attacks/oracle.h"
#include "core/locked_circuit.h"
#include "sat/solver.h"

namespace fl::attacks {

enum class AttackStatus : std::uint8_t {
  kSuccess,         // UNSAT miter: extracted key is provably correct
  kTimeout,         // wall-clock budget exhausted (the paper's "TO")
  kIterationLimit,  // max_iterations reached
  kKeySpaceEmpty,   // constraints became UNSAT (should not happen with a
                    // well-formed locked circuit)
  kInterrupted,     // cooperative cancellation (AttackOptions::interrupt);
                    // the run was cut short externally, not by its budget —
                    // sweep runtimes must not record it as a finished cell
  kOutOfMemory,     // the solver's memory budget tripped
                    // (AttackOptions::memory_limit_mb)
};

const char* to_string(AttackStatus status);

struct AttackOptions {
  double timeout_s = 0.0;            // 0 = unlimited
  std::uint64_t max_iterations = 0;  // 0 = unlimited
  bool verbose = false;
  // Cooperative cancellation (e.g. fl::runtime::CancelToken::flag()).
  // Polled inside every solve; a cancelled attack reports kInterrupted. The
  // attack never writes the flag. nullptr disables.
  const std::atomic<bool>* interrupt = nullptr;
  // Portfolio mode: race this many solver configurations (restart cadence /
  // VSIDS decay variants, see SatAttack::portfolio_config) on the same
  // miter from parallel threads; the first decisive finisher cancels the
  // rest. 0 or 1 = single default configuration. Which racer wins is
  // timing-dependent, so leave this off when results must be reproducible.
  int portfolio = 0;
  // Solver memory budget (sat::SolverConfig::memory_limit_mb): a solve
  // whose accounted memory crosses it returns with kOutOfMemory instead of
  // growing until the process is OOM-killed. 0 = unlimited.
  std::size_t memory_limit_mb = 0;
};

struct AttackResult {
  AttackStatus status = AttackStatus::kTimeout;
  // Always sized to the key width: the recovered key for kSuccess, the
  // solver's best-effort assignment otherwise — downstream consumers
  // (AppSAT warm starts, JSONL writers) may index it unconditionally.
  std::vector<bool> key;
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  // Mean wall time of one DIP-loop iteration (DIP solve + oracle query +
  // constraint encoding). Excludes the one-off miter encoding and the final
  // key-extraction solve, so it matches the paper's per-iteration metric.
  double mean_iteration_seconds = 0.0;
  // Mean clauses/variables ratio over the CNF snapshots the DIP solver
  // actually worked on (one sample per DIP-miter solve).
  double mean_clause_var_ratio = 0.0;
  sat::SolverStats solver_stats;
  // Why the decisive solve stopped short (kNone when the attack ran to a
  // conclusive status). Distinguishes deadline / interrupt / conflict
  // budget / out-of-memory behind the kUndef the solver reported.
  sat::StopReason stop_reason = sat::StopReason::kNone;
  std::uint64_t oracle_queries = 0;
  // Stateful key assignments banned after repeated DIPs (cyclic locks
  // only; BeSAT-style progress guarantee).
  std::uint64_t banned_keys = 0;
  // Portfolio mode only: index of the solver configuration that produced
  // this result, or -1 outside portfolio mode / when every racer timed out.
  int portfolio_winner = -1;
};

class SatAttack {
 public:
  explicit SatAttack(AttackOptions options = {}) : options_(options) {}

  AttackResult run(const core::LockedCircuit& locked,
                   const Oracle& oracle) const;

  // The solver configuration racer `k` uses in portfolio mode. Config 0 is
  // the default SolverConfig, so a 1-wide portfolio degenerates to the
  // plain attack; further entries diversify restart cadence and decay.
  static sat::SolverConfig portfolio_config(int k);

 protected:
  // Hook for CycSAT: add pre-conditions on the two key-variable sets before
  // the DIP loop starts.
  virtual void add_preconditions(const netlist::Netlist& locked,
                                 sat::Solver& solver,
                                 std::span<const sat::Var> key1,
                                 std::span<const sat::Var> key2) const;

 public:
  virtual ~SatAttack() = default;

 private:
  AttackResult run_single(const core::LockedCircuit& locked,
                          const Oracle& oracle,
                          const sat::SolverConfig& config,
                          const std::atomic<bool>* interrupt) const;
  AttackResult run_portfolio(const core::LockedCircuit& locked,
                             const Oracle& oracle) const;

  AttackOptions options_;
};

}  // namespace fl::attacks
