// Oracle-guided SAT attack (Subramanyan et al., HOST'15).
//
// Iteratively finds Discriminating Input Patterns with a double-key miter,
// queries the oracle, and constrains the key space until no DIP remains;
// any remaining key is then functionally correct.
//
// Reports the statistics the paper's evaluation tables are built from:
// iteration count, wall time, per-iteration time, and the average
// clauses-to-variables ratio of the CNF the solver worked on (Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/oracle.h"
#include "core/locked_circuit.h"
#include "sat/solver.h"

namespace fl::attacks {

enum class AttackStatus : std::uint8_t {
  kSuccess,         // UNSAT miter: extracted key is provably correct
  kTimeout,         // wall-clock budget exhausted (the paper's "TO")
  kIterationLimit,  // max_iterations reached
  kKeySpaceEmpty,   // constraints became UNSAT (should not happen with a
                    // well-formed locked circuit)
};

const char* to_string(AttackStatus status);

struct AttackOptions {
  double timeout_s = 0.0;            // 0 = unlimited
  std::uint64_t max_iterations = 0;  // 0 = unlimited
  bool verbose = false;
};

struct AttackResult {
  AttackStatus status = AttackStatus::kTimeout;
  std::vector<bool> key;  // valid for kSuccess (best-effort otherwise)
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  double mean_iteration_seconds = 0.0;
  double mean_clause_var_ratio = 0.0;  // averaged over solver snapshots
  sat::SolverStats solver_stats;
  std::uint64_t oracle_queries = 0;
  // Stateful key assignments banned after repeated DIPs (cyclic locks
  // only; BeSAT-style progress guarantee).
  std::uint64_t banned_keys = 0;
};

class SatAttack {
 public:
  explicit SatAttack(AttackOptions options = {}) : options_(options) {}

  AttackResult run(const core::LockedCircuit& locked,
                   const Oracle& oracle) const;

 protected:
  // Hook for CycSAT: add pre-conditions on the two key-variable sets before
  // the DIP loop starts.
  virtual void add_preconditions(const netlist::Netlist& locked,
                                 sat::Solver& solver,
                                 std::span<const sat::Var> key1,
                                 std::span<const sat::Var> key2) const;

 public:
  virtual ~SatAttack() = default;

 private:
  AttackOptions options_;
};

}  // namespace fl::attacks
