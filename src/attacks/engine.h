// Shared oracle-guided attack engine.
//
// Every oracle-guided attack in this repo (SAT attack, CycSAT, AppSAT,
// Double-DIP) is the same loop: encode a key-differential miter, repeatedly
// solve for a discriminating input pattern (DIP), query the activated-chip
// oracle, constrain the key space, and finally extract a surviving key.
// What differs between the attacks is *policy* — which miter is encoded,
// what happens per DIP, and how the endgame runs — not the loop itself.
// This layer owns the loop:
//
//   MiterContext   owns the incremental solver and the encoded miter
//                  (inputs, key copies, activation literal), the per-solve
//                  clauses/variables ratio sampling (Fig. 7's metric), DIP
//                  constraint encoding and key extraction.
//   BudgetGuard    every attack budget in one place: wall-clock timeout,
//                  cooperative interrupt, solver memory budget — and the
//                  single mapping from an exhausted budget to AttackStatus,
//                  so kTimeout / kInterrupted / kOutOfMemory mean the same
//                  thing for every attack.
//   DipLoop        the driver: enforces the budgets, counts and times
//                  iterations uniformly (mean_iteration_seconds,
//                  mean_clause_var_ratio), and calls back into a DipPolicy
//                  at the three points where attacks differ.
//   DipPolicy      per-attack behavior: on_dip (oracle query + key-space
//                  pruning), after_iteration (AppSAT's settlement checks),
//                  on_no_dip (key extraction / mop-up).
//
// Observability: an optional IterationTraceSink receives one record per
// counted DIP iteration (index, the DIP, the miter-solve wall time, the
// solver's decision/propagation/conflict deltas, and the running c/v ratio)
// — the per-iteration data the paper's Eq. 2 hardness argument is about.
// JsonlTraceSink emits them as JSONL in the runtime::jsonl conventions
// (wired through `attack --trace FILE` and the sweep drivers' --trace).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "attacks/oracle.h"
#include "cnf/tseytin.h"
#include "core/locked_circuit.h"
#include "netlist/simulator.h"
#include "netlist/structure.h"
#include "sat/parallel.h"
#include "sat/preprocess.h"
#include "sat/solver.h"

namespace fl::attacks {

enum class AttackStatus : std::uint8_t {
  kSuccess,         // UNSAT miter: extracted key is provably correct
  kTimeout,         // wall-clock budget exhausted (the paper's "TO")
  kIterationLimit,  // max_iterations reached
  kKeySpaceEmpty,   // constraints became UNSAT (should not happen with a
                    // well-formed locked circuit)
  kInterrupted,     // cooperative cancellation (AttackOptions::interrupt);
                    // the run was cut short externally, not by its budget —
                    // sweep runtimes must not record it as a finished cell
  kOutOfMemory,     // the solver's memory budget tripped
                    // (AttackOptions::memory_limit_mb)
};

const char* to_string(AttackStatus status);

// How MiterContext encodes the miter and the per-DIP constraints.
//
//  * kFull — the legacy shape: every circuit copy encodes the whole netlist
//    (constant folding still shrinks fixed-input copies).
//  * kCone — key-cone encoding: the base miter is restricted to the fanin
//    support of the key-dependent outputs (cnf::encode_attack_miter with a
//    KeyConePartition), and each DIP constraint simulates the key-free
//    region bit-parallel (netlist::Simulator) and Tseytin-encodes only the
//    key cone against the swept constants. Requires an acyclic lock;
//    requesting it on a cyclic one throws std::invalid_argument.
//  * kAuto — kCone whenever the lock is acyclic and has keys (CycSAT's
//    cyclic locks fall back to kFull, which its relaxation oracle needs).
enum class EncodeMode : std::uint8_t { kAuto, kCone, kFull };

const char* to_string(EncodeMode mode);
// "auto" | "cone" | "full" -> mode; std::nullopt for anything else. Shared
// by the CLI's --encode flag and the serve JobSpec's encode field.
std::optional<EncodeMode> parse_encode_mode(std::string_view name);

// One completed DIP iteration, as handed to an IterationTraceSink. The
// solver counters are deltas over the DIP-miter solve alone (policy work —
// oracle queries, constraint encoding, AppSAT settlement solves — is
// excluded, exactly like mean_iteration_seconds excludes the one-off miter
// encoding).
struct IterationTrace {
  std::string attack;        // engine label: "sat", "cycsat", "appsat", ...
  long long cell = -1;       // sweep grid cell, -1 outside sweeps
  std::uint64_t iteration = 0;  // 0-based counted-iteration index
  std::string dip;           // the DIP as a '0'/'1' string, PI order
  double cv_ratio = 0.0;     // clauses/vars ratio the DIP solve started from
  std::uint64_t decisions = 0;     // solver deltas over the DIP solve
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  double solve_s = 0.0;      // wall time of the DIP-miter solve
  // Problem-clause / variable growth across the whole iteration (the DIP
  // solve plus the policy's constraint encoding). Signed: the solver's
  // root-level simplification may shrink the database between solves.
  long long clauses_added = 0;
  long long vars_added = 0;
  // Wall time the policy spent encoding constraints this iteration
  // (MiterContext::constrain_io / constrain_io_batch, including the
  // fixed-region constant sweep in cone mode).
  double encode_s = 0.0;
};

class IterationTraceSink {
 public:
  virtual ~IterationTraceSink() = default;
  virtual void record(const IterationTrace& trace) = 0;
};

// Emits one JSONL object per iteration (schema in EXPERIMENTS.md) onto a
// caller-owned stream. Thread-safe: one sink may serve every cell of a
// parallel sweep (records carry their cell index) or every racer of a
// portfolio, serialized by an internal mutex.
class JsonlTraceSink final : public IterationTraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void record(const IterationTrace& trace) override;

 private:
  std::ostream& out_;
  std::mutex mu_;
};

struct AttackOptions {
  double timeout_s = 0.0;            // 0 = unlimited
  std::uint64_t max_iterations = 0;  // 0 = unlimited
  // Absolute wall deadline imposed by an enclosing job budget (the serve
  // daemon's per-job watchdog): BudgetGuard stops the attack with kTimeout
  // when it passes, whichever of it and timeout_s comes first. Unlike
  // timeout_s — which restarts from Clock::now() on every attempt — this is
  // a fixed point in time, so retries of a failed job share one budget
  // instead of resetting it.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  bool verbose = false;
  // Cooperative cancellation (e.g. fl::runtime::CancelToken::flag()).
  // Polled inside every solve; a cancelled attack reports kInterrupted. The
  // attack never writes the flag. nullptr disables.
  const std::atomic<bool>* interrupt = nullptr;
  // Parallel width: how many solver workers/racers to run. 0 or 1 = single
  // default configuration. What the width is spent on is par_mode's choice.
  // Winners and cube interleavings are timing-dependent, so leave this off
  // when results must be reproducible.
  int portfolio = 0;
  // How portfolio width > 1 is spent:
  //  * kRace  — independent attack racers with diversified solver configs
  //             (each runs its own DIP loop); first decisive finisher wins
  //             and cancels the rest. No cooperation: losers' DIP work is
  //             discarded (their search counters are aggregated).
  //  * kShare — one DIP loop over an in-process clause-sharing portfolio
  //             (sat::ParallelSolver): K workers on the identical miter
  //             exchanging core-tier learnt clauses.
  //  * kCubes — one DIP loop; each miter solve is cube-and-conquer split
  //             over the CLN swap-key variables.
  sat::ParMode par_mode = sat::ParMode::kRace;
  // Cube split depth for kCubes (2^d cubes per solve); 0 derives it from
  // the width (sat::ParallelConfig::cube_depth).
  int cube_depth = 0;
  // Internal (set by SatAttack::run_portfolio for race mode): the winner's
  // cancel signal, kept separate from `interrupt` so an external
  // cancellation and a lost race stay distinguishable in the result.
  const std::atomic<bool>* race_cancel = nullptr;
  // Solver memory budget (sat::SolverConfig::memory_limit_mb): a solve
  // whose accounted memory crosses it returns with kOutOfMemory instead of
  // growing until the process is OOM-killed. 0 = unlimited.
  std::size_t memory_limit_mb = 0;
  // Miter/constraint encoding shape; see EncodeMode. kAuto picks the cone
  // encoding whenever the lock admits it.
  EncodeMode encode_mode = EncodeMode::kAuto;
  // Run SatELite-style preprocessing (sat::PreprocessSolver) over the base
  // miter before the DIP loop: bounded variable elimination, subsumption,
  // self-subsuming resolution. Inputs, key copies and the activation
  // literal are frozen; everything the loop adds later is incremental.
  bool preprocess = true;
  sat::PreprocessConfig preprocess_config;
  // Optional per-iteration observability (see IterationTrace). Not owned;
  // must outlive the attack. Portfolio racers share the sink, so their
  // records interleave (the sink is thread-safe).
  IterationTraceSink* trace = nullptr;
  // Grid cell index stamped into trace records by sweep drivers (-1 = not
  // part of a sweep).
  long long trace_cell = -1;
};

struct AttackResult {
  AttackStatus status = AttackStatus::kTimeout;
  // Always sized to the key width: the recovered key for kSuccess, the
  // solver's best-effort assignment otherwise — downstream consumers
  // (AppSAT warm starts, JSONL writers) may index it unconditionally.
  std::vector<bool> key;
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  // Mean wall time of one DIP-loop iteration (DIP solve + oracle query +
  // constraint encoding). Excludes the one-off miter encoding and the final
  // key-extraction solve, so it matches the paper's per-iteration metric.
  // In race-mode portfolios this is the *winning racer's* loop only —
  // losers run their own loops whose timings are dropped — while
  // solver_stats and oracle_queries aggregate over every racer; see
  // EXPERIMENTS.md before comparing against single-solver timings.
  double mean_iteration_seconds = 0.0;
  // Mean clauses/variables ratio over the CNF snapshots the DIP solver
  // actually worked on (one sample per DIP-miter solve).
  double mean_clause_var_ratio = 0.0;
  sat::SolverStats solver_stats;
  // Why the decisive solve stopped short (kNone when the attack ran to a
  // conclusive status). Distinguishes deadline / interrupt / conflict
  // budget / out-of-memory behind the kUndef the solver reported.
  sat::StopReason stop_reason = sat::StopReason::kNone;
  std::uint64_t oracle_queries = 0;
  // Stateful key assignments banned after repeated DIPs (cyclic locks
  // only; BeSAT-style progress guarantee).
  std::uint64_t banned_keys = 0;
  // Portfolio mode only: index of the solver configuration that produced
  // this result, or -1 outside portfolio mode / when every racer timed out.
  int portfolio_winner = -1;
  // Encoding-pipeline observability (filled by DipLoop::run). base_clauses /
  // base_vars snapshot the solver right after the miter (and any policy
  // preconditions) were committed — i.e. after preprocessing — and the
  // *_added totals are the growth across the whole DIP loop (signed: root
  // simplification can shrink the database).
  std::size_t base_clauses = 0;
  std::size_t base_vars = 0;
  long long clauses_added = 0;
  long long vars_added = 0;
  // Total wall time spent encoding DIP constraints (cone sweep included).
  double encode_seconds = 0.0;
  bool cone_encoding = false;
  sat::PreprocessStats preprocess;
};

// All attack budgets, checked in one place, so every attack maps budget
// exhaustion to the same AttackStatus values. Constructed once at attack
// start; the deadline is derived from timeout_s relative to `start`.
class BudgetGuard {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BudgetGuard(const AttackOptions& options,
                       Clock::time_point start = Clock::now());

  Clock::time_point start() const { return start_; }
  const std::optional<Clock::time_point>& deadline() const {
    return deadline_;
  }
  bool limited() const { return deadline_.has_value(); }
  double elapsed_s() const;
  // Seconds left until the deadline (never negative); meaningless unless
  // limited(). Used by Double-DIP to hand its remaining budget to the
  // mop-up SAT attack.
  double remaining_s() const;

  // Arms `solver` with the deadline and both interrupt flags (the caller's
  // cancel token and, for portfolio racers, the winner's cancel signal);
  // call before every solve so kUndef can be mapped back with
  // undef_status(). Folding the race signal into the solver's own poll
  // points replaced the old watcher thread that busy-polled the external
  // flag every 2 ms.
  void arm(sat::SolverIface& solver) const;

  // Non-solver poll point (preprocessing loops, sensitization's per-key
  // sweep): the status a budget-exhausted attack must report, or nullopt
  // while budgets remain.
  std::optional<AttackStatus> exhausted() const;

  // Maps a solve() that returned kUndef back to an attack status via the
  // solver's stop reason. An external cancellation and a tripped memory
  // budget are not the paper's "TO".
  AttackStatus undef_status(const sat::SolverIface& solver) const;

 private:
  Clock::time_point start_;
  std::optional<Clock::time_point> deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  const std::atomic<bool>* race_cancel_ = nullptr;
};

// The attack's solver configuration: `base` (portfolio diversification)
// with the attack-level memory budget folded in.
sat::SolverConfig solver_config_for(const AttackOptions& options,
                                    sat::SolverConfig base = {});

// Owns the incremental solver and the encoded attack miter. The miter shape
// is supplied by an Encoder so the standard double-key construction and
// Double-DIP's four-copy 2-DIP construction drive the same loop.
class MiterContext {
 public:
  // What an encoder must produce: the shared primary-input variables, the
  // key-variable copies that receive per-DIP I/O constraints (copies[0] is
  // the copy the final key is extracted from), and the activation literal
  // assumed when searching for a DIP. `trivially_equal` short-circuits the
  // whole attack (the output does not depend on the key).
  struct Parts {
    std::vector<sat::Var> inputs;
    std::vector<std::vector<sat::Var>> key_copies;
    sat::Lit activate = sat::kUndefLit;
    bool trivially_equal = false;
  };
  // The partition pointer is non-null iff the context chose the cone
  // encoding (EncodeMode); encoders that cannot exploit it may ignore it.
  using Encoder = std::function<Parts(
      const netlist::Netlist&, sat::SolverIface&, netlist::KeyConePartition*)>;

  // The standard double-key miter of Subramanyan et al. (two copies sharing
  // the primary inputs, independent keys K1/K2, some output differs).
  static Encoder double_key();

  MiterContext(const core::LockedCircuit& locked, const Encoder& encoder,
               const sat::SolverConfig& config = {});
  // Routes the attack's parallel width through the solver: with
  // options.portfolio > 1 and par_mode kShare/kCubes the context owns a
  // sat::ParallelSolver (cube mode is seeded with every key copy's
  // variables as split candidates); otherwise a plain sequential solver.
  // `config` is the base solver configuration before the attack-level
  // memory budget is folded in (solver_config_for).
  MiterContext(const core::LockedCircuit& locked, const Encoder& encoder,
               const AttackOptions& options,
               const sat::SolverConfig& config = {});

  const core::LockedCircuit& locked() const { return *locked_; }
  sat::SolverIface& solver() { return *solver_; }
  const sat::SolverIface& solver() const { return *solver_; }
  const std::vector<sat::Var>& inputs() const { return parts_.inputs; }
  std::size_t num_key_copies() const { return parts_.key_copies.size(); }
  std::span<const sat::Var> key_copy(std::size_t i) const {
    return parts_.key_copies[i];
  }
  sat::Lit activate() const { return parts_.activate; }
  bool trivially_equal() const { return parts_.trivially_equal; }

  // One clauses/variables sample per DIP-miter solve: exactly the CNF
  // snapshots the solver worked on, each counted once (the final
  // key-extraction solve reuses the last snapshot, so it adds no sample).
  void sample_ratio();
  double last_ratio() const { return last_ratio_; }
  double mean_ratio() const;

  // Model readback (valid after a kTrue solve; best-effort otherwise).
  std::vector<bool> extract_pattern() const;
  std::vector<bool> extract_key() const { return extract_key(key_copy(0)); }
  std::vector<bool> extract_key(std::span<const sat::Var> key_vars) const;

  // "locked(pattern, K) == response" for every key copy — the per-DIP
  // key-space pruning constraint. In cone mode the key-free region is
  // evaluated by simulation and only the key cone is re-encoded; patterns
  // handed to constrain_io_batch share one bit-parallel sweep (64+ patterns
  // per simulator pass — AppSAT's reinforcement batches go through here).
  void constrain_io(const std::vector<bool>& pattern,
                    const std::vector<bool>& response);
  void constrain_io_batch(std::span<const std::vector<bool>> patterns,
                          std::span<const std::vector<bool>> responses);

  // Commits the staged base encoding: flushes the preprocessor (if any) and
  // snapshots base_clauses()/base_vars(). Called by DipLoop::run before the
  // first solve, after policies had their chance to add preconditions (so
  // CycSAT's cycle-breaking clauses get preprocessed with the miter);
  // idempotent.
  void finalize_encoding();
  std::size_t base_clauses() const { return base_clauses_; }
  std::size_t base_vars() const { return base_vars_; }
  bool cone_encoding() const { return cone_ != nullptr; }
  // Cumulative wall time spent in constrain_io/constrain_io_batch (cone
  // sweep + Tseytin encode; the legacy full encode is timed too).
  double encode_seconds() const { return encode_seconds_; }
  sat::PreprocessStats preprocess_stats() const;

  // Bans the exact assignment `key` of `key_vars` (BeSAT-style stateful-key
  // elimination on cyclic locks).
  void ban_key(std::span<const sat::Var> key_vars,
               const std::vector<bool>& key);

 private:
  void init_cone(EncodeMode mode);
  void freeze_interface();

  const core::LockedCircuit* locked_;
  // When preprocessing: inner_solver_ is the real engine and solver_ the
  // PreprocessSolver staging wrapper (declared after inner_solver_ so it is
  // destroyed first). Otherwise solver_ owns the engine directly.
  std::unique_ptr<sat::SolverIface> inner_solver_;
  std::unique_ptr<sat::SolverIface> solver_;
  sat::PreprocessSolver* pre_ = nullptr;      // view into solver_, or null
  sat::ParallelSolver* parallel_ = nullptr;   // view into the engine, or null
  std::unique_ptr<netlist::KeyConePartition> cone_;  // null = full encoding
  std::unique_ptr<netlist::Simulator> fixed_sim_;    // over fixed_region()
  netlist::Simulator::Scratch fixed_scratch_;
  std::vector<cnf::NetLit> frontier_;  // per-DIP tap constants, GateId-indexed
  Parts parts_;
  bool finalized_ = false;
  std::size_t base_clauses_ = 0;
  std::size_t base_vars_ = 0;
  double encode_seconds_ = 0.0;
  double ratio_sum_ = 0.0;
  double last_ratio_ = 0.0;
  std::uint64_t ratio_samples_ = 0;
};

// What a DipPolicy callback tells the loop to do next.
enum class LoopAction : std::uint8_t {
  kContinue,  // count this iteration and keep looping
  kRetry,     // keep looping without counting an iteration (key bans)
  kDone,      // result.status (and key, if recovered) are set — stop
};

// The per-attack behavior plugged into DipLoop. Policies are constructed
// per run and may hold attack state (DIP history, RNGs, oracles).
class DipPolicy {
 public:
  virtual ~DipPolicy() = default;

  // A DIP-miter solve returned SAT and `pattern` is its DIP. Query the
  // oracle and prune the key space. Runs inside the timed iteration window.
  virtual LoopAction on_dip(MiterContext& ctx, const BudgetGuard& budget,
                            const std::vector<bool>& pattern,
                            AttackResult& result) = 0;

  // Runs after each counted iteration, outside the timed window (AppSAT's
  // settlement checks live here). Default: keep looping.
  virtual LoopAction after_iteration(MiterContext& ctx,
                                     const BudgetGuard& budget,
                                     AttackResult& result);

  // The miter is UNSAT: no DIP remains. The default extracts a model of the
  // surviving key space (kKeySpaceEmpty when none) and reports success;
  // attacks override to validate candidates (SAT attack on cyclic locks) or
  // mop up with a stronger loop (Double-DIP).
  virtual LoopAction on_no_dip(MiterContext& ctx, const BudgetGuard& budget,
                               AttackResult& result);
};

// The shared DIP loop driver. Enforces every budget (max_iterations plus
// everything BudgetGuard owns), samples the c/v ratio once per DIP solve,
// times iterations uniformly, emits trace records, and keeps the final key
// sized to the key width on every exit path.
class DipLoop {
 public:
  // `name` labels trace records and verbose output ("sat", "appsat", ...).
  DipLoop(const Oracle& oracle, const AttackOptions& options,
          const BudgetGuard& budget, std::string name);

  AttackResult run(MiterContext& ctx, DipPolicy& policy);

 private:
  const Oracle& oracle_;
  const AttackOptions& options_;
  const BudgetGuard& budget_;
  std::string name_;
};

}  // namespace fl::attacks
