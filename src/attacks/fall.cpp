#include "attacks/fall.h"

#include <string>

#include "cnf/tseytin.h"
#include "core/verify.h"
#include "locking/sfll_hd.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace fl::attacks {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Transitive fanout of the key inputs.
std::vector<bool> key_taint(const Netlist& net) {
  const auto fanout = net.fanout_map();
  std::vector<bool> tainted(net.num_gates(), false);
  std::vector<GateId> stack(net.keys().begin(), net.keys().end());
  for (const GateId k : stack) tainted[k] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId out : fanout[g]) {
      if (!tainted[out]) {
        tainted[out] = true;
        stack.push_back(out);
      }
    }
  }
  return tainted;
}

bool model_bit(const sat::Solver& solver, sat::Var v) {
  return v != sat::kNullVar && solver.value_of(v);
}

}  // namespace

FallResult fall_attack(const core::LockedCircuit& locked,
                       const Oracle& oracle, const FallOptions& options) {
  FallResult result;
  const Netlist& net = locked.netlist;
  const std::size_t num_keys = net.num_keys();
  if (num_keys == 0 || net.is_cyclic()) return result;
  const std::vector<bool> tainted = key_taint(net);

  // 1. Locate the stripped-function / restore-unit seam: an output XOR
  // whose fanins split into one key-free and one key-bearing cone.
  GateId fsc_root = netlist::kNullGate;
  std::size_t seam_output = 0;
  bool seam_xnor = false;
  for (std::size_t oi = 0; oi < net.num_outputs(); ++oi) {
    const GateId g = net.outputs()[oi].gate;
    const netlist::GateView gate = net.gate(g);
    if ((gate.type != GateType::kXor && gate.type != GateType::kXnor) ||
        gate.fanin.size() != 2) {
      continue;
    }
    const GateId a = gate.fanin[0];
    const GateId b = gate.fanin[1];
    if (tainted[a] == tainted[b]) continue;
    fsc_root = tainted[a] ? b : a;
    seam_output = oi;
    seam_xnor = gate.type == GateType::kXnor;
    break;
  }
  if (fsc_root == netlist::kNullGate) return result;
  result.restore_identified = true;

  // Strip the restore unit: the removal attacker's circuit.
  Netlist stripped = net;
  GateId strip_root = fsc_root;
  if (seam_xnor) strip_root = stripped.add_gate(GateType::kNot, {fsc_root});
  stripped.set_output_gate(seam_output, strip_root);
  const std::vector<bool> zero_key(num_keys, false);
  result.stripped_error_rate =
      core::error_rate(oracle.circuit(), stripped, zero_key,
                       options.verify_rounds, options.seed);

  // 2. Map key bits to protected inputs through the restore unit's
  // x XOR k comparator layer.
  std::vector<int> input_of_key(num_keys, -1);
  for (GateId g = 0; g < net.num_gates(); ++g) {
    const netlist::GateView gate = net.gate(g);
    if (gate.type != GateType::kXor || gate.fanin.size() != 2) continue;
    for (int pin = 0; pin < 2; ++pin) {
      const int ki = net.key_index(gate.fanin[pin]);
      const int xi = net.input_index(gate.fanin[1 - pin]);
      if (ki >= 0 && xi >= 0 && input_of_key[ki] < 0) {
        input_of_key[ki] = xi;
      }
    }
  }
  std::vector<int> protected_keys;  // key indices with an input mapping
  for (std::size_t i = 0; i < num_keys; ++i) {
    if (input_of_key[i] >= 0) protected_keys.push_back(static_cast<int>(i));
  }
  result.protected_bits = static_cast<int>(protected_keys.size());
  if (protected_keys.empty()) return result;
  const int k = result.protected_bits;

  // 3. SAT-enumerate disagreement patterns between the stripped function
  // and the oracle, blocking each pattern's projection onto the protected
  // inputs. Every projection lies at HD exactly h from K*.
  std::vector<std::vector<bool>> patterns;  // projected onto protected bits
  {
    sat::Solver solver;
    cnf::SolverSink sink(solver);
    const cnf::EncodedCircuit enc_oracle =
        cnf::encode(oracle.circuit(), sink);
    // Reuse the oracle's input variables; the difference literal then
    // ranges over shared inputs only.
    std::vector<sat::Var> shared(enc_oracle.input_vars.begin(),
                                 enc_oracle.input_vars.end());
    for (sat::Var& v : shared) {
      if (v == sat::kNullVar) v = solver.new_var();
    }
    cnf::EncodeOptions enc_options;
    enc_options.shared_input_vars = shared;
    const cnf::EncodedCircuit enc_stripped =
        cnf::encode(stripped, sink, enc_options);
    const cnf::NetLit diff = cnf::encode_difference(
        enc_oracle.outputs, enc_stripped.outputs, sink);
    cnf::assert_true(sink, diff);

    while (static_cast<int>(patterns.size()) < options.max_patterns) {
      if (solver.solve() != sat::LBool::kTrue) break;
      std::vector<bool> projected(k);
      sat::Clause block;
      for (int i = 0; i < k; ++i) {
        const sat::Var v = shared[input_of_key[protected_keys[i]]];
        projected[i] = model_bit(solver, v);
        block.push_back(projected[i] ? sat::neg(v) : sat::pos(v));
      }
      patterns.push_back(std::move(projected));
      if (!solver.add_clause(std::move(block))) break;
    }
  }
  result.error_patterns = static_cast<int>(patterns.size());
  if (patterns.empty()) return result;

  // 4. Solve "HD(pattern_t, K) == h for every t" over the protected key
  // bits for each candidate h, and test candidates against the oracle. The
  // final verification is complete (SAT equivalence on acyclic locks), so
  // a surviving candidate is the real key.
  for (int h = 0; h <= k && !result.key_recovered; ++h) {
    Netlist constraints("fall_keys");
    std::vector<GateId> key_bits(k);
    for (int i = 0; i < k; ++i) {
      key_bits[i] = constraints.add_input("k" + std::to_string(i));
    }
    std::vector<GateId> terms;
    for (const std::vector<bool>& pattern : patterns) {
      std::vector<GateId> diff_bits(k);
      for (int i = 0; i < k; ++i) {
        diff_bits[i] = constraints.add_gate(
            pattern[i] ? GateType::kNot : GateType::kBuf, {key_bits[i]});
      }
      terms.push_back(lock::build_hd_equals(constraints, diff_bits, h));
    }
    while (terms.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        next.push_back(
            constraints.add_gate(GateType::kAnd, {terms[i], terms[i + 1]}));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }
    constraints.mark_output(terms[0], "consistent");

    sat::Solver solver;
    cnf::SolverSink sink(solver);
    const cnf::EncodedCircuit enc = cnf::encode(constraints, sink);
    cnf::assert_true(sink, enc.outputs[0]);
    for (int c = 0; c < options.max_candidates; ++c) {
      if (solver.solve() != sat::LBool::kTrue) break;
      std::vector<bool> candidate(num_keys, false);
      sat::Clause block;
      for (int i = 0; i < k; ++i) {
        const sat::Var v = enc.input_vars[i];
        const bool bit = model_bit(solver, v);
        candidate[protected_keys[i]] = bit;
        if (v != sat::kNullVar) {
          block.push_back(bit ? sat::neg(v) : sat::pos(v));
        }
      }
      ++result.candidates_tested;
      if (core::verify_unlocks(oracle.circuit(), net, candidate,
                               options.verify_rounds, options.seed,
                               /*also_sat_check=*/true)) {
        result.key_recovered = true;
        result.key = std::move(candidate);
        result.hd = h;
        break;
      }
      if (block.empty() || !solver.add_clause(std::move(block))) break;
    }
  }
  return result;
}

}  // namespace fl::attacks
