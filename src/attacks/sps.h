// Signal Probability Skew (SPS) attack (Yasin et al., ASP-DAC'17).
//
// Computes per-net signal probabilities and flags highly skewed nets —
// the tell-tale of Anti-SAT-style point-function blocks, whose flip signal
// is ~always 0. Full-Lock's CLN nets stay near p = 0.5, so SPS finds no
// foothold (§2, property 3).
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace fl::attacks {

struct SkewedNet {
  netlist::GateId gate;
  double probability;  // estimated P(net = 1)
  double skew;         // |p - 0.5| * 2, in [0, 1]
};

struct SpsReport {
  std::vector<SkewedNet> top;  // most-skewed first
  double max_skew = 0.0;
  double mean_skew = 0.0;  // over key-dependent internal nets
};

// Considers only key-dependent logic nets (where a locking block could
// hide); `top_k` limits the report size.
SpsReport sps_attack(const netlist::Netlist& locked, int top_k = 10);

}  // namespace fl::attacks
