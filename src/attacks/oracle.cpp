#include "attacks/oracle.h"

#include <stdexcept>

namespace fl::attacks {

using netlist::Word;

Oracle::Oracle(netlist::Netlist original)
    : original_(std::move(original)), simulator_(original_) {
  if (original_.num_keys() != 0) {
    throw std::invalid_argument("oracle circuit must be key-free");
  }
}

std::vector<bool> Oracle::query(const std::vector<bool>& input) const {
  if (input.size() != original_.num_inputs()) {
    throw std::invalid_argument("oracle query width mismatch");
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Word> words(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    words[i] = input[i] ? ~Word{0} : Word{0};
  }
  const std::vector<Word> out = simulator_.run(words, {});
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) result[i] = (out[i] & 1) != 0;
  return result;
}

std::vector<Word> Oracle::query_words(std::span<const Word> inputs,
                                      std::size_t n_patterns) const {
  if (n_patterns == 0 || n_patterns > 64) {
    throw std::invalid_argument("query_words: n_patterns must be in 1..64");
  }
  queries_.fetch_add(n_patterns, std::memory_order_relaxed);
  return simulator_.run(inputs, {});
}

void Oracle::query_batch(std::span<const Word> inputs, std::size_t n_words,
                         std::size_t n_patterns,
                         std::span<Word> outputs) const {
  if (n_patterns == 0 || n_patterns > n_words * 64) {
    throw std::invalid_argument(
        "query_batch: n_patterns must be in 1..n_words*64");
  }
  queries_.fetch_add(n_patterns, std::memory_order_relaxed);
  // One scratch per thread: the Oracle is shared const across attack
  // threads, so per-object scratch would race. The cache is capped: a
  // sweep thread that served one million-gate cell would otherwise pin that
  // cell's scratch (dozens of MB) for the rest of its life.
  static constexpr std::size_t kScratchRetainBytes = std::size_t{16} << 20;
  thread_local netlist::Simulator::Scratch scratch;
  simulator_.run_batch(inputs, {}, n_words, scratch, outputs);
  scratch.trim(kScratchRetainBytes);
}

}  // namespace fl::attacks
