#include "attacks/oracle.h"

#include <stdexcept>

namespace fl::attacks {

using netlist::Word;

Oracle::Oracle(netlist::Netlist original)
    : original_(std::move(original)), simulator_(original_) {
  if (original_.num_keys() != 0) {
    throw std::invalid_argument("oracle circuit must be key-free");
  }
}

std::vector<bool> Oracle::query(const std::vector<bool>& input) const {
  if (input.size() != original_.num_inputs()) {
    throw std::invalid_argument("oracle query width mismatch");
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Word> words(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    words[i] = input[i] ? ~Word{0} : Word{0};
  }
  const std::vector<Word> out = simulator_.run(words, {});
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) result[i] = (out[i] & 1) != 0;
  return result;
}

std::vector<Word> Oracle::query_words(std::span<const Word> inputs) const {
  queries_.fetch_add(64, std::memory_order_relaxed);
  return simulator_.run(inputs, {});
}

}  // namespace fl::attacks
