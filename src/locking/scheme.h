// Pluggable lock-scheme registry: every locking transform in this library
// (Full-Lock and the comparison schemes of §4) behind one interface, keyed
// by name. The CLI (`lock --scheme NAME`), the serve daemon's JobSpec, the
// sweep drivers, and the bench grids all resolve schemes here instead of
// hardcoding core::full_lock.
//
// A scheme is configured by a SchemeOptions: a seed, a generic integer
// `sizes` axis (the per-scheme "main knob" — PLR/CLN widths for the routing
// schemes, key/LUT counts for the logic schemes), and free-form key=value
// parameters. Each scheme parses and range-checks its own parameters,
// canonicalizes them back into LockedCircuit.params, and reports capability
// flags (cyclic, removal-resilient, point-function) that drive attack
// auto-selection and --encode validation before any attack runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/locked_circuit.h"

namespace fl::lock {

// Capability flags for one (scheme, options) combination.
struct SchemeCaps {
  // lock() may return a cyclic netlist (e.g. full-lock with cycle=force).
  // Gates --encode cone at option-parse/admission time.
  bool may_be_cyclic = false;
  // The removal attack's block bypass is expected to fail *functionally*
  // (driver negation, folded logic, or a stripped function), not just
  // structurally.
  bool removal_resilient = false;
  // Point-function corruption: wrong keys err on a vanishing fraction of
  // inputs (SAT-iteration bomb; AppSAT's target). The property suite checks
  // low corruption for these and high corruption for the rest.
  bool point_function = false;
  // lock() emits RoutingBlockHints, so the removal attack applies.
  bool has_routing_blocks = false;
};

struct SchemeOptions {
  std::uint64_t seed = 1;
  // Generic size axis (sweep grids): scheme-specific meaning, documented in
  // params_help(). Explicit key=value parameters win over sizes.
  std::vector<int> sizes;
  std::map<std::string, std::string> params;
};

// Merges "key=value[,key=value...]" into options.params (later wins).
// Throws std::invalid_argument on entries without '='.
void parse_params_into(SchemeOptions& options, std::string_view text);

inline SchemeOptions make_options(std::uint64_t seed,
                                  std::vector<int> sizes = {},
                                  std::string_view params_text = {}) {
  SchemeOptions options;
  options.seed = seed;
  options.sizes = std::move(sizes);
  parse_params_into(options, params_text);
  return options;
}

class LockScheme {
 public:
  virtual ~LockScheme() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  // One-line "key=value" summary of the accepted parameters and defaults.
  virtual std::string_view params_help() const = 0;

  // Capability flags under `options` (parameters are read leniently here —
  // call validate() for strict checking).
  virtual SchemeCaps caps(const SchemeOptions& options) const = 0;
  SchemeCaps caps() const { return caps(SchemeOptions{}); }

  // Strict parameter parsing without locking anything: throws
  // std::invalid_argument naming the offending parameter. Used by the CLI
  // at flag-parse time and by the serve daemon at admission.
  virtual void validate(const SchemeOptions& options) const = 0;

  // Locks a copy of `original`. The result carries this scheme's canonical
  // name and parameter string (LockedCircuit.scheme / .params). Throws
  // std::invalid_argument on bad parameters or an unsuitable circuit.
  virtual core::LockedCircuit lock(const netlist::Netlist& original,
                                   const SchemeOptions& options) const = 0;
};

// All registered schemes, sorted by name. Never empty; pointers live for
// the program's lifetime.
const std::vector<const LockScheme*>& registry();
// nullptr when unknown.
const LockScheme* find_scheme(std::string_view name);
// "antisat, cross-lock, ..." — for error messages and usage text.
std::string scheme_names();

// Convenience: find + lock. Throws std::invalid_argument on unknown names.
core::LockedCircuit lock_with(std::string_view scheme,
                              const netlist::Netlist& original,
                              const SchemeOptions& options);

// ---- Attack-side helpers driven by the registry ----------------------

// Attack names the CLI / serve accept for --attack.
extern const char* const kKnownAttacks;
bool known_attack(std::string_view name);

// Shared "auto" resolution: cycsat on cyclic locks, sat otherwise;
// double-dip (acyclic-only) degrades to cycsat on cyclic netlists.
std::string resolve_attack(std::string_view requested, bool cyclic);

// Rejects --encode cone when the named scheme's capabilities say the lock
// may be cyclic (cone encoding requires an acyclic netlist). Unknown scheme
// names pass — cyclicity is then checked against the loaded netlist.
// Throws std::invalid_argument with an actionable message.
void validate_encode_option(std::string_view encode, std::string_view scheme,
                            const SchemeOptions& options);

// ---- Locked-circuit provenance I/O -----------------------------------

// Writes `path` (.bench with "# lock-scheme:"/"# lock-params:" header
// comments) and `path`.key (same header + one "name bit" line per key).
// Throws std::runtime_error when a write fails.
void write_locked_circuit(const core::LockedCircuit& locked,
                          const std::string& path);

// Reads a locked .bench, recovering scheme/params from the header comments
// written by write_locked_circuit. Files from other tools load fine and
// fall back to scheme "file". correct_key stays empty (the attacker's
// view); read the .key file separately if the key is needed.
core::LockedCircuit read_locked_circuit(const std::string& path);

}  // namespace fl::lock
