#include "locking/interlock.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <stdexcept>

#include "core/cln.h"
#include "core/plr.h"
#include "netlist/structure.h"

namespace fl::lock {

using netlist::GateId;
using netlist::Netlist;

InterLockConfig InterLockConfig::with_blocks(std::vector<int> cln_sizes,
                                             double fold_fraction,
                                             double negate_probability,
                                             std::uint64_t seed) {
  InterLockConfig config;
  config.seed = seed;
  for (const int n : cln_sizes) {
    InterLockBlockConfig block;
    block.cln.n = n;
    block.fold_fraction = fold_fraction;
    block.negate_probability = negate_probability;
    config.blocks.push_back(block);
  }
  return config;
}

namespace {

struct Reader {
  GateId gate;       // kNullGate for output ports
  std::size_t slot;  // fanin pin, or output-port index
};

// One routing block: CLN over an antichain of wires, driver negation
// absorbed by the inverter layer, and a subset of the consuming gates
// folded into the block as key-programmable LUTs.
struct BlockInsertion {
  core::RoutingBlockHint hint;
  std::vector<bool> added_key_values;
  int num_folded = 0;
  int num_negated = 0;
};

BlockInsertion insert_block(Netlist& netlist,
                            const InterLockBlockConfig& config,
                            std::mt19937_64& rng,
                            const std::string& prefix) {
  if (config.negate_probability > 0.0 && !config.cln.with_inverters) {
    throw std::invalid_argument(
        "leading-gate negation requires the CLN inverter layer");
  }
  const int n = config.cln.n;
  const std::vector<GateId> wires = core::select_routing_wires(
      netlist, n, core::CycleMode::kAvoid, rng);

  // Record every reader of each selected wire before any edit.
  std::vector<std::vector<Reader>> readers(n);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      const auto it = std::find(wires.begin(), wires.end(), gate.fanin[pin]);
      if (it != wires.end()) {
        readers[it - wires.begin()].push_back(Reader{g, pin});
      }
    }
  }
  for (std::size_t oi = 0; oi < netlist.num_outputs(); ++oi) {
    const auto it =
        std::find(wires.begin(), wires.end(), netlist.outputs()[oi].gate);
    if (it != wires.end()) {
      readers[it - wires.begin()].push_back(Reader{netlist::kNullGate, oi});
    }
  }

  BlockInsertion result;

  // Negate a random subset of the drivers (undone by the inverter layer).
  std::vector<bool> negated(n, false);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    if (core::negatable_gate(netlist.gate(wires[i]).type) &&
        coin(rng) < config.negate_probability) {
      netlist.retype(wires[i],
                     core::negated_gate_type(netlist.gate(wires[i]).type));
      negated[i] = true;
      ++result.num_negated;
    }
  }

  const core::ClnBuilder builder(config.cln);
  const core::ClnInstance cln = builder.build(netlist, wires, prefix);
  const std::vector<bool> select_key = builder.random_routing_key(rng);
  const std::vector<int> perm = cln.trace_permutation(select_key);
  std::vector<bool> inverter_key;
  if (config.cln.with_inverters) {
    inverter_key.resize(n);
    for (int j = 0; j < n; ++j) inverter_key[j] = negated[perm[j]];
  }

  // Rewire: readers of wire perm[j] now read CLN output j.
  for (int j = 0; j < n; ++j) {
    for (const Reader& r : readers[perm[j]]) {
      if (r.gate == netlist::kNullGate) {
        netlist.set_output_gate(r.slot, cln.outputs[j]);
      } else {
        std::vector<GateId> fanin = netlist.gate(r.gate).fanin_vector();
        fanin[r.slot] = cln.outputs[j];
        netlist.set_fanin(r.gate, std::move(fanin));
      }
    }
  }

  result.added_key_values = select_key;
  result.added_key_values.insert(result.added_key_values.end(),
                                 inverter_key.begin(), inverter_key.end());

  result.hint.block_inputs.assign(wires.begin(), wires.end());
  result.hint.block_outputs = cln.outputs;
  result.hint.permutation = perm;
  result.hint.inverted.assign(n, false);
  if (config.cln.with_inverters) result.hint.inverted = inverter_key;

  // Fold consumers into the block: for a random subset of the outputs, one
  // consuming gate becomes a key-programmable LUT whose truth table is part
  // of the block configuration. The LUT root is listed as an extra block
  // output routed from the same source wire, so the removal attack's
  // block-bypass loses the folded gate's function along with the fabric.
  std::vector<int> fold_order(n);
  for (int j = 0; j < n; ++j) fold_order[j] = j;
  std::shuffle(fold_order.begin(), fold_order.end(), rng);
  const int fold_target = static_cast<int>(
      std::lround(config.fold_fraction * static_cast<double>(n)));
  std::map<GateId, GateId> folded;  // old gate -> LUT tree root
  for (const int j : fold_order) {
    if (result.num_folded >= fold_target) break;
    for (const Reader& r : readers[perm[j]]) {
      if (r.gate == netlist::kNullGate) continue;
      if (folded.count(r.gate) != 0) continue;
      if (!core::lut_replaceable(netlist, r.gate)) continue;
      const core::KeyLutResult lut = core::replace_with_key_lut(
          netlist, r.gate,
          prefix + "_fold" + std::to_string(result.num_folded));
      folded[r.gate] = lut.root;
      result.added_key_values.insert(result.added_key_values.end(),
                                     lut.correct_key.begin(),
                                     lut.correct_key.end());
      result.hint.block_outputs.push_back(lut.root);
      result.hint.permutation.push_back(perm[j]);
      result.hint.inverted.push_back(false);
      ++result.num_folded;
      break;  // one folded consumer per output
    }
  }
  return result;
}

}  // namespace

core::LockedCircuit interlock_lock(const Netlist& original,
                                   const InterLockConfig& config,
                                   InterLockReport* report) {
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "interlock";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_interlock");

  InterLockReport rep;
  for (std::size_t b = 0; b < config.blocks.size(); ++b) {
    BlockInsertion insertion = insert_block(locked.netlist, config.blocks[b],
                                            rng,
                                            "ilb" + std::to_string(b));
    locked.correct_key.insert(locked.correct_key.end(),
                              insertion.added_key_values.begin(),
                              insertion.added_key_values.end());
    locked.routing_blocks.push_back(std::move(insertion.hint));
    ++rep.num_blocks;
    rep.num_folded_gates += insertion.num_folded;
    rep.num_negated_drivers += insertion.num_negated;
  }

  // Strip the dead originals left behind by LUT folding, remapping the
  // removal-attack hints onto the compacted ids.
  std::vector<GateId> remap;
  locked.netlist = netlist::compact(locked.netlist, &remap);
  for (core::RoutingBlockHint& hint : locked.routing_blocks) {
    for (GateId& g : hint.block_inputs) g = remap[g];
    for (GateId& g : hint.block_outputs) g = remap[g];
  }

  rep.key_bits = locked.correct_key.size();
  if (report != nullptr) *report = rep;
  return locked;
}

}  // namespace fl::lock
