// Cross-Lock (Shamsi et al., GLSVLSI'18): crossbar interconnect locking —
// the closest prior work to Full-Lock (§1, §4.2).
//
// An N x M crossbar is inserted over M selected wires (plus N-M decoy
// sources): each destination picks one of the N sources through a
// key-controlled MUX tree (ceil(log2 N) key bits per destination). Unlike
// Full-Lock there is no inverter layer and no LUT twisting, so a removal
// adversary who recovers the routing recovers the circuit.
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct CrossLockConfig {
  int num_sources = 32;       // N (crossbar inputs)
  int num_destinations = 36;  // M (crossbar outputs; M wires are rerouted)
  std::uint64_t seed = 1;
};

// Throws std::invalid_argument if the circuit cannot supply enough
// antichain wires / decoy sources.
core::LockedCircuit crosslock_lock(const netlist::Netlist& original,
                                   const CrossLockConfig& config);

}  // namespace fl::lock
