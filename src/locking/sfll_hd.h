// SFLL-HD (Yasin et al., CCS'17): stripped-functionality logic locking.
//
// The vendor ships a *functionally stripped* circuit (FSC): a perturb unit
// flips one output on every input whose first k bits lie at Hamming
// distance exactly h from a hard-coded secret K*. A restore unit with k key
// inputs flips the same output whenever HD(X, K) == h; under K == K* the
// two flips cancel on every input and the original function returns. A
// wrong key corrupts only the thin Hamming shells of K and K* —
// C(k, h)/2^k of the input space each — so the SAT attack needs ~2^k/C(k,h)
// DIPs, while a removal adversary who strips the restore unit is left with
// the FSC, which is *not* the original circuit (unlike SARLock). The
// structural seam between the key-free perturb cone and the key-bearing
// restore cone is what the FALL-style attack (attacks/fall.h) exploits.
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct SfllHdConfig {
  int num_keys = 16;  // k, clamped to the circuit's input count
  int hd = 2;         // h, the protected Hamming distance (0 <= h <= k)
  std::uint64_t seed = 1;
};

core::LockedCircuit sfll_hd_lock(const netlist::Netlist& original,
                                 const SfllHdConfig& config);

// Building block shared with the FALL-style attack: appends a popcount
// network + comparator computing [popcount(bits) == h] and returns its
// output gate. `bits` must be non-empty; 0 <= h.
netlist::GateId build_hd_equals(netlist::Netlist& netlist,
                                const std::vector<netlist::GateId>& bits,
                                int h);

}  // namespace fl::lock
