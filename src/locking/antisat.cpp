#include "locking/antisat.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fl::lock {

using netlist::GateId;
using netlist::GateType;

core::LockedCircuit antisat_lock(const netlist::Netlist& original,
                                 const AntiSatConfig& config) {
  if (original.num_outputs() == 0 || original.num_inputs() == 0) {
    throw std::invalid_argument("antisat: circuit needs inputs and outputs");
  }
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "antisat";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_antisat");
  netlist::Netlist& net = locked.netlist;

  const int k = std::min<int>(config.block_inputs,
                              static_cast<int>(net.num_inputs()));
  std::uniform_int_distribution<int> coin(0, 1);

  // Correct key: K1 == K2 (any shared value).
  std::vector<bool> kshared(k);
  for (int i = 0; i < k; ++i) kshared[i] = coin(rng) == 1;

  std::vector<GateId> k1(k), k2(k);
  for (int i = 0; i < k; ++i) {
    k1[i] = net.add_key("keyinput_as1_" + std::to_string(i));
    locked.correct_key.push_back(kshared[i]);
  }
  for (int i = 0; i < k; ++i) {
    k2[i] = net.add_key("keyinput_as2_" + std::to_string(i));
    locked.correct_key.push_back(kshared[i]);
  }

  auto and_tree = [&net](std::vector<GateId> v) {
    while (v.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < v.size(); i += 2) {
        next.push_back(net.add_gate(GateType::kAnd, {v[i], v[i + 1]}));
      }
      if (v.size() % 2 == 1) next.push_back(v.back());
      v = std::move(next);
    }
    return v[0];
  };

  std::vector<GateId> left(k), right(k);
  for (int i = 0; i < k; ++i) {
    left[i] = net.add_gate(GateType::kXor, {net.inputs()[i], k1[i]});
    right[i] = net.add_gate(GateType::kXor, {net.inputs()[i], k2[i]});
  }
  const GateId g_left = and_tree(left);             // g(X xor K1)
  const GateId g_right = and_tree(right);           // g(X xor K2)
  const GateId g_right_n = net.add_gate(GateType::kNot, {g_right});
  const GateId y = net.add_gate(GateType::kAnd, {g_left, g_right_n});

  const GateId old_out = net.outputs()[0].gate;
  const GateId new_out = net.add_gate(GateType::kXor, {old_out, y});
  net.set_output_gate(0, new_out);
  return locked;
}

}  // namespace fl::lock
