#include "locking/crosslock.h"

#include <algorithm>
#include <bit>
#include <random>
#include <stdexcept>

#include "netlist/structure.h"

namespace fl::lock {

using netlist::GateId;
using netlist::GateType;

namespace {

// MUX tree over `leaves` (size 2^depth) selecting with `selects`
// (LSB-first; leaf index bit i = selects[i]).
GateId mux_tree(netlist::Netlist& net, const std::vector<GateId>& leaves,
                const std::vector<GateId>& selects, std::size_t lo,
                std::size_t hi, int depth) {
  if (depth < 0) return leaves[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  const GateId low = mux_tree(net, leaves, selects, lo, mid, depth - 1);
  const GateId high = mux_tree(net, leaves, selects, mid, hi, depth - 1);
  if (low == high) return low;
  return net.add_gate(GateType::kMux, {selects[depth], low, high});
}

}  // namespace

core::LockedCircuit crosslock_lock(const netlist::Netlist& original,
                                   const CrossLockConfig& config) {
  if (config.num_sources < 2) {
    throw std::invalid_argument("crosslock: need >= 2 sources");
  }
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "cross-lock";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_crosslock");
  netlist::Netlist& net = locked.netlist;
  const int n = config.num_sources;

  // Antichain wire selection (no selected wire reaches another), so the
  // all-to-all crossbar cannot close a combinational cycle.
  const auto fanout = net.fanout_map();
  std::vector<bool> is_output(net.num_gates(), false);
  for (const netlist::OutputPort& o : net.outputs()) is_output[o.gate] = true;
  std::vector<GateId> candidates;
  for (GateId g = 0; g < net.num_gates(); ++g) {
    const GateType t = net.gate(g).type;
    if (t == GateType::kKey || t == GateType::kConst0 ||
        t == GateType::kConst1) {
      continue;
    }
    if (fanout[g].empty() && !is_output[g]) continue;
    candidates.push_back(g);
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  netlist::Reachability reach(net);
  std::vector<GateId> wires;
  for (const GateId c : candidates) {
    if (static_cast<int>(wires.size()) == n) break;
    bool comparable = false;
    for (const GateId w : wires) {
      if (reach.reaches(w, c) || reach.reaches(c, w)) {
        comparable = true;
        break;
      }
    }
    if (!comparable) wires.push_back(c);
  }
  if (static_cast<int>(wires.size()) < n) {
    throw std::invalid_argument("crosslock: not enough antichain wires");
  }

  // Destination pins: readers of the selected wires.
  struct Pin {
    GateId gate;       // kNullGate for an output port
    std::size_t slot;  // fanin pin or output index
    int source;        // index into `wires`
  };
  std::vector<Pin> pins;
  for (GateId g = 0; g < net.num_gates(); ++g) {
    const netlist::Gate& gate = net.gate(g);
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      const auto it = std::find(wires.begin(), wires.end(), gate.fanin[pin]);
      if (it != wires.end()) {
        pins.push_back(Pin{g, pin, static_cast<int>(it - wires.begin())});
      }
    }
  }
  for (std::size_t oi = 0; oi < net.num_outputs(); ++oi) {
    const auto it =
        std::find(wires.begin(), wires.end(), net.outputs()[oi].gate);
    if (it != wires.end()) {
      pins.push_back(Pin{netlist::kNullGate, oi,
                         static_cast<int>(it - wires.begin())});
    }
  }
  std::shuffle(pins.begin(), pins.end(), rng);
  if (static_cast<int>(pins.size()) > config.num_destinations) {
    pins.resize(config.num_destinations);
  }

  // Pad the leaf array to a power of two by cycling the sources.
  const int bits = std::bit_width(static_cast<unsigned>(n - 1));
  const std::size_t padded = std::size_t{1} << bits;
  std::vector<GateId> leaves(padded);
  for (std::size_t i = 0; i < padded; ++i) leaves[i] = wires[i % n];

  int key_counter = 0;
  for (std::size_t d = 0; d < pins.size(); ++d) {
    std::vector<GateId> selects(bits);
    for (int b = 0; b < bits; ++b) {
      selects[b] = net.add_key("keyinput_xb" + std::to_string(key_counter++));
      locked.correct_key.push_back(((pins[d].source >> b) & 1) != 0);
    }
    const GateId out =
        mux_tree(net, leaves, selects, 0, padded, bits - 1);
    // Removal-attack hint: one single-output block per destination tree.
    core::RoutingBlockHint hint;
    hint.block_inputs.assign(wires.begin(), wires.end());
    hint.block_outputs = {out};
    hint.permutation = {pins[d].source};
    hint.inverted = {false};
    locked.routing_blocks.push_back(std::move(hint));
    if (pins[d].gate == netlist::kNullGate) {
      net.set_output_gate(pins[d].slot, out);
    } else {
      std::vector<GateId> fanin = net.gate(pins[d].gate).fanin_vector();
      fanin[pins[d].slot] = out;
      net.set_fanin(pins[d].gate, std::move(fanin));
    }
  }

  return locked;
}

}  // namespace fl::lock
