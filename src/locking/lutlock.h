// LUT-Lock (Kamali et al., ISVLSI'18): replaces selected gates with
// key-programmable LUTs (MUX trees over key bits). The authors' precursor
// to Full-Lock — MUX-based CNF, but without back-to-back cascading, so the
// DPLL tree stays shallow (Fig. 7 discussion).
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct LutLockConfig {
  int num_luts = 8;
  std::uint64_t seed = 1;
  // Prefer gates with fewer fanins first (cheaper hardware), mimicking the
  // paper's output-away selection pressure toward small cones.
  bool prefer_small = true;
};

core::LockedCircuit lutlock_lock(const netlist::Netlist& original,
                                 const LutLockConfig& config);

}  // namespace fl::lock
