// SARLock (Yasin et al., HOST'16): point-function SAT resistance.
//
// Adds a comparator block that flips one output iff the (first k bits of
// the) input equals the key AND the key differs from the correct key — so
// every wrong key errs on exactly one input pattern, forcing the SAT attack
// through ~2^k DIPs while output corruption stays minimal (the weakness
// AppSAT exploits).
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct SarLockConfig {
  int num_keys = 16;  // clamped to the circuit's input count
  std::uint64_t seed = 1;
};

core::LockedCircuit sarlock_lock(const netlist::Netlist& original,
                                 const SarLockConfig& config);

}  // namespace fl::lock
