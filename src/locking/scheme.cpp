#include "locking/scheme.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/full_lock.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/interlock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "locking/sfll_hd.h"
#include "netlist/bench_io.h"

namespace fl::lock {

void parse_params_into(SchemeOptions& options, std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view entry = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    while (!entry.empty() && entry.front() == ' ') entry.remove_prefix(1);
    while (!entry.empty() && entry.back() == ' ') entry.remove_suffix(1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("scheme parameter '" + std::string(entry) +
                                  "' is not of the form key=value");
    }
    options.params[std::string(entry.substr(0, eq))] =
        std::string(entry.substr(eq + 1));
  }
}

namespace {

// Typed accessors over SchemeOptions.params. Every accepted key is recorded
// (with its resolved value) so finish() can reject unknown parameters and
// canonical() can rebuild a stable, fully-resolved parameter string.
class ParamReader {
 public:
  ParamReader(std::string_view scheme, const SchemeOptions& options)
      : scheme_(scheme), options_(options) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(std::string(scheme_) + ": " + what);
  }

  long long get_int(const std::string& key, long long fallback,
                    long long min_value, long long max_value) {
    long long value = fallback;
    if (const std::string* raw = raw_value(key)) {
      char* end = nullptr;
      value = std::strtoll(raw->c_str(), &end, 10);
      if (end == raw->c_str() || *end != '\0') {
        fail("parameter " + key + " must be an integer, got '" + *raw + "'");
      }
    }
    if (value < min_value || value > max_value) {
      fail("parameter " + key + " must be in [" + std::to_string(min_value) +
           ", " + std::to_string(max_value) + "], got " +
           std::to_string(value));
    }
    note(key, std::to_string(value));
    return value;
  }

  // Like get_int, but an un-set key falls back to the first entry of the
  // generic sizes axis before the default — sizes are each scheme's "main
  // knob" in sweep grids.
  long long get_knob(const std::string& key, long long fallback,
                     long long min_value, long long max_value) {
    if (raw_value(key) == nullptr && !options_.sizes.empty()) {
      fallback = options_.sizes.front();
    }
    return get_int(key, fallback, min_value, max_value);
  }

  double get_double(const std::string& key, double fallback, double min_value,
                    double max_value) {
    double value = fallback;
    if (const std::string* raw = raw_value(key)) {
      char* end = nullptr;
      value = std::strtod(raw->c_str(), &end);
      if (end == raw->c_str() || *end != '\0') {
        fail("parameter " + key + " must be a number, got '" + *raw + "'");
      }
    }
    if (!(value >= min_value) || !(value <= max_value)) {
      fail("parameter " + key + " must be in [" + format_double(min_value) +
           ", " + format_double(max_value) + "]");
    }
    note(key, format_double(value));
    return value;
  }

  bool get_bool(const std::string& key, bool fallback) {
    bool value = fallback;
    if (const std::string* raw = raw_value(key)) {
      if (*raw == "1" || *raw == "true") {
        value = true;
      } else if (*raw == "0" || *raw == "false") {
        value = false;
      } else {
        fail("parameter " + key + " must be 0/1/true/false, got '" + *raw +
             "'");
      }
    }
    note(key, value ? "1" : "0");
    return value;
  }

  std::string get_choice(const std::string& key, const std::string& fallback,
                         const std::vector<std::string>& allowed) {
    std::string value = fallback;
    if (const std::string* raw = raw_value(key)) value = *raw;
    if (std::find(allowed.begin(), allowed.end(), value) == allowed.end()) {
      std::string all;
      for (const std::string& a : allowed) {
        if (!all.empty()) all += "|";
        all += a;
      }
      fail("parameter " + key + " must be one of " + all + ", got '" + value +
           "'");
    }
    note(key, value);
    return value;
  }

  // The multi-size axis for schemes that insert one block per entry
  // (full-lock, interlock): the "sizes" parameter ("16+8+4", '+'-separated
  // so it survives the comma-separated parameter list), else the generic
  // sizes vector, else `fallback`.
  std::vector<int> get_sizes(std::vector<int> fallback, int min_value,
                             int max_value) {
    std::vector<int> sizes;
    if (const std::string* raw = raw_value("sizes")) {
      std::size_t pos = 0;
      while (pos <= raw->size()) {
        std::size_t end = raw->find('+', pos);
        if (end == std::string::npos) end = raw->size();
        const std::string part = raw->substr(pos, end - pos);
        pos = end + 1;
        if (part.empty()) fail("parameter sizes has an empty entry");
        char* cend = nullptr;
        const long long v = std::strtoll(part.c_str(), &cend, 10);
        if (cend == part.c_str() || *cend != '\0') {
          fail("parameter sizes entry '" + part + "' is not an integer");
        }
        sizes.push_back(static_cast<int>(v));
        if (end == raw->size()) break;
      }
    } else if (!options_.sizes.empty()) {
      sizes = options_.sizes;
    } else {
      sizes = std::move(fallback);
    }
    std::string canon;
    for (const int n : sizes) {
      if (n < min_value || n > max_value) {
        fail("sizes entries must be in [" + std::to_string(min_value) + ", " +
             std::to_string(max_value) + "], got " + std::to_string(n));
      }
      if (!canon.empty()) canon += "+";
      canon += std::to_string(n);
    }
    note("sizes", canon);
    return sizes;
  }

  // Rejects parameters no accessor asked about.
  void finish() const {
    for (const auto& [key, value] : options_.params) {
      if (seen_.count(key) != 0) continue;
      std::string known;
      for (const std::string& k : seen_) {
        if (!known.empty()) known += ", ";
        known += k;
      }
      fail("unknown parameter '" + key + "' (known: " +
           (known.empty() ? "none" : known) + ")");
    }
  }

  const std::string& canonical() const { return canonical_; }

 private:
  const std::string* raw_value(const std::string& key) {
    const auto it = options_.params.find(key);
    return it == options_.params.end() ? nullptr : &it->second;
  }

  static std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  void note(const std::string& key, const std::string& value) {
    seen_.insert(key);
    if (!canonical_.empty()) canonical_ += ",";
    canonical_ += key + "=" + value;
  }

  std::string_view scheme_;
  const SchemeOptions& options_;
  std::set<std::string> seen_;
  std::string canonical_;
};

// ---- Full-Lock -------------------------------------------------------

core::ClnTopology parse_topology(const std::string& name) {
  return name == "shuffle" ? core::ClnTopology::kShuffleBlocking
                           : core::ClnTopology::kBanyanNonBlocking;
}

class FullLockScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "full-lock"; }
  std::string_view description() const override {
    return "PLRs: key-routed CLN + key-configurable inverters + "
           "key-programmable LUTs (the paper's scheme)";
  }
  std::string_view params_help() const override {
    return "sizes=16 (CLN widths, '+'-separated; one PLR each), "
           "topology=banyan|shuffle, cycle=avoid|allow|force, twist=1, "
           "negate=0.5, decompose=0";
  }
  SchemeCaps caps(const SchemeOptions& options) const override {
    SchemeCaps caps;
    caps.has_routing_blocks = true;
    const auto cycle = options.params.find("cycle");
    caps.may_be_cyclic =
        cycle != options.params.end() && cycle->second != "avoid";
    const auto twist = options.params.find("twist");
    const auto negate = options.params.find("negate");
    caps.removal_resilient =
        (twist == options.params.end() || twist->second != "0") ||
        (negate != options.params.end() && std::atof(negate->second.c_str()) > 0.0);
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const core::FullLockConfig config = parse(options, &canonical);
    core::LockedCircuit locked = core::full_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  core::FullLockConfig parse(const SchemeOptions& options,
                             std::string* canonical) const {
    ParamReader reader(name(), options);
    const std::vector<int> sizes = reader.get_sizes({16}, 4, 4096);
    const std::string topology =
        reader.get_choice("topology", "banyan", {"banyan", "shuffle"});
    const std::string cycle =
        reader.get_choice("cycle", "avoid", {"avoid", "allow", "force"});
    const bool twist = reader.get_bool("twist", true);
    const double negate = reader.get_double("negate", 0.5, 0.0, 1.0);
    const bool decompose = reader.get_bool("decompose", false);
    reader.finish();
    core::CycleMode mode = core::CycleMode::kAvoid;
    if (cycle == "allow") mode = core::CycleMode::kAllow;
    if (cycle == "force") mode = core::CycleMode::kForce;
    core::FullLockConfig config = core::FullLockConfig::with_plrs(
        sizes, parse_topology(topology), mode, twist, negate, options.seed);
    config.decompose_two_input = decompose;
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- InterLock -------------------------------------------------------

class InterLockScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "interlock"; }
  std::string_view description() const override {
    return "logic folded into key-routed CLN blocks; removal loses real "
           "logic (Full-Lock successor)";
  }
  std::string_view params_help() const override {
    return "sizes=8 (CLN widths, '+'-separated; one block each), fold=1 "
           "(fraction of outputs absorbing a consumer LUT), negate=0.5, "
           "topology=banyan|shuffle";
  }
  SchemeCaps caps(const SchemeOptions&) const override {
    SchemeCaps caps;
    caps.removal_resilient = true;
    caps.has_routing_blocks = true;
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const InterLockConfig config = parse(options, &canonical);
    core::LockedCircuit locked = interlock_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  InterLockConfig parse(const SchemeOptions& options,
                        std::string* canonical) const {
    ParamReader reader(name(), options);
    const std::vector<int> sizes = reader.get_sizes({8}, 4, 4096);
    const double fold = reader.get_double("fold", 1.0, 0.0, 1.0);
    const double negate = reader.get_double("negate", 0.5, 0.0, 1.0);
    const std::string topology =
        reader.get_choice("topology", "banyan", {"banyan", "shuffle"});
    reader.finish();
    InterLockConfig config =
        InterLockConfig::with_blocks(sizes, fold, negate, options.seed);
    for (InterLockBlockConfig& block : config.blocks) {
      block.cln.topology = parse_topology(topology);
    }
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- Cross-Lock ------------------------------------------------------

class CrossLockScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "cross-lock"; }
  std::string_view description() const override {
    return "crossbar MUX-tree interconnect locking (no inverters/LUTs; "
           "removal recovers it)";
  }
  std::string_view params_help() const override {
    return "sources=32 (or first size), dests=sources+4";
  }
  SchemeCaps caps(const SchemeOptions&) const override {
    SchemeCaps caps;
    caps.has_routing_blocks = true;
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const CrossLockConfig config = parse(options, &canonical);
    core::LockedCircuit locked = crosslock_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  CrossLockConfig parse(const SchemeOptions& options,
                        std::string* canonical) const {
    ParamReader reader(name(), options);
    CrossLockConfig config;
    config.seed = options.seed;
    config.num_sources =
        static_cast<int>(reader.get_knob("sources", 32, 2, 4096));
    config.num_destinations = static_cast<int>(
        reader.get_int("dests", config.num_sources + 4, 2, 8192));
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- LUT-Lock --------------------------------------------------------

class LutLockScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "lut-lock"; }
  std::string_view description() const override {
    return "selected gates replaced by key-programmable LUTs (no routing "
           "fabric)";
  }
  std::string_view params_help() const override {
    return "luts=8 (or first size), prefer_small=1";
  }
  SchemeCaps caps(const SchemeOptions&) const override { return {}; }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const LutLockConfig config = parse(options, &canonical);
    core::LockedCircuit locked = lutlock_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  LutLockConfig parse(const SchemeOptions& options,
                      std::string* canonical) const {
    ParamReader reader(name(), options);
    LutLockConfig config;
    config.seed = options.seed;
    config.num_luts = static_cast<int>(reader.get_knob("luts", 8, 1, 100000));
    config.prefer_small = reader.get_bool("prefer_small", true);
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- RLL -------------------------------------------------------------

class RllScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "rll"; }
  std::string_view description() const override {
    return "random XOR/XNOR key gates (EPIC baseline)";
  }
  std::string_view params_help() const override {
    return "keys=32 (or first size)";
  }
  SchemeCaps caps(const SchemeOptions&) const override { return {}; }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const RllConfig config = parse(options, &canonical);
    core::LockedCircuit locked = rll_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  RllConfig parse(const SchemeOptions& options, std::string* canonical) const {
    ParamReader reader(name(), options);
    RllConfig config;
    config.seed = options.seed;
    config.num_keys = static_cast<int>(reader.get_knob("keys", 32, 1, 100000));
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- SARLock ---------------------------------------------------------

class SarLockScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "sarlock"; }
  std::string_view description() const override {
    return "point-function comparator: each wrong key errs on exactly one "
           "input pattern";
  }
  std::string_view params_help() const override {
    return "keys=16 (or first size; clamped to the input count)";
  }
  SchemeCaps caps(const SchemeOptions&) const override {
    SchemeCaps caps;
    caps.point_function = true;
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const SarLockConfig config = parse(options, &canonical);
    core::LockedCircuit locked = sarlock_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  SarLockConfig parse(const SchemeOptions& options,
                      std::string* canonical) const {
    ParamReader reader(name(), options);
    SarLockConfig config;
    config.seed = options.seed;
    config.num_keys = static_cast<int>(reader.get_knob("keys", 16, 1, 256));
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- Anti-SAT --------------------------------------------------------

class AntiSatScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "antisat"; }
  std::string_view description() const override {
    return "g(X^K1) AND NOT g(X^K2) block XORed into one output (SPS's "
           "skew target)";
  }
  std::string_view params_help() const override {
    return "inputs=8 (block inputs; or first size; clamped to the input "
           "count)";
  }
  SchemeCaps caps(const SchemeOptions&) const override {
    SchemeCaps caps;
    caps.point_function = true;
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const AntiSatConfig config = parse(options, &canonical);
    core::LockedCircuit locked = antisat_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  AntiSatConfig parse(const SchemeOptions& options,
                      std::string* canonical) const {
    ParamReader reader(name(), options);
    AntiSatConfig config;
    config.seed = options.seed;
    config.block_inputs =
        static_cast<int>(reader.get_knob("inputs", 8, 1, 256));
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

// ---- SFLL-HD ---------------------------------------------------------

class SfllHdScheme final : public LockScheme {
 public:
  std::string_view name() const override { return "sfll-hd"; }
  std::string_view description() const override {
    return "stripped function + Hamming-distance restore unit (FALL's "
           "target)";
  }
  std::string_view params_help() const override {
    return "keys=16 (or first size; clamped to the input count), hd=2";
  }
  SchemeCaps caps(const SchemeOptions&) const override {
    SchemeCaps caps;
    caps.point_function = true;
    // Stripping the restore unit leaves the FSC, not the original circuit.
    caps.removal_resilient = true;
    return caps;
  }
  void validate(const SchemeOptions& options) const override {
    parse(options, nullptr);
  }
  core::LockedCircuit lock(const netlist::Netlist& original,
                           const SchemeOptions& options) const override {
    std::string canonical;
    const SfllHdConfig config = parse(options, &canonical);
    core::LockedCircuit locked = sfll_hd_lock(original, config);
    locked.params = canonical;
    return locked;
  }

 private:
  SfllHdConfig parse(const SchemeOptions& options,
                     std::string* canonical) const {
    ParamReader reader(name(), options);
    SfllHdConfig config;
    config.seed = options.seed;
    config.num_keys = static_cast<int>(reader.get_knob("keys", 16, 1, 256));
    config.hd = static_cast<int>(reader.get_int("hd", 2, 0, 256));
    if (config.hd > config.num_keys) {
      reader.fail("parameter hd must be <= keys");
    }
    reader.finish();
    if (canonical != nullptr) *canonical = reader.canonical();
    return config;
  }
};

std::vector<std::unique_ptr<LockScheme>> make_registry() {
  std::vector<std::unique_ptr<LockScheme>> schemes;
  schemes.push_back(std::make_unique<AntiSatScheme>());
  schemes.push_back(std::make_unique<CrossLockScheme>());
  schemes.push_back(std::make_unique<FullLockScheme>());
  schemes.push_back(std::make_unique<InterLockScheme>());
  schemes.push_back(std::make_unique<LutLockScheme>());
  schemes.push_back(std::make_unique<RllScheme>());
  schemes.push_back(std::make_unique<SarLockScheme>());
  schemes.push_back(std::make_unique<SfllHdScheme>());
  return schemes;
}

}  // namespace

const std::vector<const LockScheme*>& registry() {
  static const std::vector<std::unique_ptr<LockScheme>> owned =
      make_registry();
  static const std::vector<const LockScheme*> view = [] {
    std::vector<const LockScheme*> v;
    for (const auto& s : owned) v.push_back(s.get());
    return v;
  }();
  return view;
}

const LockScheme* find_scheme(std::string_view name) {
  for (const LockScheme* scheme : registry()) {
    if (scheme->name() == name) return scheme;
  }
  return nullptr;
}

std::string scheme_names() {
  std::string names;
  for (const LockScheme* scheme : registry()) {
    if (!names.empty()) names += ", ";
    names += scheme->name();
  }
  return names;
}

core::LockedCircuit lock_with(std::string_view scheme,
                              const netlist::Netlist& original,
                              const SchemeOptions& options) {
  const LockScheme* s = find_scheme(scheme);
  if (s == nullptr) {
    throw std::invalid_argument("unknown lock scheme '" + std::string(scheme) +
                                "' (known: " + scheme_names() + ")");
  }
  return s->lock(original, options);
}

const char* const kKnownAttacks =
    "auto, sat, cycsat, appsat, double-dip, fall";

bool known_attack(std::string_view name) {
  return name == "auto" || name == "sat" || name == "cycsat" ||
         name == "appsat" || name == "double-dip" || name == "fall";
}

std::string resolve_attack(std::string_view requested, bool cyclic) {
  std::string name = requested == "auto"
                         ? (cyclic ? "cycsat" : "sat")
                         : std::string(requested);
  if (name == "double-dip" && cyclic) name = "cycsat";
  return name;
}

void validate_encode_option(std::string_view encode, std::string_view scheme,
                            const SchemeOptions& options) {
  if (encode != "cone") return;
  const LockScheme* s = find_scheme(scheme);
  if (s == nullptr) return;  // cyclicity is checked against the netlist
  if (s->caps(options).may_be_cyclic) {
    throw std::invalid_argument(
        "--encode cone requires an acyclic lock, but scheme '" +
        std::string(scheme) +
        "' may produce cycles with these parameters; use --encode auto "
        "(cone when acyclic) or --encode full");
  }
}

void write_locked_circuit(const core::LockedCircuit& locked,
                          const std::string& path) {
  const auto header = [&](std::ostream& out) {
    out << "# lock-scheme: " << locked.scheme << "\n";
    if (!locked.params.empty()) out << "# lock-params: " << locked.params
                                    << "\n";
  };
  {
    std::ofstream out(path);
    header(out);
    netlist::write_bench(locked.netlist, out);
    if (!out) {
      throw std::runtime_error("writing " + path + " failed (disk full?)");
    }
  }
  {
    std::ofstream key_file(path + ".key");
    header(key_file);
    for (std::size_t i = 0; i < locked.correct_key.size(); ++i) {
      key_file << locked.netlist.gate(locked.netlist.keys()[i]).name << " "
               << (locked.correct_key[i] ? 1 : 0) << "\n";
    }
    if (!key_file) {
      throw std::runtime_error("writing " + path +
                               ".key failed (disk full?)");
    }
  }
}

core::LockedCircuit read_locked_circuit(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  core::LockedCircuit locked;
  locked.scheme = "file";
  // Scan the header comments for provenance (the bench reader skips '#').
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line.front() != '#') break;  // header comments only
    constexpr std::string_view kScheme = "# lock-scheme: ";
    constexpr std::string_view kParams = "# lock-params: ";
    if (line.rfind(kScheme, 0) == 0) {
      locked.scheme = std::string(line.substr(kScheme.size()));
    } else if (line.rfind(kParams, 0) == 0) {
      locked.params = std::string(line.substr(kParams.size()));
    }
  }
  locked.netlist = netlist::read_bench_string(text, path);
  return locked;
}

}  // namespace fl::lock
