#include "locking/sarlock.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fl::lock {

using netlist::GateId;
using netlist::GateType;

core::LockedCircuit sarlock_lock(const netlist::Netlist& original,
                                 const SarLockConfig& config) {
  if (original.num_outputs() == 0 || original.num_inputs() == 0) {
    throw std::invalid_argument("sarlock: circuit needs inputs and outputs");
  }
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "sarlock";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_sarlock");
  netlist::Netlist& net = locked.netlist;

  const int k = std::min<int>(config.num_keys,
                              static_cast<int>(net.num_inputs()));
  std::uniform_int_distribution<int> coin(0, 1);

  // Correct key K*.
  std::vector<bool> kstar(k);
  for (int i = 0; i < k; ++i) kstar[i] = coin(rng) == 1;

  std::vector<GateId> keys(k);
  for (int i = 0; i < k; ++i) {
    keys[i] = net.add_key("keyinput_sar" + std::to_string(i));
    locked.correct_key.push_back(kstar[i]);
  }

  // match = AND_i (x_i XNOR k_i): input equals the key guess.
  std::vector<GateId> eq_bits(k);
  for (int i = 0; i < k; ++i) {
    eq_bits[i] =
        net.add_gate(GateType::kXnor, {net.inputs()[i], keys[i]});
  }
  // differs = OR_i (k_i XOR kstar_i): guess differs from the hard-coded K*.
  // kstar_i constant: k XOR 1 = NOT k, k XOR 0 = k (as BUF).
  std::vector<GateId> ne_bits(k);
  for (int i = 0; i < k; ++i) {
    ne_bits[i] = net.add_gate(kstar[i] ? GateType::kNot : GateType::kBuf,
                              {keys[i]});
  }
  auto reduce = [&net](std::vector<GateId> v, GateType op) {
    while (v.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < v.size(); i += 2) {
        next.push_back(net.add_gate(op, {v[i], v[i + 1]}));
      }
      if (v.size() % 2 == 1) next.push_back(v.back());
      v = std::move(next);
    }
    return v[0];
  };
  const GateId match = reduce(eq_bits, GateType::kAnd);
  const GateId differs = reduce(ne_bits, GateType::kOr);
  const GateId flip = net.add_gate(GateType::kAnd, {match, differs});

  // Flip the first output.
  const GateId old_out = net.outputs()[0].gate;
  const GateId new_out = net.add_gate(GateType::kXor, {old_out, flip});
  net.set_output_gate(0, new_out);
  return locked;
}

}  // namespace fl::lock
