// Anti-SAT (Xie & Srivastava, CHES'16).
//
// Adds the block Y = g(X xor K1) AND NOT g(X xor K2) with g = AND-tree,
// XORed into one output. For K1 == K2 the block is constant 0 (correct);
// for K1 != K2 it fires on a handful of inputs, forcing ~2^k SAT
// iterations. The AND-tree output is heavily skewed toward 0 — the signal
// the SPS attack locates.
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct AntiSatConfig {
  int block_inputs = 8;  // clamped to the circuit's input count
  std::uint64_t seed = 1;
};

core::LockedCircuit antisat_lock(const netlist::Netlist& original,
                                 const AntiSatConfig& config);

}  // namespace fl::lock
