#include "locking/rll.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fl::lock {

using netlist::GateId;
using netlist::GateType;

core::LockedCircuit rll_lock(const netlist::Netlist& original,
                             const RllConfig& config) {
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "rll";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_rll");
  netlist::Netlist& net = locked.netlist;

  // Lockable wires: any logic gate or PI with a reader.
  const auto fanout = net.fanout_map();
  std::vector<bool> is_output(net.num_gates(), false);
  for (const netlist::OutputPort& o : net.outputs()) is_output[o.gate] = true;
  std::vector<GateId> wires;
  for (GateId g = 0; g < net.num_gates(); ++g) {
    const GateType t = net.gate(g).type;
    if (t == GateType::kKey || t == GateType::kConst0 ||
        t == GateType::kConst1) {
      continue;
    }
    if (fanout[g].empty() && !is_output[g]) continue;
    wires.push_back(g);
  }
  if (static_cast<int>(wires.size()) < config.num_keys) {
    throw std::invalid_argument("rll: not enough wires for requested keys");
  }
  std::shuffle(wires.begin(), wires.end(), rng);
  wires.resize(config.num_keys);

  std::uniform_int_distribution<int> coin(0, 1);
  for (int i = 0; i < config.num_keys; ++i) {
    const GateId w = wires[i];
    const GateId key = net.add_key("keyinput_rll" + std::to_string(i));
    const bool use_xnor = coin(rng) == 1;
    const GateId kg = net.add_gate(
        use_xnor ? GateType::kXnor : GateType::kXor, {w, key});
    // XOR passes the wire when key=0; XNOR when key=1.
    locked.correct_key.push_back(use_xnor);
    // Rewire all readers of w (but not the key gate itself).
    for (GateId g = 0; g < net.num_gates(); ++g) {
      if (g == kg) continue;
      net.replace_fanin_of(g, w, kg);
    }
    for (std::size_t oi = 0; oi < net.num_outputs(); ++oi) {
      if (net.outputs()[oi].gate == w) net.set_output_gate(oi, kg);
    }
  }
  return locked;
}

}  // namespace fl::lock
