#include "locking/sfll_hd.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace fl::lock {

using netlist::GateId;
using netlist::GateType;

namespace {

// Bits needed to hold a population count in [0, k].
int popcount_width(int k) {
  int w = 1;
  while ((1 << w) <= k) ++w;
  return w;
}

// Serial-increment popcount network: returns the sum bits, LSB first.
std::vector<GateId> popcount(netlist::Netlist& net,
                             const std::vector<GateId>& bits) {
  const int w = popcount_width(static_cast<int>(bits.size()));
  std::vector<GateId> sum{bits[0]};
  for (std::size_t i = 1; i < bits.size(); ++i) {
    GateId carry = bits[i];
    for (std::size_t j = 0; j < sum.size(); ++j) {
      const GateId t = sum[j];
      sum[j] = net.add_gate(GateType::kXor, {t, carry});
      carry = net.add_gate(GateType::kAnd, {t, carry});
    }
    // The final carry only matters while the counter can still grow.
    if (static_cast<int>(sum.size()) < w) sum.push_back(carry);
  }
  return sum;
}

}  // namespace

// eq_h = [popcount(bits) == h]: comparator against the constant h.
GateId build_hd_equals(netlist::Netlist& net, const std::vector<GateId>& bits,
                       int h) {
  std::vector<GateId> sum = popcount(net, bits);
  std::vector<GateId> eq(sum.size());
  for (std::size_t j = 0; j < sum.size(); ++j) {
    const bool h_bit = ((h >> j) & 1) != 0;
    eq[j] = net.add_gate(h_bit ? GateType::kBuf : GateType::kNot, {sum[j]});
  }
  while (eq.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < eq.size(); i += 2) {
      next.push_back(net.add_gate(GateType::kAnd, {eq[i], eq[i + 1]}));
    }
    if (eq.size() % 2 == 1) next.push_back(eq.back());
    eq = std::move(next);
  }
  return eq[0];
}

core::LockedCircuit sfll_hd_lock(const netlist::Netlist& original,
                                 const SfllHdConfig& config) {
  if (original.num_outputs() == 0 || original.num_inputs() == 0) {
    throw std::invalid_argument("sfll-hd: circuit needs inputs and outputs");
  }
  if (config.num_keys < 1) {
    throw std::invalid_argument("sfll-hd: num_keys must be >= 1");
  }
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "sfll-hd";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_sfll_hd");
  netlist::Netlist& net = locked.netlist;

  const int k = std::min<int>(config.num_keys,
                              static_cast<int>(net.num_inputs()));
  if (config.hd < 0 || config.hd > k) {
    throw std::invalid_argument("sfll-hd: hd must be in [0, num_keys]");
  }
  std::uniform_int_distribution<int> coin(0, 1);

  // Hard-coded secret K*.
  std::vector<bool> kstar(k);
  for (int i = 0; i < k; ++i) kstar[i] = coin(rng) == 1;

  // Perturb unit (key-free): flip = [HD(X_k, K*) == h]. The constant K*
  // folds into the diff bits: x XOR 1 = NOT x, x XOR 0 = BUF x.
  std::vector<GateId> perturb_diff(k);
  for (int i = 0; i < k; ++i) {
    perturb_diff[i] = net.add_gate(kstar[i] ? GateType::kNot : GateType::kBuf,
                                   {net.inputs()[i]});
  }
  const GateId flip = build_hd_equals(net, perturb_diff, config.hd);

  // Functionally stripped circuit: the shipped function differs from the
  // original on the whole h-shell around K*.
  const GateId old_out = net.outputs()[0].gate;
  const GateId stripped = net.add_gate(GateType::kXor, {old_out, flip});

  // Restore unit (key-bearing): restore = [HD(X_k, K) == h]; under K == K*
  // it tracks the perturb unit on every input and the two flips cancel.
  std::vector<GateId> keys(k);
  for (int i = 0; i < k; ++i) {
    keys[i] = net.add_key("keyinput_sfll" + std::to_string(i));
    locked.correct_key.push_back(kstar[i]);
  }
  std::vector<GateId> restore_diff(k);
  for (int i = 0; i < k; ++i) {
    restore_diff[i] =
        net.add_gate(GateType::kXor, {net.inputs()[i], keys[i]});
  }
  const GateId restore = build_hd_equals(net, restore_diff, config.hd);

  const GateId restored = net.add_gate(GateType::kXor, {stripped, restore});
  net.set_output_gate(0, restored);
  return locked;
}

}  // namespace fl::lock
