// InterLock (Kamali et al., ICCAD'20): the Full-Lock authors' follow-on.
//
// Like a PLR, a group of wires is routed through a key-configured CLN — but
// a fraction of the downstream logic is *folded into* the routing block:
// selected consumer gates become key-programmable LUTs whose truth tables
// are part of the block's configuration. A removal adversary who rips out
// the block (even knowing the full routing) also rips out real logic, so
// removal fails functionally rather than structurally — the property the
// original Full-Lock only approximates through driver negation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/insertion.h"
#include "core/locked_circuit.h"

namespace fl::lock {

struct InterLockBlockConfig {
  core::ClnConfig cln;
  // Fraction of CLN outputs whose consuming gate is folded into the block
  // as a key-programmable LUT (the "twisted logic" of the paper).
  double fold_fraction = 1.0;
  // Leading-gate negation rate, absorbed by the CLN inverter layer.
  double negate_probability = 0.5;
};

struct InterLockConfig {
  std::vector<InterLockBlockConfig> blocks;  // one entry per routing block
  std::uint64_t seed = 1;

  // k blocks with n-input CLNs sharing common settings.
  static InterLockConfig with_blocks(std::vector<int> cln_sizes,
                                     double fold_fraction = 1.0,
                                     double negate_probability = 0.5,
                                     std::uint64_t seed = 1);
};

struct InterLockReport {
  int num_blocks = 0;
  int num_folded_gates = 0;    // consumers absorbed as in-block LUTs
  int num_negated_drivers = 0;
  std::size_t key_bits = 0;
};

// Locks a copy of `original` (always acyclic: wires are chosen as an
// antichain). The routing-block hints list the folded LUT roots as block
// outputs, so the removal attack models an adversary who removes the whole
// reconfigurable block — embedded logic included. Throws
// std::invalid_argument if the circuit is too small for a requested CLN.
core::LockedCircuit interlock_lock(const netlist::Netlist& original,
                                   const InterLockConfig& config,
                                   InterLockReport* report = nullptr);

}  // namespace fl::lock
