// Random Logic Locking (RLL / EPIC, Roy et al.): XOR/XNOR key gates on
// random wires. The primitive scheme the SAT attack breaks in seconds —
// the Fig. 7 baseline with the lowest clauses/variables ratio.
#pragma once

#include <cstdint>

#include "core/locked_circuit.h"

namespace fl::lock {

struct RllConfig {
  int num_keys = 32;
  std::uint64_t seed = 1;
};

// Throws std::invalid_argument if the circuit has fewer wires than keys.
core::LockedCircuit rll_lock(const netlist::Netlist& original,
                             const RllConfig& config);

}  // namespace fl::lock
