#include "locking/lutlock.h"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "core/plr.h"
#include "netlist/structure.h"

namespace fl::lock {

using netlist::GateId;

core::LockedCircuit lutlock_lock(const netlist::Netlist& original,
                                 const LutLockConfig& config) {
  std::mt19937_64 rng(config.seed);
  core::LockedCircuit locked;
  locked.scheme = "lut-lock";
  locked.netlist = original;
  locked.netlist.set_name(original.name() + "_lutlock");
  netlist::Netlist& net = locked.netlist;

  // Only live gates: a LUT on logic outside every output cone carries key
  // bits that provably never affect the function.
  const std::vector<bool> live = netlist::live_gates(net);
  std::vector<GateId> candidates;
  for (GateId g = 0; g < net.num_gates(); ++g) {
    if (live[g] && core::lut_replaceable(net, g)) candidates.push_back(g);
  }
  if (static_cast<int>(candidates.size()) < config.num_luts) {
    throw std::invalid_argument("lutlock: not enough replaceable gates");
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  if (config.prefer_small) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&net](GateId a, GateId b) {
                       return net.gate(a).fanin.size() <
                              net.gate(b).fanin.size();
                     });
  }

  for (int i = 0; i < config.num_luts; ++i) {
    const core::KeyLutResult lut = core::replace_with_key_lut(
        net, candidates[i], "lutlock" + std::to_string(i));
    locked.correct_key.insert(locked.correct_key.end(),
                              lut.correct_key.begin(), lut.correct_key.end());
  }
  locked.netlist = netlist::compact(locked.netlist);
  return locked;
}

}  // namespace fl::lock
