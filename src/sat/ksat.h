// Fixed-length random k-SAT generator (Mitchell/Selman/Levesque model used
// by the paper's Fig. 1): m clauses, each with k distinct variables and
// uniform random polarities.
#pragma once

#include <cstdint>

#include "sat/types.h"

namespace fl::sat {

struct KSatConfig {
  int num_vars = 50;
  int num_clauses = 215;
  int k = 3;
  std::uint64_t seed = 1;
};

// Throws std::invalid_argument if k > num_vars or any count is nonpositive.
Cnf random_ksat(const KSatConfig& config);

}  // namespace fl::sat
