// Conflict-driven clause-learning (CDCL) SAT solver.
//
// MiniSat-style architecture: two-watched-literal propagation, first-UIP
// conflict analysis with clause minimization, VSIDS branching with phase
// saving, Luby restarts and activity-based learnt-clause reduction.
//
// Built for the oracle-guided SAT attack, so it supports
//  * incremental clause addition between solve() calls,
//  * solving under assumptions (used for the miter activation literal),
//  * wall-clock deadlines and conflict budgets (solve returns kUndef),
//  * the search statistics the paper reasons about (decisions ~ DPLL
//    branching, propagations, conflicts ~ backtracks).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sat/types.h"

namespace fl::sat {

// Search-parameter knobs. The defaults are the classic MiniSat values; the
// attack portfolio mode races several of these on the same instance (CDCL
// runtimes are heavy-tailed, so diverse restart/decay schedules beat any
// single schedule on hard miters).
struct SolverConfig {
  double var_decay = 0.95;     // VSIDS activity decay per conflict
  double clause_decay = 0.999; // learnt-clause activity decay per conflict
  int restart_unit = 128;      // Luby restart unit, in conflicts
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t removed_clauses = 0;
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  Var new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  // Returns false if the clause makes the formula trivially UNSAT (empty
  // clause after root-level simplification). The solver stays usable but
  // will report UNSAT from then on.
  bool add_clause(Clause clause);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }

  // Solves under the given assumptions. kUndef means a budget/deadline was
  // hit. The model (for kTrue) is read with value_of/model().
  LBool solve(std::span<const Lit> assumptions = {});

  // Model access; only valid after solve() returned kTrue.
  bool value_of(Var v) const;
  std::vector<bool> model() const;

  // Budgets: 0 disables. The deadline is checked after every conflict and
  // every few decisions, so a solve overshoots it by at most a handful of
  // fast decisions.
  void set_conflict_budget(std::uint64_t max_conflicts) {
    conflict_budget_ = max_conflicts;
  }
  void set_deadline(std::optional<std::chrono::steady_clock::time_point> t) {
    deadline_ = t;
  }

  // Cooperative cancellation from another thread (portfolio racing, pool
  // shutdown): the flag is polled at the same boundaries as the deadline and
  // never written by the solver. nullptr disables.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  // True iff the most recent solve() returned kUndef because a conflict
  // budget, deadline or interrupt cut the search short. Cleared at the start
  // of every solve().
  bool last_solve_interrupted() const { return budget_hit_; }

  const SolverStats& stats() const { return stats_; }
  std::size_t num_clauses() const { return num_problem_clauses_; }

 private:
  struct ClauseData;
  struct Watcher;

  bool enqueue(Lit l, ClauseData* reason);
  ClauseData* propagate();
  void analyze(ClauseData* conflict, Clause& learnt, int& backtrack_level);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack_to(int level);
  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(ClauseData& c);
  void reduce_db();
  void attach(ClauseData* c);
  void detach(ClauseData* c);
  LBool value(Lit l) const;
  LBool search();
  bool budget_exhausted(bool force_deadline_check = false) const;

  // Assignment state.
  std::vector<LBool> assign_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseData*> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Clause storage.
  std::vector<std::unique_ptr<ClauseData>> problem_clauses_;
  std::vector<std::unique_ptr<ClauseData>> learnt_clauses_;
  std::size_t num_problem_clauses_ = 0;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  // VSIDS.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;  // binary max-heap of vars by activity
  std::vector<int> heap_pos_;
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_less(Var a, Var b) const { return activity_[a] < activity_[b]; }

  double cla_inc_ = 1.0;

  // Conflict-analysis scratch.
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  bool ok_ = true;
  std::vector<Lit> assumptions_;
  SolverConfig config_;
  SolverStats stats_;
  std::uint64_t conflict_budget_ = 0;
  std::uint64_t conflicts_at_solve_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  mutable std::uint64_t deadline_check_countdown_ = 0;
  mutable bool budget_hit_ = false;
};

// One-shot convenience used by tests and the k-SAT experiments.
LBool solve_cnf(const Cnf& cnf, std::vector<bool>* model = nullptr,
                SolverStats* stats = nullptr);

}  // namespace fl::sat
