// Conflict-driven clause-learning (CDCL) SAT solver.
//
// MiniSat-style architecture — two-watched-literal propagation, first-UIP
// conflict analysis with clause minimization, VSIDS branching with phase
// saving, Luby restarts — with Glucose-style learnt-clause management and an
// arena clause store:
//  * every learnt clause gets an LBD (literal block distance) at 1UIP time;
//  * the learnt database is two-tiered: low-LBD "core" clauses (glue, and
//    all binaries) are kept forever, high-LBD "local" clauses are reduced
//    by LBD-then-activity;
//  * clauses whose LBD improves when they re-appear in conflict analysis
//    are promoted into the core tier;
//  * binary clauses propagate through dedicated implication lists (literal
//    pairs, no clause-memory chasing on the hot path); each literal's
//    binary and long watch lists live in one node so propagation touches
//    one cache line to find both;
//  * clause literals are stored inline after a compact header in a single
//    uint32 arena, addressed by 32-bit refs — half-size watch lists and one
//    less pointer hop per clause visit than heap-allocated clause objects.
//
// Built for the oracle-guided SAT attack, so it supports
//  * incremental clause addition between solve() calls, with a root-level
//    simplify() pass that drops satisfied clauses and falsified literals
//    accumulated by the attack's DIP constraints,
//  * solving under assumptions (used for the miter activation literal),
//  * wall-clock deadlines and conflict budgets (solve returns kUndef),
//  * the search statistics the paper reasons about (decisions ~ DPLL
//    branching, propagations, conflicts ~ backtracks).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sat/solver_iface.h"
#include "sat/types.h"

namespace fl::sat {

// Search-parameter knobs. The defaults are the classic MiniSat values; the
// attack portfolio mode races several of these on the same instance (CDCL
// runtimes are heavy-tailed, so diverse restart/decay schedules beat any
// single schedule on hard miters).
struct SolverConfig {
  double var_decay = 0.95;     // VSIDS activity decay per conflict
  double clause_decay = 0.999; // learnt-clause activity decay per conflict
  int restart_unit = 128;      // Luby restart unit, in conflicts
  // Memory budget over the solver's own allocations (clause arena, learnt
  // DB, watch lists, trail and per-variable state; see memory_bytes()).
  // When the accounted total crosses the budget, solve() returns kUndef
  // with StopReason::kOutOfMemory instead of letting the process grow
  // until the kernel OOM-kills it. 0 = unlimited.
  std::size_t memory_limit_mb = 0;
};

class Solver final : public SolverIface {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver() override;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  Var new_var() override;
  int num_vars() const override { return static_cast<int>(assign_.size()); }

  // Returns false if the clause makes the formula trivially UNSAT (empty
  // clause after root-level simplification). The solver stays usable but
  // will report UNSAT from then on.
  bool add_clause(Clause clause) override;
  using SolverIface::add_clause;

  // Solves under the given assumptions. kUndef means a budget/deadline was
  // hit. The model (for kTrue) is read with value_of/model().
  LBool solve(std::span<const Lit> assumptions = {}) override;

  // Root-level database simplification: removes clauses satisfied by
  // root-level assignments and strips falsified literals. Runs
  // automatically at the start of every solve() once new root facts have
  // accumulated (the attack's DIP constraints add them continuously), so
  // explicit calls are only needed to reclaim memory eagerly.
  void simplify();

  // Model access; only valid after solve() returned kTrue.
  bool value_of(Var v) const override;
  std::vector<bool> model() const override;

  // Phase hint: the polarity the next decision on `v` tries first.
  // Overwritten again whenever `v` is assigned (phase saving). Callers use
  // this to diversify the models of successive SAT calls — decisions
  // otherwise cluster around the all-false default, so "enumerate another
  // witness" loops re-find near-copies of the previous model.
  void set_phase(Var v, bool phase) override {
    saved_phase_[v] = phase ? 1 : 0;
  }

  // Budgets: 0 disables. The deadline is checked after every conflict and
  // every few decisions, so a solve overshoots it by at most a handful of
  // fast decisions.
  void set_conflict_budget(std::uint64_t max_conflicts) override {
    conflict_budget_ = max_conflicts;
  }
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> t) override {
    deadline_ = t;
  }

  // Cooperative cancellation from other threads (portfolio racing, pool
  // shutdown): the flags are polled at the same boundaries as the deadline
  // and never written by the solver. nullptr disables a slot. The third
  // slot exists for the parallel solver, which chains its own stop signal
  // behind the two caller-owned flags.
  void set_interrupts(const std::atomic<bool>* primary,
                      const std::atomic<bool>* secondary) override {
    interrupts_[0] = primary;
    interrupts_[1] = secondary;
  }
  using SolverIface::set_interrupt;
  void set_interrupt_chain(const std::atomic<bool>* primary,
                           const std::atomic<bool>* secondary,
                           const std::atomic<bool>* tertiary) {
    interrupts_[0] = primary;
    interrupts_[1] = secondary;
    interrupts_[2] = tertiary;
  }

  // True iff the most recent solve() returned kUndef because a conflict
  // budget, deadline, interrupt or memory budget cut the search short.
  // Cleared at the start of every solve().
  bool last_solve_interrupted() const override { return budget_hit_; }

  // Which budget cut the most recent solve() short (kNone when it ran to a
  // decisive answer). Cleared at the start of every solve().
  StopReason last_stop_reason() const override { return stop_reason_; }

  // Bytes currently held by the solver's own data structures: the clause
  // arena, clause databases, watch lists, trail and per-variable state.
  // What SolverConfig::memory_limit_mb is enforced against.
  std::size_t memory_bytes() const override;

  const SolverStats& stats() const override { return stats_; }

  CounterSnapshot counters() const override {
    return {stats_.decisions, stats_.propagations, stats_.conflicts};
  }
  std::size_t num_clauses() const override { return num_problem_clauses_; }
  std::size_t num_learnts() const override { return learnt_clauses_.size(); }

  // ---- Clause sharing (parallel portfolio) ------------------------------
  //
  // The export hook fires for every core-tier learnt — glue clauses
  // (LBD <= 2), binaries, and learnt units — exactly the tier the learnt DB
  // already keeps forever, so sharing adds no new quality judgement. It runs
  // on the solver's own thread mid-search; implementations must be
  // thread-safe against other solvers' hooks but get `lits` only for the
  // duration of the call.
  using ExportHook =
      std::function<void(std::span<const Lit> lits, std::uint32_t lbd)>;
  void set_export_hook(ExportHook hook) { export_hook_ = std::move(hook); }

  // The import hook runs at decision level 0, once before the first restart
  // of every solve() and then at every restart boundary — the only points
  // where foreign clauses can be attached without repair work. It should
  // call import_clause() for each clause it wants to hand over.
  using ImportHook = std::function<void(Solver&)>;
  void set_import_hook(ImportHook hook) { import_hook_ = std::move(hook); }

  // Adds a clause learnt by another solver over the *same* formula. Must be
  // called at decision level 0 (i.e. from an import hook). Root-satisfied
  // clauses are skipped, root-falsified literals stripped; units are
  // enqueued and propagated. Returns false iff the import made the formula
  // UNSAT (the foreign clause was a consequence, so the formula really is).
  bool import_clause(std::span<const Lit> lits, std::uint32_t lbd);

  // VSIDS activity of `v` — the cube-and-conquer splitter ranks swap-key
  // variables by it once a worker has search history.
  double activity_of(Var v) const { return activity_[v]; }

 private:
  // Word offset of a clause in arena_. kNullRef doubles as "no reason"
  // (arena_[0] is a sentinel so no real clause lives at 0).
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullRef = 0;
  struct Cls;  // arena clause accessor (solver.cpp)

  struct Watcher {
    ClauseRef ref;
    Lit blocker;
  };
  // Binary implication: when the node's key literal becomes true, `other`
  // is implied (or conflicting). `ref` is only touched off the hot path,
  // as the implication's reason.
  struct BinWatch {
    Lit other;
    ClauseRef ref;
  };
  // Both watch lists of one literal, side by side: binary implications and
  // long-clause watchers are nearly always consulted together, so keeping
  // the two vector headers in one node makes the second list (almost) free
  // to find once the first has been loaded.
  struct WatchNode {
    std::vector<BinWatch> bins;
    std::vector<Watcher> longs;
  };

  Cls cls(ClauseRef r);
  ClauseRef alloc_clause(std::span<const Lit> lits, bool learnt);
  void free_clause(ClauseRef r);  // accounting only; space reclaimed by GC
  void maybe_garbage_collect();
  void relocate(ClauseRef& r, std::vector<std::uint32_t>& to);

  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, Clause& learnt, int& backtrack_level);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack_to(int level);
  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(Cls c);
  std::uint32_t compute_lbd(std::span<const Lit> lits);
  void record_learnt(const Clause& learnt, std::uint32_t lbd);
  void reduce_db();
  void attach(ClauseRef r);
  void detach(ClauseRef r);
  void filter_condemned_watchers(bool bins_too);
  LBool value(Lit l) const;
  LBool search();
  bool budget_exhausted(bool force_deadline_check = false) const;

  // Assignment state.
  std::vector<LBool> assign_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Clause storage: headers + literals inline in one uint32 arena. Freed
  // clauses only mark waste; maybe_garbage_collect() compacts when waste
  // crosses a threshold.
  std::vector<std::uint32_t> arena_;
  std::size_t wasted_words_ = 0;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::size_t num_problem_clauses_ = 0;
  std::size_t num_local_learnts_ = 0;  // reducible (non-core) learnt clauses
  std::vector<WatchNode> watches_;  // indexed by Lit::index()

  // VSIDS.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;  // binary max-heap of vars by activity
  std::vector<int> heap_pos_;
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_less(Var a, Var b) const { return activity_[a] < activity_[b]; }

  double cla_inc_ = 1.0;

  // Conflict-analysis scratch.
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  // LBD scratch: per-level stamps so computing an LBD is O(|clause|) with
  // no clearing pass.
  std::vector<std::uint64_t> level_stamp_;
  std::uint64_t lbd_stamp_ = 0;

  // Learnt-DB size that triggers reduce_db, counting both tiers. Grows
  // geometrically with every reduction so a large core tier (which
  // reduce_db never shrinks) raises the ceiling instead of re-triggering
  // reductions that have nothing left to remove.
  std::size_t max_learnts_ = 0;

  bool ok_ = true;
  std::vector<Lit> assumptions_;
  SolverConfig config_;
  SolverStats stats_;
  std::uint64_t conflict_budget_ = 0;
  std::uint64_t conflicts_at_solve_ = 0;
  std::size_t simplified_trail_ = 0;  // root trail size at last simplify()
  std::uint64_t conflicts_at_simplify_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  // Interrupt flags, all polled at the same boundaries: [0] the caller's
  // cancel token, [1] a race/portfolio winner signal, [2] the parallel
  // solver's internal stop flag.
  std::array<const std::atomic<bool>*, 3> interrupts_{};
  ExportHook export_hook_;
  ImportHook import_hook_;
  std::vector<Lit> import_scratch_;
  mutable std::uint64_t deadline_check_countdown_ = 0;
  mutable bool budget_hit_ = false;
  mutable StopReason stop_reason_ = StopReason::kNone;
  // Memory accounting walks every watch list, so it runs on a coarser
  // stride than the deadline check and the value is cached in between.
  mutable std::uint32_t memory_check_countdown_ = 0;
  mutable std::size_t last_memory_bytes_ = 0;
};

// One-shot convenience used by tests and the k-SAT experiments.
LBool solve_cnf(const Cnf& cnf, std::vector<bool>* model = nullptr,
                SolverStats* stats = nullptr);

}  // namespace fl::sat
