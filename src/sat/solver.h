// Conflict-driven clause-learning (CDCL) SAT solver.
//
// MiniSat-style architecture — two-watched-literal propagation, first-UIP
// conflict analysis with clause minimization, VSIDS branching with phase
// saving, Luby restarts — with Glucose-style learnt-clause management and an
// arena clause store:
//  * every learnt clause gets an LBD (literal block distance) at 1UIP time;
//  * the learnt database is two-tiered: low-LBD "core" clauses (glue, and
//    all binaries) are kept forever, high-LBD "local" clauses are reduced
//    by LBD-then-activity;
//  * clauses whose LBD improves when they re-appear in conflict analysis
//    are promoted into the core tier;
//  * binary clauses propagate through dedicated implication lists (literal
//    pairs, no clause-memory chasing on the hot path); each literal's
//    binary and long watch lists live in one node so propagation touches
//    one cache line to find both;
//  * clause literals are stored inline after a compact header in a single
//    uint32 arena, addressed by 32-bit refs — half-size watch lists and one
//    less pointer hop per clause visit than heap-allocated clause objects.
//
// Built for the oracle-guided SAT attack, so it supports
//  * incremental clause addition between solve() calls, with a root-level
//    simplify() pass that drops satisfied clauses and falsified literals
//    accumulated by the attack's DIP constraints,
//  * solving under assumptions (used for the miter activation literal),
//  * wall-clock deadlines and conflict budgets (solve returns kUndef),
//  * the search statistics the paper reasons about (decisions ~ DPLL
//    branching, propagations, conflicts ~ backtracks).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sat/types.h"

namespace fl::sat {

// Why the most recent solve() returned kUndef — or kNone when it ran to a
// decisive kTrue/kFalse. Lets callers (and the sweep JSONL schema) tell a
// wall-clock timeout apart from cooperative cancellation, a conflict
// budget, and the solver's own memory budget tripping.
enum class StopReason : std::uint8_t {
  kNone = 0,        // solve completed (kTrue / kFalse)
  kConflictBudget,  // set_conflict_budget() exhausted
  kDeadline,        // set_deadline() passed
  kInterrupt,       // set_interrupt() flag observed
  kOutOfMemory,     // SolverConfig::memory_limit_mb exceeded
};
const char* to_string(StopReason reason);

// Search-parameter knobs. The defaults are the classic MiniSat values; the
// attack portfolio mode races several of these on the same instance (CDCL
// runtimes are heavy-tailed, so diverse restart/decay schedules beat any
// single schedule on hard miters).
struct SolverConfig {
  double var_decay = 0.95;     // VSIDS activity decay per conflict
  double clause_decay = 0.999; // learnt-clause activity decay per conflict
  int restart_unit = 128;      // Luby restart unit, in conflicts
  // Memory budget over the solver's own allocations (clause arena, learnt
  // DB, watch lists, trail and per-variable state; see memory_bytes()).
  // When the accounted total crosses the budget, solve() returns kUndef
  // with StopReason::kOutOfMemory instead of letting the process grow
  // until the kernel OOM-kills it. 0 = unlimited.
  std::size_t memory_limit_mb = 0;
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  // Implications enqueued through the binary implication lists (a subset of
  // the work `propagations` counts trail literals for).
  std::uint64_t binary_propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  // Learnt clauses of size 2 (these live in the binary implication lists
  // and are never eligible for reduction).
  std::uint64_t learned_binary = 0;
  // LBD histogram summary over learnt clauses, measured at 1UIP time:
  // sum (mean = lbd_sum / learned_clauses), glue count (LBD <= 2), max.
  std::uint64_t lbd_sum = 0;
  std::uint64_t glue_learned = 0;
  std::uint64_t max_lbd = 0;
  // Local-tier clauses whose LBD improved to glue level during a later
  // conflict analysis and were moved into the kept-forever core tier.
  std::uint64_t promoted_clauses = 0;
  // Clauses dropped by reduce_db (local tier only).
  std::uint64_t removed_clauses = 0;
  // Learnt-database size right after the most recent reduce_db.
  std::uint64_t db_size_after_reduce = 0;
  // Root-level simplification between incremental solves: satisfied
  // problem/learnt clauses dropped, falsified literals stripped.
  std::uint64_t simplify_removed_clauses = 0;
  std::uint64_t simplify_removed_literals = 0;
  // High-water mark of memory_bytes(), sampled at the end of every solve().
  std::uint64_t peak_memory_bytes = 0;
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  Var new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  // Returns false if the clause makes the formula trivially UNSAT (empty
  // clause after root-level simplification). The solver stays usable but
  // will report UNSAT from then on.
  bool add_clause(Clause clause);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }

  // Solves under the given assumptions. kUndef means a budget/deadline was
  // hit. The model (for kTrue) is read with value_of/model().
  LBool solve(std::span<const Lit> assumptions = {});

  // Root-level database simplification: removes clauses satisfied by
  // root-level assignments and strips falsified literals. Runs
  // automatically at the start of every solve() once new root facts have
  // accumulated (the attack's DIP constraints add them continuously), so
  // explicit calls are only needed to reclaim memory eagerly.
  void simplify();

  // Model access; only valid after solve() returned kTrue.
  bool value_of(Var v) const;
  std::vector<bool> model() const;

  // Phase hint: the polarity the next decision on `v` tries first.
  // Overwritten again whenever `v` is assigned (phase saving). Callers use
  // this to diversify the models of successive SAT calls — decisions
  // otherwise cluster around the all-false default, so "enumerate another
  // witness" loops re-find near-copies of the previous model.
  void set_phase(Var v, bool phase) {
    saved_phase_[v] = phase ? 1 : 0;
  }

  // Budgets: 0 disables. The deadline is checked after every conflict and
  // every few decisions, so a solve overshoots it by at most a handful of
  // fast decisions.
  void set_conflict_budget(std::uint64_t max_conflicts) {
    conflict_budget_ = max_conflicts;
  }
  void set_deadline(std::optional<std::chrono::steady_clock::time_point> t) {
    deadline_ = t;
  }

  // Cooperative cancellation from another thread (portfolio racing, pool
  // shutdown): the flag is polled at the same boundaries as the deadline and
  // never written by the solver. nullptr disables.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  // True iff the most recent solve() returned kUndef because a conflict
  // budget, deadline, interrupt or memory budget cut the search short.
  // Cleared at the start of every solve().
  bool last_solve_interrupted() const { return budget_hit_; }

  // Which budget cut the most recent solve() short (kNone when it ran to a
  // decisive answer). Cleared at the start of every solve().
  StopReason last_stop_reason() const { return stop_reason_; }

  // Bytes currently held by the solver's own data structures: the clause
  // arena, clause databases, watch lists, trail and per-variable state.
  // What SolverConfig::memory_limit_mb is enforced against.
  std::size_t memory_bytes() const;

  const SolverStats& stats() const { return stats_; }

  // Cheap monotonic snapshot of the hot search counters, for callers that
  // measure deltas around a single solve() (the attack engine's
  // per-iteration trace) without copying the full SolverStats.
  struct CounterSnapshot {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
  };
  CounterSnapshot counters() const {
    return {stats_.decisions, stats_.propagations, stats_.conflicts};
  }
  std::size_t num_clauses() const { return num_problem_clauses_; }
  std::size_t num_learnts() const { return learnt_clauses_.size(); }

 private:
  // Word offset of a clause in arena_. kNullRef doubles as "no reason"
  // (arena_[0] is a sentinel so no real clause lives at 0).
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullRef = 0;
  struct Cls;  // arena clause accessor (solver.cpp)

  struct Watcher {
    ClauseRef ref;
    Lit blocker;
  };
  // Binary implication: when the node's key literal becomes true, `other`
  // is implied (or conflicting). `ref` is only touched off the hot path,
  // as the implication's reason.
  struct BinWatch {
    Lit other;
    ClauseRef ref;
  };
  // Both watch lists of one literal, side by side: binary implications and
  // long-clause watchers are nearly always consulted together, so keeping
  // the two vector headers in one node makes the second list (almost) free
  // to find once the first has been loaded.
  struct WatchNode {
    std::vector<BinWatch> bins;
    std::vector<Watcher> longs;
  };

  Cls cls(ClauseRef r);
  ClauseRef alloc_clause(std::span<const Lit> lits, bool learnt);
  void free_clause(ClauseRef r);  // accounting only; space reclaimed by GC
  void maybe_garbage_collect();
  void relocate(ClauseRef& r, std::vector<std::uint32_t>& to);

  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, Clause& learnt, int& backtrack_level);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack_to(int level);
  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(Cls c);
  std::uint32_t compute_lbd(std::span<const Lit> lits);
  void record_learnt(const Clause& learnt, std::uint32_t lbd);
  void reduce_db();
  void attach(ClauseRef r);
  void detach(ClauseRef r);
  void filter_condemned_watchers(bool bins_too);
  LBool value(Lit l) const;
  LBool search();
  bool budget_exhausted(bool force_deadline_check = false) const;

  // Assignment state.
  std::vector<LBool> assign_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Clause storage: headers + literals inline in one uint32 arena. Freed
  // clauses only mark waste; maybe_garbage_collect() compacts when waste
  // crosses a threshold.
  std::vector<std::uint32_t> arena_;
  std::size_t wasted_words_ = 0;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::size_t num_problem_clauses_ = 0;
  std::size_t num_local_learnts_ = 0;  // reducible (non-core) learnt clauses
  std::vector<WatchNode> watches_;  // indexed by Lit::index()

  // VSIDS.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;  // binary max-heap of vars by activity
  std::vector<int> heap_pos_;
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_less(Var a, Var b) const { return activity_[a] < activity_[b]; }

  double cla_inc_ = 1.0;

  // Conflict-analysis scratch.
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  // LBD scratch: per-level stamps so computing an LBD is O(|clause|) with
  // no clearing pass.
  std::vector<std::uint64_t> level_stamp_;
  std::uint64_t lbd_stamp_ = 0;

  // Learnt-DB size that triggers reduce_db, counting both tiers. Grows
  // geometrically with every reduction so a large core tier (which
  // reduce_db never shrinks) raises the ceiling instead of re-triggering
  // reductions that have nothing left to remove.
  std::size_t max_learnts_ = 0;

  bool ok_ = true;
  std::vector<Lit> assumptions_;
  SolverConfig config_;
  SolverStats stats_;
  std::uint64_t conflict_budget_ = 0;
  std::uint64_t conflicts_at_solve_ = 0;
  std::size_t simplified_trail_ = 0;  // root trail size at last simplify()
  std::uint64_t conflicts_at_simplify_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  mutable std::uint64_t deadline_check_countdown_ = 0;
  mutable bool budget_hit_ = false;
  mutable StopReason stop_reason_ = StopReason::kNone;
  // Memory accounting walks every watch list, so it runs on a coarser
  // stride than the deadline check and the value is cached in between.
  mutable std::uint32_t memory_check_countdown_ = 0;
  mutable std::size_t last_memory_bytes_ = 0;
};

// One-shot convenience used by tests and the k-SAT experiments.
LBool solve_cnf(const Cnf& cnf, std::vector<bool>* model = nullptr,
                SolverStats* stats = nullptr);

}  // namespace fl::sat
