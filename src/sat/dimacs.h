// DIMACS CNF reader/writer.
#pragma once

#include <iosfwd>
#include <string>

#include "sat/types.h"

namespace fl::sat {

// Reads DIMACS CNF. Headerless input is accepted (variable count inferred
// as the max literal seen), and the SATLIB end-of-formula convention — a
// '%' line followed by trailing padding — is recognized explicitly.
//
// Strict mode (the default) throws std::runtime_error with a line number on
// malformed headers (negative counts, junk after 'p cnf <v> <c>'), on
// non-numeric clause tokens, and on literals exceeding the declared
// variable count. `lenient` restores the permissive historical behavior:
// the variable count grows past the header and unparsable tokens end their
// line silently ('p <fmt>' with fmt != "cnf" still throws).
Cnf read_dimacs(std::istream& in, bool lenient = false);
Cnf read_dimacs_string(const std::string& text, bool lenient = false);

void write_dimacs(const Cnf& cnf, std::ostream& out);
std::string write_dimacs_string(const Cnf& cnf);

}  // namespace fl::sat
