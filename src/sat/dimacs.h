// DIMACS CNF reader/writer.
#pragma once

#include <iosfwd>
#include <string>

#include "sat/types.h"

namespace fl::sat {

// Throws std::runtime_error on malformed input. Accepts missing/incorrect
// "p cnf" headers (variable count is inferred as the max seen).
Cnf read_dimacs(std::istream& in);
Cnf read_dimacs_string(const std::string& text);

void write_dimacs(const Cnf& cnf, std::ostream& out);
std::string write_dimacs_string(const Cnf& cnf);

}  // namespace fl::sat
