#include "sat/dpll.h"

#include <algorithm>

namespace fl::sat {

DpllResult Dpll::solve(const Cnf& cnf) {
  cnf_ = &cnf;
  result_ = DpllResult{};
  assign_.assign(cnf.num_vars, LBool::kUndef);
  trail_.clear();
  clause_state_.assign(cnf.clauses.size(), ClauseState{});
  occurs_.assign(static_cast<std::size_t>(cnf.num_vars) * 2, {});
  bool trivially_unsat = false;
  for (std::size_t ci = 0; ci < cnf.clauses.size(); ++ci) {
    clause_state_[ci].unassigned =
        static_cast<std::uint32_t>(cnf.clauses[ci].size());
    if (cnf.clauses[ci].empty()) trivially_unsat = true;
    for (const Lit l : cnf.clauses[ci]) {
      occurs_[l.index()].push_back(static_cast<std::uint32_t>(ci));
    }
  }
  if (trivially_unsat) {
    result_.satisfiable = false;
    return result_;
  }
  const Outcome out = search();
  result_.satisfiable = out == Outcome::kSat;
  result_.completed = out != Outcome::kAborted;
  if (out == Outcome::kSat) {
    result_.model.assign(cnf.num_vars, false);
    for (Var v = 0; v < cnf.num_vars; ++v) {
      result_.model[v] = assign_[v] == LBool::kTrue;
    }
  }
  return result_;
}

bool Dpll::assign(Var v, bool value) {
  const Lit true_lit(v, !value);
  const std::int32_t mark = static_cast<std::int32_t>(trail_.size());
  assign_[v] = lbool_from(value);
  trail_.push_back(true_lit);
  for (const std::uint32_t ci : occurs_[true_lit.index()]) {
    ClauseState& cs = clause_state_[ci];
    if (cs.satisfied_by < 0) cs.satisfied_by = mark;
  }
  bool conflict = false;
  for (const std::uint32_t ci : occurs_[(~true_lit).index()]) {
    ClauseState& cs = clause_state_[ci];
    --cs.unassigned;
    if (cs.satisfied_by < 0 && cs.unassigned == 0) conflict = true;
  }
  return !conflict;
}

void Dpll::unassign_to(std::size_t trail_mark) {
  while (trail_.size() > trail_mark) {
    const std::int32_t idx = static_cast<std::int32_t>(trail_.size()) - 1;
    const Lit true_lit = trail_.back();
    trail_.pop_back();
    assign_[true_lit.var()] = LBool::kUndef;
    for (const std::uint32_t ci : occurs_[true_lit.index()]) {
      ClauseState& cs = clause_state_[ci];
      if (cs.satisfied_by == idx) cs.satisfied_by = -1;
    }
    for (const std::uint32_t ci : occurs_[(~true_lit).index()]) {
      ++clause_state_[ci].unassigned;
    }
  }
}

std::optional<Lit> Dpll::find_unit() const {
  for (std::size_t ci = 0; ci < clause_state_.size(); ++ci) {
    const ClauseState& cs = clause_state_[ci];
    if (cs.satisfied_by >= 0 || cs.unassigned != 1) continue;
    for (const Lit l : cnf_->clauses[ci]) {
      if (assign_[l.var()] == LBool::kUndef) return l;
    }
  }
  return std::nullopt;
}

std::optional<Lit> Dpll::find_pure() const {
  for (Var v = 0; v < cnf_->num_vars; ++v) {
    if (assign_[v] != LBool::kUndef) continue;
    bool pos_seen = false, neg_seen = false;
    for (const std::uint32_t ci : occurs_[pos(v).index()]) {
      if (clause_state_[ci].satisfied_by < 0) {
        pos_seen = true;
        break;
      }
    }
    for (const std::uint32_t ci : occurs_[neg(v).index()]) {
      if (clause_state_[ci].satisfied_by < 0) {
        neg_seen = true;
        break;
      }
    }
    if (pos_seen != neg_seen) return Lit(v, !pos_seen);
    // Vars absent from all unsatisfied clauses are skipped (irrelevant).
  }
  return std::nullopt;
}

Var Dpll::pick_branch_var() const {
  // MOMS-flavoured: the unassigned variable occurring most often in
  // unsatisfied clauses.
  Var best = kNullVar;
  std::size_t best_count = 0;
  for (Var v = 0; v < cnf_->num_vars; ++v) {
    if (assign_[v] != LBool::kUndef) continue;
    std::size_t count = 0;
    for (const std::uint32_t ci : occurs_[pos(v).index()]) {
      if (clause_state_[ci].satisfied_by < 0) ++count;
    }
    for (const std::uint32_t ci : occurs_[neg(v).index()]) {
      if (clause_state_[ci].satisfied_by < 0) ++count;
    }
    if (best == kNullVar || count > best_count) {
      best = v;
      best_count = count;
    }
  }
  return best;
}

// The textbook procedure is recursive; this runs the identical recursion on
// an explicit frame stack because phase-transition instances reach depths
// (one frame per unit propagation) that overflow the machine stack. Each
// loop iteration is either the *entry* of a recursive call (returning ==
// false) or the delivery of a finished call's result to its parent frame.
// The counters are incremented at exactly the same points as the recursive
// version, so recursive_calls/unit_propagations/purifications/branches and
// the call-budget cutoff are bit-identical.
Dpll::Outcome Dpll::search() {
  struct Frame {
    std::size_t mark;           // trail size before this call's assignment
    Var branch_var = kNullVar;  // kNullVar: unit/pure frame (no 2nd polarity)
    bool tried_false = false;   // branch frames: second polarity in flight
  };
  std::vector<Frame> stack;
  Outcome ret = Outcome::kUnsat;
  bool returning = false;

  while (true) {
    if (!returning) {
      // Entry of a recursive call.
      ++result_.recursive_calls;
      if (max_calls_ != 0 && result_.recursive_calls > max_calls_) {
        ret = Outcome::kAborted;
        returning = true;
        continue;
      }
      // "Phi is []": every clause satisfied?
      bool all_satisfied = true;
      for (const ClauseState& cs : clause_state_) {
        if (cs.satisfied_by < 0) {
          all_satisfied = false;
          break;
        }
      }
      if (all_satisfied) {
        ret = Outcome::kSat;
        returning = true;
        continue;
      }

      if (const auto unit = find_unit()) {
        ++result_.unit_propagations;
        const std::size_t mark = trail_.size();
        if (!assign(unit->var(), !unit->negated())) {
          unassign_to(mark);
          ret = Outcome::kUnsat;
          returning = true;
          continue;
        }
        stack.push_back(Frame{mark});
        continue;  // recurse
      }
      if (const auto pure = find_pure()) {
        ++result_.purifications;
        const std::size_t mark = trail_.size();
        if (!assign(pure->var(), !pure->negated())) {
          unassign_to(mark);
          ret = Outcome::kUnsat;
          returning = true;
          continue;
        }
        stack.push_back(Frame{mark});
        continue;  // recurse
      }

      const Var v = pick_branch_var();
      if (v == kNullVar) {
        // No unassigned variable left in an unsatisfied clause: with no unit
        // and no empty clause this cannot happen, but guard anyway.
        ret = Outcome::kUnsat;
        returning = true;
        continue;
      }
      ++result_.branches;
      const std::size_t mark = trail_.size();
      if (assign(v, true)) {
        stack.push_back(Frame{mark, v, false});
        continue;  // recurse into the first polarity
      }
      unassign_to(mark);
      if (assign(v, false)) {
        stack.push_back(Frame{mark, v, true});
        continue;  // recurse into the second polarity
      }
      unassign_to(mark);
      ret = Outcome::kUnsat;
      returning = true;
      continue;
    }

    // A call finished with `ret`; deliver it to the parent frame.
    if (stack.empty()) return ret;
    Frame& f = stack.back();
    if (ret != Outcome::kUnsat) {
      // kSat keeps the satisfying trail; kAborted propagates unchanged.
      stack.pop_back();
      continue;
    }
    unassign_to(f.mark);
    if (f.branch_var != kNullVar && !f.tried_false) {
      if (assign(f.branch_var, false)) {
        f.tried_false = true;
        returning = false;  // recurse into the second polarity
        continue;
      }
      unassign_to(f.mark);
    }
    stack.pop_back();  // ret stays kUnsat
  }
}

}  // namespace fl::sat
