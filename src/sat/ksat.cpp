#include "sat/ksat.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fl::sat {

Cnf random_ksat(const KSatConfig& config) {
  if (config.num_vars <= 0 || config.num_clauses <= 0 || config.k <= 0) {
    throw std::invalid_argument("ksat: counts must be positive");
  }
  if (config.k > config.num_vars) {
    throw std::invalid_argument("ksat: k exceeds variable count");
  }
  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<Var> pick_var(0, config.num_vars - 1);
  std::uniform_int_distribution<int> pick_sign(0, 1);

  Cnf cnf;
  cnf.num_vars = config.num_vars;
  cnf.clauses.reserve(config.num_clauses);
  Clause clause;
  for (int c = 0; c < config.num_clauses; ++c) {
    clause.clear();
    while (static_cast<int>(clause.size()) < config.k) {
      const Var v = pick_var(rng);
      const bool dup = std::any_of(clause.begin(), clause.end(),
                                   [v](Lit l) { return l.var() == v; });
      if (!dup) clause.push_back(Lit(v, pick_sign(rng) == 1));
    }
    cnf.add(clause);
  }
  return cnf;
}

}  // namespace fl::sat
