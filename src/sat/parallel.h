// In-process parallel SAT: clause-sharing portfolio and cube-and-conquer.
//
// ParallelSolver runs K CDCL workers over *one* formula: every new_var /
// add_clause call is mirrored to all workers, so each worker owns an
// identical clause stream and anything a worker learns is a logical
// consequence of the shared formula. That makes clause exchange sound by
// construction — unlike sharing across independent attack racers, whose
// DIP constraints (and hence learnt clauses) diverge after one iteration.
//
// Two cooperative modes (plus the attack-level race that does not use this
// class at all):
//  * kShare — every worker searches the whole problem under diversified
//    configurations (decay/restart jitter, phase jitter) and exchanges
//    core-tier learnt clauses (glue LBD <= 2, binaries, learnt units)
//    through a bounded, deduplicated, sharded-mutex ClausePool. Exports
//    happen at learn time; imports at restart boundaries under a per-call
//    budget. The first decisive worker stops the rest.
//  * kCubes — the search space is split into 2^d assumption cubes over the
//    most active CLN swap-key variables (VSIDS activity once a worker has
//    history, occurrence counts before that); workers drain the cube queue,
//    still sharing clauses (clauses learnt under assumptions are
//    consequences of the formula alone). SAT on any cube wins and cancels
//    the rest; the instance is UNSAT iff every cube is UNSAT.
//
// A width-1 ParallelSolver degenerates to a plain Solver call on the
// caller's thread — no pool, no jitter, bit-identical behavior.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sat/solver.h"

namespace fl::runtime {
class ThreadPool;
}

namespace fl::sat {

// How a portfolio width is spent. kRace is implemented at the attack level
// (independent DIP loops, first decisive finisher wins); kShare/kCubes run
// one DIP loop over a cooperating ParallelSolver.
enum class ParMode : std::uint8_t { kRace = 0, kShare, kCubes };
const char* to_string(ParMode mode);
std::optional<ParMode> parse_par_mode(std::string_view name);

// Diversified solver configuration for worker/racer `k`: k = 0 is `base`
// unchanged, 1..5 walk a hand-picked table of restart/decay profiles, and
// every k >= 6 gets deterministic splitmix64 jitter on the decay rates and
// restart unit — so no two workers ever duplicate each other's schedule,
// no matter the width (the old table silently wrapped modulo 6).
SolverConfig diversified_config(int k, SolverConfig base = {});

// The assumption cubes over `vars`: all 2^n sign combinations, partitioning
// the search space (bit j of the cube index gives vars[j] its polarity).
// Exposed for the partition tests; callers cap n (the splitter uses <= 10).
std::vector<std::vector<Lit>> build_cubes(std::span<const Var> vars);

// Bounded, deduplicated exchange for learnt clauses. One shard (mutex +
// flat clause buffer) per producer keeps publishers from contending with
// each other; consumers walk the other producers' shards behind private
// cursors, so a clause is handed to each consumer at most once and is never
// re-imported by its own producer. A global hash set drops duplicate
// clauses across producers; a per-shard capacity bounds memory when one
// worker learns much faster than the others consume.
class ClausePool {
 public:
  ClausePool(int num_workers, std::size_t shard_capacity);

  // Publishes a clause learnt by `producer`. Returns false when the clause
  // was dropped (already seen, or the producer's shard is full).
  bool publish(int producer, std::span<const Lit> lits, std::uint32_t lbd);

  // Hands up to `budget` not-yet-seen clauses from other producers' shards
  // to `fn`, advancing `consumer`'s cursors. Returns the number delivered.
  // Must be called by at most one thread per consumer index at a time (the
  // parallel solver guarantees this: a worker imports only on its own
  // thread).
  std::size_t consume(
      int consumer, std::size_t budget,
      const std::function<void(std::span<const Lit>, std::uint32_t)>& fn);

  struct Stats {
    std::uint64_t published = 0;  // clauses accepted into a shard
    std::uint64_t duplicates = 0; // dropped by the cross-producer hash set
    std::uint64_t overflow = 0;   // dropped because the shard was full
    std::uint64_t consumed = 0;   // clause deliveries (once per consumer)
  };
  Stats stats() const;

  // Every distinct clause currently buffered, with its LBD — the
  // logical-consequence differential tests check each of these against the
  // original formula.
  std::vector<std::pair<Clause, std::uint32_t>> snapshot() const;

 private:
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t lbd = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> entries;
    std::vector<Lit> lits;
  };

  std::vector<std::unique_ptr<Shard>> shards_;  // one per producer
  std::vector<std::vector<std::size_t>> cursors_;  // [consumer][shard]
  std::size_t shard_capacity_;
  mutable std::mutex dedup_mu_;
  std::unordered_set<std::uint64_t> seen_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> consumed_{0};
};

struct ParallelConfig {
  int num_workers = 1;
  ParMode mode = ParMode::kShare;  // kRace is not valid here
  SolverConfig base;               // worker 0's configuration
  // Deterministic decay/restart jitter (diversified_config) plus saved-phase
  // jitter for workers > 0. Off = identical twins (only useful in tests).
  bool diversify = true;
  // Max clauses a worker imports per restart boundary. Bounds the level-0
  // attach work a restart pays before searching again.
  std::size_t import_budget = 256;
  // Max clauses buffered per producer shard (publishes overflow past it).
  std::size_t shard_capacity = std::size_t{1} << 14;
  // Cube split depth d (2^d cubes); 0 derives it from num_workers.
  int cube_depth = 0;
  // Adaptive fan-out: every solve() first runs worker 0 inline under this
  // conflict budget and only fans out (share or cubes) when the budget
  // trips. Oracle-guided attacks issue a long stream of easy DIP solves
  // before one hard UNSAT proof; the probe keeps the easy stream free of
  // parallel overhead and escalates exactly the hard tail — with worker 0's
  // VSIDS activity freshly focused on it, which is what the cube splitter
  // ranks by. 0 = fan out every solve.
  std::uint64_t inline_budget = 2000;
};

// Observability over one ParallelSolver (per-worker search counters are in
// stats(), aggregated across workers).
struct ParallelStats {
  std::uint64_t parallel_solves = 0;  // solve() calls that fanned out
  // Solve() calls answered on the caller's thread: the width-1 fast path
  // plus probes that finished inside ParallelConfig::inline_budget.
  std::uint64_t inline_solves = 0;
  // Probes whose conflict budget tripped, escalating the solve to a fan-out.
  std::uint64_t probe_escalations = 0;
  std::uint64_t cubes_dispatched = 0;
  std::uint64_t cubes_unsat = 0;
  int last_winner = -1;        // worker index of the last decisive solve
  std::size_t last_num_cubes = 0;
};

class ParallelSolver final : public SolverIface {
 public:
  explicit ParallelSolver(ParallelConfig config = {});
  ~ParallelSolver() override;
  ParallelSolver(const ParallelSolver&) = delete;
  ParallelSolver& operator=(const ParallelSolver&) = delete;

  Var new_var() override;
  int num_vars() const override;
  bool add_clause(Clause clause) override;
  using SolverIface::add_clause;
  LBool solve(std::span<const Lit> assumptions = {}) override;
  bool value_of(Var v) const override;
  std::vector<bool> model() const override;
  void set_phase(Var v, bool phase) override;
  void set_conflict_budget(std::uint64_t max_conflicts) override;
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> t) override;
  void set_interrupts(const std::atomic<bool>* primary,
                      const std::atomic<bool>* secondary) override;
  bool last_solve_interrupted() const override;
  StopReason last_stop_reason() const override;
  const SolverStats& stats() const override;
  CounterSnapshot counters() const override;
  std::size_t num_clauses() const override;
  std::size_t num_learnts() const override;
  std::size_t memory_bytes() const override;

  // Cube-and-conquer split candidates (the attack passes the CLN swap-key
  // variables of every miter copy). Without candidates, kCubes solves fall
  // back to plain sharing.
  void set_split_candidates(std::vector<Var> candidates);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const ParallelStats& parallel_stats() const { return pstats_; }
  // nullptr at width 1 (no exchange exists on the fast path).
  const ClausePool* pool() const { return pool_.get(); }

 private:
  LBool solve_inline(std::span<const Lit> assumptions);
  void worker_run_share(int i, const std::vector<Lit>& assumptions);
  void worker_run_cubes(int i, const std::vector<Lit>& assumptions);
  void record_decisive(int i, LBool result);
  std::vector<Var> pick_split_vars() const;
  bool external_interrupted() const;

  ParallelConfig config_;
  std::vector<std::unique_ptr<Solver>> workers_;
  std::unique_ptr<ClausePool> pool_;
  std::unique_ptr<runtime::ThreadPool> threads_;
  std::vector<Var> split_candidates_;
  std::vector<std::uint32_t> occurrences_;  // per-var, bumped in add_clause

  // Budgets forwarded to workers at every solve().
  std::uint64_t conflict_budget_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* interrupt_primary_ = nullptr;
  const std::atomic<bool>* interrupt_secondary_ = nullptr;

  // Per-solve race state. `winner_` is CAS-claimed by the first decisive
  // worker, which then writes `decisive_result_` and raises `stop_` — the
  // thread pool's wait provides the happens-before edge back to the
  // coordinating thread.
  std::atomic<bool> stop_{false};
  std::atomic<int> winner_{-1};
  LBool decisive_result_ = LBool::kUndef;
  std::atomic<std::size_t> cube_next_{0};
  std::atomic<std::size_t> cubes_unsat_{0};
  std::vector<std::vector<Lit>> cubes_;

  int model_source_ = 0;  // worker whose model value_of()/model() read
  StopReason last_stop_ = StopReason::kNone;
  mutable SolverStats agg_stats_;  // rebuilt on stats()
  ParallelStats pstats_;
};

}  // namespace fl::sat
