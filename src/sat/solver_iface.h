// Abstract solver interface shared by the sequential CDCL solver and the
// in-process parallel solver (clause-sharing portfolio / cube-and-conquer).
//
// The oracle-guided attack engine programs against this interface so the
// same DIP loop can run on one CDCL worker or on K cooperating workers
// without knowing the difference: incremental clause addition, solving
// under assumptions, model readback, budgets, and the statistics the
// paper's evaluation reads out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "sat/types.h"

namespace fl::sat {

// Why the most recent solve() returned kUndef — or kNone when it ran to a
// decisive kTrue/kFalse. Lets callers (and the sweep JSONL schema) tell a
// wall-clock timeout apart from cooperative cancellation, a conflict
// budget, and the solver's own memory budget tripping.
enum class StopReason : std::uint8_t {
  kNone = 0,        // solve completed (kTrue / kFalse)
  kConflictBudget,  // set_conflict_budget() exhausted
  kDeadline,        // set_deadline() passed
  kInterrupt,       // an interrupt flag was observed
  kOutOfMemory,     // SolverConfig::memory_limit_mb exceeded
};
const char* to_string(StopReason reason);

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  // Implications enqueued through the binary implication lists (a subset of
  // the work `propagations` counts trail literals for).
  std::uint64_t binary_propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  // Learnt clauses of size 2 (these live in the binary implication lists
  // and are never eligible for reduction).
  std::uint64_t learned_binary = 0;
  // LBD histogram summary over learnt clauses, measured at 1UIP time:
  // sum (mean = lbd_sum / learned_clauses), glue count (LBD <= 2), max.
  std::uint64_t lbd_sum = 0;
  std::uint64_t glue_learned = 0;
  std::uint64_t max_lbd = 0;
  // Local-tier clauses whose LBD improved to glue level during a later
  // conflict analysis and were moved into the kept-forever core tier.
  std::uint64_t promoted_clauses = 0;
  // Clauses dropped by reduce_db (local tier only).
  std::uint64_t removed_clauses = 0;
  // Learnt-database size right after the most recent reduce_db.
  std::uint64_t db_size_after_reduce = 0;
  // Root-level simplification between incremental solves: satisfied
  // problem/learnt clauses dropped, falsified literals stripped.
  std::uint64_t simplify_removed_clauses = 0;
  std::uint64_t simplify_removed_literals = 0;
  // High-water mark of memory_bytes(), sampled at the end of every solve().
  std::uint64_t peak_memory_bytes = 0;
  // Clause sharing (parallel solving): core-tier learnts (glue + binaries +
  // learnt units) handed to the export hook, and foreign clauses accepted by
  // import_clause().
  std::uint64_t exported_clauses = 0;
  std::uint64_t imported_clauses = 0;
};

// Sums `from` into `into`. Counters add; high-water marks (max_lbd,
// db_size_after_reduce) take the max; peak memory adds, because portfolio
// workers hold their databases concurrently. Used to fold every racer's /
// worker's search effort into one AttackResult instead of dropping the
// losers' work on the floor.
void aggregate_stats(SolverStats& into, const SolverStats& from);

// Cheap monotonic snapshot of the hot search counters, for callers that
// measure deltas around a single solve() (the attack engine's
// per-iteration trace) without copying the full SolverStats.
struct CounterSnapshot {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
};

class SolverIface {
 public:
  virtual ~SolverIface() = default;

  virtual Var new_var() = 0;
  virtual int num_vars() const = 0;

  // Returns false if the clause makes the formula trivially UNSAT (empty
  // clause after root-level simplification). The solver stays usable but
  // will report UNSAT from then on.
  virtual bool add_clause(Clause clause) = 0;
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }

  // Solves under the given assumptions. kUndef means a budget/deadline was
  // hit. The model (for kTrue) is read with value_of/model().
  virtual LBool solve(std::span<const Lit> assumptions = {}) = 0;

  // Model access; only valid after solve() returned kTrue.
  virtual bool value_of(Var v) const = 0;
  virtual std::vector<bool> model() const = 0;

  // Phase hint: the polarity the next decision on `v` tries first.
  virtual void set_phase(Var v, bool phase) = 0;

  // Budgets: 0 / nullopt disables.
  virtual void set_conflict_budget(std::uint64_t max_conflicts) = 0;
  virtual void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> t) = 0;

  // Cooperative cancellation from other threads: both flags are polled at
  // the same boundaries as the deadline and never written by the solver.
  // Two slots so an attack-level interrupt (the caller's cancel token) and
  // an engine-level one (a portfolio race's winner signal) coexist without
  // a forwarding thread. nullptr disables a slot.
  virtual void set_interrupts(const std::atomic<bool>* primary,
                              const std::atomic<bool>* secondary) = 0;
  void set_interrupt(const std::atomic<bool>* flag) {
    set_interrupts(flag, nullptr);
  }

  // True iff the most recent solve() returned kUndef because a conflict
  // budget, deadline, interrupt or memory budget cut the search short.
  virtual bool last_solve_interrupted() const = 0;

  // Which budget cut the most recent solve() short (kNone when it ran to a
  // decisive answer). Cleared at the start of every solve().
  virtual StopReason last_stop_reason() const = 0;

  virtual const SolverStats& stats() const = 0;
  virtual CounterSnapshot counters() const = 0;

  // Problem (non-learnt) clause count — the numerator of the paper's
  // clause/variable hardness ratio.
  virtual std::size_t num_clauses() const = 0;
  virtual std::size_t num_learnts() const = 0;

  // Bytes currently held by the solver's own data structures.
  virtual std::size_t memory_bytes() const = 0;
};

}  // namespace fl::sat
