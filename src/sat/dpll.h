// Classic DPLL solver (Algorithm 1 of the paper).
//
// Deliberately *not* CDCL: it implements exactly the unit-propagation /
// pure-literal / branching recursion the paper analyzes, and counts the
// recursive calls so Fig. 1 (hardness peak at clause/var ratio ~4.3) can be
// regenerated. The recursion itself runs on an explicit frame stack —
// phase-transition instances reach depths that overflow the machine stack —
// but the accounting (recursive_calls, node budget) is exactly that of the
// textbook recursive procedure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/types.h"

namespace fl::sat {

struct DpllResult {
  bool satisfiable = false;
  bool completed = true;        // false if the call budget was exhausted
  std::uint64_t recursive_calls = 0;
  std::uint64_t unit_propagations = 0;
  std::uint64_t purifications = 0;
  std::uint64_t branches = 0;
  std::vector<bool> model;      // valid when satisfiable && completed
};

class Dpll {
 public:
  // max_calls == 0 disables the budget.
  explicit Dpll(std::uint64_t max_calls = 0) : max_calls_(max_calls) {}

  DpllResult solve(const Cnf& cnf);

 private:
  enum class Outcome { kSat, kUnsat, kAborted };
  // The recursion, run on an explicit frame stack (see dpll.cpp).
  Outcome search();
  bool assign(Var v, bool value);  // false on immediate empty clause
  void unassign_to(std::size_t trail_mark);
  std::optional<Lit> find_unit() const;
  std::optional<Lit> find_pure() const;
  Var pick_branch_var() const;

  // Formula state: per-clause satisfied flag + unassigned-literal count,
  // per-literal occurrence lists. Assignments are trailed for backtracking.
  struct ClauseState {
    std::uint32_t unassigned = 0;
    std::int32_t satisfied_by = -1;  // trail index that satisfied it, -1 none
  };
  const Cnf* cnf_ = nullptr;
  std::vector<ClauseState> clause_state_;
  std::vector<std::vector<std::uint32_t>> occurs_;  // by Lit::index()
  std::vector<LBool> assign_;
  std::vector<Lit> trail_;
  std::uint64_t max_calls_ = 0;
  DpllResult result_;
};

}  // namespace fl::sat
