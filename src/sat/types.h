// Core SAT types: variables, literals, ternary values.
#pragma once

#include <cstdint>
#include <vector>

namespace fl::sat {

using Var = std::int32_t;  // 0-based
inline constexpr Var kNullVar = -1;

// Literal encoded as 2*var + sign (sign 1 = negated). Matches MiniSat.
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var v, bool negated) : x_(2 * v + (negated ? 1 : 0)) {}

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool negated() const { return (x_ & 1) != 0; }
  constexpr Lit operator~() const { return from_index(x_ ^ 1); }
  constexpr bool operator==(const Lit&) const = default;
  constexpr bool operator<(const Lit& o) const { return x_ < o.x_; }

  // Dense index for watch lists etc.
  constexpr std::int32_t index() const { return x_; }
  static constexpr Lit from_index(std::int32_t i) {
    Lit l;
    l.x_ = i;
    return l;
  }

 private:
  std::int32_t x_ = -2;
};

inline constexpr Lit kUndefLit{};

constexpr Lit pos(Var v) { return Lit(v, false); }
constexpr Lit neg(Var v) { return Lit(v, true); }

enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

constexpr LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
constexpr LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return lbool_from((v == LBool::kTrue) != flip);
}

using Clause = std::vector<Lit>;

// A CNF formula in portable form (used by DIMACS IO, the DPLL solver and the
// clause/variable-ratio measurements of Fig. 7).
struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;

  Var new_var() { return num_vars++; }
  void add(Clause c) { clauses.push_back(std::move(c)); }
  double clause_to_var_ratio() const {
    return num_vars == 0 ? 0.0
                         : static_cast<double>(clauses.size()) / num_vars;
  }
};

}  // namespace fl::sat
