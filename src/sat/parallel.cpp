#include "sat/parallel.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "runtime/thread_pool.h"

namespace fl::sat {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Order-independent clause identity for the pool's duplicate filter: hash
// over the sorted literal indices (learnt clauses are duplicate-free, so
// sorting is enough for a canonical form).
std::uint64_t clause_hash(std::span<const Lit> lits) {
  std::vector<std::int32_t> idx;
  idx.reserve(lits.size());
  for (const Lit l : lits) idx.push_back(l.index());
  std::sort(idx.begin(), idx.end());
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a over the index words
  for (const std::int32_t i : idx) {
    h ^= static_cast<std::uint32_t>(i);
    h *= 0x100000001B3ull;
  }
  return h;
}

// Auto cube depth: enough cubes that every worker keeps a backlog (load
// balancing against heavy-tailed cube runtimes), capped so the number of
// incremental solves stays bounded.
int auto_cube_depth(int num_workers) {
  int depth = 2;
  while ((1 << depth) < 4 * num_workers && depth < 8) ++depth;
  return depth;
}

}  // namespace

const char* to_string(ParMode mode) {
  switch (mode) {
    case ParMode::kRace: return "race";
    case ParMode::kShare: return "share";
    case ParMode::kCubes: return "cubes";
  }
  return "?";
}

std::optional<ParMode> parse_par_mode(std::string_view name) {
  if (name == "race") return ParMode::kRace;
  if (name == "share") return ParMode::kShare;
  if (name == "cubes") return ParMode::kCubes;
  return std::nullopt;
}

SolverConfig diversified_config(int k, SolverConfig base) {
  if (k <= 0) return base;
  // Diversity along the two axes CDCL portfolios classically race: VSIDS
  // agility (decay) and restart cadence.
  static constexpr struct {
    double var_decay;
    double clause_decay;
    int restart_unit;
  } kTable[] = {
      {0.80, 0.999, 32},    // agile: fast decay, rapid restarts
      {0.99, 0.995, 512},   // sluggish: long-horizon activity, rare restarts
      {0.90, 0.9995, 64},   // moderately agile
      {0.95, 0.999, 1024},  // default decay, near-monolithic runs
      {0.85, 0.99, 256},
  };
  constexpr int kTableSize = static_cast<int>(std::size(kTable));
  if (k <= kTableSize) {
    const auto& c = kTable[k - 1];
    base.var_decay = c.var_decay;
    base.clause_decay = c.clause_decay;
    base.restart_unit = c.restart_unit;
    return base;
  }
  // Beyond the table: deterministic jitter, so arbitrarily wide portfolios
  // never run two identical schedules (the old table wrapped modulo its
  // size, making --portfolio 8 duplicate configs 0 and 1).
  const std::uint64_t h = splitmix64(static_cast<std::uint64_t>(k));
  base.var_decay =
      0.80 + 0.19 * (static_cast<double>(h & 0xFFFFu) / 65535.0);
  static constexpr double kClauseDecays[] = {0.99, 0.995, 0.999, 0.9995};
  base.clause_decay = kClauseDecays[(h >> 16) & 3u];
  base.restart_unit = 32 << ((h >> 18) % 6);  // 32 .. 1024
  return base;
}

std::vector<std::vector<Lit>> build_cubes(std::span<const Var> vars) {
  assert(vars.size() <= 20);
  const std::size_t n = vars.size();
  std::vector<std::vector<Lit>> cubes(std::size_t{1} << n);
  for (std::size_t mask = 0; mask < cubes.size(); ++mask) {
    cubes[mask].reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      cubes[mask].push_back(Lit(vars[j], ((mask >> j) & 1u) == 0));
    }
  }
  return cubes;
}

// ---------------------------------------------------------------- pool ----

ClausePool::ClausePool(int num_workers, std::size_t shard_capacity)
    : shard_capacity_(shard_capacity) {
  const std::size_t n = static_cast<std::size_t>(std::max(1, num_workers));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  cursors_.assign(n, std::vector<std::size_t>(n, 0));
}

bool ClausePool::publish(int producer, std::span<const Lit> lits,
                         std::uint32_t lbd) {
  const std::uint64_t h = clause_hash(lits);
  {
    const std::lock_guard<std::mutex> lock(dedup_mu_);
    if (!seen_.insert(h).second) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  Shard& shard = *shards_[static_cast<std::size_t>(producer)];
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= shard_capacity_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Entry e;
  e.offset = static_cast<std::uint32_t>(shard.lits.size());
  e.size = static_cast<std::uint32_t>(lits.size());
  e.lbd = lbd;
  shard.lits.insert(shard.lits.end(), lits.begin(), lits.end());
  shard.entries.push_back(e);
  published_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t ClausePool::consume(
    int consumer, std::size_t budget,
    const std::function<void(std::span<const Lit>, std::uint32_t)>& fn) {
  std::size_t delivered = 0;
  std::vector<Lit> lits;      // copied out so fn runs without the shard lock
  std::vector<Entry> batch;
  std::vector<std::size_t>& cursors =
      cursors_[static_cast<std::size_t>(consumer)];
  const std::size_t n = shards_.size();
  for (std::size_t step = 1; step < n && delivered < budget; ++step) {
    // Start one past the consumer and wrap: skips its own shard and avoids
    // every consumer draining shard 0 first.
    const std::size_t s = (static_cast<std::size_t>(consumer) + step) % n;
    Shard& shard = *shards_[s];
    batch.clear();
    lits.clear();
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      std::size_t& cur = cursors[s];
      while (cur < shard.entries.size() && delivered + batch.size() < budget) {
        const Entry& e = shard.entries[cur++];
        Entry copy = e;
        copy.offset = static_cast<std::uint32_t>(lits.size());
        lits.insert(lits.end(), shard.lits.begin() + e.offset,
                    shard.lits.begin() + e.offset + e.size);
        batch.push_back(copy);
      }
    }
    for (const Entry& e : batch) {
      fn(std::span<const Lit>(lits.data() + e.offset, e.size), e.lbd);
    }
    delivered += batch.size();
  }
  consumed_.fetch_add(delivered, std::memory_order_relaxed);
  return delivered;
}

ClausePool::Stats ClausePool::stats() const {
  Stats s;
  s.published = published_.load(std::memory_order_relaxed);
  s.duplicates = duplicates_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::pair<Clause, std::uint32_t>> ClausePool::snapshot() const {
  std::vector<std::pair<Clause, std::uint32_t>> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->entries) {
      out.emplace_back(Clause(shard->lits.begin() + e.offset,
                              shard->lits.begin() + e.offset + e.size),
                       e.lbd);
    }
  }
  return out;
}

// -------------------------------------------------------------- solver ----

ParallelSolver::ParallelSolver(ParallelConfig config)
    : config_(std::move(config)) {
  config_.num_workers = std::max(1, config_.num_workers);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    const SolverConfig wc = config_.diversify
                                ? diversified_config(i, config_.base)
                                : config_.base;
    workers_.push_back(std::make_unique<Solver>(wc));
  }
  if (config_.num_workers > 1) {
    pool_ = std::make_unique<ClausePool>(config_.num_workers,
                                         config_.shard_capacity);
    threads_ = std::make_unique<runtime::ThreadPool>(config_.num_workers);
    for (int i = 0; i < config_.num_workers; ++i) {
      Solver& w = *workers_[static_cast<std::size_t>(i)];
      w.set_export_hook([this, i](std::span<const Lit> lits,
                                  std::uint32_t lbd) {
        pool_->publish(i, lits, lbd);
      });
      w.set_import_hook([this, i](Solver& s) {
        pool_->consume(i, config_.import_budget,
                       [&s](std::span<const Lit> lits, std::uint32_t lbd) {
                         s.import_clause(lits, lbd);
                       });
      });
    }
  }
}

ParallelSolver::~ParallelSolver() = default;

Var ParallelSolver::new_var() {
  const Var v = workers_[0]->new_var();
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    const Var vi = workers_[i]->new_var();
    assert(vi == v);
    (void)vi;
    if (config_.diversify) {
      // Phase jitter: workers start their first descent into different
      // corners of the assignment space (decisions otherwise cluster on the
      // all-false default and the workers shadow each other).
      const std::uint64_t h =
          splitmix64((static_cast<std::uint64_t>(i) << 32) ^
                     static_cast<std::uint64_t>(v));
      workers_[i]->set_phase(v, (h & 1u) != 0);
    }
  }
  occurrences_.push_back(0);
  return v;
}

int ParallelSolver::num_vars() const { return workers_[0]->num_vars(); }

bool ParallelSolver::add_clause(Clause clause) {
  for (const Lit l : clause) {
    occurrences_[static_cast<std::size_t>(l.var())] += 1;
  }
  // Workers may disagree on the return value (each filters against its own
  // root-level facts), but the formulas stay equivalent; report false if
  // any worker proved UNSAT.
  bool ok = true;
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    ok = workers_[i]->add_clause(clause) && ok;
  }
  ok = workers_[0]->add_clause(std::move(clause)) && ok;
  return ok;
}

bool ParallelSolver::value_of(Var v) const {
  return workers_[static_cast<std::size_t>(model_source_)]->value_of(v);
}

std::vector<bool> ParallelSolver::model() const {
  return workers_[static_cast<std::size_t>(model_source_)]->model();
}

void ParallelSolver::set_phase(Var v, bool phase) {
  for (auto& w : workers_) w->set_phase(v, phase);
}

void ParallelSolver::set_conflict_budget(std::uint64_t max_conflicts) {
  conflict_budget_ = max_conflicts;
}

void ParallelSolver::set_deadline(
    std::optional<std::chrono::steady_clock::time_point> t) {
  deadline_ = t;
}

void ParallelSolver::set_interrupts(const std::atomic<bool>* primary,
                                    const std::atomic<bool>* secondary) {
  interrupt_primary_ = primary;
  interrupt_secondary_ = secondary;
}

bool ParallelSolver::last_solve_interrupted() const {
  return last_stop_ != StopReason::kNone;
}

StopReason ParallelSolver::last_stop_reason() const { return last_stop_; }

const SolverStats& ParallelSolver::stats() const {
  agg_stats_ = SolverStats{};
  for (const auto& w : workers_) aggregate_stats(agg_stats_, w->stats());
  return agg_stats_;
}

CounterSnapshot ParallelSolver::counters() const {
  CounterSnapshot total;
  for (const auto& w : workers_) {
    const CounterSnapshot c = w->counters();
    total.decisions += c.decisions;
    total.propagations += c.propagations;
    total.conflicts += c.conflicts;
  }
  return total;
}

std::size_t ParallelSolver::num_clauses() const {
  return workers_[0]->num_clauses();
}

std::size_t ParallelSolver::num_learnts() const {
  return workers_[static_cast<std::size_t>(model_source_)]->num_learnts();
}

std::size_t ParallelSolver::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->memory_bytes();
  return total;
}

void ParallelSolver::set_split_candidates(std::vector<Var> candidates) {
  split_candidates_ = std::move(candidates);
}

bool ParallelSolver::external_interrupted() const {
  return (interrupt_primary_ != nullptr &&
          interrupt_primary_->load(std::memory_order_relaxed)) ||
         (interrupt_secondary_ != nullptr &&
          interrupt_secondary_->load(std::memory_order_relaxed));
}

std::vector<Var> ParallelSolver::pick_split_vars() const {
  const Solver& scorer = *workers_[0];
  // VSIDS activity once worker 0 has search history (later DIP iterations);
  // static occurrence counts before the first conflict.
  const bool use_activity = scorer.stats().conflicts > 0;
  std::vector<Var> vars;
  vars.reserve(split_candidates_.size());
  for (const Var v : split_candidates_) {
    if (v >= 0 && v < scorer.num_vars()) vars.push_back(v);
  }
  std::stable_sort(vars.begin(), vars.end(), [&](Var a, Var b) {
    const double sa = use_activity
                          ? scorer.activity_of(a)
                          : occurrences_[static_cast<std::size_t>(a)];
    const double sb = use_activity
                          ? scorer.activity_of(b)
                          : occurrences_[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  int depth = config_.cube_depth > 0 ? config_.cube_depth
                                     : auto_cube_depth(num_workers());
  depth = std::min<int>(depth, 10);
  if (static_cast<std::size_t>(depth) < vars.size()) {
    vars.resize(static_cast<std::size_t>(depth));
  }
  return vars;
}

void ParallelSolver::record_decisive(int i, LBool result) {
  int expected = -1;
  if (winner_.compare_exchange_strong(expected, i,
                                      std::memory_order_acq_rel)) {
    decisive_result_ = result;
    stop_.store(true, std::memory_order_release);
  }
}

void ParallelSolver::worker_run_share(int i,
                                      const std::vector<Lit>& assumptions) {
  Solver& w = *workers_[static_cast<std::size_t>(i)];
  const LBool r = w.solve(assumptions);
  if (r != LBool::kUndef) record_decisive(i, r);
}

void ParallelSolver::worker_run_cubes(int i,
                                      const std::vector<Lit>& assumptions) {
  Solver& w = *workers_[static_cast<std::size_t>(i)];
  std::vector<Lit> asmps = assumptions;
  const std::size_t base_size = asmps.size();
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t c = cube_next_.fetch_add(1, std::memory_order_relaxed);
    if (c >= cubes_.size()) return;
    asmps.resize(base_size);
    asmps.insert(asmps.end(), cubes_[c].begin(), cubes_[c].end());
    const LBool r = w.solve(asmps);
    if (r == LBool::kTrue) {
      record_decisive(i, LBool::kTrue);
      return;
    }
    if (r == LBool::kFalse) {
      cubes_unsat_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return;  // kUndef: deadline / interrupt / budget — give up this worker
  }
}

LBool ParallelSolver::solve_inline(std::span<const Lit> assumptions) {
  Solver& w = *workers_[0];
  w.set_conflict_budget(conflict_budget_);
  w.set_deadline(deadline_);
  w.set_interrupt_chain(interrupt_primary_, interrupt_secondary_, nullptr);
  const LBool r = w.solve(assumptions);
  model_source_ = 0;
  last_stop_ = w.last_stop_reason();
  pstats_.inline_solves += 1;
  pstats_.last_winner = r == LBool::kUndef ? -1 : 0;
  return r;
}

LBool ParallelSolver::solve(std::span<const Lit> assumptions) {
  last_stop_ = StopReason::kNone;
  if (workers_.size() == 1) return solve_inline(assumptions);

  if (config_.inline_budget > 0) {
    // Adaptive fan-out: probe inline first, escalate only the hard solves.
    // If the caller's own conflict budget is at least as tight as the
    // probe's, the probe *is* the caller's solve — a trip then is a real
    // kConflictBudget answer, not a cue to fan out.
    const bool caller_tighter = conflict_budget_ != 0 &&
                                conflict_budget_ <= config_.inline_budget;
    Solver& probe = *workers_[0];
    probe.set_conflict_budget(caller_tighter ? conflict_budget_
                                             : config_.inline_budget);
    probe.set_deadline(deadline_);
    probe.set_interrupt_chain(interrupt_primary_, interrupt_secondary_,
                              nullptr);
    const LBool r = probe.solve(assumptions);
    if (r != LBool::kUndef) {
      model_source_ = 0;
      pstats_.inline_solves += 1;
      pstats_.last_winner = 0;
      return r;
    }
    const StopReason reason = probe.last_stop_reason();
    if (reason != StopReason::kConflictBudget || caller_tighter) {
      // Deadline / interrupt / memory / the caller's own conflict budget:
      // fanning out would blow the same budget K more times.
      last_stop_ = reason;
      pstats_.inline_solves += 1;
      pstats_.last_winner = -1;
      return LBool::kUndef;
    }
    pstats_.probe_escalations += 1;
    // Worker 0 keeps the probe's learnt clauses and its VSIDS activity is
    // now focused on this solve's hard variables — exactly what
    // pick_split_vars() ranks by.
  }

  stop_.store(false, std::memory_order_relaxed);
  winner_.store(-1, std::memory_order_relaxed);
  decisive_result_ = LBool::kUndef;
  cube_next_.store(0, std::memory_order_relaxed);
  cubes_unsat_.store(0, std::memory_order_relaxed);
  cubes_.clear();

  const bool cube_mode =
      config_.mode == ParMode::kCubes && !split_candidates_.empty();
  if (cube_mode) {
    cubes_ = build_cubes(pick_split_vars());
    pstats_.cubes_dispatched += cubes_.size();
    pstats_.last_num_cubes = cubes_.size();
  }

  const std::vector<Lit> base(assumptions.begin(), assumptions.end());
  for (auto& w : workers_) {
    // Every worker gets the full conflict budget (cubes are disjoint
    // subproblems, racers are redundant ones); the deadline and interrupt
    // flags are shared wall-clock state either way.
    w->set_conflict_budget(conflict_budget_);
    w->set_deadline(deadline_);
    w->set_interrupt_chain(interrupt_primary_, interrupt_secondary_, &stop_);
  }
  pstats_.parallel_solves += 1;
  for (int i = 0; i < num_workers(); ++i) {
    if (cube_mode) {
      threads_->submit([this, i, &base] { worker_run_cubes(i, base); });
    } else {
      threads_->submit([this, i, &base] { worker_run_share(i, base); });
    }
  }
  threads_->wait_idle();

  pstats_.cubes_unsat += cubes_unsat_.load(std::memory_order_relaxed);
  const int w = winner_.load(std::memory_order_acquire);
  if (w >= 0) {
    model_source_ = w;
    pstats_.last_winner = w;
    last_stop_ = StopReason::kNone;
    return decisive_result_;
  }
  pstats_.last_winner = -1;
  if (cube_mode &&
      cubes_unsat_.load(std::memory_order_relaxed) == cubes_.size()) {
    // The cubes partition the space over the split variables: all-UNSAT
    // means no assignment anywhere satisfies the formula + assumptions.
    last_stop_ = StopReason::kNone;
    return LBool::kFalse;
  }
  // Nobody was decisive: every worker stopped on a budget. Surface a real
  // stop reason — a worker halted by our own stop_ flag reports kInterrupt,
  // but with no winner stop_ was never raised, so any kInterrupt left here
  // is a genuine external interrupt (and external_interrupted() confirms
  // it for the cube-queue-exhausted corner where a worker ran out of cubes
  // with reason kNone).
  last_stop_ = StopReason::kDeadline;
  for (const auto& worker : workers_) {
    const StopReason r = worker->last_stop_reason();
    if (r == StopReason::kNone) continue;
    if (r == StopReason::kInterrupt && !external_interrupted()) continue;
    last_stop_ = r;
    break;
  }
  if (external_interrupted()) last_stop_ = StopReason::kInterrupt;
  return LBool::kUndef;
}

}  // namespace fl::sat
