#include "sat/dimacs.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fl::sat {

Cnf read_dimacs(std::istream& in) {
  Cnf cnf;
  std::string line;
  Clause current;
  int declared_vars = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, fmt;
      int nv = 0, nc = 0;
      header >> p >> fmt >> nv >> nc;
      if (fmt != "cnf") throw std::runtime_error("dimacs: expected 'p cnf'");
      declared_vars = nv;
      continue;
    }
    std::istringstream body(line);
    long long v = 0;
    while (body >> v) {
      if (v == 0) {
        cnf.add(current);
        current.clear();
      } else {
        const Var var = static_cast<Var>(std::llabs(v)) - 1;
        cnf.num_vars = std::max(cnf.num_vars, var + 1);
        current.push_back(Lit(var, v < 0));
      }
    }
  }
  if (!current.empty()) cnf.add(current);  // tolerate missing trailing 0
  cnf.num_vars = std::max(cnf.num_vars, declared_vars);
  return cnf;
}

Cnf read_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs(in);
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const Clause& c : cnf.clauses) {
    for (const Lit l : c) {
      out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

std::string write_dimacs_string(const Cnf& cnf) {
  std::ostringstream out;
  write_dimacs(cnf, out);
  return out.str();
}

}  // namespace fl::sat
