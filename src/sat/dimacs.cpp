#include "sat/dimacs.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fl::sat {

namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("dimacs line " + std::to_string(line_no) + ": " +
                           what);
}

// Parses a whole token as a signed integer; returns false on any trailing
// garbage (istream >> would happily read "12abc" as 12).
bool parse_literal(const std::string& tok, long long* out) {
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

Cnf read_dimacs(std::istream& in, bool lenient) {
  Cnf cnf;
  std::string line;
  Clause current;
  long long declared_vars = -1;  // -1 = no header seen (headerless accepted)
  int line_no = 0;
  bool done = false;
  while (!done && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, fmt;
      long long nv = -1, nc = -1;
      header >> p >> fmt >> nv >> nc;
      if (fmt != "cnf") fail(line_no, "expected 'p cnf'");
      if (!lenient) {
        if (declared_vars >= 0) fail(line_no, "duplicate 'p cnf' header");
        if (header.fail() || nv < 0 || nc < 0) {
          fail(line_no, "malformed header counts (need 'p cnf <vars> <clauses>' "
                        "with non-negative counts)");
        }
        if (std::string rest; header >> rest) {
          fail(line_no, "trailing junk after header: '" + rest + "'");
        }
        if (nv == 0 && nc > 0) {
          fail(line_no, "header declares clauses over zero variables");
        }
      }
      declared_vars = std::max<long long>(nv, 0);
      continue;
    }
    // SATLIB end-of-formula marker: a '%' line; the rest of the stream
    // (conventionally a lone "0" line) is padding.
    if (line[0] == '%') break;

    std::istringstream body(line);
    std::string tok;
    while (body >> tok) {
      if (tok == "%") {
        done = true;
        break;
      }
      long long v = 0;
      if (!parse_literal(tok, &v)) {
        if (lenient) break;  // skip the rest of the unparsable line
        fail(line_no, "not a literal: '" + tok + "'");
      }
      if (v == 0) {
        cnf.add(current);
        current.clear();
        continue;
      }
      const long long mag = v < 0 ? -v : v;
      if (mag > std::numeric_limits<Var>::max()) {
        fail(line_no, "literal magnitude overflows: '" + tok + "'");
      }
      if (!lenient && declared_vars >= 0 && mag > declared_vars) {
        fail(line_no, "literal " + tok + " exceeds the declared " +
                          std::to_string(declared_vars) + " variables");
      }
      const Var var = static_cast<Var>(mag) - 1;
      cnf.num_vars = std::max(cnf.num_vars, var + 1);
      current.push_back(Lit(var, v < 0));
    }
  }
  if (!current.empty()) cnf.add(current);  // tolerate missing trailing 0
  if (declared_vars > 0) {
    cnf.num_vars =
        std::max(cnf.num_vars, static_cast<int>(declared_vars));
  }
  return cnf;
}

Cnf read_dimacs_string(const std::string& text, bool lenient) {
  std::istringstream in(text);
  return read_dimacs(in, lenient);
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const Clause& c : cnf.clauses) {
    for (const Lit l : c) {
      out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

std::string write_dimacs_string(const Cnf& cnf) {
  std::ostringstream out;
  write_dimacs(cnf, out);
  return out.str();
}

}  // namespace fl::sat
