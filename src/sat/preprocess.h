// SatELite-style CNF preprocessing behind the SolverIface boundary.
//
// PreprocessSolver stages clauses in its own database, simplifies them once
// (root-level unit propagation to fixpoint, backward subsumption,
// self-subsuming resolution, bounded variable elimination), and commits the
// survivors to an inner solver on the first solve(). The attack engine wraps
// the base double-key miter in one of these so the CNF the CDCL search
// actually carries is the simplified one, while the DIP loop keeps adding
// per-iteration constraints incrementally afterwards.
//
// Invariants the wrapper maintains:
//  - No variable renumbering: the inner solver allocates every staged
//    variable at flush time, so external ids and inner ids coincide.
//    Anything holding raw Var values across the boundary (parallel-solver
//    split candidates, assumption literals) keeps working.
//  - Eliminated variables are pinned false in the inner solver with root
//    unit clauses (which the CDCL solver does not store or count as problem
//    clauses), so inner models assign them deterministically; the true
//    values are reconstructed from the recorded occurrence clauses in
//    reverse elimination order, exactly as SatELite extends models.
//  - Frozen variables (primary inputs, key copies, activation literals —
//    anything the caller will mention in later clauses or assumptions) are
//    never eliminated. Adding a post-flush clause or assumption over an
//    eliminated variable throws std::logic_error: it would silently change
//    the formula's meaning.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sat/solver_iface.h"
#include "sat/types.h"

namespace fl::sat {

struct PreprocessConfig {
  // Variable elimination accepts a variable iff the number of non-tautological
  // resolvents is at most (#positive + #negative occurrences) + grow.
  int grow = 0;
  // Reject an elimination outright if any resolvent would exceed this length.
  std::size_t max_resolvent_len = 24;
  // Skip subsumption/elimination work on literals or variables whose
  // occurrence lists are larger than this (quadratic-blowup guard).
  std::size_t max_occurrences = 400;
  // Global work budget in literal-visit steps; preprocessing stops cleanly
  // (but soundly) when exhausted.
  std::uint64_t step_budget = 40'000'000;
};

struct PreprocessStats {
  bool ran = false;
  bool budget_exhausted = false;
  std::size_t input_vars = 0;
  std::size_t input_clauses = 0;
  std::size_t output_clauses = 0;
  std::size_t fixed_vars = 0;         // root units found by propagation
  std::size_t eliminated_vars = 0;    // removed by bounded variable elim
  std::size_t removed_clauses = 0;    // total deletions (UP + subsume + BVE)
  std::size_t subsumed_clauses = 0;
  std::size_t strengthened_literals = 0;  // self-subsuming resolution
  std::size_t resolvents_added = 0;
  double preprocess_s = 0.0;  // wall-clock, stripped from CI-stable JSON
};

class PreprocessSolver final : public SolverIface {
 public:
  // `inner` must be empty (no variables, no clauses) and outlive this
  // wrapper; throws std::invalid_argument otherwise.
  explicit PreprocessSolver(SolverIface& inner, PreprocessConfig config = {});

  // Marks `v` as untouchable by variable elimination. Must be called before
  // preprocess()/flush(); throws std::logic_error afterwards.
  void freeze(Var v);

  // Runs the simplification passes over the staged clauses. Idempotent;
  // invoked automatically by flush().
  void preprocess();

  // Commits the simplified formula to the inner solver (allocating all
  // staged variables there first). Idempotent; invoked automatically by the
  // first solve(), so clauses added between construction and the first
  // solve — CycSAT's cycle-breaking conditions, attack preconditions — get
  // preprocessed together with the miter.
  void flush();
  bool flushed() const { return flushed_; }

  bool is_eliminated(Var v) const {
    return v >= 0 && static_cast<std::size_t>(v) < eliminated_.size() &&
           eliminated_[v];
  }
  const PreprocessStats& preprocess_stats() const { return stats_; }
  SolverIface& inner() { return inner_; }

  // SolverIface:
  Var new_var() override;
  int num_vars() const override;
  bool add_clause(Clause clause) override;
  LBool solve(std::span<const Lit> assumptions = {}) override;
  bool value_of(Var v) const override;
  std::vector<bool> model() const override;
  void set_phase(Var v, bool phase) override;
  void set_conflict_budget(std::uint64_t max_conflicts) override;
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> t) override;
  void set_interrupts(const std::atomic<bool>* primary,
                      const std::atomic<bool>* secondary) override;
  bool last_solve_interrupted() const override;
  StopReason last_stop_reason() const override;
  const SolverStats& stats() const override;
  CounterSnapshot counters() const override;
  std::size_t num_clauses() const override;
  std::size_t num_learnts() const override;
  std::size_t memory_bytes() const override;

 private:
  struct StagedClause {
    Clause lits;  // sorted, deduplicated
    std::uint64_t sig = 0;
    bool deleted = false;
  };
  struct Elimination {
    Var v = kNullVar;
    // Clauses that contained `v` positively at elimination time; enough to
    // extend a model (v defaults to false; flips to true iff one of these
    // is otherwise unsatisfied).
    std::vector<Clause> pos_clauses;
  };

  enum class Norm { kOk, kTautology, kEmpty };
  static Norm normalize(Clause& clause);
  static std::uint64_t signature(const Clause& clause);

  bool budget_ok() const { return steps_ < config_.step_budget; }
  void check_no_eliminated(const Clause& clause) const;
  void push_clause(Clause clause);
  void del_clause(std::size_t idx);
  void enqueue(Lit l);
  void propagate();
  void subsume_all();
  void backward_subsume(std::size_t ci);
  void strengthen(std::size_t di, Lit l);
  void eliminate_vars();
  bool try_eliminate(Var v);
  bool resolve(const Clause& pos, const Clause& neg, Var pivot,
               Clause& out) const;
  void extend_model();
  void release_staging();

  SolverIface& inner_;
  PreprocessConfig config_;
  PreprocessStats stats_;

  Var next_var_ = 0;
  bool preprocessed_ = false;
  bool flushed_ = false;
  bool contradiction_ = false;

  std::vector<StagedClause> db_;
  std::size_t live_clauses_ = 0;
  std::vector<std::vector<std::uint32_t>> occ_;  // per Lit::index(), lazy
  std::vector<LBool> assigns_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  std::vector<Elimination> elim_stack_;
  std::vector<std::pair<Var, bool>> pending_phases_;
  mutable std::uint64_t steps_ = 0;

  bool model_valid_ = false;
  std::vector<bool> model_;
};

}  // namespace fl::sat
