#include "sat/solver.h"

#include <algorithm>
#include <cassert>

namespace fl::sat {

struct Solver::ClauseData {
  float activity = 0.0f;
  bool learnt = false;
  std::vector<Lit> lits;
};

struct Solver::Watcher {
  ClauseData* clause;
  Lit blocker;
};

namespace {

// Luby restart sequence (unit = 128 conflicts).
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  double result = 1.0;
  for (int i = 0; i < seq; ++i) result *= y;
  return result;
}

// How many decisions may pass between wall-clock reads. Conflicts always
// force a read (analysis already paid far more than a clock call), so this
// only bounds overshoot on conflict-free decision streaks — 16 fast
// decisions are microseconds.
constexpr std::uint64_t kDeadlineCheckStride = 16;

}  // namespace

Solver::Solver(SolverConfig config) : config_(config) {}
Solver::~Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::kUndef);
  saved_phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(nullptr);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

LBool Solver::value(Lit l) const { return assign_[l.var()] ^ l.negated(); }

bool Solver::value_of(Var v) const { return assign_[v] == LBool::kTrue; }

std::vector<bool> Solver::model() const {
  std::vector<bool> m(assign_.size());
  for (std::size_t v = 0; v < assign_.size(); ++v) {
    m[v] = assign_[v] == LBool::kTrue;
  }
  return m;
}

// ---------------------------------------------------------------- heap ----

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child], heap_[child + 1])) ++child;
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_up(heap_pos_[v]);
}

void Solver::decay_var_activity() { var_inc_ /= config_.var_decay; }

void Solver::bump_clause(ClauseData& c) {
  c.activity += static_cast<float>(cla_inc_);
  if (c.activity > 1e20f) {
    for (auto& cl : learnt_clauses_) cl->activity *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

// ------------------------------------------------------------- clauses ----

void Solver::attach(ClauseData* c) {
  assert(c->lits.size() >= 2);
  watches_[(~c->lits[0]).index()].push_back(Watcher{c, c->lits[1]});
  watches_[(~c->lits[1]).index()].push_back(Watcher{c, c->lits[0]});
}

void Solver::detach(ClauseData* c) {
  for (const Lit w : {c->lits[0], c->lits[1]}) {
    auto& list = watches_[(~w).index()];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].clause == c) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(Clause clause) {
  if (!ok_) return false;
  if (!trail_lim_.empty()) backtrack_to(0);

  std::sort(clause.begin(), clause.end());
  Lit prev = kUndefLit;
  std::size_t out = 0;
  for (const Lit l : clause) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) != LBool::kFalse && l != prev) {
      prev = l;
      clause[out++] = l;
    }
  }
  clause.resize(out);

  if (clause.empty()) {
    ok_ = false;
    return false;
  }
  if (clause.size() == 1) {
    if (!enqueue(clause[0], nullptr)) {
      ok_ = false;
      return false;
    }
    if (propagate() != nullptr) {
      ok_ = false;
      return false;
    }
    return true;
  }
  auto data = std::make_unique<ClauseData>();
  data->lits = std::move(clause);
  attach(data.get());
  problem_clauses_.push_back(std::move(data));
  ++num_problem_clauses_;
  return true;
}

// --------------------------------------------------------- propagation ----

bool Solver::enqueue(Lit l, ClauseData* reason) {
  const LBool v = value(l);
  if (v != LBool::kUndef) return v == LBool::kTrue;
  assign_[l.var()] = lbool_from(!l.negated());
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  reason_[l.var()] = reason;
  saved_phase_[l.var()] = l.negated() ? 0 : 1;
  trail_.push_back(l);
  return true;
}

Solver::ClauseData* Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      ClauseData& c = *w.clause;
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = Watcher{w.clause, first};
        continue;
      }
      bool found_watch = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).index()].push_back(Watcher{w.clause, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;
      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.clause, first};
      if (value(first) == LBool::kFalse) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    ws.resize(j);
  }
  return nullptr;
}

// ------------------------------------------------------------ analysis ----

void Solver::analyze(ClauseData* conflict, Clause& learnt,
                     int& backtrack_level) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int path_count = 0;
  Lit p = kUndefLit;
  std::size_t idx = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  ClauseData* c = conflict;
  do {
    assert(c != nullptr);
    if (c->learnt) bump_clause(*c);
    for (const Lit q : c->lits) {
      if (q == p) continue;
      const Var v = q.var();
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        bump_var(v);
        if (level_[v] >= current_level) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (seen_[trail_[idx - 1].var()] == 0) --idx;
    p = trail_[idx - 1];
    --idx;
    c = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization (local, via reason-implied redundancy).
  analyze_toclear_.assign(learnt.begin() + 1, learnt.end());
  for (const Lit l : learnt) {
    if (l != kUndefLit) seen_[l.var()] = 1;
  }
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt[i].var()] & 31);
  }
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == nullptr ||
        !lit_redundant(learnt[i], abstract_levels)) {
      learnt[out++] = learnt[i];
    }
  }
  learnt.resize(out);
  seen_[learnt[0].var()] = 0;
  for (const Lit l : analyze_toclear_) seen_[l.var()] = 0;

  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
  }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t toclear_base = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseData* c = reason_[q.var()];
    assert(c != nullptr);
    for (const Lit r : c->lits) {
      const Var v = r.var();
      if (v == q.var() || seen_[v] != 0 || level_[v] == 0) continue;
      if (reason_[v] != nullptr &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(r);
        analyze_toclear_.push_back(r);
      } else {
        // Not redundant: undo marks made during this probe.
        for (std::size_t k = toclear_base; k < analyze_toclear_.size(); ++k) {
          seen_[analyze_toclear_[k].var()] = 0;
        }
        analyze_toclear_.resize(toclear_base);
        return false;
      }
    }
  }
  return true;
}

void Solver::backtrack_to(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    assign_[v] = LBool::kUndef;
    reason_[v] = nullptr;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_[0];
    if (assign_[v] == LBool::kUndef) {
      heap_pop();
      return Lit(v, saved_phase_[v] == 0);
    }
    heap_pop();
  }
  return kUndefLit;
}

void Solver::reduce_db() {
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [](const auto& a, const auto& b) {
              if ((a->lits.size() > 2) != (b->lits.size() > 2)) {
                return a->lits.size() > 2;  // long clauses first (victims)
              }
              return a->activity < b->activity;
            });
  auto locked = [&](const ClauseData* c) {
    return reason_[c->lits[0].var()] == c && value(c->lits[0]) == LBool::kTrue;
  };
  const std::size_t target = learnt_clauses_.size() / 2;
  std::vector<std::unique_ptr<ClauseData>> kept;
  kept.reserve(learnt_clauses_.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < learnt_clauses_.size(); ++i) {
    ClauseData* c = learnt_clauses_[i].get();
    if (removed < target && c->lits.size() > 2 && !locked(c)) {
      detach(c);
      ++removed;
    } else {
      kept.push_back(std::move(learnt_clauses_[i]));
    }
  }
  learnt_clauses_ = std::move(kept);
  stats_.removed_clauses += removed;
}

bool Solver::budget_exhausted(bool force_deadline_check) const {
  if (budget_hit_) return true;
  if (interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed)) {
    budget_hit_ = true;
    return true;
  }
  if (conflict_budget_ != 0 &&
      stats_.conflicts - conflicts_at_solve_ >= conflict_budget_) {
    budget_hit_ = true;
    return true;
  }
  if (deadline_) {
    if (force_deadline_check || deadline_check_countdown_ == 0) {
      deadline_check_countdown_ = kDeadlineCheckStride;
      if (std::chrono::steady_clock::now() >= *deadline_) {
        budget_hit_ = true;
        return true;
      }
    } else {
      --deadline_check_countdown_;
    }
  }
  return false;
}

LBool Solver::search() {
  std::uint64_t restart_budget = static_cast<std::uint64_t>(
      luby(2.0, static_cast<int>(stats_.restarts)) * config_.restart_unit);
  std::uint64_t conflicts_this_restart = 0;
  std::size_t max_learnts =
      std::max<std::size_t>(4000, num_problem_clauses_ / 3);

  Clause learnt;
  while (true) {
    ClauseData* conflict = propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return LBool::kFalse;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      backtrack_to(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], nullptr);
      } else {
        auto data = std::make_unique<ClauseData>();
        data->learnt = true;
        data->lits = learnt;
        attach(data.get());
        bump_clause(*data);
        enqueue(learnt[0], data.get());
        learnt_clauses_.push_back(std::move(data));
        ++stats_.learned_clauses;
        stats_.learned_literals += learnt.size();
      }
      decay_var_activity();
      cla_inc_ /= config_.clause_decay;
      // Deadline check per conflict: conflict analysis of a large learnt
      // clause is exactly where a solve used to overshoot its deadline, and
      // a clock read is noise next to the analysis it follows.
      if (budget_exhausted(/*force_deadline_check=*/true)) {
        backtrack_to(0);
        return LBool::kUndef;
      }
    } else {
      if (budget_exhausted()) {
        backtrack_to(0);
        return LBool::kUndef;
      }
      if (conflicts_this_restart >= restart_budget) {
        ++stats_.restarts;
        backtrack_to(0);
        return LBool::kUndef;  // caller loops; keeps restart bookkeeping simple
      }
      if (learnt_clauses_.size() >= max_learnts + trail_.size()) {
        reduce_db();
      }
      Lit next = kUndefLit;
      while (trail_lim_.size() < assumptions_.size()) {
        const Lit a = assumptions_[trail_lim_.size()];
        if (value(a) == LBool::kTrue) {
          trail_lim_.push_back(trail_.size());
        } else if (value(a) == LBool::kFalse) {
          return LBool::kFalse;
        } else {
          next = a;
          break;
        }
      }
      if (next == kUndefLit) {
        next = pick_branch_lit();
        if (next == kUndefLit) return LBool::kTrue;
        ++stats_.decisions;
      }
      trail_lim_.push_back(trail_.size());
      enqueue(next, nullptr);
    }
  }
}

LBool Solver::solve(std::span<const Lit> assumptions) {
  if (!ok_) return LBool::kFalse;
  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_at_solve_ = stats_.conflicts;
  budget_hit_ = false;
  deadline_check_countdown_ = 0;
  backtrack_to(0);
  if (propagate() != nullptr) {
    ok_ = false;
    return LBool::kFalse;
  }
  LBool result = LBool::kUndef;
  while (result == LBool::kUndef) {
    result = search();
    if (result == LBool::kUndef) {
      // Restart (or budget). Distinguish: budget => bail out.
      if (budget_exhausted()) break;
    }
    if (!ok_) {
      result = LBool::kFalse;
      break;
    }
  }
  if (result != LBool::kTrue) backtrack_to(0);
  assumptions_.clear();
  return result;
}

LBool solve_cnf(const Cnf& cnf, std::vector<bool>* model, SolverStats* stats) {
  Solver solver;
  for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
  for (const Clause& c : cnf.clauses) {
    if (!solver.add_clause(c)) {
      if (stats != nullptr) *stats = solver.stats();
      return LBool::kFalse;
    }
  }
  const LBool result = solver.solve();
  if (result == LBool::kTrue && model != nullptr) *model = solver.model();
  if (stats != nullptr) *stats = solver.stats();
  return result;
}

}  // namespace fl::sat
