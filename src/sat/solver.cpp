#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fl::sat {

// Arena clause layout (32-bit words):
//   [0] size << 4 | learnt | core<<1 | condemned<<2 | relocated<<3
//   [1] LBD (learnt) / GC forwarding address (after relocation)
//   [2][3] activity as a double (learnt clauses only)
//   [..] literals, one Lit::index() per word
// Problem clauses use the 2-word header; learnt clauses the 4-word one.
struct Solver::Cls {
  std::uint32_t* p;

  std::uint32_t size() const { return p[0] >> 4; }
  void shrink(std::uint32_t s) { p[0] = (s << 4) | (p[0] & 0xFu); }
  bool learnt() const { return (p[0] & 1u) != 0; }
  bool core() const { return (p[0] & 2u) != 0; }
  void set_core() { p[0] |= 2u; }
  bool condemned() const { return (p[0] & 4u) != 0; }
  void set_condemned() { p[0] |= 4u; }
  std::uint32_t lbd() const { return p[1]; }
  void set_lbd(std::uint32_t l) { p[1] = l; }
  double activity() const {
    double a;
    std::memcpy(&a, p + 2, sizeof(a));
    return a;
  }
  void set_activity(double a) { std::memcpy(p + 2, &a, sizeof(a)); }

  std::uint32_t* raw_lits() { return p + (learnt() ? 4 : 2); }
  Lit lit(std::uint32_t i) const {
    return Lit::from_index(
        static_cast<std::int32_t>(p[(learnt() ? 4 : 2) + i]));
  }
  void set_lit(std::uint32_t i, Lit l) {
    p[(learnt() ? 4 : 2) + i] = static_cast<std::uint32_t>(l.index());
  }
  std::uint32_t words() const { return (learnt() ? 4 : 2) + size(); }
};

namespace {

// Learnt clauses at or below this LBD form the core tier ("glue" clauses in
// Glucose terms): they connect decision levels so tightly that deleting
// them is nearly always a net loss, so reduce_db never touches them.
constexpr std::uint32_t kCoreLbd = 2;

constexpr std::uint32_t kLearntFlag = 1;
constexpr std::uint32_t kRelocatedFlag = 8;

// Luby restart sequence (unit = 128 conflicts).
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  double result = 1.0;
  for (int i = 0; i < seq; ++i) result *= y;
  return result;
}

// How many decisions may pass between wall-clock reads. Conflicts always
// force a read (analysis already paid far more than a clock call), so this
// only bounds overshoot on conflict-free decision streaks.
constexpr std::uint64_t kDeadlineCheckStride = 16;

// How many deadline-grade checkpoints may pass between full memory-usage
// walks (memory_bytes() visits every watch list, so it is priced like a
// small propagation, not like a clock read). Memory grows by at most a few
// clauses per conflict, so a 32-checkpoint-stale reading overshoots the
// budget by kilobytes, not megabytes.
constexpr std::uint32_t kMemoryCheckStride = 32;

}  // namespace

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kConflictBudget: return "conflict-budget";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kInterrupt: return "interrupt";
    case StopReason::kOutOfMemory: return "out-of-memory";
  }
  return "?";
}

void aggregate_stats(SolverStats& into, const SolverStats& from) {
  into.decisions += from.decisions;
  into.propagations += from.propagations;
  into.binary_propagations += from.binary_propagations;
  into.conflicts += from.conflicts;
  into.restarts += from.restarts;
  into.learned_clauses += from.learned_clauses;
  into.learned_literals += from.learned_literals;
  into.learned_binary += from.learned_binary;
  into.lbd_sum += from.lbd_sum;
  into.glue_learned += from.glue_learned;
  into.max_lbd = std::max(into.max_lbd, from.max_lbd);
  into.promoted_clauses += from.promoted_clauses;
  into.removed_clauses += from.removed_clauses;
  into.db_size_after_reduce =
      std::max(into.db_size_after_reduce, from.db_size_after_reduce);
  into.simplify_removed_clauses += from.simplify_removed_clauses;
  into.simplify_removed_literals += from.simplify_removed_literals;
  // Workers hold their databases concurrently, so peaks add.
  into.peak_memory_bytes += from.peak_memory_bytes;
  into.exported_clauses += from.exported_clauses;
  into.imported_clauses += from.imported_clauses;
}

Solver::Solver(SolverConfig config) : config_(config) {
  arena_.push_back(0);  // sentinel: real refs are nonzero, kNullRef = 0
}
Solver::~Solver() = default;

Solver::Cls Solver::cls(ClauseRef r) { return Cls{arena_.data() + r}; }

Solver::ClauseRef Solver::alloc_clause(std::span<const Lit> lits,
                                       bool learnt) {
  const ClauseRef r = static_cast<ClauseRef>(arena_.size());
  const std::uint32_t header = learnt ? 4 : 2;
  arena_.resize(arena_.size() + header + lits.size());
  Cls c{arena_.data() + r};
  c.p[0] = (static_cast<std::uint32_t>(lits.size()) << 4) |
           (learnt ? kLearntFlag : 0);
  c.p[1] = 0;
  if (learnt) c.set_activity(0.0);
  for (std::uint32_t i = 0; i < lits.size(); ++i) c.set_lit(i, lits[i]);
  return r;
}

void Solver::free_clause(ClauseRef r) { wasted_words_ += cls(r).words(); }

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::kUndef);
  saved_phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNullRef);
  activity_.push_back(0.0);
  seen_.push_back(0);
  level_stamp_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

LBool Solver::value(Lit l) const { return assign_[l.var()] ^ l.negated(); }

bool Solver::value_of(Var v) const { return assign_[v] == LBool::kTrue; }

std::vector<bool> Solver::model() const {
  std::vector<bool> m(assign_.size());
  for (std::size_t v = 0; v < assign_.size(); ++v) {
    m[v] = assign_[v] == LBool::kTrue;
  }
  return m;
}

// ---------------------------------------------------------------- heap ----

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child], heap_[child + 1])) ++child;
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_up(heap_pos_[v]);
}

void Solver::decay_var_activity() { var_inc_ /= config_.var_decay; }

void Solver::bump_clause(Cls c) {
  c.set_activity(c.activity() + cla_inc_);
  if (c.activity() > 1e100) {
    for (const ClauseRef r : learnt_clauses_) {
      Cls lc = cls(r);
      lc.set_activity(lc.activity() * 1e-100);
    }
    cla_inc_ *= 1e-100;
  }
}

// ------------------------------------------------------------- clauses ----

void Solver::attach(ClauseRef r) {
  Cls c = cls(r);
  assert(c.size() >= 2);
  const Lit l0 = c.lit(0), l1 = c.lit(1);
  if (c.size() == 2) {
    watches_[(~l0).index()].bins.push_back(BinWatch{l1, r});
    watches_[(~l1).index()].bins.push_back(BinWatch{l0, r});
    return;
  }
  watches_[(~l0).index()].longs.push_back(Watcher{r, l1});
  watches_[(~l1).index()].longs.push_back(Watcher{r, l0});
}

void Solver::detach(ClauseRef r) {
  Cls c = cls(r);
  if (c.size() == 2) {
    for (const Lit w : {c.lit(0), c.lit(1)}) {
      auto& list = watches_[(~w).index()].bins;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].ref == r) {
          list[i] = list.back();
          list.pop_back();
          break;
        }
      }
    }
    return;
  }
  for (const Lit w : {c.lit(0), c.lit(1)}) {
    auto& list = watches_[(~w).index()].longs;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].ref == r) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(Clause clause) {
  if (!ok_) return false;
  if (!trail_lim_.empty()) backtrack_to(0);

  std::sort(clause.begin(), clause.end());
  Lit prev = kUndefLit;
  std::size_t out = 0;
  for (const Lit l : clause) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) != LBool::kFalse && l != prev) {
      prev = l;
      clause[out++] = l;
    }
  }
  clause.resize(out);

  if (clause.empty()) {
    ok_ = false;
    return false;
  }
  if (clause.size() == 1) {
    if (!enqueue(clause[0], kNullRef)) {
      ok_ = false;
      return false;
    }
    if (propagate() != kNullRef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const ClauseRef r = alloc_clause(clause, /*learnt=*/false);
  attach(r);
  problem_clauses_.push_back(r);
  ++num_problem_clauses_;
  return true;
}

bool Solver::import_clause(std::span<const Lit> lits, std::uint32_t lbd) {
  assert(trail_lim_.empty());
  if (!ok_) return false;
  import_scratch_.clear();
  for (const Lit l : lits) {
    assert(l.var() >= 0 && l.var() < num_vars());
    const LBool v = value(l);
    if (v == LBool::kTrue) return true;  // root-satisfied: nothing to learn
    if (v != LBool::kFalse) import_scratch_.push_back(l);
  }
  ++stats_.imported_clauses;
  if (import_scratch_.empty()) {
    ok_ = false;
    return false;
  }
  if (import_scratch_.size() == 1) {
    if (!enqueue(import_scratch_[0], kNullRef) || propagate() != kNullRef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const ClauseRef r =
      alloc_clause(import_scratch_, /*learnt=*/true);
  Cls c = cls(r);
  const std::uint32_t size = static_cast<std::uint32_t>(import_scratch_.size());
  c.set_lbd(std::max<std::uint32_t>(1, std::min(lbd, size)));
  // Binary imports join the kept-forever core tier like local binaries;
  // longer imports stay in the local tier (with their glue-grade LBD they
  // are the last reduce_db victims) so a long import stream cannot grow the
  // database without bound.
  if (size == 2) {
    c.set_core();
  } else {
    ++num_local_learnts_;
  }
  attach(r);
  learnt_clauses_.push_back(r);
  return true;
}

// --------------------------------------------------------- propagation ----

bool Solver::enqueue(Lit l, ClauseRef reason) {
  const LBool v = value(l);
  if (v != LBool::kUndef) return v == LBool::kTrue;
  assign_[l.var()] = lbool_from(!l.negated());
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  reason_[l.var()] = reason;
  saved_phase_[l.var()] = l.negated() ? 0 : 1;
  trail_.push_back(l);
  return true;
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    WatchNode& wn = watches_[p.index()];

    // Binary implications first: a flat (implied literal, reason) list, so
    // the common case reads one assignment byte per entry and never touches
    // clause memory.
    for (const BinWatch& bw : wn.bins) {
      const LBool v = value(bw.other);
      if (v == LBool::kFalse) {
        propagate_head_ = trail_.size();
        return bw.ref;
      }
      if (v == LBool::kUndef) {
        ++stats_.binary_propagations;
        enqueue(bw.other, bw.ref);
      }
    }

    auto& ws = wn.longs;
    std::size_t i = 0, j = 0;
    const Lit false_lit = ~p;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Cls c = cls(w.ref);
      std::uint32_t* lits = c.raw_lits();
      const auto lit_at = [&](std::uint32_t k) {
        return Lit::from_index(static_cast<std::int32_t>(lits[k]));
      };
      if (lit_at(0) == false_lit) std::swap(lits[0], lits[1]);
      assert(lit_at(1) == false_lit);
      ++i;
      const Lit first = lit_at(0);
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = Watcher{w.ref, first};
        continue;
      }
      bool found_watch = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lit_at(k)) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lit_at(1)).index()].longs.push_back(
              Watcher{w.ref, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = Watcher{w.ref, first};
      if (value(first) == LBool::kFalse) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagate_head_ = trail_.size();
        return w.ref;
      }
      enqueue(first, w.ref);
    }
    ws.resize(j);
  }
  return kNullRef;
}

// ------------------------------------------------------------ analysis ----

// Literal block distance: number of distinct decision levels in the clause
// (Glucose's quality measure — low LBD means the clause glues few levels
// together and will propagate early and often).
std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  ++lbd_stamp_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const int lvl = level_[l.var()];
    if (lvl > 0 && level_stamp_[lvl] != lbd_stamp_) {
      level_stamp_[lvl] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::analyze(ClauseRef conflict, Clause& learnt,
                     int& backtrack_level) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int path_count = 0;
  Lit p = kUndefLit;
  std::size_t idx = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  ClauseRef cr = conflict;
  do {
    assert(cr != kNullRef);
    Cls c = cls(cr);
    // LBD refresh on re-propagation: a clause that re-appears in conflict
    // analysis with fewer distinct levels than at learn time has proven
    // more valuable than its recorded tier suggests; promote it to core
    // once it reaches glue level. Fused into the literal walk below — the
    // level_ loads are shared with the seen/path bookkeeping, so the
    // refresh costs one stamp check per literal instead of a second pass.
    const bool refresh = c.learnt() && c.lbd() > kCoreLbd;
    std::uint32_t lbd = 0;
    if (c.learnt()) bump_clause(c);
    if (refresh) {
      ++lbd_stamp_;
      if (p != kUndefLit) {
        // The resolved-on literal is always at the current level.
        level_stamp_[current_level] = lbd_stamp_;
        lbd = 1;
      }
    }
    const std::uint32_t size = c.size();
    const std::uint32_t* lits = c.raw_lits();
    for (std::uint32_t li = 0; li < size; ++li) {
      const Lit q = Lit::from_index(static_cast<std::int32_t>(lits[li]));
      if (q == p) continue;
      const Var v = q.var();
      const int lvl = level_[v];
      if (refresh && lvl > 0 && level_stamp_[lvl] != lbd_stamp_) {
        level_stamp_[lvl] = lbd_stamp_;
        ++lbd;
      }
      if (seen_[v] == 0 && lvl > 0) {
        seen_[v] = 1;
        bump_var(v);
        if (lvl >= current_level) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    if (refresh && lbd < c.lbd()) {
      c.set_lbd(lbd);
      if (lbd <= kCoreLbd && !c.core()) {
        c.set_core();
        assert(num_local_learnts_ > 0);
        --num_local_learnts_;
        ++stats_.promoted_clauses;
      }
    }
    while (seen_[trail_[idx - 1].var()] == 0) --idx;
    p = trail_[idx - 1];
    --idx;
    cr = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest of the
  // learnt clause through the implication graph.
  analyze_toclear_.assign(learnt.begin(), learnt.end());
  for (const Lit l : learnt) seen_[l.var()] = 1;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt[i].var()] & 31);
  }
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kNullRef ||
        !lit_redundant(learnt[i], abstract_levels)) {
      learnt[out++] = learnt[i];
    }
  }
  learnt.resize(out);
  for (const Lit l : analyze_toclear_) seen_[l.var()] = 0;

  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
  }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t toclear_base = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[q.var()] != kNullRef);
    Cls c = cls(reason_[q.var()]);
    const std::uint32_t size = c.size();
    for (std::uint32_t li = 0; li < size; ++li) {
      const Lit r = c.lit(li);
      const Var v = r.var();
      if (v == q.var() || seen_[v] != 0 || level_[v] == 0) continue;
      if (reason_[v] != kNullRef &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(r);
        analyze_toclear_.push_back(r);
      } else {
        // Not redundant: undo the marks made during this probe.
        for (std::size_t k = toclear_base; k < analyze_toclear_.size(); ++k) {
          seen_[analyze_toclear_[k].var()] = 0;
        }
        analyze_toclear_.resize(toclear_base);
        return false;
      }
    }
  }
  return true;
}

void Solver::backtrack_to(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    assign_[v] = LBool::kUndef;
    reason_[v] = kNullRef;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_[0];
    heap_pop();
    if (assign_[v] == LBool::kUndef) {
      return Lit(v, saved_phase_[v] == 0);
    }
  }
  return kUndefLit;
}

// Records a freshly learnt (non-unit) clause: tier classification, stats,
// watch attachment, and the asserting enqueue.
void Solver::record_learnt(const Clause& learnt, std::uint32_t lbd) {
  const ClauseRef r = alloc_clause(learnt, /*learnt=*/true);
  Cls c = cls(r);
  c.set_lbd(lbd);
  if (learnt.size() == 2 || lbd <= kCoreLbd) c.set_core();
  attach(r);
  bump_clause(c);
  enqueue(learnt[0], r);
  if (!c.core()) ++num_local_learnts_;
  learnt_clauses_.push_back(r);
  ++stats_.learned_clauses;
  stats_.learned_literals += learnt.size();
  if (learnt.size() == 2) ++stats_.learned_binary;
  stats_.lbd_sum += lbd;
  if (lbd <= kCoreLbd) ++stats_.glue_learned;
  if (lbd > stats_.max_lbd) stats_.max_lbd = lbd;
  // Share exactly the core tier: the clauses the learnt DB already judged
  // worth keeping forever are the only ones worth a pool round-trip.
  if (export_hook_ != nullptr && c.core()) {
    ++stats_.exported_clauses;
    export_hook_(learnt, lbd);
  }
}

void Solver::reduce_db() {
  // Only the local tier is reducible: core clauses (glue LBD, binaries,
  // promotions) are kept forever, and clauses locked as the reason of a
  // trail literal cannot be dropped. The halving target counts reducible
  // clauses only, so pinned reasons don't dilute the reduction.
  const auto locked = [&](ClauseRef r, Cls c) {
    const Lit l0 = c.lit(0);
    return reason_[l0.var()] == r && value(l0) == LBool::kTrue;
  };
  std::vector<ClauseRef> reducible;
  reducible.reserve(num_local_learnts_);
  for (const ClauseRef r : learnt_clauses_) {
    Cls c = cls(r);
    if (c.core() || locked(r, c)) continue;
    assert(c.size() > 2);
    reducible.push_back(r);
  }
  const std::size_t target = reducible.size() / 2;
  // Victims: highest LBD first, ties broken by lowest activity.
  std::sort(reducible.begin(), reducible.end(),
            [this](ClauseRef a, ClauseRef b) {
              const Cls ca{arena_.data() + a}, cb{arena_.data() + b};
              if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
              return ca.activity() < cb.activity();
            });
  for (std::size_t i = 0; i < target; ++i) cls(reducible[i]).set_condemned();

  // Batch watcher removal: one pass over the long watch lists beats a
  // per-clause detach (which re-searches a list per deletion) by orders of
  // magnitude when thousands of clauses go at once. Victims all have size
  // > 2, so the binary lists are untouched.
  if (target > 0) filter_condemned_watchers(/*bins_too=*/false);

  std::size_t out = 0, removed = 0;
  for (const ClauseRef r : learnt_clauses_) {
    if (cls(r).condemned()) {
      free_clause(r);
      ++removed;
    } else {
      learnt_clauses_[out++] = r;
    }
  }
  learnt_clauses_.resize(out);
  num_local_learnts_ -= removed;
  stats_.removed_clauses += removed;
  stats_.db_size_after_reduce = learnt_clauses_.size();
  max_learnts_ += max_learnts_ / 10;
  maybe_garbage_collect();
}

void Solver::filter_condemned_watchers(bool bins_too) {
  for (WatchNode& wn : watches_) {
    if (bins_too) {
      std::size_t out = 0;
      for (const BinWatch& bw : wn.bins) {
        if (!cls(bw.ref).condemned()) wn.bins[out++] = bw;
      }
      wn.bins.resize(out);
    }
    std::size_t out = 0;
    for (const Watcher& w : wn.longs) {
      if (!cls(w.ref).condemned()) wn.longs[out++] = w;
    }
    wn.longs.resize(out);
  }
}

// -------------------------------------------------------------- arena GC --

void Solver::relocate(ClauseRef& r, std::vector<std::uint32_t>& to) {
  if (r == kNullRef) return;
  std::uint32_t* p = arena_.data() + r;
  if ((p[0] & kRelocatedFlag) != 0) {
    r = p[1];  // already moved; header word 1 holds the forwarding address
    return;
  }
  const std::uint32_t words = Cls{p}.words();
  const ClauseRef nr = static_cast<ClauseRef>(to.size());
  to.insert(to.end(), p, p + words);
  p[0] |= kRelocatedFlag;
  p[1] = nr;
  r = nr;
}

// Mark-and-copy compaction of the clause arena. Callers must be at a safe
// point: every live ClauseRef reachable from solver state is remapped here
// (clause DBs, trail reasons, watch lists), so no ref may be held across
// this call in a local variable.
void Solver::maybe_garbage_collect() {
  if (wasted_words_ * 5 < arena_.size()) return;  // < 20% waste: keep going
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wasted_words_);
  to.push_back(0);  // sentinel
  for (ClauseRef& r : problem_clauses_) relocate(r, to);
  for (ClauseRef& r : learnt_clauses_) relocate(r, to);
  for (const Lit l : trail_) relocate(reason_[l.var()], to);
  for (WatchNode& wn : watches_) {
    for (BinWatch& bw : wn.bins) relocate(bw.ref, to);
    for (Watcher& w : wn.longs) relocate(w.ref, to);
  }
  arena_ = std::move(to);
  wasted_words_ = 0;
}

// -------------------------------------------------------------- simplify --

void Solver::simplify() {
  if (!ok_) return;
  if (!trail_lim_.empty()) backtrack_to(0);
  if (propagate() != kNullRef) {
    ok_ = false;
    return;
  }
  if (trail_.size() == simplified_trail_) return;  // no new root facts
  simplified_trail_ = trail_.size();
  conflicts_at_simplify_ = stats_.conflicts;

  // Root assignments are permanent; their reasons are never dereferenced
  // again (analysis skips level 0). Null them so removing a satisfied
  // reason clause cannot leave a dangling ref behind.
  for (const Lit l : trail_) reason_[l.var()] = kNullRef;

  // Pass 1: mark satisfied clauses. Their watchers are removed in one
  // batch sweep below — per-clause detach would re-search a watch list per
  // deletion, which dominates simplify on attack-sized databases.
  std::size_t num_satisfied = 0;
  const auto mark = [&](const std::vector<ClauseRef>& db) {
    for (const ClauseRef r : db) {
      Cls c = cls(r);
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 0; k < size; ++k) {
        if (value(c.lit(k)) == LBool::kTrue) {
          c.set_condemned();
          ++num_satisfied;
          break;
        }
      }
    }
  };
  mark(problem_clauses_);
  mark(learnt_clauses_);
  if (num_satisfied > 0) filter_condemned_watchers(/*bins_too=*/true);

  const auto clean = [&](std::vector<ClauseRef>& db, bool problem) {
    std::size_t out = 0;
    for (const ClauseRef r : db) {
      Cls c = cls(r);
      if (c.condemned()) {
        free_clause(r);
        ++stats_.simplify_removed_clauses;
        if (problem) {
          --num_problem_clauses_;
        } else if (!c.core()) {
          assert(num_local_learnts_ > 0);
          --num_local_learnts_;
        }
        continue;
      }
      const std::uint32_t size = c.size();
      // Strip falsified literals. Only positions >= 2 can be false here:
      // after full root propagation a false watched literal implies the
      // clause was satisfied (removed above) or unit (enqueued, hence
      // satisfied). A blocker-skip can leave a stale false watch; such a
      // clause is simply left unstripped this round.
      if (size > 2 && value(c.lit(0)) == LBool::kUndef &&
          value(c.lit(1)) == LBool::kUndef) {
        std::uint32_t w = 2;
        for (std::uint32_t k = 2; k < size; ++k) {
          if (value(c.lit(k)) != LBool::kFalse) {
            c.set_lit(w++, c.lit(k));
          } else {
            ++stats_.simplify_removed_literals;
          }
        }
        if (w != size) {
          if (w == 2) {
            detach(r);  // still registered as long: removes long watchers
            c.shrink(w);
            wasted_words_ += size - w;
            attach(r);  // size 2 now: joins the binary implication lists
            if (!problem && !c.core()) {
              c.set_core();  // binaries are never reduced
              assert(num_local_learnts_ > 0);
              --num_local_learnts_;
            }
          } else {
            c.shrink(w);
            wasted_words_ += size - w;
          }
        }
      }
      db[out++] = r;
    }
    db.resize(out);
  };
  clean(problem_clauses_, /*problem=*/true);
  clean(learnt_clauses_, /*problem=*/false);
  maybe_garbage_collect();
}

// ---------------------------------------------------------------- search --

std::size_t Solver::memory_bytes() const {
  std::size_t bytes = arena_.capacity() * sizeof(std::uint32_t);
  bytes += (problem_clauses_.capacity() + learnt_clauses_.capacity()) *
           sizeof(ClauseRef);
  bytes += watches_.capacity() * sizeof(WatchNode);
  for (const WatchNode& node : watches_) {
    bytes += node.bins.capacity() * sizeof(BinWatch) +
             node.longs.capacity() * sizeof(Watcher);
  }
  // Per-variable state and the trail.
  bytes += assign_.capacity() * sizeof(LBool) + saved_phase_.capacity() +
           level_.capacity() * sizeof(int) +
           reason_.capacity() * sizeof(ClauseRef) +
           activity_.capacity() * sizeof(double) + seen_.capacity() +
           level_stamp_.capacity() * sizeof(std::uint64_t) +
           heap_.capacity() * sizeof(Var) + heap_pos_.capacity() * sizeof(int);
  bytes += trail_.capacity() * sizeof(Lit) + trail_lim_.capacity() * sizeof(int);
  return bytes;
}

bool Solver::budget_exhausted(bool force_deadline_check) const {
  if (budget_hit_) return true;
  for (const std::atomic<bool>* flag : interrupts_) {
    if (flag != nullptr && flag->load(std::memory_order_relaxed)) {
      budget_hit_ = true;
      stop_reason_ = StopReason::kInterrupt;
      return true;
    }
  }
  if (conflict_budget_ != 0 &&
      stats_.conflicts - conflicts_at_solve_ >= conflict_budget_) {
    budget_hit_ = true;
    stop_reason_ = StopReason::kConflictBudget;
    return true;
  }
  if (deadline_ || config_.memory_limit_mb > 0) {
    if (force_deadline_check || deadline_check_countdown_ == 0) {
      deadline_check_countdown_ = kDeadlineCheckStride;
      if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
        budget_hit_ = true;
        stop_reason_ = StopReason::kDeadline;
        return true;
      }
      if (config_.memory_limit_mb > 0) {
        if (memory_check_countdown_ == 0) {
          memory_check_countdown_ = kMemoryCheckStride;
          last_memory_bytes_ = memory_bytes();
        } else {
          --memory_check_countdown_;
        }
        if (last_memory_bytes_ > config_.memory_limit_mb * 1024 * 1024) {
          budget_hit_ = true;
          stop_reason_ = StopReason::kOutOfMemory;
          return true;
        }
      }
    } else {
      --deadline_check_countdown_;
    }
  }
  return false;
}

LBool Solver::search() {
  const std::uint64_t restart_budget = static_cast<std::uint64_t>(
      luby(2.0, static_cast<int>(stats_.restarts)) * config_.restart_unit);
  std::uint64_t conflicts_this_restart = 0;

  Clause learnt;
  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNullRef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return LBool::kFalse;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      // LBD is measured before backtracking, while every learnt literal
      // still carries its decision level.
      const std::uint32_t lbd = compute_lbd(learnt);
      backtrack_to(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNullRef);
        if (export_hook_ != nullptr) {
          ++stats_.exported_clauses;
          export_hook_(learnt, 1);
        }
      } else {
        record_learnt(learnt, lbd);
      }
      decay_var_activity();
      cla_inc_ /= config_.clause_decay;
      // Deadline is always checked on conflicts: conflict analysis is where
      // a solve used to overshoot, and a clock read is noise next to it.
      if (budget_exhausted(/*force_deadline_check=*/true)) {
        backtrack_to(0);
        return LBool::kUndef;
      }
    } else {
      if (budget_exhausted()) {
        backtrack_to(0);
        return LBool::kUndef;
      }
      if (conflicts_this_restart >= restart_budget) {
        ++stats_.restarts;
        backtrack_to(0);
        return LBool::kUndef;  // caller loops; keeps bookkeeping simple
      }
      if (learnt_clauses_.size() >= max_learnts_ + trail_.size()) {
        reduce_db();
      }
      Lit next = kUndefLit;
      while (trail_lim_.size() < assumptions_.size()) {
        const Lit a = assumptions_[trail_lim_.size()];
        if (value(a) == LBool::kTrue) {
          trail_lim_.push_back(trail_.size());
        } else if (value(a) == LBool::kFalse) {
          return LBool::kFalse;
        } else {
          next = a;
          break;
        }
      }
      if (next == kUndefLit) {
        next = pick_branch_lit();
        if (next == kUndefLit) return LBool::kTrue;
        ++stats_.decisions;
      }
      trail_lim_.push_back(trail_.size());
      enqueue(next, kNullRef);
    }
  }
}

LBool Solver::solve(std::span<const Lit> assumptions) {
  if (!ok_) return LBool::kFalse;
  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_at_solve_ = stats_.conflicts;
  budget_hit_ = false;
  stop_reason_ = StopReason::kNone;
  deadline_check_countdown_ = 0;
  memory_check_countdown_ = 0;
  max_learnts_ = std::max<std::size_t>(
      {max_learnts_, 2000, num_problem_clauses_ / 3});
  backtrack_to(0);
  if (propagate() != kNullRef) {
    ok_ = false;
    assumptions_.clear();
    return LBool::kFalse;
  }
  // Root-level cleanup of everything previous solves and the caller's
  // incremental clauses (DIP constraints, banned keys) made redundant.
  // Simplification is a full database scan, so the automatic call waits
  // until enough new root facts have accumulated to pay for it (explicit
  // simplify() calls scan whenever anything changed).
  if ((trail_.size() - simplified_trail_) * 100 >= num_problem_clauses_) {
    simplify();
  }
  if (!ok_) {
    assumptions_.clear();
    return LBool::kFalse;
  }
  LBool result = LBool::kUndef;
  while (result == LBool::kUndef) {
    // Restart boundary (and the start of the solve): the trail is at level
    // 0, so foreign clauses can be attached — and their units propagated —
    // without any repair work.
    if (import_hook_ != nullptr) {
      import_hook_(*this);
      if (!ok_) {
        result = LBool::kFalse;
        break;
      }
    }
    result = search();
    if (!ok_) {
      result = LBool::kFalse;
      break;
    }
    if (result == LBool::kUndef && budget_exhausted()) break;
  }
  if (result != LBool::kTrue) backtrack_to(0);
  assumptions_.clear();
  stats_.peak_memory_bytes =
      std::max<std::uint64_t>(stats_.peak_memory_bytes, memory_bytes());
  return result;
}

LBool solve_cnf(const Cnf& cnf, std::vector<bool>* model, SolverStats* stats) {
  Solver solver;
  for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
  for (const Clause& c : cnf.clauses) {
    if (!solver.add_clause(c)) {
      if (stats != nullptr) *stats = solver.stats();
      return LBool::kFalse;
    }
  }
  const LBool result = solver.solve();
  if (result == sat::LBool::kTrue && model != nullptr) *model = solver.model();
  if (stats != nullptr) *stats = solver.stats();
  return result;
}

}  // namespace fl::sat
