#include "sat/preprocess.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace fl::sat {

namespace {

bool lit_true(const Lit l, const std::vector<bool>& model) {
  return model[static_cast<std::size_t>(l.var())] != l.negated();
}

bool contains_lit(const Clause& sorted, const Lit l) {
  return std::binary_search(sorted.begin(), sorted.end(), l);
}

}  // namespace

PreprocessSolver::PreprocessSolver(SolverIface& inner, PreprocessConfig config)
    : inner_(inner), config_(config) {
  if (inner_.num_vars() != 0 || inner_.num_clauses() != 0) {
    throw std::invalid_argument(
        "PreprocessSolver: inner solver must start empty (ids must coincide)");
  }
}

PreprocessSolver::Norm PreprocessSolver::normalize(Clause& clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 1; i < clause.size(); ++i) {
    if (clause[i].var() == clause[i - 1].var()) return Norm::kTautology;
  }
  return clause.empty() ? Norm::kEmpty : Norm::kOk;
}

std::uint64_t PreprocessSolver::signature(const Clause& clause) {
  std::uint64_t sig = 0;
  for (const Lit l : clause) sig |= std::uint64_t{1} << (l.var() & 63);
  return sig;
}

Var PreprocessSolver::new_var() {
  if (flushed_) return inner_.new_var();
  return next_var_++;
}

int PreprocessSolver::num_vars() const {
  return flushed_ ? inner_.num_vars() : next_var_;
}

void PreprocessSolver::check_no_eliminated(const Clause& clause) const {
  for (const Lit l : clause) {
    if (is_eliminated(l.var())) {
      throw std::logic_error(
          "PreprocessSolver: clause uses an eliminated variable (freeze it "
          "before preprocessing)");
    }
  }
}

bool PreprocessSolver::add_clause(Clause clause) {
  for (const Lit l : clause) {
    if (l.var() < 0 || l.var() >= num_vars()) {
      throw std::invalid_argument("PreprocessSolver::add_clause: unknown var");
    }
  }
  if (preprocessed_) check_no_eliminated(clause);
  if (flushed_) return inner_.add_clause(std::move(clause));
  switch (normalize(clause)) {
    case Norm::kTautology:
      return !contradiction_;
    case Norm::kEmpty:
      contradiction_ = true;
      return false;
    case Norm::kOk:
      break;
  }
  push_clause(std::move(clause));
  return !contradiction_;
}

void PreprocessSolver::push_clause(Clause clause) {
  if (preprocessed_ && !assigns_.empty()) {
    // Simplify against root assignments (resolvents added mid-elimination,
    // or clauses staged after an explicit preprocess() call).
    Clause kept;
    kept.reserve(clause.size());
    for (const Lit l : clause) {
      const LBool a = assigns_[static_cast<std::size_t>(l.var())];
      if (a == LBool::kUndef) {
        kept.push_back(l);
        continue;
      }
      if ((a == LBool::kTrue) != l.negated()) return;  // satisfied at root
    }
    clause = std::move(kept);
    if (clause.empty()) {
      contradiction_ = true;
      return;
    }
  }
  const auto idx = static_cast<std::uint32_t>(db_.size());
  StagedClause sc;
  sc.sig = signature(clause);
  sc.lits = std::move(clause);
  const std::size_t max_index =
      static_cast<std::size_t>(sc.lits.back().index()) + 1;
  if (occ_.size() < max_index) occ_.resize(max_index);
  for (const Lit l : sc.lits) {
    occ_[static_cast<std::size_t>(l.index())].push_back(idx);
  }
  if (sc.lits.size() == 1 && preprocessed_) enqueue(sc.lits[0]);
  db_.push_back(std::move(sc));
  ++live_clauses_;
}

void PreprocessSolver::del_clause(std::size_t idx) {
  if (db_[idx].deleted) return;
  db_[idx].deleted = true;
  --live_clauses_;
  ++stats_.removed_clauses;
}

void PreprocessSolver::freeze(Var v) {
  if (v < 0 || v >= next_var_) {
    throw std::invalid_argument("PreprocessSolver::freeze: unknown variable");
  }
  if (preprocessed_) {
    throw std::logic_error("PreprocessSolver::freeze: already preprocessed");
  }
  if (frozen_.size() < static_cast<std::size_t>(next_var_)) {
    frozen_.resize(static_cast<std::size_t>(next_var_), false);
  }
  frozen_[static_cast<std::size_t>(v)] = true;
}

void PreprocessSolver::enqueue(Lit l) {
  LBool& a = assigns_[static_cast<std::size_t>(l.var())];
  const LBool want = lbool_from(!l.negated());
  if (a == want) return;
  if (a != LBool::kUndef) {
    contradiction_ = true;
    return;
  }
  a = want;
  ++stats_.fixed_vars;
  trail_.push_back(l);
}

void PreprocessSolver::propagate() {
  while (qhead_ < trail_.size() && !contradiction_) {
    const Lit l = trail_[qhead_++];
    const auto sat_idx = static_cast<std::size_t>(l.index());
    if (sat_idx < occ_.size()) {
      for (const std::uint32_t ci : occ_[sat_idx]) {
        steps_ += 1;
        if (!db_[ci].deleted && contains_lit(db_[ci].lits, l)) del_clause(ci);
      }
    }
    const auto neg_idx = static_cast<std::size_t>((~l).index());
    if (neg_idx < occ_.size()) {
      for (const std::uint32_t ci : occ_[neg_idx]) {
        StagedClause& sc = db_[ci];
        steps_ += 1;
        if (sc.deleted || !contains_lit(sc.lits, ~l)) continue;
        sc.lits.erase(std::remove(sc.lits.begin(), sc.lits.end(), ~l),
                      sc.lits.end());
        sc.sig = signature(sc.lits);
        if (sc.lits.empty()) {
          contradiction_ = true;
          return;
        }
        if (sc.lits.size() == 1) enqueue(sc.lits[0]);
      }
    }
  }
}

void PreprocessSolver::subsume_all() {
  for (std::size_t ci = 0; ci < db_.size(); ++ci) {
    if (contradiction_) return;
    if (!budget_ok()) {
      stats_.budget_exhausted = true;
      return;
    }
    if (db_[ci].deleted) continue;
    backward_subsume(ci);
  }
  propagate();  // strengthening can create units
}

void PreprocessSolver::backward_subsume(std::size_t ci) {
  // Candidates come from the occurrence list of the clause's least-occurring
  // literal; signatures prune most non-supersets before the subset test.
  const Clause self = db_[ci].lits;  // copy: strengthen() may edit db_
  const std::uint64_t sig = db_[ci].sig;

  Lit best = self[0];
  std::size_t best_size = ~std::size_t{0};
  for (const Lit l : self) {
    const auto idx = static_cast<std::size_t>(l.index());
    const std::size_t size = idx < occ_.size() ? occ_[idx].size() : 0;
    if (size < best_size) {
      best_size = size;
      best = l;
    }
  }
  if (best_size <= config_.max_occurrences) {
    for (const std::uint32_t di : occ_[static_cast<std::size_t>(best.index())]) {
      if (di == ci || db_[di].deleted) continue;
      const StagedClause& d = db_[di];
      if (d.lits.size() < self.size() || (sig & ~d.sig) != 0) continue;
      steps_ += self.size();
      if (std::includes(d.lits.begin(), d.lits.end(), self.begin(),
                        self.end())) {
        del_clause(di);
        ++stats_.subsumed_clauses;
      }
    }
  }

  // Self-subsuming resolution: if (self \ {l}) ∪ {~l} ⊆ D, remove ~l from D.
  // Variable signatures are sign-blind, so `sig` prunes here too.
  for (const Lit l : self) {
    if (contradiction_ || !budget_ok()) return;
    const auto idx = static_cast<std::size_t>((~l).index());
    if (idx >= occ_.size() || occ_[idx].size() > config_.max_occurrences) {
      continue;
    }
    for (const std::uint32_t di : occ_[idx]) {
      if (di == ci || db_[di].deleted) continue;
      const StagedClause& d = db_[di];
      if (d.lits.size() < self.size() || (sig & ~d.sig) != 0) continue;
      steps_ += self.size();
      bool subset = true;
      for (const Lit m : self) {
        const Lit want = (m == l) ? ~l : m;
        if (!contains_lit(d.lits, want)) {
          subset = false;
          break;
        }
      }
      if (subset) strengthen(di, ~l);
    }
  }
}

void PreprocessSolver::strengthen(std::size_t di, Lit l) {
  StagedClause& sc = db_[di];
  sc.lits.erase(std::remove(sc.lits.begin(), sc.lits.end(), l), sc.lits.end());
  sc.sig = signature(sc.lits);
  ++stats_.strengthened_literals;
  if (sc.lits.empty()) {
    contradiction_ = true;
    return;
  }
  if (sc.lits.size() == 1) enqueue(sc.lits[0]);
}

void PreprocessSolver::eliminate_vars() {
  std::vector<std::pair<std::size_t, Var>> order;
  order.reserve(static_cast<std::size_t>(next_var_));
  for (Var v = 0; v < next_var_; ++v) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (frozen_[sv] || assigns_[sv] != LBool::kUndef) continue;
    const auto pi = static_cast<std::size_t>(pos(v).index());
    const auto ni = static_cast<std::size_t>(neg(v).index());
    const std::size_t count = (pi < occ_.size() ? occ_[pi].size() : 0) +
                              (ni < occ_.size() ? occ_[ni].size() : 0);
    order.emplace_back(count, v);
  }
  std::sort(order.begin(), order.end());

  bool progress = true;
  for (int pass = 0; progress && pass < 3; ++pass) {
    progress = false;
    for (const auto& [count, v] : order) {
      if (contradiction_) return;
      if (!budget_ok()) {
        stats_.budget_exhausted = true;
        return;
      }
      const std::size_t sv = static_cast<std::size_t>(v);
      if (eliminated_[sv] || assigns_[sv] != LBool::kUndef) continue;
      if (try_eliminate(v)) progress = true;
    }
    propagate();
  }
}

bool PreprocessSolver::try_eliminate(Var v) {
  auto gather = [&](Lit l, std::vector<std::uint32_t>& out) {
    out.clear();
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= occ_.size()) return;
    for (const std::uint32_t ci : occ_[idx]) {
      steps_ += 1;
      if (!db_[ci].deleted && contains_lit(db_[ci].lits, l)) out.push_back(ci);
    }
  };
  std::vector<std::uint32_t> pos_occ, neg_occ;
  gather(pos(v), pos_occ);
  gather(neg(v), neg_occ);
  if (pos_occ.size() + neg_occ.size() > config_.max_occurrences) return false;

  std::vector<Clause> resolvents;
  const std::size_t limit =
      pos_occ.size() + neg_occ.size() +
      static_cast<std::size_t>(std::max(config_.grow, 0));
  Clause r;
  for (const std::uint32_t pi : pos_occ) {
    for (const std::uint32_t ni : neg_occ) {
      steps_ += db_[pi].lits.size() + db_[ni].lits.size();
      if (!resolve(db_[pi].lits, db_[ni].lits, v, r)) continue;  // tautology
      if (r.size() > config_.max_resolvent_len) return false;
      resolvents.push_back(r);
      if (resolvents.size() > limit) return false;
    }
  }

  Elimination e;
  e.v = v;
  e.pos_clauses.reserve(pos_occ.size());
  for (const std::uint32_t pi : pos_occ) e.pos_clauses.push_back(db_[pi].lits);
  elim_stack_.push_back(std::move(e));
  for (const std::uint32_t ci : pos_occ) del_clause(ci);
  for (const std::uint32_t ci : neg_occ) del_clause(ci);
  eliminated_[static_cast<std::size_t>(v)] = true;
  ++stats_.eliminated_vars;
  for (Clause& res : resolvents) {
    ++stats_.resolvents_added;
    push_clause(std::move(res));
    if (contradiction_) break;
  }
  return true;
}

bool PreprocessSolver::resolve(const Clause& pos_clause,
                               const Clause& neg_clause, Var pivot,
                               Clause& out) const {
  out.clear();
  for (const Lit l : pos_clause) {
    if (l.var() != pivot) out.push_back(l);
  }
  for (const Lit l : neg_clause) {
    if (l.var() != pivot) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].var() == out[i - 1].var()) return false;
  }
  return true;
}

void PreprocessSolver::preprocess() {
  if (preprocessed_ || flushed_) return;
  preprocessed_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  stats_.ran = true;
  stats_.input_vars = static_cast<std::size_t>(next_var_);
  stats_.input_clauses = live_clauses_;

  assigns_.assign(static_cast<std::size_t>(next_var_), LBool::kUndef);
  frozen_.resize(static_cast<std::size_t>(next_var_), false);
  eliminated_.assign(static_cast<std::size_t>(next_var_), false);

  if (!contradiction_) {
    for (std::size_t ci = 0; ci < db_.size() && !contradiction_; ++ci) {
      if (!db_[ci].deleted && db_[ci].lits.size() == 1) enqueue(db_[ci].lits[0]);
    }
    propagate();
  }
  if (!contradiction_) subsume_all();
  if (!contradiction_) eliminate_vars();

  stats_.output_clauses = contradiction_ ? 0 : live_clauses_;
  stats_.preprocess_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void PreprocessSolver::flush() {
  if (flushed_) return;
  preprocess();
  flushed_ = true;
  while (inner_.num_vars() < next_var_) inner_.new_var();
  for (const auto& [v, phase] : pending_phases_) inner_.set_phase(v, phase);
  pending_phases_.clear();
  if (contradiction_) {
    inner_.add_clause(Clause{});
    release_staging();
    return;
  }
  for (Var v = 0; v < next_var_; ++v) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (assigns_[sv] != LBool::kUndef) {
      inner_.add_clause({Lit(v, assigns_[sv] == LBool::kFalse)});
    } else if (eliminated_[sv]) {
      inner_.add_clause({neg(v)});  // pin; real value reconstructed on demand
    }
  }
  for (StagedClause& sc : db_) {
    if (!sc.deleted && sc.lits.size() > 1) {
      inner_.add_clause(std::move(sc.lits));
    }
  }
  release_staging();
}

void PreprocessSolver::release_staging() {
  db_.clear();
  db_.shrink_to_fit();
  occ_.clear();
  occ_.shrink_to_fit();
  trail_.clear();
  trail_.shrink_to_fit();
  frozen_.clear();
  frozen_.shrink_to_fit();
  // assigns_ stays: it is the record of root-fixed values; eliminated_ and
  // elim_stack_ stay for is_eliminated() checks and model extension.
}

LBool PreprocessSolver::solve(std::span<const Lit> assumptions) {
  if (!flushed_) flush();
  for (const Lit a : assumptions) {
    if (is_eliminated(a.var())) {
      throw std::logic_error(
          "PreprocessSolver::solve: assumption over an eliminated variable");
    }
  }
  model_valid_ = false;
  const LBool r = inner_.solve(assumptions);
  if (r == LBool::kTrue) extend_model();
  return r;
}

void PreprocessSolver::extend_model() {
  model_ = inner_.model();
  if (model_.size() < static_cast<std::size_t>(inner_.num_vars())) {
    model_.resize(static_cast<std::size_t>(inner_.num_vars()), false);
  }
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    bool value = false;
    for (const Clause& c : it->pos_clauses) {
      bool satisfied = false;
      for (const Lit l : c) {
        if (l.var() == it->v) continue;
        if (lit_true(l, model_)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        value = true;
        break;
      }
    }
    model_[static_cast<std::size_t>(it->v)] = value;
  }
  model_valid_ = true;
}

bool PreprocessSolver::value_of(Var v) const {
  if (model_valid_ && static_cast<std::size_t>(v) < model_.size()) {
    return model_[static_cast<std::size_t>(v)];
  }
  return inner_.value_of(v);
}

std::vector<bool> PreprocessSolver::model() const {
  if (model_valid_) return model_;
  return inner_.model();
}

void PreprocessSolver::set_phase(Var v, bool phase) {
  if (flushed_) {
    inner_.set_phase(v, phase);
    return;
  }
  pending_phases_.emplace_back(v, phase);
}

void PreprocessSolver::set_conflict_budget(std::uint64_t max_conflicts) {
  inner_.set_conflict_budget(max_conflicts);
}

void PreprocessSolver::set_deadline(
    std::optional<std::chrono::steady_clock::time_point> t) {
  inner_.set_deadline(t);
}

void PreprocessSolver::set_interrupts(const std::atomic<bool>* primary,
                                      const std::atomic<bool>* secondary) {
  inner_.set_interrupts(primary, secondary);
}

bool PreprocessSolver::last_solve_interrupted() const {
  return inner_.last_solve_interrupted();
}

StopReason PreprocessSolver::last_stop_reason() const {
  return inner_.last_stop_reason();
}

const SolverStats& PreprocessSolver::stats() const { return inner_.stats(); }

CounterSnapshot PreprocessSolver::counters() const {
  return inner_.counters();
}

std::size_t PreprocessSolver::num_clauses() const {
  return flushed_ ? inner_.num_clauses() : live_clauses_;
}

std::size_t PreprocessSolver::num_learnts() const {
  return inner_.num_learnts();
}

std::size_t PreprocessSolver::memory_bytes() const {
  std::size_t staged = db_.capacity() * sizeof(StagedClause);
  for (const StagedClause& sc : db_) staged += sc.lits.capacity() * sizeof(Lit);
  for (const auto& o : occ_) staged += o.capacity() * sizeof(std::uint32_t);
  return inner_.memory_bytes() + staged;
}

}  // namespace fl::sat
