#include "ppa/stt_lut.h"

#include <cmath>
#include <stdexcept>

namespace fl::ppa {

namespace {

void check_size(int k) {
  if (k < 2 || k > 8) {
    throw std::invalid_argument("STT-LUT size must be in [2, 8]");
  }
}

}  // namespace

GateCost stt_lut_cost(int k) {
  check_size(k);
  // Fixed sense/read frontend + 2^k MTJ storage cells (near-zero leakage,
  // ~4x denser than SRAM bitcells) + a compact pass-gate select tree of
  // (2^k - 1) 2:1 stages. The exponential terms are negligible through
  // k = 5 and dominate beyond — the Fig. 5 knee.
  const double cells = std::pow(2.0, k);
  const double frontend_area = 0.9;  // um^2, size-independent
  const double mtj_area = 0.035 * cells;
  const double tree_area = 0.10 * (cells - 1.0);
  const double area = frontend_area + mtj_area + tree_area;
  // GHz-class read path: delay grows with tree depth (k stages).
  const double delay = 0.010 + 0.006 * k;
  // Read current dominates dynamic power; near-zero leakage.
  const double power = 5.0 + 1.1 * (cells / 4.0);
  return GateCost{area, power, delay};
}

GateCost cmos_equivalent_cost(int k) {
  check_size(k);
  return gate_cost(netlist::GateType::kNand, k);
}

LutOverhead stt_lut_overhead(int k) {
  const GateCost stt = stt_lut_cost(k);
  const GateCost cmos = cmos_equivalent_cost(k);
  return LutOverhead{stt.area_um2 / cmos.area_um2 - 1.0,
                     stt.power_nw / cmos.power_nw - 1.0,
                     stt.delay_ns / cmos.delay_ns - 1.0};
}

}  // namespace fl::ppa
