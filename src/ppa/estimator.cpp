#include "ppa/estimator.h"

#include <algorithm>

#include "netlist/structure.h"

namespace fl::ppa {

using netlist::GateId;
using netlist::Netlist;

PpaReport estimate_ppa(const Netlist& netlist) {
  PpaReport report;
  const std::vector<double> prob = netlist::signal_probabilities(netlist);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    if (netlist::is_source(gate.type)) continue;
    const GateCost cost =
        gate_cost(gate.type, static_cast<int>(gate.fanin.size()));
    report.area_um2 += cost.area_um2;
    const double activity = 2.0 * prob[g] * (1.0 - prob[g]);
    report.power_nw += cost.power_nw * activity;
    ++report.gate_count;
  }

  // Critical path over the acyclic skeleton (feedback edges dropped).
  std::vector<std::vector<std::pair<GateId, std::size_t>>> skip;
  const std::vector<netlist::Edge> feedback = netlist::feedback_edges(netlist);
  auto is_feedback = [&feedback](GateId g, std::size_t pin) {
    return std::any_of(feedback.begin(), feedback.end(),
                       [&](const netlist::Edge& e) {
                         return e.gate == g && e.pin == pin;
                       });
  };
  // Longest-path DP in a manually topologically-ordered skeleton: Kahn over
  // non-feedback edges.
  const std::size_t n = netlist.num_gates();
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<std::vector<GateId>> fanout(n);
  for (GateId g = 0; g < n; ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      if (feedback.empty() || !is_feedback(g, pin)) {
        ++pending[g];
        fanout[gate.fanin[pin]].push_back(g);
      }
    }
  }
  std::vector<GateId> order;
  order.reserve(n);
  for (GateId g = 0; g < n; ++g) {
    if (pending[g] == 0) order.push_back(g);
  }
  std::vector<double> arrival(n, 0.0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const GateId g = order[head];
    const netlist::Gate& gate = netlist.gate(g);
    double in_arrival = 0.0;
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      if (!feedback.empty() && is_feedback(g, pin)) continue;
      in_arrival = std::max(in_arrival, arrival[gate.fanin[pin]]);
    }
    const GateCost cost = netlist::is_source(gate.type)
                              ? GateCost{}
                              : gate_cost(gate.type,
                                          static_cast<int>(gate.fanin.size()));
    arrival[g] = in_arrival + cost.delay_ns;
    report.critical_delay_ns = std::max(report.critical_delay_ns, arrival[g]);
    for (const GateId out : fanout[g]) {
      if (--pending[out] == 0) order.push_back(out);
    }
  }
  return report;
}

}  // namespace fl::ppa
