// Netlist-level PPA estimation (drives Table 3).
#pragma once

#include "netlist/netlist.h"
#include "ppa/gate_cost.h"

namespace fl::ppa {

struct PpaReport {
  double area_um2 = 0.0;
  double power_nw = 0.0;       // activity-weighted dynamic power
  double critical_delay_ns = 0.0;
  std::size_t gate_count = 0;  // logic gates costed
};

// Area: sum of gate areas. Power: per-gate dynamic power weighted by the
// gate's switching activity 2*p*(1-p) from signal-probability analysis.
// Delay: longest gate-delay path (cyclic netlists: feedback edges broken
// first, i.e. the acyclic skeleton's critical path).
PpaReport estimate_ppa(const netlist::Netlist& netlist);

}  // namespace fl::ppa
