// Analytical per-gate area/power/delay model.
//
// Stand-in for the Synopsys 32nm educational library the paper uses for
// Table 3 (see DESIGN.md §2). Absolute numbers are calibrated to typical
// 32nm standard-cell datasheets (NAND2 ~= 1 um^2, ~20 nW/GHz switching,
// ~25 ps); what the experiments rely on are the *ratios* between gate
// types and the linear scaling of n-ary gates.
#pragma once

#include "netlist/gate.h"

namespace fl::ppa {

struct GateCost {
  double area_um2 = 0.0;
  double power_nw = 0.0;  // dynamic power at full activity, 1 GHz
  double delay_ns = 0.0;
};

// Cost of one gate instance; n-ary gates are costed as a balanced tree of
// 2-input cells ((fanin-1) cells, ceil(log2(fanin)) levels of delay).
// Sources (inputs/keys/constants) cost zero.
GateCost gate_cost(netlist::GateType type, int fanin);

// The 2-input / unary base cells.
GateCost base_cell_cost(netlist::GateType type);

}  // namespace fl::ppa
