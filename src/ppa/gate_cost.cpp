#include "ppa/gate_cost.h"

#include <bit>
#include <cmath>

namespace fl::ppa {

using netlist::GateType;

GateCost base_cell_cost(GateType type) {
  // {area um^2, dynamic nW @1GHz full activity, delay ns} — 32nm-class.
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1:
    case GateType::kInput:
    case GateType::kKey:
      return {0.0, 0.0, 0.0};
    case GateType::kBuf:  return {0.81, 14.0, 0.020};
    case GateType::kNot:  return {0.61, 10.0, 0.012};
    case GateType::kAnd:  return {1.22, 22.0, 0.030};
    case GateType::kNand: return {1.02, 18.0, 0.022};
    case GateType::kOr:   return {1.22, 23.0, 0.032};
    case GateType::kNor:  return {1.02, 19.0, 0.024};
    case GateType::kXor:  return {1.83, 34.0, 0.040};
    case GateType::kXnor: return {1.83, 34.0, 0.040};
    case GateType::kMux:  return {2.03, 30.0, 0.038};
  }
  return {0.0, 0.0, 0.0};
}

GateCost gate_cost(GateType type, int fanin) {
  const GateCost base = base_cell_cost(type);
  if (netlist::is_source(type) || fanin <= 2 || type == GateType::kMux ||
      type == GateType::kBuf || type == GateType::kNot) {
    return base;
  }
  // n-ary gate decomposed into a balanced tree of (fanin-1) 2-input cells.
  const int cells = fanin - 1;
  const int levels = std::bit_width(static_cast<unsigned>(fanin - 1));
  return GateCost{base.area_um2 * cells, base.power_nw * cells,
                  base.delay_ns * levels};
}

}  // namespace fl::ppa
