// STT-MTJ-based LUT cost model (Fig. 5 of the paper).
//
// The paper's Fig. 5 compares SPICE-characterized STT-LUTs of size 2..8
// against 28nm CMOS standard cells and finds sizes <= 5 have negligible
// power/delay/area overhead while sizes > 5 grow steeply (per-size cost
// roughly doubles with each extra input: 2^k MTJ cells + CMOS select tree).
// This module reproduces that shape analytically.
#pragma once

#include "ppa/gate_cost.h"

namespace fl::ppa {

// Cost of a k-input STT-LUT (2 <= k <= 8). Throws std::invalid_argument
// outside that range.
GateCost stt_lut_cost(int k);

// Cost of the *equivalent CMOS standard cell* of k inputs (a k-input NAND
// tree), the comparison baseline of Fig. 5.
GateCost cmos_equivalent_cost(int k);

// Relative overhead (stt/cmos - 1) per metric; the paper's claim is that
// all three stay near zero through k = 5.
struct LutOverhead {
  double area = 0.0;
  double power = 0.0;
  double delay = 0.0;
};
LutOverhead stt_lut_overhead(int k);

}  // namespace fl::ppa
