// Combinational netlist container — flat SoA/arena representation.
//
// Gate data lives in parallel arrays indexed by GateId: a type array, a name
// array, and CSR-style fanin storage (per-gate begin/count into one shared
// 32-bit arena, mirroring the solver's clause arena). The container supports
// the structural edits used by logic locking (rewiring fanins, retyping
// gates, appending key inputs) and the queries used by attacks (topological
// order, cycle detection, fanout maps).
//
// Graph queries (topological order, fanout CSR, levels) are computed once
// and cached against a structural-edit generation counter: any edit bumps
// the generation and the next query rebuilds. The cached spans returned by
// topo_span()/fanout()/levels_span() stay valid until the next structural
// edit, like iterators into a std::vector. Lazy cache fills are serialized
// by an internal mutex, so concurrent const queries are safe; concurrent
// edits are not (usual container rules).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate.h"

namespace fl::netlist {

struct OutputPort {
  GateId gate = kNullGate;
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}
  Netlist(const Netlist& other);
  Netlist(Netlist&& other) noexcept;
  Netlist& operator=(const Netlist& other);
  Netlist& operator=(Netlist&& other) noexcept;
  ~Netlist() = default;

  // --- construction -------------------------------------------------------
  GateId add_input(std::string name);
  GateId add_key(std::string name);
  GateId add_const(bool value);
  // Adds a logic gate. Fanin ids must already exist. Throws std::invalid_argument
  // on arity violations.
  GateId add_gate(GateType type, std::vector<GateId> fanin, std::string name = "");
  GateId add_gate(GateType type, std::span<const GateId> fanin,
                  std::string name = "");
  GateId add_gate(GateType type, std::initializer_list<GateId> fanin,
                  std::string name = "");
  // Marks an existing gate as (an additional) primary output.
  void mark_output(GateId gate, std::string name = "");
  void clear_outputs() { outputs_.clear(); }
  // Re-points output port `index` at a different net (name is kept).
  void set_output_gate(std::size_t index, GateId gate);

  // --- structural edits (used by locking transforms) -----------------------
  // Replaces every occurrence of `from` in `gate`'s fanin with `to`.
  void replace_fanin_of(GateId gate, GateId from, GateId to);
  // Replaces every reader of net `from` (fanins of all gates, and output
  // ports) with net `to`. Does not touch `from` itself.
  void replace_net(GateId from, GateId to);
  // Retypes a gate in place (arity is re-validated).
  void retype(GateId gate, GateType type);
  // Replaces a gate's fanin list wholesale. A longer list than the gate ever
  // had relocates its arena segment (the old segment is leaked until the
  // netlist is compacted; see structure.h).
  void set_fanin(GateId gate, std::span<const GateId> fanin);
  void set_fanin(GateId gate, const std::vector<GateId>& fanin);

  // --- accessors -----------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  std::size_t num_gates() const { return type_.size(); }
  // Non-owning view; invalidated by structural edits and gate appends.
  GateView gate(GateId id) const {
    return GateView{type_[id], fanin(id), gate_name_[id]};
  }
  GateType gate_type(GateId id) const { return type_[id]; }
  std::span<const GateId> fanin(GateId id) const {
    return {fanin_arena_.data() + fanin_begin_[id], fanin_count_[id]};
  }
  std::size_t fanin_size(GateId id) const { return fanin_count_[id]; }
  const std::string& gate_name(GateId id) const { return gate_name_[id]; }
  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> keys() const { return keys_; }
  std::span<const OutputPort> outputs() const { return outputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_keys() const { return keys_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  // Number of gates that are neither sources nor outputs bookkeeping; i.e.
  // actual logic (excludes consts/inputs/keys).
  std::size_t num_logic_gates() const;

  // Index of `gate` within keys(), or -1 if it is not a key input.
  int key_index(GateId gate) const;
  // Index of `gate` within inputs(), or -1.
  int input_index(GateId gate) const;

  // Bumped by every structural edit; cached graph queries key off it.
  std::uint64_t generation() const { return generation_; }

  // --- graph queries (cached against generation()) -------------------------
  // Topological order over all gates (sources first). std::nullopt if cyclic.
  // Returns a copy; hot paths should use topo_span().
  std::optional<std::vector<GateId>> topological_order() const;
  bool is_cyclic() const;
  // Cached topological order. Empty iff the netlist is cyclic (check
  // is_cyclic() to distinguish from an empty netlist).
  std::span<const GateId> topo_span() const;
  // Cached fanout row: gates reading net g (deduplicated, ascending).
  std::span<const GateId> fanout(GateId id) const;
  // fanout[g] = gates reading net g (deduplicated, sorted). Returns a copy;
  // hot paths should use fanout(id).
  std::vector<std::vector<GateId>> fanout_map() const;
  // Set of gates from which `target` is reachable (i.e. transitive fanin cone
  // of target, including target itself).
  std::vector<bool> fanin_cone(GateId target) const;
  // Set of gates reachable from `source` (transitive fanout, incl. source).
  std::vector<bool> fanout_cone(GateId source) const;
  // Logic depth (levels) of each gate; cyclic netlists return nullopt.
  std::optional<std::vector<int>> levels() const;
  // Cached levels; empty iff cyclic (or the netlist is empty).
  std::span<const int> levels_span() const;

  // Throws std::logic_error if any fanin id is out of range or arity is wrong.
  void validate() const;

  // Per-gate-type population count, e.g. for reports.
  std::vector<std::size_t> type_histogram() const;

 private:
  struct GraphCache {
    bool cyclic = false;
    std::vector<GateId> topo;             // empty when cyclic
    std::vector<std::uint32_t> fanout_begin;  // size num_gates + 1
    std::vector<GateId> fanout_arena;         // dedup, ascending per row
    std::vector<int> levels;              // empty when cyclic
  };

  void check_arity(GateType type, std::size_t n_fanin) const;
  GateId append_gate(GateType type, std::span<const GateId> fanin,
                     std::string name);
  // Invalidate caches after a structural edit.
  void touch() { ++generation_; }
  // Fills (if stale) and returns the graph cache.
  const GraphCache& graph() const;

  std::string name_;
  std::vector<GateType> type_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<std::uint32_t> fanin_count_;
  std::vector<GateId> fanin_arena_;
  std::vector<std::string> gate_name_;
  std::vector<GateId> inputs_;
  std::vector<GateId> keys_;
  std::vector<OutputPort> outputs_;
  std::uint64_t generation_ = 0;

  mutable GraphCache cache_;
  // Generation the cache was built for; ~0 = never. Atomic so concurrent
  // const queries can skip the mutex once the cache is current.
  mutable std::atomic<std::uint64_t> cache_generation_{~std::uint64_t{0}};
  mutable std::mutex cache_mutex_;
};

}  // namespace fl::netlist
