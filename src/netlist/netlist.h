// Combinational netlist container.
//
// Gates live in a flat vector; GateId indexes it. The container supports the
// structural edits used by logic locking (rewiring fanins, retyping gates,
// appending key inputs) and the queries used by attacks (topological order,
// cycle detection, fanout maps).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate.h"

namespace fl::netlist {

struct OutputPort {
  GateId gate = kNullGate;
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // --- construction -------------------------------------------------------
  GateId add_input(std::string name);
  GateId add_key(std::string name);
  GateId add_const(bool value);
  // Adds a logic gate. Fanin ids must already exist. Throws std::invalid_argument
  // on arity violations.
  GateId add_gate(GateType type, std::vector<GateId> fanin, std::string name = "");
  // Marks an existing gate as (an additional) primary output.
  void mark_output(GateId gate, std::string name = "");
  void clear_outputs() { outputs_.clear(); }
  // Re-points output port `index` at a different net (name is kept).
  void set_output_gate(std::size_t index, GateId gate);

  // --- structural edits (used by locking transforms) -----------------------
  // Replaces every occurrence of `from` in `gate`'s fanin with `to`.
  void replace_fanin_of(GateId gate, GateId from, GateId to);
  // Replaces every reader of net `from` (fanins of all gates, and output
  // ports) with net `to`. Does not touch `from` itself.
  void replace_net(GateId from, GateId to);
  // Retypes a gate in place (arity is re-validated).
  void retype(GateId gate, GateType type);
  // Replaces a gate's fanin list wholesale.
  void set_fanin(GateId gate, std::vector<GateId> fanin);

  // --- accessors -----------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  std::span<const Gate> gates() const { return gates_; }
  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> keys() const { return keys_; }
  std::span<const OutputPort> outputs() const { return outputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_keys() const { return keys_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  // Number of gates that are neither sources nor outputs bookkeeping; i.e.
  // actual logic (excludes consts/inputs/keys).
  std::size_t num_logic_gates() const;

  // Index of `gate` within keys(), or -1 if it is not a key input.
  int key_index(GateId gate) const;
  // Index of `gate` within inputs(), or -1.
  int input_index(GateId gate) const;

  // --- graph queries -------------------------------------------------------
  // Topological order over all gates (sources first). std::nullopt if cyclic.
  std::optional<std::vector<GateId>> topological_order() const;
  bool is_cyclic() const;
  // fanout[g] = gates reading net g (deduplicated, sorted).
  std::vector<std::vector<GateId>> fanout_map() const;
  // Set of gates from which `target` is reachable (i.e. transitive fanin cone
  // of target, including target itself).
  std::vector<bool> fanin_cone(GateId target) const;
  // Set of gates reachable from `source` (transitive fanout, incl. source).
  std::vector<bool> fanout_cone(GateId source) const;
  // Logic depth (levels) of each gate; cyclic netlists return nullopt.
  std::optional<std::vector<int>> levels() const;

  // Throws std::logic_error if any fanin id is out of range or arity is wrong.
  void validate() const;

  // Per-gate-type population count, e.g. for reports.
  std::vector<std::size_t> type_histogram() const;

 private:
  void check_arity(GateType type, std::size_t n_fanin) const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> keys_;
  std::vector<OutputPort> outputs_;
};

}  // namespace fl::netlist
