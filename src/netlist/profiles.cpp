#include "netlist/profiles.h"

#include <array>
#include <stdexcept>

#include "netlist/bench_io.h"
#include "netlist/generator.h"

namespace fl::netlist {

namespace {

// Table 5, columns "# Gates" and "# I/Os".
constexpr std::size_t kNumProfiles = 13;
const std::array<BenchmarkProfile, kNumProfiles>& profile_table() {
  static const std::array<BenchmarkProfile, kNumProfiles> table = {{
      {"c432", 160, 36, 7},
      {"c499", 202, 41, 32},
      {"c880", 386, 60, 26},
      {"c1355", 546, 41, 32},
      {"c1908", 880, 33, 25},
      {"c2670", 1193, 157, 64},
      {"c3540", 1669, 50, 22},
      {"c5315", 2307, 178, 123},
      {"c7552", 3512, 206, 107},
      {"apex2", 610, 39, 3},
      {"apex4", 5360, 10, 19},
      {"i4", 338, 192, 6},
      {"i7", 1315, 199, 67},
  }};
  return table;
}

// Production-scale synthetic shapes for the million-gate substrate
// benchmarks (bench_netlist). IO widths follow the larger Table-5 circuits.
constexpr std::size_t kNumScaled = 3;
const std::array<BenchmarkProfile, kNumScaled>& scaled_table() {
  static const std::array<BenchmarkProfile, kNumScaled> table = {{
      {"synth64k", 65536, 256, 128},
      {"synth256k", 262144, 256, 128},
      {"synth1m", 1048576, 256, 128},
  }};
  return table;
}

}  // namespace

std::span<const BenchmarkProfile> table5_profiles() { return profile_table(); }

std::span<const BenchmarkProfile> scaled_profiles() { return scaled_table(); }

std::optional<BenchmarkProfile> find_profile(std::string_view name) {
  for (const BenchmarkProfile& p : profile_table()) {
    if (p.name == name) return p;
  }
  for (const BenchmarkProfile& p : scaled_table()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

Netlist make_circuit(const BenchmarkProfile& profile, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_inputs = profile.num_inputs;
  config.num_outputs = profile.num_outputs;
  config.num_gates = profile.num_gates;
  // Distinct profiles get distinct streams even at equal seed.
  std::uint64_t mix = seed;
  for (const char c : profile.name) mix = mix * 131 + static_cast<unsigned char>(c);
  config.seed = mix;
  Netlist netlist = generate_circuit(config);
  netlist.set_name(profile.name);
  return netlist;
}

Netlist make_circuit(std::string_view profile_name, std::uint64_t seed) {
  const auto profile = find_profile(profile_name);
  if (!profile) {
    throw std::invalid_argument("unknown benchmark profile: " +
                                std::string(profile_name));
  }
  return make_circuit(*profile, seed);
}

Netlist make_c17() {
  // Canonical ISCAS-85 c17 (public domain).
  static const char* kC17 = R"(
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return read_bench_string(kC17, "c17");
}

}  // namespace fl::netlist
