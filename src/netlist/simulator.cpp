#include "netlist/simulator.h"

#include <stdexcept>

namespace fl::netlist {

Word eval_gate(GateType type, std::span<const Word> fanin) {
  switch (type) {
    case GateType::kConst0: return Word{0};
    case GateType::kConst1: return ~Word{0};
    case GateType::kInput:
    case GateType::kKey:
      throw std::logic_error("source gate evaluated without stimulus");
    case GateType::kBuf: return fanin[0];
    case GateType::kNot: return ~fanin[0];
    case GateType::kAnd: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return v;
    }
    case GateType::kNand: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return ~v;
    }
    case GateType::kOr: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return v;
    }
    case GateType::kNor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return ~v;
    }
    case GateType::kXor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return v;
    }
    case GateType::kXnor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return ~v;
    }
    case GateType::kMux:
      // fanin = {sel, a, b}: out = sel ? b : a, bitwise.
      return (fanin[0] & fanin[2]) | (~fanin[0] & fanin[1]);
  }
  throw std::logic_error("unknown gate type");
}

namespace {

// Shared inner loop: fills `value` for every gate given stimulus.
void sweep_sources(const Netlist& netlist, std::span<const Word> inputs,
                   std::span<const Word> keys, std::vector<Word>& value) {
  if (inputs.size() != netlist.num_inputs() ||
      keys.size() != netlist.num_keys()) {
    throw std::invalid_argument("stimulus width mismatch");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[netlist.inputs()[i]] = inputs[i];
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    value[netlist.keys()[i]] = keys[i];
  }
}

Word eval_gate_at(const Netlist& netlist, GateId g,
                  const std::vector<Word>& value) {
  const Gate& gate = netlist.gate(g);
  Word buf[8];
  std::span<const Word> fan;
  if (gate.fanin.size() <= 8) {
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      buf[i] = value[gate.fanin[i]];
    }
    fan = std::span<const Word>(buf, gate.fanin.size());
    return eval_gate(gate.type, fan);
  }
  std::vector<Word> big(gate.fanin.size());
  for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
    big[i] = value[gate.fanin[i]];
  }
  return eval_gate(gate.type, big);
}

}  // namespace

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  auto order = netlist.topological_order();
  if (!order) throw std::invalid_argument("Simulator requires acyclic netlist");
  order_ = std::move(*order);
}

std::vector<Word> Simulator::run_full(std::span<const Word> inputs,
                                      std::span<const Word> keys) const {
  std::vector<Word> value(netlist_.num_gates(), 0);
  sweep_sources(netlist_, inputs, keys, value);
  for (const GateId g : order_) {
    const Gate& gate = netlist_.gate(g);
    if (is_source(gate.type)) {
      if (gate.type == GateType::kConst1) value[g] = ~Word{0};
      if (gate.type == GateType::kConst0) value[g] = 0;
      continue;
    }
    value[g] = eval_gate_at(netlist_, g, value);
  }
  return value;
}

std::vector<Word> Simulator::run(std::span<const Word> inputs,
                                 std::span<const Word> keys) const {
  const std::vector<Word> value = run_full(inputs, keys);
  std::vector<Word> out;
  out.reserve(netlist_.num_outputs());
  for (const OutputPort& o : netlist_.outputs()) {
    out.push_back(value[o.gate]);
  }
  return out;
}

CyclicSimResult simulate_cyclic(const Netlist& netlist,
                                std::span<const Word> inputs,
                                std::span<const Word> keys, int max_sweeps,
                                bool init_ones) {
  if (max_sweeps <= 0) {
    max_sweeps = static_cast<int>(netlist.num_gates()) + 8;
  }
  std::vector<Word> value(netlist.num_gates(), init_ones ? ~Word{0} : Word{0});
  sweep_sources(netlist, inputs, keys, value);
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const GateType t = netlist.gate(static_cast<GateId>(g)).type;
    if (t == GateType::kConst1) value[g] = ~Word{0};
    if (t == GateType::kConst0) value[g] = 0;
  }
  Word changed = ~Word{0};
  for (int sweep = 0; sweep < max_sweeps && changed != 0; ++sweep) {
    changed = 0;
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const Gate& gate = netlist.gate(static_cast<GateId>(g));
      if (is_source(gate.type)) continue;
      const Word next = eval_gate_at(netlist, static_cast<GateId>(g), value);
      changed |= next ^ value[g];
      value[g] = next;
    }
  }
  CyclicSimResult result;
  result.converged = ~changed;  // patterns still flipping did not settle
  result.outputs.reserve(netlist.num_outputs());
  for (const OutputPort& o : netlist.outputs()) {
    result.outputs.push_back(value[o.gate]);
  }
  return result;
}

std::vector<bool> eval_once(const Netlist& netlist,
                            const std::vector<bool>& inputs,
                            const std::vector<bool>& keys) {
  std::vector<Word> in_words(inputs.size());
  std::vector<Word> key_words(keys.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    in_words[i] = inputs[i] ? ~Word{0} : 0;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    key_words[i] = keys[i] ? ~Word{0} : 0;
  }
  std::vector<Word> out_words;
  if (netlist.is_cyclic()) {
    out_words = simulate_cyclic(netlist, in_words, key_words).outputs;
  } else {
    out_words = Simulator(netlist).run(in_words, key_words);
  }
  std::vector<bool> out(out_words.size());
  for (std::size_t i = 0; i < out_words.size(); ++i) {
    out[i] = (out_words[i] & 1u) != 0;
  }
  return out;
}

}  // namespace fl::netlist
