#include "netlist/simulator.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fl::netlist {

Word eval_gate(GateType type, std::span<const Word> fanin) {
  switch (type) {
    case GateType::kConst0: return Word{0};
    case GateType::kConst1: return ~Word{0};
    case GateType::kInput:
    case GateType::kKey:
      throw std::logic_error("source gate evaluated without stimulus");
    case GateType::kBuf: return fanin[0];
    case GateType::kNot: return ~fanin[0];
    case GateType::kAnd: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return v;
    }
    case GateType::kNand: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return ~v;
    }
    case GateType::kOr: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return v;
    }
    case GateType::kNor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return ~v;
    }
    case GateType::kXor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return v;
    }
    case GateType::kXnor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return ~v;
    }
    case GateType::kMux:
      // fanin = {sel, a, b}: out = sel ? b : a, bitwise.
      return (fanin[0] & fanin[2]) | (~fanin[0] & fanin[1]);
  }
  throw std::logic_error("unknown gate type");
}

namespace {

// Shared inner loop: fills `value` for every gate given stimulus.
void sweep_sources(const Netlist& netlist, std::span<const Word> inputs,
                   std::span<const Word> keys, std::vector<Word>& value) {
  if (inputs.size() != netlist.num_inputs() ||
      keys.size() != netlist.num_keys()) {
    throw std::invalid_argument("stimulus width mismatch");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[netlist.inputs()[i]] = inputs[i];
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    value[netlist.keys()[i]] = keys[i];
  }
}

// `big` is caller-held scratch reused across gates so wide fanins (arity > 8)
// do not heap-allocate per gate.
Word eval_gate_at(const Netlist& netlist, GateId g,
                  const std::vector<Word>& value, std::vector<Word>& big) {
  const std::span<const GateId> fanin = netlist.fanin(g);
  const GateType type = netlist.gate_type(g);
  Word buf[8];
  if (fanin.size() <= 8) {
    for (std::size_t i = 0; i < fanin.size(); ++i) buf[i] = value[fanin[i]];
    return eval_gate(type, std::span<const Word>(buf, fanin.size()));
  }
  big.resize(fanin.size());
  for (std::size_t i = 0; i < fanin.size(); ++i) big[i] = value[fanin[i]];
  return eval_gate(type, big);
}

// Evaluates one gate over kSimdWords-word blocks stored gate-major in `val`
// (block of gate g at val + g * kSimdWords).
simd::Vec eval_block(GateType type, const Word* val,
                     std::span<const GateId> fanin) {
  using namespace simd;
  const auto in = [&](std::size_t i) {
    return load(val + static_cast<std::size_t>(fanin[i]) * kSimdWords);
  };
  switch (type) {
    case GateType::kConst0: return zeros();
    case GateType::kConst1: return ones();
    case GateType::kInput:
    case GateType::kKey:
      throw std::logic_error("source gate evaluated without stimulus");
    case GateType::kBuf: return in(0);
    case GateType::kNot: return v_not(in(0));
    case GateType::kAnd: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_and(v, in(i));
      return v;
    }
    case GateType::kNand: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_and(v, in(i));
      return v_not(v);
    }
    case GateType::kOr: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_or(v, in(i));
      return v;
    }
    case GateType::kNor: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_or(v, in(i));
      return v_not(v);
    }
    case GateType::kXor: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_xor(v, in(i));
      return v;
    }
    case GateType::kXnor: {
      Vec v = in(0);
      for (std::size_t i = 1; i < fanin.size(); ++i) v = v_xor(v, in(i));
      return v_not(v);
    }
    case GateType::kMux: return v_mux(in(0), in(1), in(2));
  }
  throw std::logic_error("unknown gate type");
}

}  // namespace

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  // topo_span() hits the netlist's cached order: constructing a Simulator
  // right after an is_cyclic() check costs one Kahn pass total, not two.
  if (netlist.is_cyclic()) {
    throw std::invalid_argument("Simulator requires acyclic netlist");
  }
  const std::span<const GateId> order = netlist.topo_span();
  order_.assign(order.begin(), order.end());
}

std::vector<Word> Simulator::run_full(std::span<const Word> inputs,
                                      std::span<const Word> keys) const {
  std::vector<Word> value(netlist_.num_gates(), 0);
  std::vector<Word> big;
  sweep_sources(netlist_, inputs, keys, value);
  for (const GateId g : order_) {
    const GateType type = netlist_.gate_type(g);
    if (is_source(type)) {
      if (type == GateType::kConst1) value[g] = ~Word{0};
      if (type == GateType::kConst0) value[g] = 0;
      continue;
    }
    value[g] = eval_gate_at(netlist_, g, value, big);
  }
  return value;
}

std::vector<Word> Simulator::run(std::span<const Word> inputs,
                                 std::span<const Word> keys) const {
  const std::vector<Word> value = run_full(inputs, keys);
  std::vector<Word> out;
  out.reserve(netlist_.num_outputs());
  for (const OutputPort& o : netlist_.outputs()) {
    out.push_back(value[o.gate]);
  }
  return out;
}

void Simulator::run_batch(std::span<const Word> inputs,
                          std::span<const Word> keys, std::size_t n_words,
                          Scratch& scratch, std::span<Word> outputs) const {
  constexpr std::size_t kW = simd::kSimdWords;
  const std::size_t n_in = netlist_.num_inputs();
  const std::size_t n_key = netlist_.num_keys();
  const std::size_t n_out = netlist_.num_outputs();
  if (inputs.size() != n_in * n_words) {
    throw std::invalid_argument("run_batch: input size mismatch");
  }
  // Keys may be given per-word (num_keys * n_words, net-major like inputs)
  // or as one word per key broadcast across the whole batch.
  const bool key_broadcast = (keys.size() == n_key);
  if (!key_broadcast && keys.size() != n_key * n_words) {
    throw std::invalid_argument("run_batch: key size mismatch");
  }
  if (outputs.size() != n_out * n_words) {
    throw std::invalid_argument("run_batch: output size mismatch");
  }
  if (n_words == 0) return;

  scratch.value.resize(netlist_.num_gates() * kW);
  Word* const val = scratch.value.data();
  const std::size_t n_blocks = (n_words + kW - 1) / kW;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t w0 = b * kW;
    const std::size_t wn = std::min(kW, n_words - w0);
    for (std::size_t i = 0; i < n_in; ++i) {
      Word* dst = val + static_cast<std::size_t>(netlist_.inputs()[i]) * kW;
      const Word* src = inputs.data() + i * n_words + w0;
      std::memcpy(dst, src, wn * sizeof(Word));
      std::fill(dst + wn, dst + kW, Word{0});
    }
    for (std::size_t k = 0; k < n_key; ++k) {
      Word* dst = val + static_cast<std::size_t>(netlist_.keys()[k]) * kW;
      if (key_broadcast) {
        std::fill(dst, dst + kW, keys[k]);
      } else {
        const Word* src = keys.data() + k * n_words + w0;
        std::memcpy(dst, src, wn * sizeof(Word));
        std::fill(dst + wn, dst + kW, Word{0});
      }
    }
    for (const GateId g : order_) {
      const GateType type = netlist_.gate_type(g);
      if (type == GateType::kInput || type == GateType::kKey) continue;
      simd::store(val + static_cast<std::size_t>(g) * kW,
                  eval_block(type, val, netlist_.fanin(g)));
    }
    for (std::size_t o = 0; o < n_out; ++o) {
      const Word* src =
          val + static_cast<std::size_t>(netlist_.outputs()[o].gate) * kW;
      std::memcpy(outputs.data() + o * n_words + w0, src, wn * sizeof(Word));
    }
  }
}

CyclicSimResult simulate_cyclic(const Netlist& netlist,
                                std::span<const Word> inputs,
                                std::span<const Word> keys,
                                long long max_sweeps, bool init_ones) {
  if (max_sweeps <= 0) {
    // 64-bit arithmetic: at a million-plus gates the old int expression
    // could overflow.
    max_sweeps = static_cast<long long>(netlist.num_gates()) + 8;
  }
  std::vector<Word> value(netlist.num_gates(), init_ones ? ~Word{0} : Word{0});
  std::vector<Word> big;
  sweep_sources(netlist, inputs, keys, value);
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const GateType t = netlist.gate_type(static_cast<GateId>(g));
    if (t == GateType::kConst1) value[g] = ~Word{0};
    if (t == GateType::kConst0) value[g] = 0;
  }
  Word changed = ~Word{0};
  for (long long sweep = 0; sweep < max_sweeps && changed != 0; ++sweep) {
    changed = 0;
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const GateId id = static_cast<GateId>(g);
      if (is_source(netlist.gate_type(id))) continue;
      const Word next = eval_gate_at(netlist, id, value, big);
      changed |= next ^ value[g];
      value[g] = next;
    }
  }
  CyclicSimResult result;
  result.converged = ~changed;  // patterns still flipping did not settle
  result.outputs.reserve(netlist.num_outputs());
  for (const OutputPort& o : netlist.outputs()) {
    result.outputs.push_back(value[o.gate]);
  }
  return result;
}

std::vector<bool> eval_once(const Netlist& netlist,
                            const std::vector<bool>& inputs,
                            const std::vector<bool>& keys) {
  std::vector<Word> in_words(inputs.size());
  std::vector<Word> key_words(keys.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    in_words[i] = inputs[i] ? ~Word{0} : 0;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    key_words[i] = keys[i] ? ~Word{0} : 0;
  }
  std::vector<Word> out_words;
  // is_cyclic() fills the netlist's graph cache; the Simulator constructor
  // below reuses it, so the acyclic path runs a single Kahn pass.
  if (netlist.is_cyclic()) {
    out_words = simulate_cyclic(netlist, in_words, key_words).outputs;
  } else {
    out_words = Simulator(netlist).run(in_words, key_words);
  }
  std::vector<bool> out(out_words.size());
  for (std::size_t i = 0; i < out_words.size(); ++i) {
    out[i] = (out_words[i] & 1u) != 0;
  }
  return out;
}

}  // namespace fl::netlist
