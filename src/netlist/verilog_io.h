// Structural Verilog-2001 netlist writer.
//
// Emits one module with primitive continuous assignments (&, |, ^, ~, ?:),
// suitable for synthesis handoff of locked designs. Key inputs appear as
// ordinary input ports named per the keyinput convention, so downstream
// flows treat them as tie-offs from the tamper-proof key memory.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace fl::netlist {

void write_verilog(const Netlist& netlist, std::ostream& out,
                   const std::string& module_name = "");
std::string write_verilog_string(const Netlist& netlist,
                                 const std::string& module_name = "");

}  // namespace fl::netlist
