#include "netlist/structure.h"

#include <algorithm>
#include <stdexcept>

namespace fl::netlist {

Reachability::Reachability(const Netlist& netlist)
    : netlist_(netlist),
      fanout_(netlist.fanout_map()),
      cache_(netlist.num_gates()),
      cached_(netlist.num_gates(), false) {}

bool Reachability::reaches(GateId from, GateId to) {
  if (!cached_[from]) {
    std::vector<bool> cone(netlist_.num_gates(), false);
    std::vector<GateId> stack{from};
    cone[from] = true;
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (const GateId out : fanout_[g]) {
        if (!cone[out]) {
          cone[out] = true;
          stack.push_back(out);
        }
      }
    }
    cache_[from] = std::move(cone);
    cached_[from] = true;
  }
  return cache_[from][to];
}

std::vector<bool> live_gates(const Netlist& netlist) {
  std::vector<bool> live(netlist.num_gates(), false);
  std::vector<GateId> stack;
  for (const OutputPort& o : netlist.outputs()) {
    if (!live[o.gate]) {
      live[o.gate] = true;
      stack.push_back(o.gate);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : netlist.gate(g).fanin) {
      if (!live[f]) {
        live[f] = true;
        stack.push_back(f);
      }
    }
  }
  return live;
}

KeyConePartition::KeyConePartition(const Netlist& netlist)
    : netlist_(netlist), built_generation_(~std::uint64_t{0}) {}

void KeyConePartition::ensure() {
  if (built_generation_ == netlist_.generation()) return;

  const std::size_t n = netlist_.num_gates();
  in_cone_.assign(n, false);
  cone_topo_.clear();
  taps_.clear();
  support_topo_.clear();
  fixed_region_ = Netlist(netlist_.name() + ".fixed");

  // Cone mask: transitive fanout of the key inputs (keys included). BFS over
  // the cached fanout CSR; works for cyclic netlists too.
  std::vector<GateId> stack;
  for (const GateId k : netlist_.keys()) {
    in_cone_[k] = true;
    stack.push_back(k);
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId reader : netlist_.fanout(g)) {
      if (!in_cone_[reader]) {
        in_cone_[reader] = true;
        stack.push_back(reader);
      }
    }
  }
  // Stamp the generation only after the mask: the topological views below
  // stay empty for cyclic netlists and their accessors throw.
  built_generation_ = netlist_.generation();
  if (netlist_.is_cyclic()) return;

  const std::vector<bool> live = live_gates(netlist_);

  // Taps: non-cone nets read by live cone gates, plus non-cone output ports.
  // (Both are live by construction: a live reader's fanins are live.)
  std::vector<bool> is_tap(n, false);
  for (GateId g = 0; g < n; ++g) {
    if (!in_cone_[g] || !live[g]) continue;
    for (const GateId f : netlist_.fanin(g)) {
      if (!in_cone_[f]) is_tap[f] = true;
    }
  }
  for (const OutputPort& o : netlist_.outputs()) {
    if (!in_cone_[o.gate]) is_tap[o.gate] = true;
  }
  for (GateId g = 0; g < n; ++g) {
    if (is_tap[g]) taps_.push_back(g);
  }

  // Support: transitive fanin of the key-dependent output ports. The
  // key-independent ports cancel in any miter, so a full copy only needs
  // these gates.
  std::vector<bool> in_support(n, false);
  for (const OutputPort& o : netlist_.outputs()) {
    if (in_cone_[o.gate] && !in_support[o.gate]) {
      in_support[o.gate] = true;
      stack.push_back(o.gate);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : netlist_.fanin(g)) {
      if (!in_support[f]) {
        in_support[f] = true;
        stack.push_back(f);
      }
    }
  }

  for (const GateId g : netlist_.topo_span()) {
    if (is_source(netlist_.gate_type(g))) continue;
    if (in_cone_[g] && live[g]) cone_topo_.push_back(g);
    if (in_support[g]) support_topo_.push_back(g);
  }

  // Fixed region: live non-cone gates over the full primary-input interface,
  // with the taps as outputs. Fanins of live non-cone gates are live and
  // non-cone themselves, so the remap below never sees a hole.
  std::vector<GateId> remap(n, kNullGate);
  for (const GateId g : netlist_.inputs()) {
    remap[g] = fixed_region_.add_input(netlist_.gate_name(g));
  }
  for (const GateId g : netlist_.topo_span()) {
    if (remap[g] != kNullGate || in_cone_[g] || !live[g]) continue;
    const GateType t = netlist_.gate_type(g);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      remap[g] = fixed_region_.add_const(t == GateType::kConst1);
      continue;
    }
    if (is_source(t)) continue;  // keys are in the cone; inputs done above
    std::vector<GateId> fanin;
    const auto fan = netlist_.fanin(g);
    fanin.reserve(fan.size());
    for (const GateId f : fan) fanin.push_back(remap[f]);
    remap[g] = fixed_region_.add_gate(t, std::move(fanin));
  }
  for (const GateId g : taps_) {
    fixed_region_.mark_output(remap[g]);
  }
}

bool KeyConePartition::in_cone(GateId g) {
  ensure();
  return in_cone_[g];
}

namespace {
void require_acyclic(const Netlist& netlist, const char* what) {
  if (netlist.is_cyclic()) {
    throw std::invalid_argument(std::string("KeyConePartition::") + what +
                                ": needs an acyclic netlist");
  }
}
}  // namespace

std::span<const GateId> KeyConePartition::cone_topo() {
  ensure();
  require_acyclic(netlist_, "cone_topo");
  return cone_topo_;
}

std::span<const GateId> KeyConePartition::taps() {
  ensure();
  require_acyclic(netlist_, "taps");
  return taps_;
}

std::span<const GateId> KeyConePartition::support_topo() {
  ensure();
  require_acyclic(netlist_, "support_topo");
  return support_topo_;
}

const Netlist& KeyConePartition::fixed_region() {
  ensure();
  require_acyclic(netlist_, "fixed_region");
  return fixed_region_;
}

std::vector<Edge> feedback_edges(const Netlist& netlist) {
  // Iterative DFS over the fanin graph; a back edge (to a gate currently on
  // the DFS stack) is a feedback edge.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  const std::size_t n = netlist.num_gates();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<Edge> feedback;

  struct Frame {
    GateId gate;
    std::size_t next_pin;
  };
  std::vector<Frame> stack;
  for (GateId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    color[root] = Color::kGray;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Gate& gate = netlist.gate(frame.gate);
      if (frame.next_pin < gate.fanin.size()) {
        const std::size_t pin = frame.next_pin++;
        const GateId src = gate.fanin[pin];
        if (color[src] == Color::kWhite) {
          color[src] = Color::kGray;
          stack.push_back({src, 0});
        } else if (color[src] == Color::kGray) {
          feedback.push_back(Edge{frame.gate, pin, src});
        }
      } else {
        color[frame.gate] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return feedback;
}

Netlist compact(const Netlist& netlist, std::vector<GateId>* remap_out) {
  const std::vector<bool> live = live_gates(netlist);
  Netlist out(netlist.name());
  std::vector<GateId> remap(netlist.num_gates(), kNullGate);
  // Sources first, in interface order, live or not.
  for (const GateId g : netlist.inputs()) {
    remap[g] = out.add_input(netlist.gate(g).name);
  }
  for (const GateId g : netlist.keys()) {
    remap[g] = out.add_key(netlist.gate(g).name);
  }
  // Remaining gates in an id order pass; ids only increase, so any live
  // acyclic gate sees its fanins remapped... but cyclic netlists and
  // forward references require a placeholder patch pass, mirroring bench_io.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    if (remap[g] != kNullGate || !live[g]) continue;
    if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1) {
      remap[g] = out.add_const(gate.type == GateType::kConst1);
      continue;
    }
    remap[g] = out.add_gate(gate.type,
                            std::vector<GateId>(gate.fanin.size(), 0),
                            gate.name);
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    if (remap[g] == kNullGate || is_source(gate.type)) continue;
    std::vector<GateId> fanin;
    fanin.reserve(gate.fanin.size());
    for (const GateId f : gate.fanin) fanin.push_back(remap[f]);
    out.set_fanin(remap[g], std::move(fanin));
  }
  for (const OutputPort& o : netlist.outputs()) {
    out.mark_output(remap[o.gate], o.name);
  }
  out.validate();
  if (remap_out != nullptr) *remap_out = std::move(remap);
  return out;
}

namespace {

// Non-inverting base operation of each decomposable n-ary family.
GateType tree_op(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand: return GateType::kAnd;
    case GateType::kOr:
    case GateType::kNor: return GateType::kOr;
    case GateType::kXor:
    case GateType::kXnor: return GateType::kXor;
    default: return type;
  }
}

bool inverted_family(GateType type) {
  return type == GateType::kNand || type == GateType::kNor ||
         type == GateType::kXnor;
}

}  // namespace

Netlist decompose_to_two_input(const Netlist& netlist) {
  Netlist out(netlist.name());
  std::vector<GateId> remap(netlist.num_gates(), kNullGate);
  for (const GateId g : netlist.inputs()) {
    remap[g] = out.add_input(netlist.gate(g).name);
  }
  for (const GateId g : netlist.keys()) {
    remap[g] = out.add_key(netlist.gate(g).name);
  }
  const auto order = netlist.topological_order();
  if (!order) {
    throw std::invalid_argument("decompose_to_two_input: cyclic netlist");
  }
  for (const GateId g : *order) {
    const Gate& gate = netlist.gate(g);
    if (is_source(gate.type)) {
      if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1) {
        remap[g] = out.add_const(gate.type == GateType::kConst1);
      }
      continue;
    }
    std::vector<GateId> fanin;
    fanin.reserve(gate.fanin.size());
    for (const GateId f : gate.fanin) fanin.push_back(remap[f]);
    if (fanin.size() <= 2 || gate.type == GateType::kMux) {
      remap[g] = out.add_gate(gate.type, std::move(fanin), gate.name);
      continue;
    }
    // Balanced reduction; the *last* combining node carries the family's
    // inversion and the original name.
    const GateType op = tree_op(gate.type);
    std::vector<GateId> layer = std::move(fanin);
    while (layer.size() > 2) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(out.add_gate(op, {layer[i], layer[i + 1]}));
      }
      if (layer.size() % 2 == 1) next.push_back(layer.back());
      layer = std::move(next);
    }
    const GateType root_op =
        inverted_family(gate.type)
            ? (op == GateType::kAnd
                   ? GateType::kNand
                   : op == GateType::kOr ? GateType::kNor : GateType::kXnor)
            : op;
    remap[g] = out.add_gate(root_op, {layer[0], layer[1]}, gate.name);
  }
  for (const OutputPort& o : netlist.outputs()) {
    out.mark_output(remap[o.gate], o.name);
  }
  out.validate();
  return out;
}

namespace {

double gate_probability(const Gate& gate, const std::vector<double>& p) {
  auto pin = [&](std::size_t i) { return p[gate.fanin[i]]; };
  switch (gate.type) {
    case GateType::kConst0: return 0.0;
    case GateType::kConst1: return 1.0;
    case GateType::kInput:
    case GateType::kKey: return 0.5;
    case GateType::kBuf: return pin(0);
    case GateType::kNot: return 1.0 - pin(0);
    case GateType::kAnd:
    case GateType::kNand: {
      double v = 1.0;
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) v *= pin(i);
      return gate.type == GateType::kAnd ? v : 1.0 - v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double v = 1.0;
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) v *= 1.0 - pin(i);
      return gate.type == GateType::kOr ? 1.0 - v : v;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      double v = pin(0);
      for (std::size_t i = 1; i < gate.fanin.size(); ++i) {
        const double q = pin(i);
        v = v * (1.0 - q) + q * (1.0 - v);
      }
      return gate.type == GateType::kXor ? v : 1.0 - v;
    }
    case GateType::kMux: {
      const double s = pin(0);
      return (1.0 - s) * pin(1) + s * pin(2);
    }
  }
  return 0.5;
}

}  // namespace

std::vector<double> signal_probabilities(const Netlist& netlist) {
  std::vector<double> p(netlist.num_gates(), 0.5);
  const auto order = netlist.topological_order();
  if (order) {
    for (const GateId g : *order) {
      p[g] = gate_probability(netlist.gate(g), p);
    }
    return p;
  }
  // Cyclic: damped relaxation.
  constexpr int kSweeps = 64;
  constexpr double kDamping = 0.5;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    double delta = 0.0;
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const Gate& gate = netlist.gate(static_cast<GateId>(g));
      if (is_source(gate.type) &&
          gate.type != GateType::kConst0 && gate.type != GateType::kConst1) {
        continue;
      }
      const double next =
          kDamping * gate_probability(gate, p) + (1.0 - kDamping) * p[g];
      delta = std::max(delta, std::abs(next - p[g]));
      p[g] = next;
    }
    if (delta < 1e-9) break;
  }
  return p;
}

}  // namespace fl::netlist
