// Combinational netlist optimization.
//
// A light resynthesis pass: constant propagation, algebraic identities,
// buffer/double-inverter sweeping, structural hashing (CSE), and dead-logic
// removal. Used (a) to clean generated/locked netlists and (b) as the
// attacker's "resynthesize before attacking" preprocessing step — a locked
// design must keep its key dependence through resynthesis, which
// `test_optimize` asserts for every scheme.
//
// Only acyclic netlists are optimized; key inputs are preserved untouched.
#pragma once

#include "netlist/netlist.h"

namespace fl::netlist {

struct OptimizeStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t constants_folded = 0;
  std::size_t identities_applied = 0;  // x&x, x^x, double negation, ...
  std::size_t subexpressions_merged = 0;
  // One-level rewrites against already-hashed structure:
  std::size_t absorptions_applied = 0;   // AND(s,t)=s / AND(s,~t)=0, t leaf of s
  std::size_t xor_pairs_cancelled = 0;   // pairs cancelled by XOR flattening
};

// Returns a functionally equivalent, usually smaller netlist. Throws
// std::invalid_argument for cyclic netlists.
Netlist optimize(const Netlist& netlist, OptimizeStats* stats = nullptr);

}  // namespace fl::netlist
