#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace fl::netlist {

std::string_view to_string(GateType type) {
  switch (type) {
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kInput:  return "INPUT";
    case GateType::kKey:    return "KEY";
    case GateType::kBuf:    return "BUF";
    case GateType::kNot:    return "NOT";
    case GateType::kAnd:    return "AND";
    case GateType::kNand:   return "NAND";
    case GateType::kOr:     return "OR";
    case GateType::kNor:    return "NOR";
    case GateType::kXor:    return "XOR";
    case GateType::kXnor:   return "XNOR";
    case GateType::kMux:    return "MUX";
  }
  return "?";
}

void Netlist::check_arity(GateType type, std::size_t n_fanin) const {
  const int fixed = fixed_arity(type);
  if (fixed >= 0) {
    if (n_fanin != static_cast<std::size_t>(fixed)) {
      throw std::invalid_argument("gate arity mismatch for " +
                                  std::string(to_string(type)));
    }
  } else if (n_fanin < 2) {
    throw std::invalid_argument("n-ary gate needs >= 2 fanins");
  }
}

GateId Netlist::add_input(std::string name) {
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateType::kInput, {}, std::move(name)});
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_key(std::string name) {
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateType::kKey, {}, std::move(name)});
  keys_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value) {
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(
      Gate{value ? GateType::kConst1 : GateType::kConst0, {}, ""});
  return id;
}

GateId Netlist::add_gate(GateType type, std::vector<GateId> fanin,
                         std::string name) {
  if (is_source(type)) {
    throw std::invalid_argument("use add_input/add_key/add_const for sources");
  }
  check_arity(type, fanin.size());
  for (const GateId f : fanin) {
    if (f >= gates_.size()) throw std::invalid_argument("fanin id out of range");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{type, std::move(fanin), std::move(name)});
  return id;
}

void Netlist::mark_output(GateId gate, std::string name) {
  if (gate >= gates_.size()) throw std::invalid_argument("output id out of range");
  if (name.empty()) name = gates_[gate].name;
  outputs_.push_back(OutputPort{gate, std::move(name)});
}

void Netlist::set_output_gate(std::size_t index, GateId gate) {
  if (index >= outputs_.size() || gate >= gates_.size()) {
    throw std::invalid_argument("set_output_gate: index out of range");
  }
  outputs_[index].gate = gate;
}

void Netlist::replace_fanin_of(GateId gate, GateId from, GateId to) {
  for (GateId& f : gates_[gate].fanin) {
    if (f == from) f = to;
  }
}

void Netlist::replace_net(GateId from, GateId to) {
  for (Gate& g : gates_) {
    for (GateId& f : g.fanin) {
      if (f == from) f = to;
    }
  }
  for (OutputPort& o : outputs_) {
    if (o.gate == from) o.gate = to;
  }
}

void Netlist::retype(GateId gate, GateType type) {
  check_arity(type, gates_[gate].fanin.size());
  gates_[gate].type = type;
}

void Netlist::set_fanin(GateId gate, std::vector<GateId> fanin) {
  check_arity(gates_[gate].type, fanin.size());
  for (const GateId f : fanin) {
    if (f >= gates_.size()) throw std::invalid_argument("fanin id out of range");
  }
  gates_[gate].fanin = std::move(fanin);
}

std::size_t Netlist::num_logic_gates() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (!is_source(g.type)) ++n;
  }
  return n;
}

int Netlist::key_index(GateId gate) const {
  const auto it = std::find(keys_.begin(), keys_.end(), gate);
  return it == keys_.end() ? -1 : static_cast<int>(it - keys_.begin());
}

int Netlist::input_index(GateId gate) const {
  const auto it = std::find(inputs_.begin(), inputs_.end(), gate);
  return it == inputs_.end() ? -1 : static_cast<int>(it - inputs_.begin());
}

std::optional<std::vector<GateId>> Netlist::topological_order() const {
  const std::size_t n = gates_.size();
  std::vector<std::uint32_t> pending(n, 0);
  for (std::size_t g = 0; g < n; ++g) {
    pending[g] = static_cast<std::uint32_t>(gates_[g].fanin.size());
  }
  const auto fanout = fanout_map();
  std::vector<GateId> order;
  order.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    if (pending[g] == 0) order.push_back(static_cast<GateId>(g));
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const GateId g = order[head];
    for (const GateId out : fanout[g]) {
      // A gate may read the same net several times; decrement per edge.
      std::uint32_t edges = 0;
      for (const GateId f : gates_[out].fanin) {
        if (f == g) ++edges;
      }
      pending[out] -= edges;
      if (pending[out] == 0) order.push_back(out);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool Netlist::is_cyclic() const { return !topological_order().has_value(); }

std::vector<std::vector<GateId>> Netlist::fanout_map() const {
  std::vector<std::vector<GateId>> fanout(gates_.size());
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    for (const GateId f : gates_[g].fanin) {
      fanout[f].push_back(static_cast<GateId>(g));
    }
  }
  for (auto& v : fanout) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return fanout;
}

std::vector<bool> Netlist::fanin_cone(GateId target) const {
  std::vector<bool> in_cone(gates_.size(), false);
  std::vector<GateId> stack{target};
  in_cone[target] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : gates_[g].fanin) {
      if (!in_cone[f]) {
        in_cone[f] = true;
        stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<bool> Netlist::fanout_cone(GateId source) const {
  const auto fanout = fanout_map();
  std::vector<bool> in_cone(gates_.size(), false);
  std::vector<GateId> stack{source};
  in_cone[source] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId out : fanout[g]) {
      if (!in_cone[out]) {
        in_cone[out] = true;
        stack.push_back(out);
      }
    }
  }
  return in_cone;
}

std::optional<std::vector<int>> Netlist::levels() const {
  const auto order = topological_order();
  if (!order) return std::nullopt;
  std::vector<int> level(gates_.size(), 0);
  for (const GateId g : *order) {
    int lvl = 0;
    for (const GateId f : gates_[g].fanin) {
      lvl = std::max(lvl, level[f] + 1);
    }
    level[g] = lvl;
  }
  return level;
}

void Netlist::validate() const {
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    check_arity(gate.type, gate.fanin.size());
    for (const GateId f : gate.fanin) {
      if (f >= gates_.size()) throw std::logic_error("dangling fanin id");
    }
  }
  for (const OutputPort& o : outputs_) {
    if (o.gate >= gates_.size()) throw std::logic_error("dangling output id");
  }
}

std::vector<std::size_t> Netlist::type_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(GateType::kMux) + 1, 0);
  for (const Gate& g : gates_) {
    hist[static_cast<std::size_t>(g.type)]++;
  }
  return hist;
}

}  // namespace fl::netlist
