#include "netlist/netlist.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fl::netlist {

std::string_view to_string(GateType type) {
  switch (type) {
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kInput:  return "INPUT";
    case GateType::kKey:    return "KEY";
    case GateType::kBuf:    return "BUF";
    case GateType::kNot:    return "NOT";
    case GateType::kAnd:    return "AND";
    case GateType::kNand:   return "NAND";
    case GateType::kOr:     return "OR";
    case GateType::kNor:    return "NOR";
    case GateType::kXor:    return "XOR";
    case GateType::kXnor:   return "XNOR";
    case GateType::kMux:    return "MUX";
  }
  return "?";
}

// The cache mutex is not copyable; copies get fresh (stale) caches, moves
// steal the source's data arrays.
Netlist::Netlist(const Netlist& other)
    : name_(other.name_),
      type_(other.type_),
      fanin_begin_(other.fanin_begin_),
      fanin_count_(other.fanin_count_),
      fanin_arena_(other.fanin_arena_),
      gate_name_(other.gate_name_),
      inputs_(other.inputs_),
      keys_(other.keys_),
      outputs_(other.outputs_),
      generation_(other.generation_) {}

Netlist::Netlist(Netlist&& other) noexcept
    : name_(std::move(other.name_)),
      type_(std::move(other.type_)),
      fanin_begin_(std::move(other.fanin_begin_)),
      fanin_count_(std::move(other.fanin_count_)),
      fanin_arena_(std::move(other.fanin_arena_)),
      gate_name_(std::move(other.gate_name_)),
      inputs_(std::move(other.inputs_)),
      keys_(std::move(other.keys_)),
      outputs_(std::move(other.outputs_)),
      generation_(other.generation_),
      cache_(std::move(other.cache_)),
      cache_generation_(
          other.cache_generation_.load(std::memory_order_relaxed)) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  type_ = other.type_;
  fanin_begin_ = other.fanin_begin_;
  fanin_count_ = other.fanin_count_;
  fanin_arena_ = other.fanin_arena_;
  gate_name_ = other.gate_name_;
  inputs_ = other.inputs_;
  keys_ = other.keys_;
  outputs_ = other.outputs_;
  generation_ = other.generation_;
  cache_ = GraphCache{};  // stale; rebuilt on next query
  cache_generation_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  return *this;
}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  type_ = std::move(other.type_);
  fanin_begin_ = std::move(other.fanin_begin_);
  fanin_count_ = std::move(other.fanin_count_);
  fanin_arena_ = std::move(other.fanin_arena_);
  gate_name_ = std::move(other.gate_name_);
  inputs_ = std::move(other.inputs_);
  keys_ = std::move(other.keys_);
  outputs_ = std::move(other.outputs_);
  generation_ = other.generation_;
  cache_ = std::move(other.cache_);
  cache_generation_.store(
      other.cache_generation_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void Netlist::check_arity(GateType type, std::size_t n_fanin) const {
  const int fixed = fixed_arity(type);
  if (fixed >= 0) {
    if (n_fanin != static_cast<std::size_t>(fixed)) {
      throw std::invalid_argument("gate arity mismatch for " +
                                  std::string(to_string(type)));
    }
  } else if (n_fanin < 2) {
    throw std::invalid_argument("n-ary gate needs >= 2 fanins");
  }
}

GateId Netlist::append_gate(GateType type, std::span<const GateId> fanin,
                            std::string name) {
  if (type_.size() >= kNullGate ||
      fanin_arena_.size() + fanin.size() >
          std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("netlist arena exceeds 32-bit capacity");
  }
  const GateId id = static_cast<GateId>(type_.size());
  type_.push_back(type);
  fanin_begin_.push_back(static_cast<std::uint32_t>(fanin_arena_.size()));
  fanin_count_.push_back(static_cast<std::uint32_t>(fanin.size()));
  fanin_arena_.insert(fanin_arena_.end(), fanin.begin(), fanin.end());
  gate_name_.push_back(std::move(name));
  touch();
  return id;
}

GateId Netlist::add_input(std::string name) {
  const GateId id = append_gate(GateType::kInput, {}, std::move(name));
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_key(std::string name) {
  const GateId id = append_gate(GateType::kKey, {}, std::move(name));
  keys_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value) {
  return append_gate(value ? GateType::kConst1 : GateType::kConst0, {}, "");
}

GateId Netlist::add_gate(GateType type, std::span<const GateId> fanin,
                         std::string name) {
  if (is_source(type)) {
    throw std::invalid_argument("use add_input/add_key/add_const for sources");
  }
  check_arity(type, fanin.size());
  for (const GateId f : fanin) {
    if (f >= type_.size()) throw std::invalid_argument("fanin id out of range");
  }
  return append_gate(type, fanin, std::move(name));
}

GateId Netlist::add_gate(GateType type, std::vector<GateId> fanin,
                         std::string name) {
  return add_gate(type, std::span<const GateId>(fanin), std::move(name));
}

GateId Netlist::add_gate(GateType type, std::initializer_list<GateId> fanin,
                         std::string name) {
  return add_gate(type, std::span<const GateId>(fanin.begin(), fanin.size()),
                  std::move(name));
}

void Netlist::mark_output(GateId gate, std::string name) {
  if (gate >= type_.size()) throw std::invalid_argument("output id out of range");
  if (name.empty()) name = gate_name_[gate];
  outputs_.push_back(OutputPort{gate, std::move(name)});
}

void Netlist::set_output_gate(std::size_t index, GateId gate) {
  if (index >= outputs_.size() || gate >= type_.size()) {
    throw std::invalid_argument("set_output_gate: index out of range");
  }
  outputs_[index].gate = gate;
  touch();
}

void Netlist::replace_fanin_of(GateId gate, GateId from, GateId to) {
  GateId* f = fanin_arena_.data() + fanin_begin_[gate];
  for (std::uint32_t i = 0; i < fanin_count_[gate]; ++i) {
    if (f[i] == from) f[i] = to;
  }
  touch();
}

void Netlist::replace_net(GateId from, GateId to) {
  // A wholesale arena sweep also rewrites segments leaked by a growing
  // set_fanin; those are unreferenced, so the extra writes are harmless.
  for (GateId& f : fanin_arena_) {
    if (f == from) f = to;
  }
  for (OutputPort& o : outputs_) {
    if (o.gate == from) o.gate = to;
  }
  touch();
}

void Netlist::retype(GateId gate, GateType type) {
  check_arity(type, fanin_count_[gate]);
  type_[gate] = type;
  touch();
}

void Netlist::set_fanin(GateId gate, std::span<const GateId> fanin) {
  check_arity(type_[gate], fanin.size());
  for (const GateId f : fanin) {
    if (f >= type_.size()) throw std::invalid_argument("fanin id out of range");
  }
  if (fanin.size() <= fanin_count_[gate]) {
    std::copy(fanin.begin(), fanin.end(),
              fanin_arena_.begin() + fanin_begin_[gate]);
  } else {
    // Relocate to the end of the arena; the old segment is leaked until the
    // next compact() rebuild.
    if (fanin_arena_.size() + fanin.size() >
        std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("netlist arena exceeds 32-bit capacity");
    }
    fanin_begin_[gate] = static_cast<std::uint32_t>(fanin_arena_.size());
    fanin_arena_.insert(fanin_arena_.end(), fanin.begin(), fanin.end());
  }
  fanin_count_[gate] = static_cast<std::uint32_t>(fanin.size());
  touch();
}

void Netlist::set_fanin(GateId gate, const std::vector<GateId>& fanin) {
  set_fanin(gate, std::span<const GateId>(fanin));
}

std::size_t Netlist::num_logic_gates() const {
  std::size_t n = 0;
  for (const GateType t : type_) {
    if (!is_source(t)) ++n;
  }
  return n;
}

int Netlist::key_index(GateId gate) const {
  const auto it = std::find(keys_.begin(), keys_.end(), gate);
  return it == keys_.end() ? -1 : static_cast<int>(it - keys_.begin());
}

int Netlist::input_index(GateId gate) const {
  const auto it = std::find(inputs_.begin(), inputs_.end(), gate);
  return it == inputs_.end() ? -1 : static_cast<int>(it - inputs_.begin());
}

const Netlist::GraphCache& Netlist::graph() const {
  // Fast path: the cache is current (release-published below), no lock.
  if (cache_generation_.load(std::memory_order_acquire) == generation_) {
    return cache_;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_generation_.load(std::memory_order_relaxed) == generation_) {
    return cache_;
  }
  const std::size_t n = type_.size();

  // Fanout CSR (deduplicated, ascending per row). Consumers are visited in
  // ascending id order, so rows come out sorted and duplicates from one
  // consumer's repeated pins land adjacently.
  cache_.fanout_begin.assign(n + 1, 0);
  for (std::size_t g = 0; g < n; ++g) {
    for (const GateId f : fanin(static_cast<GateId>(g))) {
      ++cache_.fanout_begin[f + 1];
    }
  }
  for (std::size_t g = 0; g < n; ++g) {
    cache_.fanout_begin[g + 1] += cache_.fanout_begin[g];
  }
  cache_.fanout_arena.assign(cache_.fanout_begin[n], kNullGate);
  std::vector<std::uint32_t> fill(cache_.fanout_begin.begin(),
                                  cache_.fanout_begin.end() - 1);
  for (std::size_t g = 0; g < n; ++g) {
    for (const GateId f : fanin(static_cast<GateId>(g))) {
      const std::uint32_t at = fill[f];
      if (at > cache_.fanout_begin[f] &&
          cache_.fanout_arena[at - 1] == static_cast<GateId>(g)) {
        continue;  // duplicate pin of the same consumer
      }
      cache_.fanout_arena[at] = static_cast<GateId>(g);
      ++fill[f];
    }
  }
  // Compact out the dedup holes row by row.
  std::uint32_t write = 0;
  for (std::size_t g = 0; g < n; ++g) {
    const std::uint32_t begin = cache_.fanout_begin[g];
    const std::uint32_t end = fill[g];
    cache_.fanout_begin[g] = write;
    for (std::uint32_t i = begin; i < end; ++i) {
      cache_.fanout_arena[write++] = cache_.fanout_arena[i];
    }
  }
  cache_.fanout_begin[n] = write;
  cache_.fanout_arena.resize(write);

  // Kahn's algorithm over the dedup CSR; a gate reading the same net k
  // times has its pending count decremented by k at once.
  std::vector<std::uint32_t> pending(n);
  for (std::size_t g = 0; g < n; ++g) pending[g] = fanin_count_[g];
  cache_.topo.clear();
  cache_.topo.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    if (pending[g] == 0) cache_.topo.push_back(static_cast<GateId>(g));
  }
  for (std::size_t head = 0; head < cache_.topo.size(); ++head) {
    const GateId g = cache_.topo[head];
    for (std::uint32_t i = cache_.fanout_begin[g];
         i < cache_.fanout_begin[g + 1]; ++i) {
      const GateId out = cache_.fanout_arena[i];
      std::uint32_t edges = 0;
      for (const GateId f : fanin(out)) {
        if (f == g) ++edges;
      }
      pending[out] -= edges;
      if (pending[out] == 0) cache_.topo.push_back(out);
    }
  }
  cache_.cyclic = cache_.topo.size() != n;
  if (cache_.cyclic) cache_.topo.clear();

  // Levels (acyclic only).
  cache_.levels.clear();
  if (!cache_.cyclic) {
    cache_.levels.assign(n, 0);
    for (const GateId g : cache_.topo) {
      int lvl = 0;
      for (const GateId f : fanin(g)) {
        lvl = std::max(lvl, cache_.levels[f] + 1);
      }
      cache_.levels[g] = lvl;
    }
  }

  cache_generation_.store(generation_, std::memory_order_release);
  return cache_;
}

std::optional<std::vector<GateId>> Netlist::topological_order() const {
  const GraphCache& c = graph();
  if (c.cyclic) return std::nullopt;
  return c.topo;
}

bool Netlist::is_cyclic() const { return graph().cyclic; }

std::span<const GateId> Netlist::topo_span() const {
  const GraphCache& c = graph();
  return c.topo;
}

std::span<const GateId> Netlist::fanout(GateId id) const {
  const GraphCache& c = graph();
  return {c.fanout_arena.data() + c.fanout_begin[id],
          c.fanout_begin[id + 1] - c.fanout_begin[id]};
}

std::vector<std::vector<GateId>> Netlist::fanout_map() const {
  const GraphCache& c = graph();
  std::vector<std::vector<GateId>> map(type_.size());
  for (std::size_t g = 0; g < type_.size(); ++g) {
    map[g].assign(c.fanout_arena.begin() + c.fanout_begin[g],
                  c.fanout_arena.begin() + c.fanout_begin[g + 1]);
  }
  return map;
}

std::vector<bool> Netlist::fanin_cone(GateId target) const {
  std::vector<bool> in_cone(type_.size(), false);
  std::vector<GateId> stack{target};
  in_cone[target] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : fanin(g)) {
      if (!in_cone[f]) {
        in_cone[f] = true;
        stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<bool> Netlist::fanout_cone(GateId source) const {
  const GraphCache& c = graph();
  std::vector<bool> in_cone(type_.size(), false);
  std::vector<GateId> stack{source};
  in_cone[source] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (std::uint32_t i = c.fanout_begin[g]; i < c.fanout_begin[g + 1]; ++i) {
      const GateId out = c.fanout_arena[i];
      if (!in_cone[out]) {
        in_cone[out] = true;
        stack.push_back(out);
      }
    }
  }
  return in_cone;
}

std::optional<std::vector<int>> Netlist::levels() const {
  const GraphCache& c = graph();
  if (c.cyclic) return std::nullopt;
  return c.levels;
}

std::span<const int> Netlist::levels_span() const {
  const GraphCache& c = graph();
  return c.levels;
}

void Netlist::validate() const {
  for (std::size_t g = 0; g < type_.size(); ++g) {
    check_arity(type_[g], fanin_count_[g]);
    for (const GateId f : fanin(static_cast<GateId>(g))) {
      if (f >= type_.size()) throw std::logic_error("dangling fanin id");
    }
  }
  for (const OutputPort& o : outputs_) {
    if (o.gate >= type_.size()) throw std::logic_error("dangling output id");
  }
}

std::vector<std::size_t> Netlist::type_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(GateType::kMux) + 1, 0);
  for (const GateType t : type_) {
    hist[static_cast<std::size_t>(t)]++;
  }
  return hist;
}

}  // namespace fl::netlist
