#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace fl::netlist {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool is_key_name(std::string_view name) {
  return name.starts_with("keyinput") || name.starts_with("KEYINPUT");
}

GateType parse_gate_type(const std::string& token, int line_no) {
  const std::string t = upper(token);
  if (t == "AND") return GateType::kAnd;
  if (t == "NAND") return GateType::kNand;
  if (t == "OR") return GateType::kOr;
  if (t == "NOR") return GateType::kNor;
  if (t == "XOR") return GateType::kXor;
  if (t == "XNOR") return GateType::kXnor;
  if (t == "NOT" || t == "INV") return GateType::kNot;
  if (t == "BUF" || t == "BUFF") return GateType::kBuf;
  if (t == "MUX") return GateType::kMux;
  if (t == "CONST0") return GateType::kConst0;
  if (t == "CONST1") return GateType::kConst1;
  throw std::runtime_error("bench line " + std::to_string(line_no) +
                           ": unknown gate type '" + token + "'");
}

struct PendingGate {
  std::string name;
  GateType type;
  std::vector<std::string> fanin_names;
  int line_no;
};

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("bench line " + std::to_string(line_no) + ": " +
                           what);
}

// Signal names may not be empty or contain structural characters; catching
// this here turns "garbage substring parsed as a name" into a line-numbered
// parse error.
void expect_signal_name(const std::string& name, int line_no,
                        const char* what) {
  if (name.empty()) fail(line_no, std::string("empty ") + what + " name");
  if (name.find_first_of("()=,# \t") != std::string::npos) {
    fail(line_no,
         std::string("bad ") + what + " name '" + name + "'");
  }
}

}  // namespace

Netlist read_bench(std::istream& in, std::string name) {
  Netlist netlist(std::move(name));
  std::map<std::string, GateId> by_name;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string text = trim(line);
    if (text.empty()) continue;

    const std::size_t lpar = text.find('(');
    const std::size_t eq = text.find('=');
    // A '(' before any '=' means the '=' (if present at all) sits inside the
    // argument list — route to the declaration branch so "OUTPUT(a=b)" is
    // rejected as a bad name instead of mangled by substring arithmetic.
    if (eq == std::string::npos ||
        (lpar != std::string::npos && lpar < eq)) {
      // INPUT(x) or OUTPUT(x)
      if (lpar == std::string::npos) {
        fail(line_no, "malformed declaration (expected INPUT(name) or "
                      "OUTPUT(name))");
      }
      const std::size_t rpar = text.find(')', lpar + 1);
      if (rpar == std::string::npos) {
        fail(line_no, "missing ')' in declaration");
      }
      if (!trim(text.substr(rpar + 1)).empty()) {
        fail(line_no, "trailing characters after ')'");
      }
      const std::string kind = upper(trim(text.substr(0, lpar)));
      const std::string arg = trim(text.substr(lpar + 1, rpar - lpar - 1));
      if (kind == "INPUT") {
        expect_signal_name(arg, line_no, "input");
        const GateId id = is_key_name(arg) ? netlist.add_key(arg)
                                           : netlist.add_input(arg);
        by_name[arg] = id;
      } else if (kind == "OUTPUT") {
        expect_signal_name(arg, line_no, "output");
        output_names.push_back(arg);
      } else {
        fail(line_no, "expected INPUT/OUTPUT, got '" + kind + "'");
      }
      continue;
    }

    // name = GATE(a, b, ...)
    const std::string lhs = trim(text.substr(0, eq));
    expect_signal_name(lhs, line_no, "gate");
    const std::string rhs = trim(text.substr(eq + 1));
    if (rhs.empty()) fail(line_no, "missing gate expression after '='");
    const std::size_t glpar = rhs.find('(');
    if (glpar == std::string::npos) {
      fail(line_no, "malformed gate definition (expected TYPE(args))");
    }
    const std::size_t grpar = rhs.find(')', glpar + 1);
    if (grpar == std::string::npos) {
      fail(line_no, "missing ')' in gate definition");
    }
    if (!trim(rhs.substr(grpar + 1)).empty()) {
      fail(line_no, "trailing characters after ')'");
    }
    PendingGate pg;
    pg.name = lhs;
    pg.type = parse_gate_type(trim(rhs.substr(0, glpar)), line_no);
    pg.line_no = line_no;
    const std::string arg_list = rhs.substr(glpar + 1, grpar - glpar - 1);
    const std::string arg_list_trimmed = trim(arg_list);
    if (!arg_list_trimmed.empty() && arg_list_trimmed.back() == ',') {
      // getline-splitting silently drops a trailing empty token.
      fail(line_no, "empty fanin name in '" + pg.name + "'");
    }
    std::stringstream args(arg_list);
    std::string tok;
    while (std::getline(args, tok, ',')) {
      const std::string fanin = trim(tok);
      if (fanin.empty()) {
        // CONST0()/CONST1() legitimately have an empty list; an empty token
        // *between* commas (or a dangling comma) is a parse error.
        if (trim(arg_list).empty()) continue;
        fail(line_no, "empty fanin name in '" + pg.name + "'");
      }
      expect_signal_name(fanin, line_no, "fanin");
      pg.fanin_names.push_back(fanin);
    }
    pending.push_back(std::move(pg));
  }

  // Gates can be declared in any order; resolve names iteratively so we keep
  // a (rough) definition order in the netlist. Cyclic definitions are allowed
  // (Full-Lock can emit them), so any still-unresolved gates get placeholder
  // ids in a second pass.
  // First pass: create all gates with placeholder fanin, then patch.
  for (const PendingGate& pg : pending) {
    if (by_name.count(pg.name) != 0) {
      throw std::runtime_error("bench line " + std::to_string(pg.line_no) +
                               ": duplicate definition of '" + pg.name + "'");
    }
    GateId id;
    if (pg.type == GateType::kConst0 || pg.type == GateType::kConst1) {
      id = netlist.add_const(pg.type == GateType::kConst1);
    } else {
      // Temporary self-fanin placeholders with the right arity; patched below.
      const std::size_t arity =
          pg.fanin_names.empty() ? 1 : pg.fanin_names.size();
      // add_gate validates arity; build a legal placeholder vector.
      std::vector<GateId> placeholder(arity, 0);
      if (netlist.num_gates() == 0) {
        // Ensure some gate exists to point placeholders at.
        netlist.add_const(false);
      }
      try {
        id = netlist.add_gate(pg.type, std::move(placeholder), pg.name);
      } catch (const std::exception& e) {
        fail(pg.line_no, e.what());  // e.g. wrong arity for the gate type
      }
    }
    by_name[pg.name] = id;
  }
  for (const PendingGate& pg : pending) {
    if (pg.type == GateType::kConst0 || pg.type == GateType::kConst1) continue;
    std::vector<GateId> fanin;
    fanin.reserve(pg.fanin_names.size());
    for (const std::string& fn : pg.fanin_names) {
      const auto it = by_name.find(fn);
      if (it == by_name.end()) {
        throw std::runtime_error("bench line " + std::to_string(pg.line_no) +
                                 ": undefined signal '" + fn + "'");
      }
      fanin.push_back(it->second);
    }
    netlist.set_fanin(by_name.at(pg.name), std::move(fanin));
  }

  for (const std::string& on : output_names) {
    const auto it = by_name.find(on);
    if (it == by_name.end()) {
      throw std::runtime_error("bench: OUTPUT(" + on + ") never defined");
    }
    netlist.mark_output(it->second, on);
  }
  netlist.validate();
  return netlist;
}

Netlist read_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_bench(in, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  return read_bench(in, std::move(name));
}

namespace {

// Every gate needs a unique printable name; auto-name anonymous nets.
std::vector<std::string> printable_names(const Netlist& netlist) {
  std::vector<std::string> names(netlist.num_gates());
  std::map<std::string, int> used;
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const std::string& n = netlist.gate(static_cast<GateId>(g)).name;
    if (!n.empty() && used.emplace(n, 1).second) {
      names[g] = n;
    }
  }
  int counter = 0;
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    if (!names[g].empty()) continue;
    std::string candidate;
    do {
      candidate = "n" + std::to_string(counter++);
    } while (used.count(candidate) != 0);
    used.emplace(candidate, 1);
    names[g] = candidate;
  }
  return names;
}

}  // namespace

void write_bench(const Netlist& netlist, std::ostream& out) {
  const auto names = printable_names(netlist);
  out << "# " << netlist.name() << " (" << netlist.num_inputs() << " inputs, "
      << netlist.num_keys() << " keys, " << netlist.num_outputs()
      << " outputs, " << netlist.num_logic_gates() << " gates)\n";
  for (const GateId g : netlist.inputs()) out << "INPUT(" << names[g] << ")\n";
  for (const GateId g : netlist.keys()) out << "INPUT(" << names[g] << ")\n";
  for (const OutputPort& o : netlist.outputs()) {
    out << "OUTPUT(" << names[o.gate] << ")\n";
  }
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(static_cast<GateId>(g));
    if (gate.type == GateType::kInput || gate.type == GateType::kKey) continue;
    out << names[g] << " = ";
    switch (gate.type) {
      case GateType::kConst0: out << "CONST0()"; break;
      case GateType::kConst1: out << "CONST1()"; break;
      default: {
        out << to_string(gate.type) << "(";
        for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
          if (i != 0) out << ", ";
          out << names[gate.fanin[i]];
        }
        out << ")";
      }
    }
    out << "\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(netlist, out);
  return out.str();
}

void write_bench_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write bench file: " + path);
  write_bench(netlist, out);
}

}  // namespace fl::netlist
