// Bit-parallel (64 patterns per word) logic simulation.
//
// Two engines:
//  * Simulator      — acyclic netlists, single topological sweep;
//  * simulate_cyclic — structurally cyclic netlists (Full-Lock's cyclic PLR
//    insertion), Gauss-Seidel relaxation to a fixpoint with oscillation
//    detection. Patterns that fail to converge are flagged; callers treat
//    them as corrupted outputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace fl::netlist {

using Word = std::uint64_t;

// Evaluates one gate over bit-parallel fanin words.
Word eval_gate(GateType type, std::span<const Word> fanin);

// Acyclic simulator. Construction pre-computes the topological order; call
// run() many times with different stimuli. Throws std::invalid_argument if
// the netlist is cyclic.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  // inputs.size() == num_inputs(), keys.size() == num_keys().
  // Returns one word per output port.
  std::vector<Word> run(std::span<const Word> inputs,
                        std::span<const Word> keys) const;

  // As run(), but also exposes every internal net value (indexed by GateId).
  std::vector<Word> run_full(std::span<const Word> inputs,
                             std::span<const Word> keys) const;

 private:
  const Netlist& netlist_;
  std::vector<GateId> order_;
};

struct CyclicSimResult {
  std::vector<Word> outputs;  // one word per output port
  Word converged = ~Word{0};  // per-pattern convergence mask (1 = settled)
};

// Relaxation simulation for possibly-cyclic netlists. All nets start at 0
// (or 1 with `init_ones` — comparing both fixpoints detects state-holding
// cycles); gates are re-evaluated in id order until a fixpoint or
// `max_sweeps`.
CyclicSimResult simulate_cyclic(const Netlist& netlist,
                                std::span<const Word> inputs,
                                std::span<const Word> keys,
                                int max_sweeps = 0 /* 0 = #gates + 8 */,
                                bool init_ones = false);

// Convenience single-pattern evaluation (bools in input order).
std::vector<bool> eval_once(const Netlist& netlist,
                            const std::vector<bool>& inputs,
                            const std::vector<bool>& keys);

}  // namespace fl::netlist
