// Bit-parallel logic simulation: 64 patterns per word, and a wide batch
// engine sweeping simd::kSimdBits (512) patterns per pass.
//
// Engines:
//  * Simulator       — acyclic netlists, single topological sweep. run()/
//    run_full() are the legacy 64-pattern entry points; run_batch() sweeps
//    arbitrarily many words per net through SIMD block kernels (AVX2 /
//    AVX-512 / portable, see simd.h) and a caller-held Scratch, so large
//    oracle batches do not allocate a fresh value vector per call.
//  * simulate_cyclic — structurally cyclic netlists (Full-Lock's cyclic PLR
//    insertion), Gauss-Seidel relaxation to a fixpoint with oscillation
//    detection. Patterns that fail to converge are flagged; callers treat
//    them as corrupted outputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "netlist/simd.h"

namespace fl::netlist {

using Word = std::uint64_t;

// Evaluates one gate over bit-parallel fanin words.
Word eval_gate(GateType type, std::span<const Word> fanin);

// Acyclic simulator. Construction captures the (cached) topological order;
// call run()/run_batch() many times with different stimuli. Throws
// std::invalid_argument if the netlist is cyclic.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  // Reusable per-caller storage for run_batch()/run_full(). One Scratch per
  // thread: the same object may be passed to any Simulator (it resizes to
  // the largest netlist it has served).
  struct Scratch {
    std::vector<Word> value;  // gate-major block values

    std::size_t capacity_bytes() const {
      return value.capacity() * sizeof(Word);
    }
    // Releases the backing storage if it exceeds `retain_bytes`. Long-lived
    // scratches (thread_local caches) grow to the largest netlist they ever
    // served; callers that only occasionally touch a huge netlist call this
    // after the batch so the worker thread does not pin that high-water
    // allocation forever.
    void trim(std::size_t retain_bytes) {
      if (capacity_bytes() <= retain_bytes) return;
      value.clear();
      value.shrink_to_fit();
    }
  };

  // inputs.size() == num_inputs(), keys.size() == num_keys().
  // Returns one word per output port.
  std::vector<Word> run(std::span<const Word> inputs,
                        std::span<const Word> keys) const;

  // As run(), but also exposes every internal net value (indexed by GateId).
  std::vector<Word> run_full(std::span<const Word> inputs,
                             std::span<const Word> keys) const;

  // Batch run over n_words words (64 patterns each) per net, laid out
  // net-major: inputs[i * n_words + w] is word w of primary input i, and
  // outputs[o * n_words + w] is written likewise (outputs.size() must be
  // num_outputs() * n_words). Sweeps the netlist once per simd block of
  // simd::kSimdWords words; all intermediate values live in `scratch`.
  void run_batch(std::span<const Word> inputs, std::span<const Word> keys,
                 std::size_t n_words, Scratch& scratch,
                 std::span<Word> outputs) const;

  const Netlist& netlist() const { return netlist_; }

 private:
  const Netlist& netlist_;
  std::vector<GateId> order_;
};

struct CyclicSimResult {
  std::vector<Word> outputs;  // one word per output port
  Word converged = ~Word{0};  // per-pattern convergence mask (1 = settled)
};

// Relaxation simulation for possibly-cyclic netlists. All nets start at 0
// (or 1 with `init_ones` — comparing both fixpoints detects state-holding
// cycles); gates are re-evaluated in id order until a fixpoint or
// `max_sweeps`.
CyclicSimResult simulate_cyclic(const Netlist& netlist,
                                std::span<const Word> inputs,
                                std::span<const Word> keys,
                                long long max_sweeps = 0 /* 0 = #gates + 8 */,
                                bool init_ones = false);

// Convenience single-pattern evaluation (bools in input order).
std::vector<bool> eval_once(const Netlist& netlist,
                            const std::vector<bool>& inputs,
                            const std::vector<bool>& keys);

}  // namespace fl::netlist
