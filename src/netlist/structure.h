// Structural analysis helpers shared by locking transforms and attacks.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace fl::netlist {

// Reachability oracle: answers "is `to` in the transitive fanout of `from`"
// over a frozen snapshot of the netlist. Lazily computes and caches one
// BFS per queried source.
class Reachability {
 public:
  explicit Reachability(const Netlist& netlist);
  bool reaches(GateId from, GateId to);

 private:
  const Netlist& netlist_;
  std::vector<std::vector<GateId>> fanout_;
  std::vector<std::vector<bool>> cache_;   // per-source cone, lazily filled
  std::vector<bool> cached_;
};

// Gates that feed at least one primary output (dead logic excluded).
std::vector<bool> live_gates(const Netlist& netlist);

// Minimal feedback-arc set heuristic for cyclic netlists: returns a set of
// (gate, fanin_index) edges whose removal makes the netlist acyclic.
// DFS-based; the netlist itself is not modified.
struct Edge {
  GateId gate;       // consumer
  std::size_t pin;   // index into consumer's fanin
  GateId source;     // producer (== gate(gate).fanin[pin])
};
std::vector<Edge> feedback_edges(const Netlist& netlist);

// Copy of `netlist` with dead logic removed. All primary/key inputs are
// kept (the interface is preserved, in order); logic gates survive only if
// they feed some output. Gate ids are remapped; names and output order are
// preserved.
// If `remap_out` is non-null it receives the old-id -> new-id mapping
// (kNullGate for removed gates).
Netlist compact(const Netlist& netlist,
                std::vector<GateId>* remap_out = nullptr);

// Functionally equivalent copy with every n-ary gate (n > 2) lowered to a
// balanced tree of 2-input gates of the same family (the final tree node
// carries the inversion for NAND/NOR/XNOR). Paper §3.2: lowering the gates
// around a PLR to 2 inputs means only 2-input (4-entry) LUTs are needed.
// MUX gates and 1..2-input gates pass through unchanged.
Netlist decompose_to_two_input(const Netlist& netlist);

// Signal probabilities under the independence assumption (inputs at 0.5),
// topological propagation. Key inputs also at 0.5. Cyclic netlists:
// relaxation with damping, bounded sweeps.
std::vector<double> signal_probabilities(const Netlist& netlist);

}  // namespace fl::netlist
