// Structural analysis helpers shared by locking transforms and attacks.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace fl::netlist {

// Reachability oracle: answers "is `to` in the transitive fanout of `from`"
// over a frozen snapshot of the netlist. Lazily computes and caches one
// BFS per queried source.
class Reachability {
 public:
  explicit Reachability(const Netlist& netlist);
  bool reaches(GateId from, GateId to);

 private:
  const Netlist& netlist_;
  std::vector<std::vector<GateId>> fanout_;
  std::vector<std::vector<bool>> cache_;   // per-source cone, lazily filled
  std::vector<bool> cached_;
};

// Gates that feed at least one primary output (dead logic excluded).
std::vector<bool> live_gates(const Netlist& netlist);

// Key-cone partition of a locked netlist, the basis of cone-restricted miter
// encoding (cnf/tseytin.h) and per-DIP constant sweeps (attacks/engine.h).
//
// The *key cone* is the key inputs plus their transitive fanout — the only
// nets whose values can depend on the key. Everything else is the *fixed
// region*: a pure function of the primary inputs that a SAT attack can
// evaluate by simulation instead of re-encoding into CNF for every DIP.
// The regions meet at the *taps*: the fixed-region nets the cone reads
// (non-cone fanins of live cone gates) plus the non-cone output ports.
//
// All views are rebuilt lazily when the netlist's structural generation
// changes (Netlist::generation()), alongside the netlist's own topo/fanout
// caches; a rebuild invalidates previously returned spans and the
// fixed-region reference. Not thread-safe per object (one partition per
// attack context, like Reachability). Topological views and fixed_region()
// require an acyclic netlist and throw std::invalid_argument otherwise;
// in_cone() works on any netlist.
class KeyConePartition {
 public:
  explicit KeyConePartition(const Netlist& netlist);

  // True iff net `g` can depend on a key input.
  bool in_cone(GateId g);
  // Cone gates that feed at least one primary output, topologically
  // ordered, sources excluded — exactly the gates a cone-restricted circuit
  // copy encodes. Dead cone gates are dropped (their readers are all dead).
  std::span<const GateId> cone_topo();
  // Fixed-region nets whose values a cone-restricted copy consumes,
  // ascending by id: non-cone fanins of live cone gates plus every non-cone
  // output port (the latter so DIP constraints can still check the
  // key-independent outputs against the oracle response).
  std::span<const GateId> taps();
  // Gates a *full* miter copy actually needs once the key-independent
  // outputs are known to cancel: the transitive fanin of the key-dependent
  // output ports, topologically ordered, sources excluded. A fanin-closed
  // superset of cone_topo() and of the taps' support, and usually a strict
  // subset of the whole circuit.
  std::span<const GateId> support_topo();
  // Key-free sub-netlist computing the fixed region: primary inputs are the
  // original inputs (same order), outputs are taps() (same order). Dead
  // fixed-region logic is dropped. Invalidated by a rebuild.
  const Netlist& fixed_region();

 private:
  void ensure();

  const Netlist& netlist_;
  std::uint64_t built_generation_;
  std::vector<bool> in_cone_;
  std::vector<GateId> cone_topo_;
  std::vector<GateId> taps_;
  std::vector<GateId> support_topo_;
  Netlist fixed_region_;
};

// Minimal feedback-arc set heuristic for cyclic netlists: returns a set of
// (gate, fanin_index) edges whose removal makes the netlist acyclic.
// DFS-based; the netlist itself is not modified.
struct Edge {
  GateId gate;       // consumer
  std::size_t pin;   // index into consumer's fanin
  GateId source;     // producer (== gate(gate).fanin[pin])
};
std::vector<Edge> feedback_edges(const Netlist& netlist);

// Copy of `netlist` with dead logic removed. All primary/key inputs are
// kept (the interface is preserved, in order); logic gates survive only if
// they feed some output. Gate ids are remapped; names and output order are
// preserved.
// If `remap_out` is non-null it receives the old-id -> new-id mapping
// (kNullGate for removed gates).
Netlist compact(const Netlist& netlist,
                std::vector<GateId>* remap_out = nullptr);

// Functionally equivalent copy with every n-ary gate (n > 2) lowered to a
// balanced tree of 2-input gates of the same family (the final tree node
// carries the inversion for NAND/NOR/XNOR). Paper §3.2: lowering the gates
// around a PLR to 2 inputs means only 2-input (4-entry) LUTs are needed.
// MUX gates and 1..2-input gates pass through unchanged.
Netlist decompose_to_two_input(const Netlist& netlist);

// Signal probabilities under the independence assumption (inputs at 0.5),
// topological propagation. Key inputs also at 0.5. Cyclic netlists:
// relaxation with damping, bounded sweeps.
std::vector<double> signal_probabilities(const Netlist& netlist);

}  // namespace fl::netlist
