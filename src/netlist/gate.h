// Gate model for combinational netlists.
//
// A netlist is a flat array of single-output gates; the output net of a gate
// is identified by the gate's id, so "net" and "gate" are interchangeable.
// Primary inputs and key inputs are modelled as source gates with no fanin.
//
// Gates are stored structure-of-arrays inside Netlist (see netlist.h); the
// per-gate accessor returns a non-owning GateView whose fanin span points
// into the netlist's fanin arena. A view is invalidated by any structural
// edit or gate append, exactly like iterators into a std::vector. `Gate` is
// the owning snapshot for callers that must hold gate data across edits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fl::netlist {

using GateId = std::uint32_t;
inline constexpr GateId kNullGate = 0xFFFFFFFFu;

enum class GateType : std::uint8_t {
  kConst0,  // constant 0, no fanin
  kConst1,  // constant 1, no fanin
  kInput,   // primary input, no fanin
  kKey,     // key input (locking), no fanin
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // n-ary, n >= 2
  kNand,    // n-ary, n >= 2
  kOr,      // n-ary, n >= 2
  kNor,     // n-ary, n >= 2
  kXor,     // n-ary, n >= 2 (odd parity)
  kXnor,    // n-ary, n >= 2 (even parity)
  kMux,     // exactly 3 fanins: {sel, a, b}; out = sel ? b : a
};

// Human-readable gate-type name ("AND", "MUX", ...). Stable, used by .bench IO.
std::string_view to_string(GateType type);

// True for source gates (no fanin allowed): consts, inputs, keys.
constexpr bool is_source(GateType type) {
  return type == GateType::kConst0 || type == GateType::kConst1 ||
         type == GateType::kInput || type == GateType::kKey;
}

// True for gate types whose fanin count is fixed.
constexpr int fixed_arity(GateType type) {
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1:
    case GateType::kInput:
    case GateType::kKey:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return -1;  // n-ary
  }
}

// Non-owning per-gate view into the netlist's arena storage.
struct GateView {
  GateType type;
  std::span<const GateId> fanin;
  const std::string& name;

  std::vector<GateId> fanin_vector() const {
    return std::vector<GateId>(fanin.begin(), fanin.end());
  }
};

// Owning snapshot of a gate; implicitly constructible from a GateView so
// `netlist::Gate snapshot = netlist.gate(g);` copies before edits.
struct Gate {
  GateType type = GateType::kBuf;
  std::vector<GateId> fanin;
  std::string name;  // optional; required for inputs/keys/outputs on IO

  Gate() = default;
  Gate(GateType t, std::vector<GateId> f, std::string n)
      : type(t), fanin(std::move(f)), name(std::move(n)) {}
  Gate(const GateView& view)  // NOLINT(google-explicit-constructor)
      : type(view.type),
        fanin(view.fanin.begin(), view.fanin.end()),
        name(view.name) {}
};

}  // namespace fl::netlist
