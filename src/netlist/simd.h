// Wide bitwise lanes for the bit-parallel simulator.
//
// The simulator's batch engine sweeps gates over blocks of kSimdWords
// 64-bit words (512 patterns per block). The block kernels below dispatch
// at compile time:
//   * AVX-512F  — one 512-bit vector per block        (FL_SIMD_LEVEL 512)
//   * AVX2      — two 256-bit vectors per block       (FL_SIMD_LEVEL 256)
//   * portable  — plain uint64_t[8] loops the compiler is free to
//                 auto-vectorize for whatever ISA it targets (FL_SIMD_LEVEL 64)
//
// Build with the `native` CMake option (default ON, -march=native) to light
// up the intrinsic paths on the build host.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__)
#include <immintrin.h>
#define FL_SIMD_LEVEL 512
#elif defined(__AVX2__)
#include <immintrin.h>
#define FL_SIMD_LEVEL 256
#else
#define FL_SIMD_LEVEL 64
#endif

namespace fl::netlist::simd {

// Words per block. Fixed at 8 (512 bits) for every dispatch level so batch
// layouts and scratch sizing are ISA-independent.
inline constexpr std::size_t kSimdWords = 8;

// Bits (patterns) per block.
inline constexpr std::size_t kSimdBits = kSimdWords * 64;

// Reported by benchmarks / BENCH_netlist.json.
inline constexpr int kSimdLevel = FL_SIMD_LEVEL;

#if FL_SIMD_LEVEL == 512

struct Vec {
  __m512i v;
};

inline Vec load(const std::uint64_t* p) {
  return {_mm512_loadu_si512(reinterpret_cast<const void*>(p))};
}
inline void store(std::uint64_t* p, Vec a) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), a.v);
}
inline Vec ones() { return {_mm512_set1_epi64(-1)}; }
inline Vec zeros() { return {_mm512_setzero_si512()}; }
inline Vec v_and(Vec a, Vec b) { return {_mm512_and_si512(a.v, b.v)}; }
inline Vec v_or(Vec a, Vec b) { return {_mm512_or_si512(a.v, b.v)}; }
inline Vec v_xor(Vec a, Vec b) { return {_mm512_xor_si512(a.v, b.v)}; }
inline Vec v_not(Vec a) { return {_mm512_xor_si512(a.v, ones().v)}; }
// ~a & b
inline Vec v_andnot(Vec a, Vec b) { return {_mm512_andnot_si512(a.v, b.v)}; }

#elif FL_SIMD_LEVEL == 256

struct Vec {
  __m256i lo, hi;
};

inline Vec load(const std::uint64_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4))};
}
inline void store(std::uint64_t* p, Vec a) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), a.hi);
}
inline Vec ones() {
  const __m256i o = _mm256_set1_epi64x(-1);
  return {o, o};
}
inline Vec zeros() {
  const __m256i z = _mm256_setzero_si256();
  return {z, z};
}
inline Vec v_and(Vec a, Vec b) {
  return {_mm256_and_si256(a.lo, b.lo), _mm256_and_si256(a.hi, b.hi)};
}
inline Vec v_or(Vec a, Vec b) {
  return {_mm256_or_si256(a.lo, b.lo), _mm256_or_si256(a.hi, b.hi)};
}
inline Vec v_xor(Vec a, Vec b) {
  return {_mm256_xor_si256(a.lo, b.lo), _mm256_xor_si256(a.hi, b.hi)};
}
inline Vec v_not(Vec a) {
  const __m256i o = _mm256_set1_epi64x(-1);
  return {_mm256_xor_si256(a.lo, o), _mm256_xor_si256(a.hi, o)};
}
inline Vec v_andnot(Vec a, Vec b) {
  return {_mm256_andnot_si256(a.lo, b.lo), _mm256_andnot_si256(a.hi, b.hi)};
}

#else  // portable fallback

struct Vec {
  std::uint64_t w[kSimdWords];
};

inline Vec load(const std::uint64_t* p) {
  Vec a;
  for (std::size_t i = 0; i < kSimdWords; ++i) a.w[i] = p[i];
  return a;
}
inline void store(std::uint64_t* p, Vec a) {
  for (std::size_t i = 0; i < kSimdWords; ++i) p[i] = a.w[i];
}
inline Vec ones() {
  Vec a;
  for (std::size_t i = 0; i < kSimdWords; ++i) a.w[i] = ~std::uint64_t{0};
  return a;
}
inline Vec zeros() {
  Vec a;
  for (std::size_t i = 0; i < kSimdWords; ++i) a.w[i] = 0;
  return a;
}
inline Vec v_and(Vec a, Vec b) {
  Vec r;
  for (std::size_t i = 0; i < kSimdWords; ++i) r.w[i] = a.w[i] & b.w[i];
  return r;
}
inline Vec v_or(Vec a, Vec b) {
  Vec r;
  for (std::size_t i = 0; i < kSimdWords; ++i) r.w[i] = a.w[i] | b.w[i];
  return r;
}
inline Vec v_xor(Vec a, Vec b) {
  Vec r;
  for (std::size_t i = 0; i < kSimdWords; ++i) r.w[i] = a.w[i] ^ b.w[i];
  return r;
}
inline Vec v_not(Vec a) {
  Vec r;
  for (std::size_t i = 0; i < kSimdWords; ++i) r.w[i] = ~a.w[i];
  return r;
}
inline Vec v_andnot(Vec a, Vec b) {
  Vec r;
  for (std::size_t i = 0; i < kSimdWords; ++i) r.w[i] = ~a.w[i] & b.w[i];
  return r;
}

#endif

// out = sel ? b : a, bitwise.
inline Vec v_mux(Vec sel, Vec a, Vec b) {
  return v_or(v_and(sel, b), v_andnot(sel, a));
}

}  // namespace fl::netlist::simd
