// Benchmark-circuit profiles matching the suites used in the paper.
//
// Gate / IO counts are taken from Table 5 of the Full-Lock paper (ISCAS-85 +
// MCNC). `make_circuit` synthesizes a deterministic stand-in of that shape
// (see generator.h for the substitution rationale); c17 is the real netlist.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "netlist/netlist.h"

namespace fl::netlist {

struct BenchmarkProfile {
  std::string name;
  std::size_t num_gates;
  std::size_t num_inputs;
  std::size_t num_outputs;
};

// The 13 circuits of Table 5 (ISCAS-85 c432..c7552, MCNC apex2/apex4/i4/i7).
std::span<const BenchmarkProfile> table5_profiles();

// Synthetic production-scale profiles (synth64k / synth256k / synth1m) for
// substrate benchmarks: Table-5-like IO widths scaled to 64K–1M gates.
std::span<const BenchmarkProfile> scaled_profiles();

std::optional<BenchmarkProfile> find_profile(std::string_view name);

// Deterministic synthetic circuit with the profile's shape. Same (name,seed)
// always yields the same netlist.
Netlist make_circuit(const BenchmarkProfile& profile, std::uint64_t seed = 1);
Netlist make_circuit(std::string_view profile_name, std::uint64_t seed = 1);

// The real ISCAS-85 c17 netlist (6 NAND gates) — small enough to embed.
Netlist make_c17();

}  // namespace fl::netlist
