#include "netlist/optimize.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "netlist/structure.h"

namespace fl::netlist {

namespace {

// A net with an optional complement — lets double negations, NOT-chains and
// XOR input polarities fold without materializing inverters.
struct SigLit {
  GateId gate = kNullGate;
  bool neg = false;

  SigLit operator~() const { return SigLit{gate, !neg}; }
  bool operator==(const SigLit&) const = default;
  auto operator<=>(const SigLit&) const = default;
};

// Hash-consing key: canonical (type, sorted operand list).
using StrashKey = std::pair<GateType, std::vector<SigLit>>;

struct StrashKeyHash {
  std::size_t operator()(const StrashKey& k) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(k.first));
    for (const SigLit s : k.second) {
      mix((static_cast<std::uint64_t>(s.gate) << 1) | (s.neg ? 1u : 0u));
    }
    return static_cast<std::size_t>(h);
  }
};

class Optimizer {
 public:
  explicit Optimizer(const Netlist& in, OptimizeStats& stats)
      : in_(in), stats_(stats) {}

  Netlist run() {
    const auto order = in_.topological_order();
    if (!order) {
      throw std::invalid_argument("optimize: cyclic netlist");
    }
    map_.assign(in_.num_gates(), SigLit{});
    for (const GateId g : in_.inputs()) {
      map_[g] = SigLit{out_.add_input(in_.gate(g).name)};
    }
    for (const GateId g : in_.keys()) {
      map_[g] = SigLit{out_.add_key(in_.gate(g).name)};
    }
    for (const GateId g : *order) {
      const GateType type = in_.gate_type(g);
      if (is_source(type)) {
        if (type == GateType::kConst0) map_[g] = constant(false);
        if (type == GateType::kConst1) map_[g] = constant(true);
        continue;
      }
      const std::span<const GateId> fanin = in_.fanin(g);
      std::vector<SigLit> fan;
      fan.reserve(fanin.size());
      for (const GateId f : fanin) fan.push_back(map_[f]);
      map_[g] = build(type, std::move(fan));
    }
    for (const OutputPort& o : in_.outputs()) {
      out_.mark_output(materialize(map_[o.gate]), o.name);
    }
    return compact(out_);
  }

 private:
  SigLit constant(bool value) {
    GateId& slot = value ? const1_ : const0_;
    if (slot == kNullGate) slot = out_.add_const(value);
    return SigLit{slot};
  }
  bool is_const(SigLit s, bool value) const {
    if (const0_ != kNullGate && s.gate == const0_) return s.neg == value;
    if (const1_ != kNullGate && s.gate == const1_) return s.neg != value;
    return false;
  }
  bool is_any_const(SigLit s) const {
    return (s.gate == const0_ && const0_ != kNullGate) ||
           (s.gate == const1_ && const1_ != kNullGate);
  }

  // Emits (or reuses) a NOT gate when a complemented literal must become a
  // real net (gate fanins have no polarity in the Netlist model).
  GateId materialize(SigLit s) {
    if (!s.neg) return s.gate;
    if (s.gate == const0_ && const0_ != kNullGate) {
      return constant(true).gate;
    }
    if (s.gate == const1_ && const1_ != kNullGate) {
      return constant(false).gate;
    }
    const StrashKey key{GateType::kNot, std::vector<SigLit>{SigLit{s.gate}}};
    const auto hit = hash_.find(key);
    if (hit != hash_.end()) return hit->second;
    const GateId inv = out_.add_gate(GateType::kNot, {s.gate});
    hash_.emplace(key, inv);
    return inv;
  }

  // Canonical definition of an emitted gate, for one-level rewrites.
  const std::vector<SigLit>* leaves_of(SigLit s, GateType type) const {
    if (s.neg) return nullptr;
    const auto d = def_.find(s.gate);
    if (d == def_.end() || d->second.first != type) return nullptr;
    return &d->second.second;
  }

  SigLit emit(GateType type, std::vector<SigLit> fan) {
    // Canonicalize commutative operands.
    if (type == GateType::kAnd || type == GateType::kOr ||
        type == GateType::kXor) {
      std::sort(fan.begin(), fan.end());
    }
    StrashKey key{type, std::move(fan)};
    const auto hit = hash_.find(key);
    if (hit != hash_.end()) {
      ++stats_.subexpressions_merged;
      return SigLit{hit->second};
    }
    std::vector<GateId> fanin;
    fanin.reserve(key.second.size());
    for (const SigLit s : key.second) fanin.push_back(materialize(s));
    const GateId g = out_.add_gate(type, std::move(fanin));
    hash_.emplace(key, g);
    def_.emplace(g, std::move(key));
    return SigLit{g};
  }

  SigLit build_and(std::vector<SigLit> fan, bool negate_out) {
    std::vector<SigLit> lits;
    for (const SigLit s : fan) {
      if (is_const(s, false)) {
        ++stats_.constants_folded;
        return constant(negate_out);
      }
      if (is_const(s, true)) {
        ++stats_.constants_folded;
        continue;
      }
      lits.push_back(s);
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].gate == lits[i + 1].gate) {  // x & ~x
        ++stats_.identities_applied;
        return constant(negate_out);
      }
    }
    // One-level absorption against operands that are already-hashed AND
    // gates: if t is a leaf of s then AND(s, t) = s, and if ~t is a leaf of
    // s then s implies ~t, so AND(s, t) = 0. (OR absorption arrives here
    // too, through build_or's De Morgan mapping.)
    if (lits.size() >= 2) {
      std::vector<bool> drop(lits.size(), false);
      for (std::size_t i = 0; i < lits.size(); ++i) {
        if (drop[i]) continue;
        const std::vector<SigLit>* leaves = leaves_of(lits[i], GateType::kAnd);
        if (leaves == nullptr) continue;
        for (std::size_t j = 0; j < lits.size(); ++j) {
          if (j == i || drop[j]) continue;
          if (std::find(leaves->begin(), leaves->end(), lits[j]) !=
              leaves->end()) {
            drop[j] = true;
            ++stats_.absorptions_applied;
          } else if (std::find(leaves->begin(), leaves->end(), ~lits[j]) !=
                     leaves->end()) {
            ++stats_.absorptions_applied;
            return constant(negate_out);
          }
        }
      }
      std::size_t keep = 0;
      for (std::size_t i = 0; i < lits.size(); ++i) {
        if (!drop[i]) lits[keep++] = lits[i];
      }
      lits.resize(keep);
    }
    if (lits.empty()) return constant(!negate_out);
    if (lits.size() == 1) {
      ++stats_.identities_applied;
      return negate_out ? ~lits[0] : lits[0];
    }
    const SigLit g = emit(GateType::kAnd, std::move(lits));
    return negate_out ? ~g : g;
  }

  SigLit build_or(std::vector<SigLit> fan, bool negate_out) {
    for (SigLit& s : fan) s = ~s;
    return ~build_and(std::move(fan), negate_out);
  }

  SigLit build_xor(std::vector<SigLit> fan, bool negate_out) {
    bool parity = negate_out;
    std::vector<SigLit> lits;
    for (SigLit s : fan) {
      if (is_any_const(s)) {
        parity ^= is_const(s, true);
        ++stats_.constants_folded;
        continue;
      }
      parity ^= s.neg;  // polarity folds into the output parity
      lits.push_back(SigLit{s.gate});
    }
    // x ^ x cancels pairwise.
    std::vector<SigLit> reduced = cancel_pairs(std::move(lits), false);
    // One-level flatten: an operand that is itself a hashed XOR gate whose
    // leaves overlap another operand is replaced by its leaves, so the
    // shared nets cancel (XOR(XOR(a,b), b) = a). Newly exposed leaves are
    // not flattened further.
    if (reduced.size() >= 2) {
      std::vector<SigLit> flat;
      bool flattened = false;
      for (std::size_t i = 0; i < reduced.size(); ++i) {
        const std::vector<SigLit>* leaves =
            leaves_of(reduced[i], GateType::kXor);
        bool overlap = false;
        if (leaves != nullptr) {
          for (std::size_t j = 0; j < reduced.size() && !overlap; ++j) {
            if (j == i) continue;
            overlap = std::find(leaves->begin(), leaves->end(), reduced[j]) !=
                      leaves->end();
          }
        }
        if (overlap) {
          flat.insert(flat.end(), leaves->begin(), leaves->end());
          flattened = true;
        } else {
          flat.push_back(reduced[i]);
        }
      }
      if (flattened) reduced = cancel_pairs(std::move(flat), true);
    }
    if (reduced.empty()) return constant(parity);
    if (reduced.size() == 1) return parity ? ~reduced[0] : reduced[0];
    const SigLit g = emit(GateType::kXor, std::move(reduced));
    return parity ? ~g : g;
  }

  // Sorts and removes equal pairs (x ^ x = 0) from a XOR operand list.
  std::vector<SigLit> cancel_pairs(std::vector<SigLit> lits,
                                   bool from_flatten) {
    std::sort(lits.begin(), lits.end());
    std::vector<SigLit> reduced;
    for (std::size_t i = 0; i < lits.size();) {
      if (i + 1 < lits.size() && lits[i] == lits[i + 1]) {
        ++(from_flatten ? stats_.xor_pairs_cancelled
                        : stats_.identities_applied);
        i += 2;
      } else {
        reduced.push_back(lits[i]);
        ++i;
      }
    }
    return reduced;
  }

  SigLit build_mux(SigLit sel, SigLit a, SigLit b) {
    if (is_const(sel, false)) {
      ++stats_.constants_folded;
      return a;
    }
    if (is_const(sel, true)) {
      ++stats_.constants_folded;
      return b;
    }
    if (sel.neg) {
      std::swap(a, b);
      sel = ~sel;
    }
    if (a == b) {
      ++stats_.identities_applied;
      return a;
    }
    if (a == ~b) {  // sel ? b : ~b  ==  sel XNOR b
      ++stats_.identities_applied;
      return build_xor({sel, b}, true);
    }
    if (is_any_const(a) || is_any_const(b)) {
      ++stats_.constants_folded;
      if (is_const(a, false)) return build_and({sel, b}, false);
      if (is_const(a, true)) return build_or({~sel, b}, false);
      if (is_const(b, false)) return build_and({~sel, a}, false);
      return build_or({sel, a}, false);  // b == 1
    }
    return emit(GateType::kMux, {sel, a, b});
  }

  SigLit build(GateType type, std::vector<SigLit> fan) {
    switch (type) {
      case GateType::kBuf: return fan[0];
      case GateType::kNot: return ~fan[0];
      case GateType::kAnd: return build_and(std::move(fan), false);
      case GateType::kNand: return build_and(std::move(fan), true);
      case GateType::kOr: return build_or(std::move(fan), false);
      case GateType::kNor: return build_or(std::move(fan), true);
      case GateType::kXor: return build_xor(std::move(fan), false);
      case GateType::kXnor: return build_xor(std::move(fan), true);
      case GateType::kMux: return build_mux(fan[0], fan[1], fan[2]);
      default:
        throw std::logic_error("optimize: unexpected source gate");
    }
  }

  const Netlist& in_;
  OptimizeStats& stats_;
  Netlist out_{in_.name()};
  std::vector<SigLit> map_;
  GateId const0_ = kNullGate;
  GateId const1_ = kNullGate;
  std::unordered_map<StrashKey, GateId, StrashKeyHash> hash_;
  // Reverse map: emitted gate -> its canonical definition, for one-level
  // absorption / flattening rewrites.
  std::unordered_map<GateId, StrashKey> def_;
};

}  // namespace

Netlist optimize(const Netlist& netlist, OptimizeStats* stats) {
  OptimizeStats local;
  Optimizer optimizer(netlist, local);
  Netlist out = optimizer.run();
  local.gates_before = netlist.num_logic_gates();
  local.gates_after = out.num_logic_gates();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace fl::netlist
