#include "netlist/optimize.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "netlist/structure.h"

namespace fl::netlist {

namespace {

// A net with an optional complement — lets double negations, NOT-chains and
// XOR input polarities fold without materializing inverters.
struct SigLit {
  GateId gate = kNullGate;
  bool neg = false;

  SigLit operator~() const { return SigLit{gate, !neg}; }
  bool operator==(const SigLit&) const = default;
  auto operator<=>(const SigLit&) const = default;
};

class Optimizer {
 public:
  explicit Optimizer(const Netlist& in, OptimizeStats& stats)
      : in_(in), stats_(stats) {}

  Netlist run() {
    const auto order = in_.topological_order();
    if (!order) {
      throw std::invalid_argument("optimize: cyclic netlist");
    }
    map_.assign(in_.num_gates(), SigLit{});
    for (const GateId g : in_.inputs()) {
      map_[g] = SigLit{out_.add_input(in_.gate(g).name)};
    }
    for (const GateId g : in_.keys()) {
      map_[g] = SigLit{out_.add_key(in_.gate(g).name)};
    }
    for (const GateId g : *order) {
      const Gate& gate = in_.gate(g);
      if (is_source(gate.type)) {
        if (gate.type == GateType::kConst0) map_[g] = constant(false);
        if (gate.type == GateType::kConst1) map_[g] = constant(true);
        continue;
      }
      std::vector<SigLit> fan;
      fan.reserve(gate.fanin.size());
      for (const GateId f : gate.fanin) fan.push_back(map_[f]);
      map_[g] = build(gate.type, std::move(fan));
    }
    for (const OutputPort& o : in_.outputs()) {
      out_.mark_output(materialize(map_[o.gate]), o.name);
    }
    return compact(out_);
  }

 private:
  SigLit constant(bool value) {
    GateId& slot = value ? const1_ : const0_;
    if (slot == kNullGate) slot = out_.add_const(value);
    return SigLit{slot};
  }
  bool is_const(SigLit s, bool value) const {
    if (const0_ != kNullGate && s.gate == const0_) return s.neg == value;
    if (const1_ != kNullGate && s.gate == const1_) return s.neg != value;
    return false;
  }
  bool is_any_const(SigLit s) const {
    return (s.gate == const0_ && const0_ != kNullGate) ||
           (s.gate == const1_ && const1_ != kNullGate);
  }

  // Emits (or reuses) a NOT gate when a complemented literal must become a
  // real net (gate fanins have no polarity in the Netlist model).
  GateId materialize(SigLit s) {
    if (!s.neg) return s.gate;
    if (s.gate == const0_ && const0_ != kNullGate) {
      return constant(true).gate;
    }
    if (s.gate == const1_ && const1_ != kNullGate) {
      return constant(false).gate;
    }
    const auto key = std::make_pair(GateType::kNot,
                                    std::vector<SigLit>{SigLit{s.gate}});
    const auto hit = hash_.find(key);
    if (hit != hash_.end()) return hit->second;
    const GateId inv = out_.add_gate(GateType::kNot, {s.gate});
    hash_.emplace(key, inv);
    return inv;
  }

  SigLit emit(GateType type, std::vector<SigLit> fan) {
    // Canonicalize commutative operands.
    if (type == GateType::kAnd || type == GateType::kOr ||
        type == GateType::kXor) {
      std::sort(fan.begin(), fan.end());
    }
    const auto key = std::make_pair(type, fan);
    const auto hit = hash_.find(key);
    if (hit != hash_.end()) {
      ++stats_.subexpressions_merged;
      return SigLit{hit->second};
    }
    std::vector<GateId> fanin;
    fanin.reserve(fan.size());
    for (const SigLit s : fan) fanin.push_back(materialize(s));
    const GateId g = out_.add_gate(type, std::move(fanin));
    hash_.emplace(key, g);
    return SigLit{g};
  }

  SigLit build_and(std::vector<SigLit> fan, bool negate_out) {
    std::vector<SigLit> lits;
    for (const SigLit s : fan) {
      if (is_const(s, false)) {
        ++stats_.constants_folded;
        return constant(negate_out);
      }
      if (is_const(s, true)) {
        ++stats_.constants_folded;
        continue;
      }
      lits.push_back(s);
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].gate == lits[i + 1].gate) {  // x & ~x
        ++stats_.identities_applied;
        return constant(negate_out);
      }
    }
    if (lits.empty()) return constant(!negate_out);
    if (lits.size() == 1) {
      ++stats_.identities_applied;
      return negate_out ? ~lits[0] : lits[0];
    }
    const SigLit g = emit(GateType::kAnd, std::move(lits));
    return negate_out ? ~g : g;
  }

  SigLit build_or(std::vector<SigLit> fan, bool negate_out) {
    for (SigLit& s : fan) s = ~s;
    return ~build_and(std::move(fan), negate_out);
  }

  SigLit build_xor(std::vector<SigLit> fan, bool negate_out) {
    bool parity = negate_out;
    std::vector<SigLit> lits;
    for (SigLit s : fan) {
      if (is_any_const(s)) {
        parity ^= is_const(s, true);
        ++stats_.constants_folded;
        continue;
      }
      parity ^= s.neg;  // polarity folds into the output parity
      lits.push_back(SigLit{s.gate});
    }
    // x ^ x cancels pairwise.
    std::sort(lits.begin(), lits.end());
    std::vector<SigLit> reduced;
    for (std::size_t i = 0; i < lits.size();) {
      if (i + 1 < lits.size() && lits[i] == lits[i + 1]) {
        ++stats_.identities_applied;
        i += 2;
      } else {
        reduced.push_back(lits[i]);
        ++i;
      }
    }
    if (reduced.empty()) return constant(parity);
    if (reduced.size() == 1) return parity ? ~reduced[0] : reduced[0];
    const SigLit g = emit(GateType::kXor, std::move(reduced));
    return parity ? ~g : g;
  }

  SigLit build_mux(SigLit sel, SigLit a, SigLit b) {
    if (is_const(sel, false)) {
      ++stats_.constants_folded;
      return a;
    }
    if (is_const(sel, true)) {
      ++stats_.constants_folded;
      return b;
    }
    if (sel.neg) {
      std::swap(a, b);
      sel = ~sel;
    }
    if (a == b) {
      ++stats_.identities_applied;
      return a;
    }
    if (a == ~b) {  // sel ? b : ~b  ==  sel XNOR b
      ++stats_.identities_applied;
      return build_xor({sel, b}, true);
    }
    if (is_any_const(a) || is_any_const(b)) {
      ++stats_.constants_folded;
      if (is_const(a, false)) return build_and({sel, b}, false);
      if (is_const(a, true)) return build_or({~sel, b}, false);
      if (is_const(b, false)) return build_and({~sel, a}, false);
      return build_or({sel, a}, false);  // b == 1
    }
    return emit(GateType::kMux, {sel, a, b});
  }

  SigLit build(GateType type, std::vector<SigLit> fan) {
    switch (type) {
      case GateType::kBuf: return fan[0];
      case GateType::kNot: return ~fan[0];
      case GateType::kAnd: return build_and(std::move(fan), false);
      case GateType::kNand: return build_and(std::move(fan), true);
      case GateType::kOr: return build_or(std::move(fan), false);
      case GateType::kNor: return build_or(std::move(fan), true);
      case GateType::kXor: return build_xor(std::move(fan), false);
      case GateType::kXnor: return build_xor(std::move(fan), true);
      case GateType::kMux: return build_mux(fan[0], fan[1], fan[2]);
      default:
        throw std::logic_error("optimize: unexpected source gate");
    }
  }

  const Netlist& in_;
  OptimizeStats& stats_;
  Netlist out_{in_.name()};
  std::vector<SigLit> map_;
  GateId const0_ = kNullGate;
  GateId const1_ = kNullGate;
  std::map<std::pair<GateType, std::vector<SigLit>>, GateId> hash_;
};

}  // namespace

Netlist optimize(const Netlist& netlist, OptimizeStats* stats) {
  OptimizeStats local;
  Optimizer optimizer(netlist, local);
  Netlist out = optimizer.run();
  local.gates_before = netlist.num_logic_gates();
  local.gates_after = out.num_logic_gates();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace fl::netlist
