// Deterministic random combinational-circuit generator.
//
// Substitute for the ISCAS-85 / MCNC netlists the paper evaluates on (the
// real gate-level files are not redistributable here). The generator
// produces an acyclic netlist with a requested gate / PI / PO budget and a
// gate-type mix resembling the ISCAS-85 suite (NAND/NOR-heavy, fanin <= 5,
// reconvergent fanout). See DESIGN.md §2 for why this preserves the
// experiments: Full-Lock's hardness lives in the inserted PLRs, not the host.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace fl::netlist {

struct GeneratorConfig {
  std::size_t num_inputs = 16;
  std::size_t num_outputs = 8;
  std::size_t num_gates = 100;  // logic gates (excludes PIs)
  std::uint64_t seed = 1;
  int max_fanin = 4;
  // Bias toward recently created nets; larger => deeper circuits.
  double locality = 0.75;
};

// Throws std::invalid_argument on impossible budgets (e.g. 0 gates but
// outputs requested).
Netlist generate_circuit(const GeneratorConfig& config);

}  // namespace fl::netlist
