// ISCAS-85 ".bench" reader/writer.
//
// Supported grammar (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(a, b, ...)     GATE in {AND,NAND,OR,NOR,XOR,XNOR,NOT,BUF,
//                                       BUFF,MUX,CONST0,CONST1}
//
// Logic-locking convention: inputs whose name starts with "keyinput" are
// parsed as key inputs (and written back the same way).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace fl::netlist {

// Throws std::runtime_error with a line-numbered message on malformed input.
Netlist read_bench(std::istream& in, std::string name = "bench");
Netlist read_bench_string(const std::string& text, std::string name = "bench");
Netlist read_bench_file(const std::string& path);

void write_bench(const Netlist& netlist, std::ostream& out);
std::string write_bench_string(const Netlist& netlist);
void write_bench_file(const Netlist& netlist, const std::string& path);

}  // namespace fl::netlist
