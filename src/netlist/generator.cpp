#include "netlist/generator.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace fl::netlist {

namespace {

GateType pick_type(std::mt19937_64& rng, int fanin) {
  // ISCAS-85-ish mix: inverter-rich, NAND-heavy, some XOR.
  if (fanin == 1) {
    return std::uniform_int_distribution<int>(0, 3)(rng) == 0 ? GateType::kBuf
                                                              : GateType::kNot;
  }
  const int r = std::uniform_int_distribution<int>(0, 99)(rng);
  if (r < 30) return GateType::kNand;
  if (r < 50) return GateType::kAnd;
  if (r < 65) return GateType::kNor;
  if (r < 80) return GateType::kOr;
  if (r < 90) return GateType::kXor;
  return GateType::kXnor;
}

}  // namespace

Netlist generate_circuit(const GeneratorConfig& config) {
  if (config.num_inputs == 0 || config.num_outputs == 0) {
    throw std::invalid_argument("generator needs >= 1 input and output");
  }
  if (config.num_gates == 0) {
    throw std::invalid_argument("generator needs >= 1 gate");
  }
  if (config.max_fanin < 2) {
    throw std::invalid_argument("max_fanin must be >= 2");
  }
  std::mt19937_64 rng(config.seed);
  Netlist netlist("synth_" + std::to_string(config.seed));

  std::vector<GateId> nets;
  nets.reserve(config.num_inputs + config.num_gates);
  for (std::size_t i = 0; i < config.num_inputs; ++i) {
    nets.push_back(netlist.add_input("G" + std::to_string(i) + "pi"));
  }
  std::vector<int> fanout_count(config.num_inputs + config.num_gates, 0);

  auto pick_net = [&](std::size_t upto) -> GateId {
    // With probability `locality`, pick among the most recent half to build
    // depth; otherwise uniform (creates long reconvergent paths).
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < config.locality && upto > 2) {
      const std::size_t lo = upto / 2;
      return nets[std::uniform_int_distribution<std::size_t>(lo, upto - 1)(rng)];
    }
    return nets[std::uniform_int_distribution<std::size_t>(0, upto - 1)(rng)];
  };

  for (std::size_t g = 0; g < config.num_gates; ++g) {
    const std::size_t avail = nets.size();
    int fanin_n;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 25) {
      fanin_n = 1;
    } else if (roll < 75 || config.max_fanin == 2) {
      fanin_n = 2;
    } else {
      fanin_n = std::uniform_int_distribution<int>(3, config.max_fanin)(rng);
    }
    fanin_n = std::min<int>(fanin_n, static_cast<int>(avail));
    std::vector<GateId> fanin;
    while (static_cast<int>(fanin.size()) < fanin_n) {
      const GateId cand = pick_net(avail);
      if (std::find(fanin.begin(), fanin.end(), cand) == fanin.end()) {
        fanin.push_back(cand);
      }
    }
    const GateType type = pick_type(rng, static_cast<int>(fanin.size()));
    for (const GateId f : fanin) ++fanout_count[f];
    const GateId id =
        netlist.add_gate(type, std::move(fanin), "G" + std::to_string(avail));
    nets.push_back(id);
  }

  // Outputs: prefer nets with no fanout (so nothing dangles), newest first.
  std::vector<GateId> sinks;
  for (std::size_t i = config.num_inputs; i < nets.size(); ++i) {
    if (fanout_count[i] == 0) sinks.push_back(nets[i]);
  }
  std::reverse(sinks.begin(), sinks.end());
  std::vector<GateId> outputs;
  for (const GateId s : sinks) {
    if (outputs.size() == config.num_outputs) break;
    outputs.push_back(s);
  }
  // Top up from the newest gates if there were not enough sinks.
  for (auto it = nets.rbegin(); it != nets.rend() &&
                                outputs.size() < config.num_outputs; ++it) {
    if (std::find(outputs.begin(), outputs.end(), *it) == outputs.end() &&
        !is_source(netlist.gate(*it).type)) {
      outputs.push_back(*it);
    }
  }
  if (outputs.size() < config.num_outputs) {
    throw std::invalid_argument("gate budget too small for requested outputs");
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    netlist.mark_output(outputs[i], "po" + std::to_string(i));
  }
  netlist.validate();
  return netlist;
}

}  // namespace fl::netlist
