#include "serve/client.h"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

#include "runtime/jsonl.h"
#include "serve/session.h"

namespace fl::serve {

ServeClient::ServeClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool ServeClient::send(const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd_, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> ServeClient::read_line() {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

int ServeClient::submit_and_stream(const JobSpec& spec, std::ostream& out) {
  if (!send(submit_line(spec))) return ClientExit::kConnectionLost;
  bool accepted = false;
  while (const auto line = read_line()) {
    out << *line << "\n";
    out.flush();
    const auto event = runtime::json_string_field(*line, "event");
    if (!event.has_value()) continue;
    if (*event == "rejected") return ClientExit::kRejected;
    if (*event == "error") return ClientExit::kUsage;
    if (*event == "accepted") {
      accepted = true;
      if (spec.detach) return ClientExit::kDone;  // fire-and-forget
      continue;
    }
    if (*event == "terminal") {
      const auto state = runtime::json_string_field(*line, "state");
      if (state == "done") return ClientExit::kDone;
      if (state == "cancelled" || state == "interrupted") {
        return ClientExit::kInterrupted;
      }
      return ClientExit::kFailed;
    }
  }
  (void)accepted;
  return ClientExit::kConnectionLost;
}

int ServeClient::status(std::optional<std::uint64_t> id, std::ostream& out) {
  if (!send(status_line(id))) return ClientExit::kConnectionLost;
  while (const auto line = read_line()) {
    out << *line << "\n";
    out.flush();
    const auto event = runtime::json_string_field(*line, "event");
    if (!event.has_value()) continue;
    if (*event == "error") return ClientExit::kUsage;
    // Single-job answers are one "job" line; full answers end with the
    // "status" summary.
    if (*event == "status" || (id.has_value() && *event == "job")) {
      return ClientExit::kDone;
    }
  }
  return ClientExit::kConnectionLost;
}

int ServeClient::cancel(std::uint64_t id, std::ostream& out) {
  if (!send(cancel_line(id))) return ClientExit::kConnectionLost;
  while (const auto line = read_line()) {
    out << *line << "\n";
    out.flush();
    const auto event = runtime::json_string_field(*line, "event");
    if (event == "cancel_ack") {
      return runtime::json_bool_field(*line, "ok").value_or(false)
                 ? ClientExit::kDone
                 : ClientExit::kFailed;
    }
    if (event == "error") return ClientExit::kUsage;
  }
  return ClientExit::kConnectionLost;
}

int ServeClient::shutdown(std::ostream& out) {
  if (!send(shutdown_line())) return ClientExit::kConnectionLost;
  while (const auto line = read_line()) {
    out << *line << "\n";
    out.flush();
    if (runtime::json_string_field(*line, "event") == "shutting_down") {
      return ClientExit::kDone;
    }
  }
  return ClientExit::kConnectionLost;
}

}  // namespace fl::serve
