#include "serve/jobs.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "attacks/appsat.h"
#include "attacks/cycsat.h"
#include "attacks/double_dip.h"
#include "attacks/fall.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/bench_io.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "serve/protocol.h"

namespace fl::serve {

using runtime::JsonObject;

namespace {

// Streams per-DIP-iteration records to the job's subscriber as "trace"
// events — the same fields attacks::JsonlTraceSink writes to --trace files.
class StreamTraceSink final : public attacks::IterationTraceSink {
 public:
  explicit StreamTraceSink(JobContext& ctx) : ctx_(ctx) {}

  void record(const attacks::IterationTrace& trace) override {
    JsonObject o;
    o.field("attack", trace.attack);
    if (trace.cell >= 0) o.field("cell", trace.cell);
    o.field("iter", trace.iteration)
        .field("dip", trace.dip)
        .field("cv_ratio", trace.cv_ratio)
        .field("decisions", trace.decisions)
        .field("propagations", trace.propagations)
        .field("conflicts", trace.conflicts)
        .field("solve_s", trace.solve_s)
        .field("clauses_added", trace.clauses_added)
        .field("vars_added", trace.vars_added)
        .field("encode_s", trace.encode_s);
    ctx_.emit("trace", std::move(o));
  }

 private:
  JobContext& ctx_;
};

std::string key_string(const std::vector<bool>& key) {
  std::string s;
  s.reserve(key.size());
  for (const bool b : key) s.push_back(b ? '1' : '0');
  return s;
}

attacks::AttackResult run_one_attack(const std::string& name,
                                     const core::LockedCircuit& locked,
                                     const attacks::Oracle& oracle,
                                     const attacks::AttackOptions& options) {
  if (name == "sat") return attacks::SatAttack(options).run(locked, oracle);
  if (name == "cycsat") return attacks::CycSat(options).run(locked, oracle);
  if (name == "appsat") {
    attacks::AppSatOptions app_options;
    app_options.base = options;
    return attacks::AppSat(app_options).run(locked, oracle);
  }
  if (name == "fall") {
    // FALL has its own result shape; map the essentials onto the generic
    // record (success iff a fully verified key came back).
    const attacks::FallResult fall = attacks::fall_attack(locked, oracle);
    attacks::AttackResult result;
    result.status = fall.key_recovered
                        ? attacks::AttackStatus::kSuccess
                        : attacks::AttackStatus::kIterationLimit;
    result.key = fall.key;
    result.iterations = static_cast<std::uint64_t>(fall.candidates_tested);
    result.oracle_queries = static_cast<std::uint64_t>(fall.error_patterns);
    return result;
  }
  return attacks::DoubleDip(options).run(locked, oracle);
}

// Translates the spec's encode string (validated at admission; journals from
// older daemons may omit it) into the attack engine's mode.
attacks::EncodeMode encode_mode_of(const JobSpec& spec) {
  return attacks::parse_encode_mode(spec.encode)
      .value_or(attacks::EncodeMode::kAuto);
}

JobResult run_lock_job(const JobSpec& spec, JobContext& ctx) {
  JobResult result;
  const netlist::Netlist original = netlist::read_bench_file(spec.bench_path);
  if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
    result.interrupted = true;
    return result;
  }
  const std::vector<int> sizes = spec.sizes.empty() ? std::vector<int>{16}
                                                    : spec.sizes;
  const core::LockedCircuit locked = lock::lock_with(
      spec.scheme, original,
      lock::make_options(spec.seed, sizes, spec.scheme_params));
  if (!core::verify_unlocks(original, locked, 16, 1)) {
    throw std::runtime_error("lock verification failed: correct key does not "
                             "unlock the circuit");
  }
  try {
    // Writes the .bench (with scheme/params provenance headers) + .key pair.
    lock::write_locked_circuit(locked, spec.out_path);
  } catch (const runtime::WriteFault&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw runtime::WriteFault(e.what());
  }
  result.fields.field("scheme", locked.scheme)
      .field("params", locked.params)
      .field("gates_before", original.num_logic_gates())
      .field("gates_after", locked.netlist.num_logic_gates())
      .field("key_bits", locked.key_bits())
      .field("out_path", spec.out_path);
  return result;
}

JobResult run_attack_job(const JobSpec& spec, JobContext& ctx) {
  JobResult result;
  // Scheme + params come back from the provenance header when the lock was
  // made by this tool (CLI lock / lock job); foreign files read as "file".
  const core::LockedCircuit locked =
      lock::read_locked_circuit(spec.locked_path);
  const netlist::Netlist oracle_netlist =
      netlist::read_bench_file(spec.oracle_path);
  const attacks::Oracle oracle(oracle_netlist);
  const bool cyclic = locked.netlist.is_cyclic();
  if (spec.encode == "cone" && cyclic) {
    throw std::invalid_argument(
        "encode mode 'cone' requires an acyclic netlist, but " +
        spec.locked_path + " is cyclic; use encode auto or full");
  }

  attacks::AttackOptions options;
  options.timeout_s = spec.attack_timeout_s;
  options.deadline = ctx.deadline;  // the job budget caps the attack budget
  options.interrupt = ctx.cancel != nullptr ? ctx.cancel->flag() : nullptr;
  options.memory_limit_mb = spec.memory_limit_mb;
  options.encode_mode = encode_mode_of(spec);
  StreamTraceSink trace(ctx);
  if (spec.trace) options.trace = &trace;

  const std::string name = lock::resolve_attack(spec.attack, cyclic);
  if (name == "fall") {
    const attacks::FallResult fall = attacks::fall_attack(locked, oracle);
    result.fields.field("attack", name)
        .field("scheme", locked.scheme)
        .field("status", fall.key_recovered ? "success" : "iteration-limit")
        .field("restore_identified", fall.restore_identified)
        .field("protected_bits", fall.protected_bits)
        .field("error_patterns", fall.error_patterns)
        .field("candidates_tested", fall.candidates_tested)
        .field("stripped_error_rate", fall.stripped_error_rate)
        .field("key_bits", locked.netlist.num_keys());
    if (fall.key_recovered) {
      result.fields.field("hd", fall.hd).field("key", key_string(fall.key));
    }
    return result;
  }
  const attacks::AttackResult attack =
      run_one_attack(name, locked, oracle, options);
  if (attack.status == attacks::AttackStatus::kInterrupted) {
    result.interrupted = true;
    return result;
  }
  result.fields.field("attack", name)
      .field("scheme", locked.scheme)
      .field("status", attacks::to_string(attack.status))
      .field("iterations", attack.iterations)
      .field("oracle_queries", attack.oracle_queries)
      .field("key_bits", locked.netlist.num_keys())
      .field("mean_clause_var_ratio", attack.mean_clause_var_ratio)
      .field("attack_s", attack.seconds);
  if (attack.status == attacks::AttackStatus::kSuccess) {
    result.fields.field("key", key_string(attack.key));
  }
  return result;
}

JobResult run_sweep_job(const JobSpec& spec, JobContext& ctx) {
  JobResult result;
  const netlist::Netlist original = netlist::read_bench_file(spec.bench_path);

  struct Cell {
    int size;
    int replica;
    std::uint64_t seed;
  };
  std::vector<int> sizes = spec.sizes.empty() ? std::vector<int>{4, 8, 16}
                                              : spec.sizes;
  std::vector<Cell> grid;
  for (const int size : sizes) {
    for (int r = 0; r < spec.replicas; ++r) {
      grid.push_back({size, r,
                      runtime::derive_seed(
                          spec.seed, {static_cast<std::uint64_t>(size),
                                      static_cast<std::uint64_t>(r)})});
    }
  }

  // Cells run serially inside the job: the daemon parallelizes across jobs,
  // and a serial grid keeps the checkpoint byte-identical across restarts.
  runtime::RunnerArgs run_args;
  run_args.jobs = 1;
  run_args.jsonl_path = spec.jsonl_path;
  // A scheduler-level retry must continue the checkpoint the failed attempt
  // left behind, not truncate it — cells already durable stay done.
  run_args.resume = spec.resume || ctx.attempt > 0;
  run_args.memory_limit_mb = spec.memory_limit_mb;

  runtime::SweepSessionOptions session_options;
  session_options.install_signal_handler = false;  // the daemon owns signals
  session_options.cancel = ctx.cancel;
  session_options.faults = ctx.faults;
  runtime::SweepSession session("serve_sweep", grid.size(), spec.seed,
                                run_args, session_options);

  const auto record_base = [&](std::size_t i) {
    JsonObject o;
    o.field("cell", i)
        .field("bench", "serve_sweep")
        .field("circuit", original.name())
        .field("scheme", spec.scheme)
        .field("plr_size", grid[i].size)
        .field("replica", grid[i].replica)
        .field("seed", grid[i].seed);
    return o;
  };

  const runtime::GridReport report = runtime::run_grid(
      grid.size(), session.grid_config(),
      [&](const runtime::CellContext& cell_ctx) {
        const std::size_t i = cell_ctx.index;
        const core::LockedCircuit locked = lock::lock_with(
            spec.scheme, original,
            lock::make_options(grid[i].seed, {grid[i].size},
                               spec.scheme_params));
        const attacks::Oracle oracle(original);

        attacks::AttackOptions options;
        options.timeout_s = cell_ctx.effective_timeout(spec.attack_timeout_s);
        options.deadline = ctx.deadline;
        options.interrupt = cell_ctx.interrupt;
        options.memory_limit_mb = spec.memory_limit_mb;
        options.encode_mode = encode_mode_of(spec);
        const bool cyclic = locked.netlist.is_cyclic();
        const std::string name = lock::resolve_attack(spec.attack, cyclic);
        const attacks::AttackResult attack =
            run_one_attack(name, locked, oracle, options);
        if (attack.status == attacks::AttackStatus::kInterrupted) {
          session.note_interrupted(i);
          return;
        }
        if (session.sink() != nullptr) {
          JsonObject o = record_base(i);
          o.field("key_bits", locked.key_bits())
              .field("cyclic", cyclic)
              .field("attack", name)
              .field("status", attacks::to_string(attack.status))
              .field("iterations", attack.iterations)
              .field("mean_clause_var_ratio", attack.mean_clause_var_ratio)
              .field("oracle_queries", attack.oracle_queries)
              .field("mean_iteration_s", attack.mean_iteration_seconds)
              .field("wall_s", attack.seconds);
          session.sink()->write(i, o.str());
        }
        // Mirror the committed cell to the streaming client.
        JsonObject o;
        o.field("cell", i)
            .field("scheme", spec.scheme)
            .field("plr_size", grid[i].size)
            .field("replica", grid[i].replica)
            .field("status", attacks::to_string(attack.status))
            .field("iterations", attack.iterations)
            .field("wall_s", attack.seconds);
        ctx.emit("cell", std::move(o));
      });

  // finish() writes failure records, drains + syncs the checkpoint, and maps
  // the outcome to an exit code; >= 128 means the cancel token fired.
  const int exit_code = session.finish(report, record_base);
  if (exit_code >= 128 ||
      (ctx.cancel != nullptr && ctx.cancel->cancelled())) {
    result.interrupted = true;
    return result;
  }
  if (exit_code != 0) {
    throw std::runtime_error(
        "sweep finished with " + std::to_string(report.failed) +
        " failed cell(s) of " + std::to_string(report.cells.size()) +
        " (checkpoint " + spec.jsonl_path + ")");
  }
  result.fields.field("cells", grid.size())
      .field("cells_ok", report.ok)
      .field("cells_resumed", session.num_resumed())
      .field("jsonl_path", spec.jsonl_path);
  return result;
}

}  // namespace

JobRunner default_job_runner() {
  return [](const JobSpec& spec, JobContext& ctx) -> JobResult {
    switch (spec.kind) {
      case JobKind::kLock: return run_lock_job(spec, ctx);
      case JobKind::kAttack: return run_attack_job(spec, ctx);
      case JobKind::kSweep: return run_sweep_job(spec, ctx);
    }
    throw std::logic_error("unreachable job kind");
  };
}

}  // namespace fl::serve
