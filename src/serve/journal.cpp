#include "serve/journal.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

namespace fl::serve {

using runtime::JsonObject;

JobJournal::Replay JobJournal::replay(const std::string& path) {
  Replay replay;
  std::ifstream in(path);
  if (!in) return replay;  // no journal yet: fresh daemon
  std::string line;
  std::map<std::uint64_t, JobSpec> pending;  // id order = original order
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto record = runtime::json_string_field(line, "record");
    if (!record.has_value() || *record != "serve_job") continue;
    const auto event = runtime::json_string_field(line, "event");
    const auto id = runtime::json_int_field(line, "id");
    if (!event.has_value() || !id.has_value() || *id < 1) {
      std::fprintf(stderr,
                   "[serve] journal %s:%zu: skipping unparseable record "
                   "(torn write from a crash?)\n",
                   path.c_str(), lineno);
      continue;
    }
    ++replay.records;
    const auto job_id = static_cast<std::uint64_t>(*id);
    replay.max_id = std::max(replay.max_id, job_id);
    if (*event == "accepted") {
      try {
        pending[job_id] = parse_spec_fields(line);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[serve] journal %s:%zu: dropping job %llu: %s\n",
                     path.c_str(), lineno,
                     static_cast<unsigned long long>(job_id), e.what());
      }
    } else if (*event == "terminal") {
      pending.erase(job_id);
    }
  }
  for (auto& [id, spec] : pending) {
    // A replayed sweep continues from its cell checkpoint rather than
    // recomputing finished cells; lock/attack jobs simply run again.
    if (spec.kind == JobKind::kSweep) spec.resume = true;
    // The submitting client is gone; nobody is left to cancel-on-disconnect.
    spec.detach = true;
    replay.pending.emplace_back(id, std::move(spec));
  }
  return replay;
}

JobJournal::JobJournal(const std::string& path,
                       const runtime::FaultInjector* faults)
    : writer_(path, /*append=*/true, faults) {}

void JobJournal::record_accepted(std::uint64_t id, const JobSpec& spec) {
  JsonObject o;
  o.field("record", "serve_job").field("event", "accepted").field("id", id);
  append_spec_fields(o, spec);
  std::lock_guard<std::mutex> lock(mu_);
  writer_.stream() << o.str() << '\n';
  writer_.sync();  // throws WriteFault on ENOSPC/EIO/injected fault
}

void JobJournal::record_terminal(std::uint64_t id, JobState state,
                                 const std::string& reason, int attempts) {
  JsonObject o;
  o.field("record", "serve_job")
      .field("event", "terminal")
      .field("id", id)
      .field("state", to_string(state))
      .field("reason", reason)
      .field("attempts", attempts);
  std::lock_guard<std::mutex> lock(mu_);
  writer_.stream() << o.str() << '\n';
  writer_.sync();
}

}  // namespace fl::serve
