#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fl::serve {

using runtime::JsonObject;
using steady_clock = std::chrono::steady_clock;

namespace {

std::chrono::duration<double> seconds(double s) {
  return std::chrono::duration<double>(s);
}

double since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

}  // namespace

struct Scheduler::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  EventFn events;

  // All remaining fields are guarded by Scheduler::mu_ except `token`
  // (internally atomic) and the emit bookkeeping below.
  JobState state = JobState::kQueued;
  int attempts = 0;  // attempts started so far
  std::string reason;
  runtime::CancelToken token;
  bool user_cancel = false;   // explicit cancel op / client disconnect
  bool drain_cancel = false;  // daemon drain — terminal state "interrupted"
  bool timed_out = false;     // watchdog wall-budget escalation
  bool abandoned = false;     // watchdog already emitted the terminal event
  bool cancel_pending = false;
  std::string cancel_reason;
  steady_clock::time_point cancel_requested_at{};
  steady_clock::time_point started{};
  std::optional<steady_clock::time_point> deadline;

  // Serializes event delivery per job and drops post-terminal stragglers
  // (a trace record racing the watchdog's stalled-terminal record).
  std::mutex emit_mu;
  bool terminal_emitted = false;
};

Scheduler::Scheduler(SchedulerConfig config, JobRunner runner)
    : config_(std::move(config)), runner_(std::move(runner)) {
  next_id_ = std::max<std::uint64_t>(1, config_.first_id);
  pool_.emplace(config_.workers);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Scheduler::~Scheduler() {
  drain();
  stop_watchdog_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
  pool_.reset();
}

const runtime::FaultInjector& Scheduler::faults() const {
  return config_.faults != nullptr ? *config_.faults
                                   : runtime::FaultInjector::global();
}

std::uint64_t Scheduler::submit(JobSpec spec, EventFn events,
                                std::string* reject_reason,
                                std::uint64_t forced_id) {
  auto job = std::make_shared<Job>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.load(std::memory_order_relaxed)) {
      if (reject_reason != nullptr) *reject_reason = "draining";
      return 0;
    }
    if (num_queued_ >= config_.max_queue) {
      if (reject_reason != nullptr) *reject_reason = "overloaded";
      return 0;
    }
    job->id = forced_id != 0 ? forced_id : next_id_++;
    if (forced_id >= next_id_) next_id_ = forced_id + 1;
    job->spec = std::move(spec);
    job->events = std::move(events);
    jobs_[job->id] = job;
    ++num_queued_;
  }
  pool_->submit([this] { claim_and_run(); });
  return job->id;
}

bool Scheduler::cancel(std::uint64_t id, const std::string& reason) {
  std::shared_ptr<Job> job;
  bool was_queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || is_terminal(it->second->state)) return false;
    job = it->second;
    job->user_cancel = true;
    job->cancel_reason = reason;
    if (!job->cancel_pending) {
      job->cancel_pending = true;
      job->cancel_requested_at = steady_clock::now();
    }
    job->token.request();
    was_queued = job->state == JobState::kQueued;
  }
  cv_.notify_all();  // wake a backoff wait
  if (was_queued) {
    // No runner is attached to a queued job; terminalize directly.
    // finish_job re-checks the state, so losing the race with a claim that
    // just started it is benign — the runner sees its token and stops.
    finish_job(job, JobState::kCancelled, reason, nullptr);
  }
  return true;
}

JobInfo Scheduler::info_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.kind = job.spec.kind;
  info.state = job.state;
  info.priority = job.spec.priority;
  info.attempts = job.attempts;
  info.reason = job.reason;
  return info;
}

std::optional<JobInfo> Scheduler::info(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return info_locked(*it->second);
}

std::vector<JobInfo> Scheduler::jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(info_locked(*job));
  return out;
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats stats = terminal_counts_;
  stats.queued = num_queued_;
  stats.running = num_running_;
  stats.draining = draining_.load(std::memory_order_relaxed);
  return stats;
}

void Scheduler::drain() {
  draining_.store(true, std::memory_order_relaxed);
  // The drain fault site: an injected stall here delays shutdown (bounded —
  // see FaultInjector::inject_site), an injected throw must not abort it.
  try {
    faults().inject_site("serve.drain");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[serve] drain fault (continuing): %s\n", e.what());
  }

  std::vector<std::shared_ptr<Job>> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        queued.push_back(job);
      } else if (!is_terminal(job->state)) {
        job->drain_cancel = true;
        if (!job->cancel_pending) {
          job->cancel_pending = true;
          job->cancel_requested_at = steady_clock::now();
        }
        job->token.request();
      }
    }
  }
  cv_.notify_all();
  for (const auto& job : queued) {
    // Queued jobs were never started: their durable state (if any) is
    // whatever the journal holds, so they stay pending there and resume on
    // restart.
    finish_job(job, JobState::kInterrupted, "daemon draining", nullptr);
  }
  pool_->wait_idle();
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return num_queued_ == 0 && num_running_ == 0; });
}

void Scheduler::claim_and_run() {
  std::shared_ptr<Job> best;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, job] : jobs_) {
      if (job->state != JobState::kQueued) continue;
      // Highest priority first; FIFO (map order = submission order) within
      // a priority level.
      if (!best || job->spec.priority > best->spec.priority) best = job;
    }
    if (!best) return;  // its job was cancelled while queued
    best->state = JobState::kRunning;
    --num_queued_;
    ++num_running_;
    best->started = steady_clock::now();
    const double wall = best->spec.timeout_s > 0.0
                            ? best->spec.timeout_s
                            : config_.default_job_timeout_s;
    if (wall > 0.0) {
      best->deadline = best->started +
                       std::chrono::duration_cast<steady_clock::duration>(
                           seconds(wall));
    }
  }
  run_job(std::move(best));
}

void Scheduler::emit(const std::shared_ptr<Job>& job, JobEvent event) {
  std::lock_guard<std::mutex> lock(job->emit_mu);
  if (job->terminal_emitted) return;  // never stream past the terminal event
  if (event.type == "terminal") job->terminal_emitted = true;
  if (!job->events) return;
  try {
    job->events(event);
  } catch (...) {
    // A subscriber that throws (vanished client, full socket) must never
    // take the scheduler down; the daemon layer handles disconnects.
  }
}

void Scheduler::finish_job(const std::shared_ptr<Job>& job, JobState state,
                           std::string reason, const JobResult* result) {
  double wall_s = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (is_terminal(job->state)) return;  // someone (watchdog) beat us to it
    if (job->state == JobState::kQueued) {
      --num_queued_;
    } else {
      --num_running_;
    }
    job->state = state;
    job->reason = reason;
    switch (state) {
      case JobState::kDone: ++terminal_counts_.done; break;
      case JobState::kFailed: ++terminal_counts_.failed; break;
      case JobState::kCancelled: ++terminal_counts_.cancelled; break;
      case JobState::kInterrupted: ++terminal_counts_.interrupted; break;
      default: break;
    }
    if (job->started != steady_clock::time_point{}) {
      wall_s = since(job->started);
    }
  }
  cv_.notify_all();

  JsonObject o;
  o.field("event", "terminal")
      .field("id", job->id)
      .field("state", to_string(state))
      .field("kind", to_string(job->spec.kind))
      .field("attempts", job->attempts);
  if (!reason.empty()) o.field("reason", reason);
  if (result != nullptr) o.merge(result->fields);
  o.field("wall_s", wall_s);

  JobEvent event;
  event.id = job->id;
  event.type = "terminal";
  event.state = state;
  event.line = o.str();
  emit(job, std::move(event));
}

void Scheduler::run_job(std::shared_ptr<Job> job) {
  const int max_attempts = job->spec.retries + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (is_terminal(job->state) || job->abandoned) return;
      job->state = JobState::kRunning;
      job->attempts = attempt + 1;
    }

    {
      JsonObject o;
      o.field("event", "started").field("id", job->id).field("attempt",
                                                             attempt);
      emit(job, JobEvent{job->id, "started", JobState::kRunning, o.str()});
    }

    // Decides the terminal state once a cancellation (of any origin) has
    // been observed.
    const auto cancelled_outcome = [&](const std::string& detail) {
      if (job->timed_out) {
        finish_job(job, JobState::kFailed,
                   "wall budget exceeded" +
                       (detail.empty() ? "" : " (" + detail + ")"),
                   nullptr);
      } else if (job->user_cancel) {
        finish_job(job, JobState::kCancelled,
                   job->cancel_reason.empty() ? "cancelled"
                                              : job->cancel_reason,
                   nullptr);
      } else {
        finish_job(job, JobState::kInterrupted, "daemon draining", nullptr);
      }
    };

    std::string failure;
    try {
      // The worker fault site: FL_FAULT="site:serve.job:<kind>" fails the
      // attempt (throw/oom), stalls it against the job budget, or kills the
      // whole process (exit — the daemon crash-recovery test).
      faults().inject_site("serve.job", [this, &job] {
        return job->token.cancelled() ||
               draining_.load(std::memory_order_relaxed) ||
               !job->deadline.has_value() ||
               steady_clock::now() >= *job->deadline;
      });

      JobContext ctx;
      ctx.id = job->id;
      ctx.attempt = attempt;
      ctx.cancel = &job->token;
      ctx.deadline = job->deadline;
      ctx.faults = &faults();
      ctx.emit = [this, job](const char* type, JsonObject payload) {
        JsonObject o;
        o.field("event", type).field("id", job->id);
        o.merge(payload);
        emit(job, JobEvent{job->id, type, JobState::kRunning, o.str()});
      };

      JobResult result = runner_(job->spec, ctx);
      if (result.interrupted || job->token.cancelled()) {
        cancelled_outcome("");
        return;
      }
      finish_job(job, JobState::kDone, "", &result);
      return;
    } catch (const std::exception& e) {
      failure = e.what();
    } catch (...) {
      failure = "unknown exception";
    }

    // The attempt failed. A pending cancellation wins over retrying.
    if (job->token.cancelled()) {
      cancelled_outcome(failure);
      return;
    }
    const bool budget_left =
        !job->deadline.has_value() || steady_clock::now() < *job->deadline;
    if (attempt + 1 < max_attempts && budget_left &&
        !draining_.load(std::memory_order_relaxed)) {
      const double backoff = std::min(
          config_.backoff_cap_s,
          config_.backoff_base_s * std::ldexp(1.0, attempt));
      {
        JsonObject o;
        o.field("event", "retry")
            .field("id", job->id)
            .field("attempt", attempt + 1)
            .field("reason", failure)
            .field("backoff_s", backoff);
        emit(job, JobEvent{job->id, "retry", JobState::kBackoff, o.str()});
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (is_terminal(job->state) || job->abandoned) return;
      job->state = JobState::kBackoff;
      cv_.wait_for(lock, seconds(backoff), [this, &job] {
        return job->token.cancelled() ||
               draining_.load(std::memory_order_relaxed) || job->abandoned;
      });
      if (is_terminal(job->state) || job->abandoned) return;
      lock.unlock();
      if (job->token.cancelled() ||
          draining_.load(std::memory_order_relaxed)) {
        cancelled_outcome(failure);
        return;
      }
      continue;
    }
    finish_job(job, JobState::kFailed,
               failure + " (after " + std::to_string(attempt + 1) +
                   (attempt == 0 ? " attempt)" : " attempts)"),
               nullptr);
    return;
  }
}

void Scheduler::watchdog_loop() {
  const auto period = seconds(std::max(0.001, config_.watchdog_period_s));
  while (!stop_watchdog_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    const auto now = steady_clock::now();
    std::vector<std::pair<std::shared_ptr<Job>, double>> stalled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, job] : jobs_) {
        if (is_terminal(job->state) || job->state == JobState::kQueued ||
            job->abandoned) {
          continue;
        }
        if (!job->cancel_pending && job->deadline.has_value() &&
            now >= *job->deadline) {
          job->timed_out = true;
          job->cancel_pending = true;
          job->cancel_requested_at = now;
          job->token.request();
        } else if (job->cancel_pending &&
                   now - job->cancel_requested_at >
                       seconds(config_.stall_grace_s)) {
          // The job ignored its cancellation past the grace period: declare
          // it stalled now so the client gets a terminal record promptly.
          // The worker slot stays occupied until the runaway returns; its
          // eventual result is discarded.
          job->abandoned = true;
          stalled.emplace_back(
              job, std::chrono::duration<double>(
                       now - job->cancel_requested_at)
                       .count());
        }
      }
    }
    if (!stalled.empty()) cv_.notify_all();
    for (const auto& [job, pending_s] : stalled) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f", pending_s);
      finish_job(job, JobState::kFailed,
                 std::string("stalled: ignored cancellation for ") + buf +
                     "s (watchdog gave up)",
                 nullptr);
    }
  }
}

}  // namespace fl::serve
