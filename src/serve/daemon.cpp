#include "serve/daemon.h"

#include <chrono>
#include <cstdio>

#include "runtime/runner.h"
#include "runtime/signal.h"
#include "serve/jobs.h"

namespace fl::serve {

using runtime::JsonObject;

ServeArgs parse_serve_args(int argc, char** argv, int first) {
  ServeArgs args;
  const auto need_value = [&](const std::string& flag, int i) {
    if (i + 1 >= argc) {
      throw std::invalid_argument("flag " + flag + " needs a value");
    }
    return std::string(argv[i + 1]);
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--state") {
      args.journal_path = need_value(arg, i++);
    } else if (arg.rfind("--state=", 0) == 0) {
      args.journal_path = arg.substr(8);
    } else if (arg == "--workers") {
      args.workers = static_cast<int>(
          runtime::parse_int_flag("--workers", need_value(arg, i++), 1,
                                  1 << 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      args.workers = static_cast<int>(
          runtime::parse_int_flag("--workers", arg.substr(10), 1, 1 << 10));
    } else if (arg == "--max-queue") {
      args.max_queue = static_cast<std::size_t>(runtime::parse_int_flag(
          "--max-queue", need_value(arg, i++), 1, 1 << 20));
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      args.max_queue = static_cast<std::size_t>(
          runtime::parse_int_flag("--max-queue", arg.substr(12), 1, 1 << 20));
    } else if (arg == "--job-timeout") {
      args.job_timeout_s =
          runtime::parse_seconds_flag("--job-timeout", need_value(arg, i++));
    } else if (arg.rfind("--job-timeout=", 0) == 0) {
      args.job_timeout_s =
          runtime::parse_seconds_flag("--job-timeout", arg.substr(14));
    } else if (arg == "--retries") {
      args.retries = static_cast<int>(runtime::parse_int_flag(
          "--retries", need_value(arg, i++), 0, 1000000));
    } else if (arg.rfind("--retries=", 0) == 0) {
      args.retries = static_cast<int>(
          runtime::parse_int_flag("--retries", arg.substr(10), 0, 1000000));
    } else if (arg == "--backoff") {
      args.backoff_s =
          runtime::parse_seconds_flag("--backoff", need_value(arg, i++));
    } else if (arg.rfind("--backoff=", 0) == 0) {
      args.backoff_s =
          runtime::parse_seconds_flag("--backoff", arg.substr(10));
    } else if (arg == "--stall-grace") {
      args.stall_grace_s =
          runtime::parse_seconds_flag("--stall-grace", need_value(arg, i++));
      if (args.stall_grace_s <= 0.0) {
        throw std::invalid_argument(
            "--stall-grace must be > 0 seconds (the watchdog needs a real "
            "grace window before declaring a job stalled)");
      }
    } else if (arg.rfind("--stall-grace=", 0) == 0) {
      args.stall_grace_s =
          runtime::parse_seconds_flag("--stall-grace", arg.substr(14));
      if (args.stall_grace_s <= 0.0) {
        throw std::invalid_argument(
            "--stall-grace must be > 0 seconds (the watchdog needs a real "
            "grace window before declaring a job stalled)");
      }
    } else if (args.socket_path.empty() && !arg.empty() && arg[0] != '-') {
      args.socket_path = arg;
    } else {
      throw std::invalid_argument(
          "unknown serve argument '" + arg +
          "' (expected <socket> [--state FILE] [--workers N] [--max-queue N] "
          "[--job-timeout S] [--retries N] [--backoff S] [--stall-grace S])");
    }
  }
  if (args.socket_path.empty()) {
    throw std::invalid_argument("serve requires a socket path");
  }
  return args;
}

Daemon::Daemon(ServeArgs args, JobRunner runner,
               const runtime::FaultInjector* faults)
    : args_(std::move(args)),
      runner_(runner ? std::move(runner) : default_job_runner()),
      faults_override_(faults) {}

Daemon::~Daemon() {
  stopping_.store(true, std::memory_order_relaxed);
  if (listener_.has_value()) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_.has_value()) scheduler_->drain();
  reap_readers(/*all=*/true);
  scheduler_.reset();  // before the journal: terminal events may journal
  journal_.reset();
  listener_.reset();
}

const runtime::FaultInjector& Daemon::faults() const {
  return faults_override_ != nullptr ? *faults_override_
                                     : runtime::FaultInjector::global();
}

void Daemon::start() {
  if (started_.exchange(true, std::memory_order_relaxed)) return;

  JobJournal::Replay replay;
  if (!args_.journal_path.empty()) {
    replay = JobJournal::replay(args_.journal_path);
    journal_.emplace(args_.journal_path, faults_override_);
  }
  next_id_.store(replay.max_id + 1, std::memory_order_relaxed);

  SchedulerConfig config;
  config.workers = args_.workers;
  config.max_queue = args_.max_queue;
  config.default_job_timeout_s = args_.job_timeout_s;
  config.backoff_base_s = args_.backoff_s;
  config.stall_grace_s = args_.stall_grace_s;
  config.watchdog_period_s = args_.watchdog_period_s;
  config.faults = faults_override_;
  config.first_id = replay.max_id + 1;
  scheduler_.emplace(std::move(config), runner_);

  // Re-enqueue jobs the previous daemon accepted but never finished. Their
  // submitting clients are long gone; events go to the journal only.
  for (auto& [id, spec] : replay.pending) {
    std::fprintf(stderr, "[serve] replaying job %llu (%s) from %s\n",
                 static_cast<unsigned long long>(id), to_string(spec.kind),
                 args_.journal_path.c_str());
    const Submission sub = submit_job(std::move(spec), nullptr, id);
    if (sub.id == 0) {
      std::fprintf(stderr, "[serve] replay of job %llu rejected: %s\n",
                   static_cast<unsigned long long>(id),
                   sub.reject_reason.c_str());
    }
  }

  listener_.emplace(args_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

int Daemon::serve_forever(bool install_signals) {
  runtime::CancelToken token;
  std::optional<runtime::ScopedSignalHandler> signals;
  if (install_signals) signals.emplace(token);
  start();
  while (!token.cancelled() && !shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const int signo =
      install_signals ? runtime::ScopedSignalHandler::last_signal() : 0;
  std::fprintf(stderr, "[serve] draining (%s)...\n",
               signo != 0 ? "signal" : "shutdown requested");
  drain();
  const bool durable = !journal_broken_.load(std::memory_order_relaxed);
  std::fprintf(stderr, "[serve] drained%s\n",
               durable ? "" : " (journal lost durability!)");
  if (signo != 0) return 128 + signo;
  return durable ? 0 : 1;
}

void Daemon::drain() {
  stopping_.store(true, std::memory_order_relaxed);
  if (listener_.has_value()) listener_->close();  // stop accepting
  if (scheduler_.has_value()) scheduler_->drain();
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_readers(/*all=*/true);
}

void Daemon::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = listener_->accept_with_timeout(200);
    reap_readers(/*all=*/false);
    if (fd < 0) continue;
    auto conn = std::make_shared<ClientConn>(
        fd, next_conn_id_.fetch_add(1, std::memory_order_relaxed),
        faults_override_);
    std::lock_guard<std::mutex> lock(conns_mu_);
    Reader reader;
    reader.conn = conn;
    reader.thread = std::thread([this, conn] {
      conn->read_lines(
          [this, &conn](const std::string& line) { handle_line(conn, line); });
      on_disconnect(conn);
    });
    readers_.push_back(std::move(reader));
  }
}

void Daemon::reap_readers(bool all) {
  std::vector<Reader> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (all || it->conn->closed()) {
        if (all) it->conn->close();
        to_join.push_back(std::move(*it));
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Reader& reader : to_join) {
    if (reader.thread.joinable()) reader.thread.join();
  }
}

Daemon::Submission Daemon::submit_job(JobSpec spec,
                                      const std::shared_ptr<ClientConn>& conn,
                                      std::uint64_t forced_id) {
  Submission sub;
  // Fast-path admission checks before anything touches the journal.
  if (shutdown_requested() || stopping_.load(std::memory_order_relaxed) ||
      scheduler_->draining()) {
    sub.reject_reason = "draining";
    return sub;
  }
  const std::uint64_t id =
      forced_id != 0 ? forced_id
                     : next_id_.fetch_add(1, std::memory_order_relaxed);

  // Durability before acknowledgment: the journal's "accepted" record is
  // fsynced before the scheduler (or the client) sees the job. Replayed
  // jobs (forced_id) are already journaled.
  if (journal_.has_value() && forced_id == 0) {
    try {
      journal_->record_accepted(id, spec);
    } catch (const std::exception& e) {
      sub.reject_reason = std::string("journal write failed: ") + e.what();
      return sub;
    }
  }

  const bool detach = spec.detach;
  const JobKind kind = spec.kind;
  std::weak_ptr<ClientConn> weak_conn = conn;
  EventFn events = [this, weak_conn](const JobEvent& event) {
    if (event.type == "terminal" && journal_.has_value() &&
        event.state != JobState::kInterrupted) {
      // Interrupted jobs stay pending on purpose: the next daemon resumes
      // them. Everything else gets its terminal record — and a journal that
      // cannot commit one anymore must make the eventual exit loud.
      try {
        const auto reason = runtime::json_string_field(event.line, "reason");
        const auto attempts = runtime::json_int_field(event.line, "attempts");
        journal_->record_terminal(event.id, event.state,
                                  reason.value_or(""),
                                  static_cast<int>(attempts.value_or(0)));
      } catch (const std::exception& e) {
        journal_broken_.store(true, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "[serve] FAILED to journal terminal record of job "
                     "%llu: %s\n",
                     static_cast<unsigned long long>(event.id), e.what());
      }
    }
    if (const auto conn = weak_conn.lock()) conn->send_line(event.line);
  };

  std::string reject;
  const std::uint64_t got =
      scheduler_->submit(std::move(spec), std::move(events), &reject, id);
  if (got == 0) {
    // Race with drain or a full queue after the accepted record was
    // journaled: neutralize it so replay does not resurrect the job.
    if (journal_.has_value() && forced_id == 0) {
      try {
        journal_->record_terminal(id, JobState::kCancelled,
                                  "rejected: " + reject, 0);
      } catch (const std::exception& e) {
        journal_broken_.store(true, std::memory_order_relaxed);
        std::fprintf(stderr, "[serve] FAILED to journal rejection of job "
                             "%llu: %s\n",
                     static_cast<unsigned long long>(id), e.what());
      }
    }
    sub.reject_reason = reject;
    return sub;
  }
  if (conn != nullptr && !detach) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    owned_jobs_[conn->id()].push_back(got);
  }
  (void)kind;
  sub.id = got;
  return sub;
}

void Daemon::handle_line(const std::shared_ptr<ClientConn>& conn,
                         const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    JsonObject o;
    o.field("event", "error").field("reason", e.what());
    conn->send_line(o.str());
    return;
  }
  switch (request.op) {
    case Request::Op::kSubmit: {
      const Submission sub = submit_job(std::move(request.spec), conn, 0);
      JsonObject o;
      if (sub.id != 0) {
        o.field("event", "accepted")
            .field("id", sub.id)
            .field("queued", scheduler_->stats().queued);
      } else {
        o.field("event", "rejected").field("reason", sub.reject_reason);
      }
      conn->send_line(o.str());
      break;
    }
    case Request::Op::kStatus: {
      if (request.id.has_value()) {
        const auto info = scheduler_->info(*request.id);
        JsonObject o;
        if (info.has_value()) {
          o.field("event", "job")
              .field("id", info->id)
              .field("state", to_string(info->state))
              .field("kind", to_string(info->kind))
              .field("priority", info->priority)
              .field("attempts", info->attempts);
          if (!info->reason.empty()) o.field("reason", info->reason);
        } else {
          o.field("event", "error")
              .field("reason",
                     "unknown job id " + std::to_string(*request.id));
        }
        conn->send_line(o.str());
        break;
      }
      for (const JobInfo& info : scheduler_->jobs()) {
        JsonObject o;
        o.field("event", "job")
            .field("id", info.id)
            .field("state", to_string(info.state))
            .field("kind", to_string(info.kind))
            .field("priority", info.priority)
            .field("attempts", info.attempts);
        if (!info.reason.empty()) o.field("reason", info.reason);
        if (!conn->send_line(o.str())) return;
      }
      // The summary is last: clients treat it as the end-of-status marker.
      const SchedulerStats stats = scheduler_->stats();
      JsonObject o;
      o.field("event", "status")
          .field("queued", stats.queued)
          .field("running", stats.running)
          .field("done", stats.done)
          .field("failed", stats.failed)
          .field("cancelled", stats.cancelled)
          .field("interrupted", stats.interrupted)
          .field("draining", stats.draining);
      conn->send_line(o.str());
      break;
    }
    case Request::Op::kCancel: {
      const bool ok =
          scheduler_->cancel(*request.id, "cancelled by client request");
      JsonObject o;
      o.field("event", "cancel_ack").field("id", *request.id).field("ok", ok);
      conn->send_line(o.str());
      break;
    }
    case Request::Op::kShutdown: {
      JsonObject o;
      o.field("event", "shutting_down");
      conn->send_line(o.str());
      request_shutdown();
      break;
    }
  }
}

void Daemon::on_disconnect(const std::shared_ptr<ClientConn>& conn) {
  conn->close();
  std::vector<std::uint64_t> owned;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    const auto it = owned_jobs_.find(conn->id());
    if (it != owned_jobs_.end()) {
      owned = std::move(it->second);
      owned_jobs_.erase(it);
    }
  }
  for (const std::uint64_t id : owned) {
    if (scheduler_->cancel(id, "client disconnected")) {
      std::fprintf(stderr,
                   "[serve] cancelled job %llu (client disconnected)\n",
                   static_cast<unsigned long long>(id));
    }
  }
}

}  // namespace fl::serve
