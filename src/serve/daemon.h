// The `fulllock serve` daemon: accepts lock/attack/sweep jobs over a
// line-delimited JSON protocol on an AF_UNIX socket, schedules them on the
// shared thread pool with per-job priorities and budgets, streams trace
// events back to submitting clients, and survives every failure mode short
// of SIGKILL — which the durable job journal turns into a restart-and-
// resume instead of lost work.
//
// Composition (one object per concern, each individually testable):
//   UnixListener + ClientConn  (session.h)  socket plumbing
//   Scheduler                  (scheduler.h) queueing, budgets, watchdog
//   JobJournal                 (journal.h)   crash-recovery record
//   default_job_runner         (jobs.h)      the actual lock/attack/sweep
//
// Lifecycle:
//   start()            replay the journal, re-enqueue pending jobs
//                      (sweeps with resume=true), bind + listen, spawn the
//                      accept thread
//   serve_forever()    install the SIGINT/SIGTERM handler and block; the
//                      first signal (or a shutdown op) starts the graceful
//                      drain: stop accepting, reject new submissions with
//                      "draining", cancel in-flight jobs cooperatively
//                      (their checkpoints stay resumable), wait, fsync,
//                      exit 0 or 128+signo
//
// A second signal falls through to SIG_DFL and kills the process — the
// escape hatch, after which the journal replay does its job.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fault.h"
#include "serve/journal.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace fl::serve {

struct ServeArgs {
  std::string socket_path;
  std::string journal_path;      // --state FILE; empty = no crash recovery
  int workers = 1;               // --workers
  std::size_t max_queue = 16;    // --max-queue (admission bound)
  double job_timeout_s = 0.0;    // --job-timeout (default per-job wall, 0 = unlimited)
  int retries = 0;               // --retries (default job retry budget)
  double backoff_s = 0.25;       // --backoff (retry backoff base)
  double stall_grace_s = 2.0;    // --stall-grace (watchdog escalation)
  double watchdog_period_s = 0.02;
};

// Strict flag parsing for the serve subcommand; argv[first] is the socket
// path. Throws std::invalid_argument naming the flag and accepted range on
// junk, zero/negative where not allowed, or overflow.
ServeArgs parse_serve_args(int argc, char** argv, int first);

class Daemon {
 public:
  // `runner` defaults to the production lock/attack/sweep runner; tests
  // inject synthetic ones. `faults` overrides FL_FAULT (tests).
  explicit Daemon(ServeArgs args, JobRunner runner = {},
                  const runtime::FaultInjector* faults = nullptr);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Journal replay + bind + accept thread. Throws when the socket or the
  // journal cannot be set up. Idempotent.
  void start();

  // start() + block until a signal or shutdown op, then drain. Returns the
  // process exit code (0, 1 when the journal lost durability, 128+signo).
  // `install_signals` false lets tests drive shutdown via request_shutdown()
  // without touching the process-global handler.
  int serve_forever(bool install_signals = true);

  // Triggers the graceful drain (the shutdown op calls this).
  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  const ServeArgs& args() const { return args_; }
  Scheduler& scheduler() { return *scheduler_; }

 private:
  struct Submission {
    std::uint64_t id = 0;       // 0 = rejected
    std::string reject_reason;  // set when id == 0
  };

  const runtime::FaultInjector& faults() const;
  void accept_loop();
  void reap_readers(bool all);
  void handle_line(const std::shared_ptr<ClientConn>& conn,
                   const std::string& line);
  // Admission: journal "accepted" (durably) before the scheduler sees the
  // job, so an acknowledged job can never be lost to a crash.
  Submission submit_job(JobSpec spec, const std::shared_ptr<ClientConn>& conn,
                        std::uint64_t forced_id);
  void on_disconnect(const std::shared_ptr<ClientConn>& conn);
  void drain();

  ServeArgs args_;
  JobRunner runner_;
  const runtime::FaultInjector* faults_override_;
  std::optional<JobJournal> journal_;
  std::atomic<bool> journal_broken_{false};  // a terminal record never synced
  std::optional<Scheduler> scheduler_;
  std::optional<UnixListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_conn_id_{1};

  std::mutex conns_mu_;
  struct Reader {
    std::thread thread;
    std::shared_ptr<ClientConn> conn;
  };
  std::vector<Reader> readers_;
  // Live jobs each connection owns (cancel-on-disconnect, unless detached).
  std::map<std::uint64_t, std::vector<std::uint64_t>> owned_jobs_;
};

}  // namespace fl::serve
