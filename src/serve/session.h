// Socket plumbing of the serve daemon: an AF_UNIX listener plus per-client
// connection objects that serialize line writes and survive every way a
// peer can vanish.
//
// Failure containment rules:
//   - send_line never throws and never raises SIGPIPE (MSG_NOSIGNAL): a
//     client that disappeared mid-stream closes that one connection, the
//     daemon and its jobs keep running (jobs owned by the client are
//     cancelled by the daemon's disconnect policy unless detached).
//   - the "serve.stream" fault site fires inside send_line, so the
//     dropped-connection path is deterministically testable
//     (FL_FAULT="site:serve.stream:drop").
//   - read_lines is plain blocking I/O on the connection's own reader
//     thread; EOF/ECONNRESET end the loop instead of raising.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/fault.h"

namespace fl::serve {

// One accepted client connection. Shared between its reader thread and any
// scheduler worker streaming job events to it.
class ClientConn {
 public:
  ClientConn(int fd, std::uint64_t conn_id,
             const runtime::FaultInjector* faults);
  ~ClientConn();
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  std::uint64_t id() const { return conn_id_; }
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  // Writes line + '\n' atomically with respect to other senders. Returns
  // false (after closing the socket) when the peer is gone — EPIPE,
  // ECONNRESET, or an injected "serve.stream" drop. Never throws, never
  // SIGPIPEs.
  bool send_line(const std::string& line);

  // Blocking read loop: invokes on_line for every complete newline-
  // terminated line until EOF/error or close(). Run on the connection's
  // reader thread.
  void read_lines(const std::function<void(const std::string&)>& on_line);

  // Shuts the socket down (unblocking read_lines) and closes the fd once.
  void close();

 private:
  int fd_;
  const std::uint64_t conn_id_;
  const runtime::FaultInjector* faults_;  // never null
  std::mutex write_mu_;
  std::atomic<bool> closed_{false};
};

// Bound + listening AF_UNIX stream socket. Removes a stale socket file on
// bind and unlinks it on destruction.
class UnixListener {
 public:
  // Throws std::runtime_error (with errno text) when bind/listen fails —
  // e.g. another daemon already serves this path.
  explicit UnixListener(const std::string& path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::string& path() const { return path_; }

  // Waits up to timeout_ms for a connection; returns the accepted fd, or -1
  // on timeout / EINTR / closed listener (poll again or stop).
  int accept_with_timeout(int timeout_ms);

  // Unblocks accept_with_timeout permanently (drain).
  void close();

 private:
  std::string path_;
  int fd_ = -1;
};

// Client-side connect; throws std::runtime_error when nothing listens.
int connect_unix(const std::string& path);

}  // namespace fl::serve
