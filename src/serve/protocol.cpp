#include "serve/protocol.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "locking/scheme.h"

namespace fl::serve {

using runtime::JsonObject;

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

JobKind parse_kind(const std::string& text) {
  if (text == "lock") return JobKind::kLock;
  if (text == "attack") return JobKind::kAttack;
  if (text == "sweep") return JobKind::kSweep;
  bad("unknown job kind '" + text + "' (expected lock|attack|sweep)");
}

// Bounds mirroring the CLI's strict flag validation: reject values that a
// later narrowing cast or duration arithmetic would mangle silently.
long long int_in(const std::string& line, std::string_view key,
                 long long fallback, long long min_value,
                 long long max_value) {
  const auto value = runtime::json_int_field(line, key);
  if (!value.has_value()) return fallback;
  if (*value < min_value || *value > max_value) {
    bad(std::string(key) + " must be in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "], got " + std::to_string(*value));
  }
  return *value;
}

double seconds_in(const std::string& line, std::string_view key,
                  double fallback) {
  const auto value = runtime::json_double_field(line, key);
  if (!value.has_value()) return fallback;
  if (!(*value >= 0.0) || !std::isfinite(*value) || *value > 1e9) {
    bad(std::string(key) + " must be a finite number of seconds in [0, 1e9]");
  }
  return *value;
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kLock: return "lock";
    case JobKind::kAttack: return "attack";
    case JobKind::kSweep: return "sweep";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kBackoff: return "backoff";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kInterrupted: return "interrupted";
  }
  return "?";
}

bool is_terminal(JobState state) {
  switch (state) {
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
    case JobState::kInterrupted:
      return true;
    default:
      return false;
  }
}

void append_spec_fields(JsonObject& o, const JobSpec& spec) {
  o.field("kind", to_string(spec.kind))
      .field("priority", spec.priority)
      .field("timeout_s", spec.timeout_s)
      .field("retries", spec.retries)
      .field("memory_limit_mb", spec.memory_limit_mb)
      .field("detach", spec.detach)
      .field("trace", spec.trace);
  if (!spec.locked_path.empty()) o.field("locked_path", spec.locked_path);
  if (!spec.oracle_path.empty()) o.field("oracle_path", spec.oracle_path);
  o.field("attack", spec.attack)
      .field("attack_timeout_s", spec.attack_timeout_s)
      .field("encode", spec.encode)
      .field("scheme", spec.scheme);
  if (!spec.scheme_params.empty()) {
    o.field("scheme_params", spec.scheme_params);
  }
  if (!spec.bench_path.empty()) o.field("bench_path", spec.bench_path);
  if (!spec.out_path.empty()) o.field("out_path", spec.out_path);
  if (!spec.jsonl_path.empty()) o.field("jsonl_path", spec.jsonl_path);
  if (!spec.sizes.empty()) o.field("sizes", spec.sizes);
  o.field("replicas", spec.replicas)
      .field("seed", spec.seed)
      .field("resume", spec.resume);
}

JobSpec parse_spec_fields(const std::string& line) {
  JobSpec spec;
  const auto kind = runtime::json_string_field(line, "kind");
  if (!kind.has_value()) bad("submit requires a \"kind\" field");
  spec.kind = parse_kind(*kind);

  spec.priority = static_cast<int>(int_in(line, "priority", 0, -1000, 1000));
  spec.timeout_s = seconds_in(line, "timeout_s", 0.0);
  spec.retries = static_cast<int>(int_in(line, "retries", 0, 0, 1000000));
  spec.memory_limit_mb = static_cast<std::size_t>(
      int_in(line, "memory_limit_mb", 0, 0, 1LL << 40));
  spec.detach = runtime::json_bool_field(line, "detach").value_or(false);
  spec.trace = runtime::json_bool_field(line, "trace").value_or(false);

  if (auto v = runtime::json_string_field(line, "locked_path")) {
    spec.locked_path = *v;
  }
  if (auto v = runtime::json_string_field(line, "oracle_path")) {
    spec.oracle_path = *v;
  }
  if (auto v = runtime::json_string_field(line, "attack")) spec.attack = *v;
  spec.attack_timeout_s = seconds_in(line, "attack_timeout_s", 60.0);
  if (auto v = runtime::json_string_field(line, "encode")) spec.encode = *v;
  if (auto v = runtime::json_string_field(line, "scheme")) spec.scheme = *v;
  if (auto v = runtime::json_string_field(line, "scheme_params")) {
    spec.scheme_params = *v;
  }

  if (auto v = runtime::json_string_field(line, "bench_path")) {
    spec.bench_path = *v;
  }
  if (auto v = runtime::json_string_field(line, "out_path")) spec.out_path = *v;
  if (auto v = runtime::json_string_field(line, "jsonl_path")) {
    spec.jsonl_path = *v;
  }
  if (auto v = runtime::json_int_array_field(line, "sizes")) spec.sizes = *v;
  spec.replicas = static_cast<int>(int_in(line, "replicas", 1, 1, 1000000));
  spec.seed = static_cast<std::uint64_t>(
      int_in(line, "seed", 17, 0, std::numeric_limits<long long>::max()));
  spec.resume = runtime::json_bool_field(line, "resume").value_or(false);
  return spec;
}

namespace {

// Admission-time scheme validation for lock/sweep jobs: the scheme must be
// registered, its parameters must parse under every requested size, and
// "--encode cone" is rejected up front for cyclic-capable configurations.
// ProtocolError carries the scheme's own message, so the client sees the
// same diagnostics the CLI would print.
void validate_scheme_fields(const JobSpec& spec) {
  const lock::LockScheme* scheme = lock::find_scheme(spec.scheme);
  if (scheme == nullptr) {
    bad("unknown lock scheme '" + spec.scheme + "' (known: " +
        lock::scheme_names() + ")");
  }
  try {
    std::vector<int> sizes = spec.sizes;
    if (sizes.empty()) {
      sizes = spec.kind == JobKind::kSweep ? std::vector<int>{4, 8, 16}
                                           : std::vector<int>{16};
    }
    for (const int size : sizes) {
      scheme->validate(
          lock::make_options(spec.seed, {size}, spec.scheme_params));
    }
    if (spec.kind == JobKind::kSweep) {
      lock::validate_encode_option(
          spec.encode, spec.scheme,
          lock::make_options(spec.seed, sizes, spec.scheme_params));
    }
  } catch (const std::invalid_argument& e) {
    bad(e.what());
  }
}

}  // namespace

void validate_spec(const JobSpec& spec) {
  for (const int n : spec.sizes) {
    if (n < 2 || n > 4096) {
      bad("sizes entries must be scheme sizes in [2, 4096], got " +
          std::to_string(n));
    }
  }
  if (!lock::known_attack(spec.attack)) {
    bad("unknown attack '" + spec.attack + "' (known: " +
        std::string(lock::kKnownAttacks) + ")");
  }
  if (spec.encode != "auto" && spec.encode != "cone" &&
      spec.encode != "full") {
    bad("unknown encode mode '" + spec.encode +
        "' (expected auto|cone|full)");
  }
  switch (spec.kind) {
    case JobKind::kAttack:
      if (spec.locked_path.empty()) bad("attack job requires locked_path");
      if (spec.oracle_path.empty()) bad("attack job requires oracle_path");
      break;
    case JobKind::kSweep:
      if (spec.bench_path.empty()) bad("sweep job requires bench_path");
      if (spec.jsonl_path.empty()) {
        bad("sweep job requires jsonl_path (the durable checkpoint file "
            "that makes the job resumable)");
      }
      validate_scheme_fields(spec);
      break;
    case JobKind::kLock:
      if (spec.bench_path.empty()) bad("lock job requires bench_path");
      if (spec.out_path.empty()) bad("lock job requires out_path");
      validate_scheme_fields(spec);
      break;
  }
}

Request parse_request(const std::string& line) {
  const auto op = runtime::json_string_field(line, "op");
  if (!op.has_value()) {
    bad("request has no \"op\" field (expected submit|status|cancel|shutdown)");
  }
  Request request;
  const auto id = runtime::json_int_field(line, "id");
  if (id.has_value()) {
    if (*id < 1) bad("id must be a positive job id");
    request.id = static_cast<std::uint64_t>(*id);
  }
  if (*op == "submit") {
    request.op = Request::Op::kSubmit;
    request.spec = parse_spec_fields(line);
    validate_spec(request.spec);
  } else if (*op == "status") {
    request.op = Request::Op::kStatus;
  } else if (*op == "cancel") {
    request.op = Request::Op::kCancel;
    if (!request.id.has_value()) bad("cancel requires an \"id\" field");
  } else if (*op == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else {
    bad("unknown op '" + *op + "' (expected submit|status|cancel|shutdown)");
  }
  return request;
}

std::string submit_line(const JobSpec& spec) {
  JsonObject o;
  o.field("op", "submit");
  append_spec_fields(o, spec);
  return o.str();
}

std::string status_line(std::optional<std::uint64_t> id) {
  JsonObject o;
  o.field("op", "status");
  if (id.has_value()) o.field("id", *id);
  return o.str();
}

std::string cancel_line(std::uint64_t id) {
  JsonObject o;
  return o.field("op", "cancel").field("id", id).str();
}

std::string shutdown_line() {
  JsonObject o;
  return o.field("op", "shutdown").str();
}

}  // namespace fl::serve
