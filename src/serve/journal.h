// Durable job journal of the serve daemon — the piece that makes a kill -9
// of the whole daemon recoverable.
//
// One JSONL file, append-only, fsynced after every record (JsonlWriter):
//
//   {"record":"serve_job","event":"accepted","id":3,<full job spec>}
//   {"record":"serve_job","event":"terminal","id":3,"state":"done",
//    "reason":"","attempts":1}
//
// Invariants:
//   - "accepted" is written (and fsynced) before the client sees the
//     accepted response, so an acknowledged job is never lost.
//   - "terminal" is written only for done/failed/cancelled. An interrupted
//     job (daemon drain) writes NO terminal record — it stays pending, and
//     the next daemon replays it. Sweep jobs are replayed with resume=true
//     so their own cell-level checkpoint takes over from there.
//
// replay() scans the file on startup: every accepted id without a terminal
// record is returned for re-submission, and max_id seeds the id counter so
// restarted daemons never reuse an id. Unparseable lines (a record half
// written when the power went) are skipped with a stderr note — recovery
// must not be blocked by the very crash it recovers from.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/jsonl.h"
#include "serve/protocol.h"

namespace fl::serve {

class JobJournal {
 public:
  struct Replay {
    std::vector<std::pair<std::uint64_t, JobSpec>> pending;
    std::uint64_t max_id = 0;
    std::size_t records = 0;
  };

  // Scans an existing journal (missing file = empty replay). Call before
  // opening the journal for appending.
  static Replay replay(const std::string& path);

  // Opens `path` for appending. Throws std::runtime_error when unwritable.
  // `faults` overrides the global injector for write faults (tests).
  explicit JobJournal(const std::string& path,
                      const runtime::FaultInjector* faults = nullptr);

  // Both throw runtime::WriteFault when the append or fsync fails (ENOSPC,
  // EIO, or an injected write fault) — the daemon turns that into a job
  // rejection (accepted) or a loud stderr note (terminal; the job outcome
  // already happened and is reported to the client regardless).
  void record_accepted(std::uint64_t id, const JobSpec& spec);
  void record_terminal(std::uint64_t id, JobState state,
                       const std::string& reason, int attempts);

 private:
  runtime::JsonlWriter writer_;
  std::mutex mu_;
};

}  // namespace fl::serve
