// Job scheduler of the serve daemon: a bounded priority queue in front of
// the PR-1 ThreadPool, with per-job cancellation, wall budgets, bounded
// retries with exponential backoff, and a watchdog that escalates jobs which
// ignore cancellation.
//
// Fault isolation is the design center: a job that throws, OOMs, or stalls
// produces a terminal "failed" event (reason + attempt count) and nothing
// else — the worker thread, the queue, and every other job keep going. The
// only way a job takes the daemon down is FaultKind::kExit (simulated
// SIGKILL), which is precisely what the crash-recovery journal is for.
//
// Scheduling: the ThreadPool's queue stays FIFO; priorities are applied at
// claim time. submit() enqueues the job in a table and pushes one generic
// "claim" closure into the pool; each closure pops the highest-priority
// queued job (ties broken by submission order). N queued jobs ⇒ N pending
// closures, so every claim finds a job unless it was cancelled while queued.
//
// The watchdog thread enforces two budgets:
//   - wall: a running job past its deadline gets its cancel token requested
//     and is marked timed out; when the runner returns, the result is
//     discarded and the job fails with "wall budget exceeded".
//   - stall grace: a job whose cancellation has been pending longer than
//     stall_grace_s is declared stalled — the watchdog emits its terminal
//     "failed" record immediately (the client is not held hostage) and the
//     eventual runner return is discarded. The worker slot stays occupied
//     until the runaway actually returns; that is honest (the thread cannot
//     be reclaimed safely) and bounded in practice because every in-repo
//     runner polls its token.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/fault.h"
#include "runtime/jsonl.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"

namespace fl::serve {

// Everything a job runner may touch besides its spec. Runners must poll
// `cancel` and honour `deadline`; the scheduler's watchdog escalates if they
// don't.
struct JobContext {
  std::uint64_t id = 0;
  int attempt = 0;
  const runtime::CancelToken* cancel = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  const runtime::FaultInjector* faults = nullptr;
  // Streams a non-terminal event (trace/cell records) to the job's
  // subscriber. The scheduler stamps "event" and "id"; the runner provides
  // the payload fields. Never throws; events to a vanished client are
  // dropped.
  std::function<void(const char* type, runtime::JsonObject payload)> emit;
};

// What a runner reports back. `interrupted` means the runner observed its
// cancel token and stopped early with durable state intact (resumable);
// anything else it wants in the terminal record goes into `fields`, a
// still-open JsonObject the scheduler merges into the terminal event.
struct JobResult {
  bool interrupted = false;
  runtime::JsonObject fields;
};

using JobRunner = std::function<JobResult(const JobSpec&, JobContext&)>;

// A fully-formed response line plus enough structure for the daemon to act
// on it (journal terminal records, drop per-client subscriptions).
struct JobEvent {
  std::uint64_t id = 0;
  std::string type;   // "started" | "trace" | "cell" | "retry" | "terminal"
  JobState state = JobState::kQueued;  // meaningful for "terminal"
  std::string line;   // serialized JSON, no trailing newline
};
using EventFn = std::function<void(const JobEvent&)>;

struct SchedulerConfig {
  int workers = 1;
  std::size_t max_queue = 16;         // queued-but-not-running admission cap
  double default_job_timeout_s = 0.0; // applied when spec.timeout_s == 0
                                      // (0 = unlimited)
  double backoff_base_s = 0.25;       // retry n waits base * 2^(n-1), capped
  double backoff_cap_s = 8.0;
  double watchdog_period_s = 0.02;
  double stall_grace_s = 2.0;         // cancelled -> stalled escalation
  const runtime::FaultInjector* faults = nullptr;  // nullptr = global()
  std::uint64_t first_id = 1;         // journal replay seeds this past old ids
};

struct JobInfo {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kAttack;
  JobState state = JobState::kQueued;
  int priority = 0;
  int attempts = 0;
  std::string reason;
};

struct SchedulerStats {
  std::size_t queued = 0;
  std::size_t running = 0;  // includes backoff waits
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t interrupted = 0;
  bool draining = false;
};

class Scheduler {
 public:
  Scheduler(SchedulerConfig config, JobRunner runner);
  ~Scheduler();  // drains
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Admission control. Returns the job id, or 0 with *reject_reason set to
  // "overloaded" (bounded queue full) or "draining". `events` receives every
  // event of this job, from a scheduler-internal thread, never under the
  // scheduler lock; exceptions from it are swallowed. `forced_id` (journal
  // replay) bypasses the id counter but still respects admission.
  std::uint64_t submit(JobSpec spec, EventFn events, std::string* reject_reason,
                       std::uint64_t forced_id = 0);

  // Cooperative cancel. Queued jobs become terminal immediately; running
  // jobs get their token requested (the watchdog escalates if ignored).
  // False when the id is unknown or already terminal.
  bool cancel(std::uint64_t id, const std::string& reason = "cancelled");

  std::optional<JobInfo> info(std::uint64_t id) const;
  std::vector<JobInfo> jobs() const;
  SchedulerStats stats() const;

  // Graceful drain: stop admitting, fail over queued jobs to "interrupted"
  // (resumable — the journal keeps them pending), request every running
  // job's token with drain semantics, and wait for the workers. Idempotent.
  void drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  // Blocks until no job is queued or running (test/shutdown helper).
  void wait_idle();

 private:
  struct Job;

  const runtime::FaultInjector& faults() const;
  void claim_and_run();
  void run_job(std::shared_ptr<Job> job);
  void watchdog_loop();
  void emit(const std::shared_ptr<Job>& job, JobEvent event);
  void finish_job(const std::shared_ptr<Job>& job, JobState state,
                  std::string reason, const JobResult* result);
  JobInfo info_locked(const Job& job) const;

  SchedulerConfig config_;
  JobRunner runner_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_watchdog_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;  // backoff waits + wait_idle
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::size_t num_queued_ = 0;
  std::size_t num_running_ = 0;
  SchedulerStats terminal_counts_;  // done/failed/cancelled/interrupted only

  std::optional<runtime::ThreadPool> pool_;  // before watchdog_: jobs first
  std::thread watchdog_;
};

}  // namespace fl::serve
