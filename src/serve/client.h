// Client side of the serve protocol: connect to a daemon socket, send one
// request, stream the response lines, and map the outcome to a process exit
// code the CLI and CI scripts can branch on:
//
//   0  job reached terminal state "done" (or status/cancel/shutdown ack'd)
//   1  job reached terminal state "failed" / cancel targeted an unknown job
//   2  usage / malformed request (daemon "error" event)
//   3  submission rejected ("overloaded" backpressure or "draining")
//   4  job cancelled or interrupted (daemon drained mid-job)
//   5  connection lost before a terminal answer arrived
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "serve/protocol.h"

namespace fl::serve {

struct ClientExit {
  static constexpr int kDone = 0;
  static constexpr int kFailed = 1;
  static constexpr int kUsage = 2;
  static constexpr int kRejected = 3;
  static constexpr int kInterrupted = 4;
  static constexpr int kConnectionLost = 5;
};

class ServeClient {
 public:
  // Connects immediately; throws std::runtime_error when nothing listens.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Submits the job and streams every event line to `out` until the
  // terminal event (or the connection drops). Returns a ClientExit code.
  int submit_and_stream(const JobSpec& spec, std::ostream& out);

  // One-shot ops; responses are echoed to `out`.
  int status(std::optional<std::uint64_t> id, std::ostream& out);
  int cancel(std::uint64_t id, std::ostream& out);
  int shutdown(std::ostream& out);

 private:
  bool send(const std::string& line);
  // Reads one complete line; nullopt on EOF/error.
  std::optional<std::string> read_line();

  int fd_ = -1;
  std::string buf_;
};

}  // namespace fl::serve
