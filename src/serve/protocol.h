// Wire protocol of the `fulllock serve` daemon: line-delimited JSON over a
// local stream socket, in the same flat-record conventions as the sweep
// JSONL files (runtime/jsonl.h) so one set of field helpers parses both.
//
// Requests (client -> daemon), one JSON object per line:
//
//   {"op":"submit","kind":"attack","locked_path":"l.bench",
//    "oracle_path":"o.bench","attack":"sat","attack_timeout_s":10,
//    "priority":5,"timeout_s":60,"retries":1,"trace":true}
//   {"op":"submit","kind":"sweep","bench_path":"c.bench","sizes":[4,8],
//    "replicas":2,"seed":17,"jsonl_path":"out.jsonl","resume":true}
//   {"op":"submit","kind":"lock","bench_path":"c.bench",
//    "out_path":"locked.bench","scheme":"sfll-hd",
//    "scheme_params":"keys=8,hd=1","sizes":[16],"seed":7}
//   {"op":"status"}            every job, plus a summary line
//   {"op":"status","id":3}     one job
//   {"op":"cancel","id":3}
//   {"op":"shutdown"}          graceful drain, as if SIGTERM arrived
//
// Responses (daemon -> client), one JSON object per line, each carrying an
// "event" discriminator:
//
//   {"event":"accepted","id":3,"queued":2}
//   {"event":"rejected","reason":"overloaded"}     admission backpressure
//   {"event":"rejected","reason":"draining"}       daemon is shutting down
//   {"event":"error","reason":"..."}               malformed request
//   {"event":"started","id":3,"attempt":0}
//   {"event":"trace","id":3,...}                   per-DIP-iteration record
//   {"event":"cell","id":3,...}                    per-sweep-cell record
//   {"event":"retry","id":3,"attempt":1,"reason":"...","backoff_s":0.5}
//   {"event":"terminal","id":3,"state":"done",...} exactly one per job
//   {"event":"job","id":3,"state":"running",...}   status answers
//   {"event":"status","jobs":4,"queued":1,...}     status summary
//
// Ordering: events of one job are delivered in order, and "terminal" is
// always last — but the "accepted" response is sent concurrently with job
// execution, so a fast job's "started" may reach the client before the
// "accepted" line. Clients key on event types, not line positions.
//
// Terminal states: "done" (ran to an attack/sweep conclusion — including
// attack-status timeout), "failed" (every attempt threw, the job overran
// its wall budget, or a cancellation stalled past the watchdog's grace),
// "cancelled" (explicit cancel op or client disconnect), "interrupted"
// (daemon drain cut it short — the job journal keeps it pending, so a
// restarted daemon resumes it from its durable checkpoint).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/jsonl.h"

namespace fl::serve {

enum class JobKind : std::uint8_t { kLock, kAttack, kSweep };
const char* to_string(JobKind kind);

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kBackoff,      // between failed attempts, waiting out the retry backoff
  kDone,
  kFailed,
  kCancelled,
  kInterrupted,  // drain checkpoint: resumable, not terminal-in-journal
};
const char* to_string(JobState state);
bool is_terminal(JobState state);

// A malformed or invalid request. The message names the offending field and
// what was expected, mirroring the CLI's strict flag validation.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error(message) {}
};

struct JobSpec {
  JobKind kind = JobKind::kAttack;
  int priority = 0;           // higher runs first among queued jobs
  double timeout_s = 0.0;     // job wall budget, shared across retries
                              // (0 = daemon default)
  int retries = 0;            // job-level retry budget on failure
  std::size_t memory_limit_mb = 0;
  bool detach = false;        // keep running when the client disconnects
  bool trace = false;         // stream per-iteration trace events
  // attack
  std::string locked_path;
  std::string oracle_path;
  std::string attack = "auto";
  double attack_timeout_s = 60.0;
  // attack: miter encoding "auto" | "cone" | "full". "cone" is rejected at
  // admission for cyclic-capable schemes and at run time for cyclic files.
  std::string encode = "auto";
  // sweep / lock
  std::string bench_path;
  std::string out_path;    // lock
  std::string jsonl_path;  // sweep: durable checkpoint file (required)
  // lock/sweep: registry scheme name (lock::scheme_names()) plus its
  // "key=value,..." parameters — validated at admission via the scheme's
  // own validate(), so a bad submit is rejected before it queues.
  std::string scheme = "full-lock";
  std::string scheme_params;
  std::vector<int> sizes;  // scheme size axis (sweep/lock); default
                           // {4,8,16}/{16}
  int replicas = 1;        // sweep: seeds per size
  std::uint64_t seed = 17;
  bool resume = false;     // sweep: continue jsonl_path if it exists
};

// Appends every JobSpec field to `o` (flat, deterministic order). Shared by
// the submit request serializer and the daemon's job journal, so a journaled
// job replays from exactly what the client sent.
void append_spec_fields(runtime::JsonObject& o, const JobSpec& spec);
// Parses the spec fields back out of a request/journal line. Missing fields
// keep their defaults; type mismatches throw ProtocolError.
JobSpec parse_spec_fields(const std::string& line);
// Field/bounds validation (paths present for the kind, sane numeric ranges).
// Throws ProtocolError naming the field.
void validate_spec(const JobSpec& spec);

struct Request {
  enum class Op : std::uint8_t { kSubmit, kStatus, kCancel, kShutdown };
  Op op = Op::kStatus;
  std::optional<std::uint64_t> id;  // cancel (required), status (optional)
  JobSpec spec;                     // submit
};

// Parses and validates one request line; throws ProtocolError on junk.
Request parse_request(const std::string& line);

// Client-side request serializers.
std::string submit_line(const JobSpec& spec);
std::string status_line(std::optional<std::uint64_t> id = std::nullopt);
std::string cancel_line(std::uint64_t id);
std::string shutdown_line();

}  // namespace fl::serve
