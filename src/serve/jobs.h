// The serve daemon's real job runners: lock / attack / sweep over .bench
// files, mirroring the CLI subcommands but wired into a JobContext — the
// job's cancel token and deadline reach the attack engine (so the watchdog
// rarely has to escalate), trace records stream to the submitting client,
// and sweep jobs run inside an embedded SweepSession whose durable JSONL
// checkpoint is what makes daemon crash recovery resume instead of redo.
#pragma once

#include "serve/scheduler.h"

namespace fl::serve {

// The production runner handed to Scheduler. Throws propagate to the
// scheduler's per-job fault isolation (retry/backoff, terminal "failed").
JobRunner default_job_runner();

}  // namespace fl::serve
