#include "serve/session.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fl::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

ClientConn::ClientConn(int fd, std::uint64_t conn_id,
                       const runtime::FaultInjector* faults)
    : fd_(fd),
      conn_id_(conn_id),
      faults_(faults != nullptr ? faults : &runtime::FaultInjector::global()) {}

ClientConn::~ClientConn() { close(); }

bool ClientConn::send_line(const std::string& line) {
  if (closed()) return false;
  std::lock_guard<std::mutex> lock(write_mu_);
  if (closed()) return false;
  try {
    faults_->inject_site("serve.stream");
  } catch (const std::exception&) {
    // Injected mid-stream drop (or any other injected stream fault): treat
    // it exactly like a vanished peer.
    close();
    return false;
  }
  std::string buf = line;
  buf.push_back('\n');
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd_, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();  // EPIPE / ECONNRESET / anything else: the peer is gone
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void ClientConn::read_lines(
    const std::function<void(const std::string&)>& on_line) {
  std::string buf;
  char chunk[4096];
  while (!closed()) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: the client hung up
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) on_line(line);
      if (closed()) break;
    }
    buf.erase(0, start);
  }
}

void ClientConn::close() {
  if (closed_.exchange(true, std::memory_order_relaxed)) return;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = make_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bind(" + path +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(fd_, 64) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path.c_str());
    throw std::runtime_error("listen(" + path +
                             ") failed: " + std::strerror(err));
  }
}

UnixListener::~UnixListener() {
  close();
  ::unlink(path_.c_str());
}

int UnixListener::accept_with_timeout(int timeout_ms) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return -1;  // timeout or EINTR (signal): caller re-polls
  const int client = ::accept(fd_, nullptr, nullptr);
  return client;  // -1 on a racing close(): caller re-polls and stops
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("connect(" + path + ") failed: " +
                             std::strerror(err) +
                             " (is the daemon running?)");
  }
  return fd;
}

}  // namespace fl::serve
