// Property sweeps over the CDCL solver: cross-validation against DPLL on a
// density grid, model soundness, assumption semantics, incremental reuse.
#include <gtest/gtest.h>

#include <random>

#include "sat/dpll.h"
#include "sat/ksat.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

bool model_satisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (const Lit l : c) {
      if (model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

struct GridPoint {
  int num_vars;
  double ratio;
};

class SolverGrid : public ::testing::TestWithParam<GridPoint> {};

// CDCL agrees with classic DPLL across the density spectrum, and every SAT
// answer carries a genuinely satisfying model.
TEST_P(SolverGrid, AgreesWithDpllAndModelsAreSound) {
  const GridPoint point = GetParam();
  std::mt19937_64 seeds(point.num_vars * 1000 +
                        static_cast<int>(point.ratio * 10));
  for (int trial = 0; trial < 12; ++trial) {
    KSatConfig config;
    config.num_vars = point.num_vars;
    config.num_clauses =
        std::max(1, static_cast<int>(point.num_vars * point.ratio));
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);
    std::vector<bool> model;
    const LBool cdcl = solve_cnf(cnf, &model);
    const DpllResult dpll = Dpll().solve(cnf);
    ASSERT_TRUE(dpll.completed);
    ASSERT_EQ(cdcl == LBool::kTrue, dpll.satisfiable)
        << "n=" << point.num_vars << " r=" << point.ratio << " t=" << trial;
    if (cdcl == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(cnf, model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, SolverGrid,
    ::testing::Values(GridPoint{15, 2.0}, GridPoint{15, 3.0},
                      GridPoint{15, 4.3}, GridPoint{15, 6.0},
                      GridPoint{15, 8.0}, GridPoint{25, 4.3},
                      GridPoint{30, 3.5}, GridPoint{30, 5.0}));

// Solving under assumptions A is equisatisfiable with solving the formula
// plus A as unit clauses.
TEST(SolverProperties, AssumptionsEquivalentToUnits) {
  std::mt19937_64 seeds(404);
  for (int trial = 0; trial < 24; ++trial) {
    KSatConfig config;
    config.num_vars = 18;
    config.num_clauses = 60 + static_cast<int>(seeds() % 30);
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);

    std::vector<Lit> assumptions;
    for (int i = 0; i < 4; ++i) {
      assumptions.push_back(
          Lit(static_cast<Var>(seeds() % 18), (seeds() & 1) != 0));
    }

    Solver with_assumptions;
    for (int v = 0; v < cnf.num_vars; ++v) with_assumptions.new_var();
    for (const Clause& c : cnf.clauses) with_assumptions.add_clause(c);
    const LBool a = with_assumptions.solve(assumptions);

    Solver with_units;
    for (int v = 0; v < cnf.num_vars; ++v) with_units.new_var();
    bool ok = true;
    for (const Clause& c : cnf.clauses) ok &= with_units.add_clause(c);
    for (const Lit l : assumptions) ok &= with_units.add_clause({l});
    const LBool u = ok ? with_units.solve() : LBool::kFalse;

    EXPECT_EQ(a, u) << "trial " << trial;
  }
}

// Assumption solving leaves no residue: the unconstrained problem remains
// satisfiable afterwards and flipped assumptions still work.
TEST(SolverProperties, AssumptionsAreStateless) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 12; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 12; ++i) {
    ASSERT_TRUE(s.add_clause({neg(v[i]), pos(v[i + 1])}));
  }
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    const Var pick = static_cast<Var>(rng() % 12);
    const Lit assume[] = {Lit(pick, (rng() & 1) != 0)};
    const LBool r = s.solve(assume);
    EXPECT_NE(r, LBool::kUndef);
  }
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

// Incremental clause addition between solves matches one-shot solving.
TEST(SolverProperties, IncrementalMatchesOneShot) {
  std::mt19937_64 seeds(9090);
  for (int trial = 0; trial < 12; ++trial) {
    KSatConfig config;
    config.num_vars = 16;
    config.num_clauses = 70;
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);

    Solver incremental;
    for (int v = 0; v < cnf.num_vars; ++v) incremental.new_var();
    LBool inc_result = LBool::kTrue;
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
      if (!incremental.add_clause(cnf.clauses[i])) {
        inc_result = LBool::kFalse;
        break;
      }
      if (i % 10 == 9) {
        inc_result = incremental.solve();
        if (inc_result == LBool::kFalse) break;
      }
    }
    if (inc_result != LBool::kFalse) inc_result = incremental.solve();
    EXPECT_EQ(inc_result, solve_cnf(cnf)) << "trial " << trial;
  }
}

// Learnt-clause reduction must not change answers (stress enough conflicts
// to trigger reduce_db).
TEST(SolverProperties, SolvesHardInstanceAcrossRestarts) {
  KSatConfig config;
  config.num_vars = 120;
  config.num_clauses = 516;  // ratio 4.3
  config.seed = 4242;
  const Cnf cnf = random_ksat(config);
  SolverStats stats;
  std::vector<bool> model;
  const LBool r = solve_cnf(cnf, &model, &stats);
  ASSERT_NE(r, LBool::kUndef);
  if (r == LBool::kTrue) EXPECT_TRUE(model_satisfies(cnf, model));
  EXPECT_GT(stats.conflicts, 0u);
}

}  // namespace
}  // namespace fl::sat
