// Property sweeps over the CDCL solver: cross-validation against DPLL on a
// density grid, model soundness, assumption semantics, incremental reuse.
#include <gtest/gtest.h>

#include <random>

#include "sat/dpll.h"
#include "sat/ksat.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

bool model_satisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (const Lit l : c) {
      if (model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

struct GridPoint {
  int num_vars;
  double ratio;
};

class SolverGrid : public ::testing::TestWithParam<GridPoint> {};

// CDCL agrees with classic DPLL across the density spectrum, and every SAT
// answer carries a genuinely satisfying model.
TEST_P(SolverGrid, AgreesWithDpllAndModelsAreSound) {
  const GridPoint point = GetParam();
  std::mt19937_64 seeds(point.num_vars * 1000 +
                        static_cast<int>(point.ratio * 10));
  for (int trial = 0; trial < 12; ++trial) {
    KSatConfig config;
    config.num_vars = point.num_vars;
    config.num_clauses =
        std::max(1, static_cast<int>(point.num_vars * point.ratio));
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);
    std::vector<bool> model;
    const LBool cdcl = solve_cnf(cnf, &model);
    const DpllResult dpll = Dpll().solve(cnf);
    ASSERT_TRUE(dpll.completed);
    ASSERT_EQ(cdcl == LBool::kTrue, dpll.satisfiable)
        << "n=" << point.num_vars << " r=" << point.ratio << " t=" << trial;
    if (cdcl == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(cnf, model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, SolverGrid,
    ::testing::Values(GridPoint{15, 2.0}, GridPoint{15, 3.0},
                      GridPoint{15, 4.3}, GridPoint{15, 6.0},
                      GridPoint{15, 8.0}, GridPoint{25, 4.3},
                      GridPoint{30, 3.5}, GridPoint{30, 5.0}));

// Solving under assumptions A is equisatisfiable with solving the formula
// plus A as unit clauses.
TEST(SolverProperties, AssumptionsEquivalentToUnits) {
  std::mt19937_64 seeds(404);
  for (int trial = 0; trial < 24; ++trial) {
    KSatConfig config;
    config.num_vars = 18;
    config.num_clauses = 60 + static_cast<int>(seeds() % 30);
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);

    std::vector<Lit> assumptions;
    for (int i = 0; i < 4; ++i) {
      assumptions.push_back(
          Lit(static_cast<Var>(seeds() % 18), (seeds() & 1) != 0));
    }

    Solver with_assumptions;
    for (int v = 0; v < cnf.num_vars; ++v) with_assumptions.new_var();
    for (const Clause& c : cnf.clauses) with_assumptions.add_clause(c);
    const LBool a = with_assumptions.solve(assumptions);

    Solver with_units;
    for (int v = 0; v < cnf.num_vars; ++v) with_units.new_var();
    bool ok = true;
    for (const Clause& c : cnf.clauses) ok &= with_units.add_clause(c);
    for (const Lit l : assumptions) ok &= with_units.add_clause({l});
    const LBool u = ok ? with_units.solve() : LBool::kFalse;

    EXPECT_EQ(a, u) << "trial " << trial;
  }
}

// Assumption solving leaves no residue: the unconstrained problem remains
// satisfiable afterwards and flipped assumptions still work.
TEST(SolverProperties, AssumptionsAreStateless) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 12; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 12; ++i) {
    ASSERT_TRUE(s.add_clause({neg(v[i]), pos(v[i + 1])}));
  }
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    const Var pick = static_cast<Var>(rng() % 12);
    const Lit assume[] = {Lit(pick, (rng() & 1) != 0)};
    const LBool r = s.solve(assume);
    EXPECT_NE(r, LBool::kUndef);
  }
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

// Incremental clause addition between solves matches one-shot solving.
TEST(SolverProperties, IncrementalMatchesOneShot) {
  std::mt19937_64 seeds(9090);
  for (int trial = 0; trial < 12; ++trial) {
    KSatConfig config;
    config.num_vars = 16;
    config.num_clauses = 70;
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);

    Solver incremental;
    for (int v = 0; v < cnf.num_vars; ++v) incremental.new_var();
    LBool inc_result = LBool::kTrue;
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
      if (!incremental.add_clause(cnf.clauses[i])) {
        inc_result = LBool::kFalse;
        break;
      }
      if (i % 10 == 9) {
        inc_result = incremental.solve();
        if (inc_result == LBool::kFalse) break;
      }
    }
    if (inc_result != LBool::kFalse) inc_result = incremental.solve();
    EXPECT_EQ(inc_result, solve_cnf(cnf)) << "trial " << trial;
  }
}

// Differential fuzz pinned to the hardness peak (m/n = 4.26): CDCL and DPLL
// must agree on every instance, and every SAT model must check out. The
// density grid above brushes 4.3; this sweep concentrates trials exactly
// where learnt-clause management is under the most pressure.
TEST(SolverProperties, DifferentialFuzzAtPhaseTransition) {
  std::mt19937_64 seeds(0x426);
  for (const int n : {20, 30, 40}) {
    for (int trial = 0; trial < 15; ++trial) {
      KSatConfig config;
      config.num_vars = n;
      config.num_clauses = static_cast<int>(n * 4.26);
      config.seed = seeds();
      const Cnf cnf = random_ksat(config);
      std::vector<bool> model;
      const LBool cdcl = solve_cnf(cnf, &model);
      const DpllResult dpll = Dpll().solve(cnf);
      ASSERT_TRUE(dpll.completed);
      ASSERT_EQ(cdcl == LBool::kTrue, dpll.satisfiable)
          << "n=" << n << " t=" << trial;
      if (cdcl == LBool::kTrue) {
        ASSERT_TRUE(model_satisfies(cnf, model)) << "n=" << n << " t=" << trial;
      }
      if (dpll.satisfiable) {
        ASSERT_TRUE(model_satisfies(cnf, dpll.model))
            << "n=" << n << " t=" << trial;
      }
    }
  }
}

// reduce_db accounting: reductions must actually fire on a long search, the
// halving target is based on reducible clauses only (so removal makes real
// progress instead of stalling on locked/core clauses), and the LBD
// statistics stay mutually consistent.
TEST(SolverProperties, ReduceDbAccountingIsConsistent) {
  KSatConfig config;
  config.num_vars = 170;
  config.num_clauses = static_cast<int>(170 * 4.26);
  config.seed = 11;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  const LBool r = s.solve();
  ASSERT_NE(r, LBool::kUndef);
  const SolverStats& stats = s.stats();
  ASSERT_GT(stats.removed_clauses, 0u) << "reduce_db never fired";
  // Removal targets only the local tier, so it can never exceed what was
  // learnt, and a reduce leaves the kept clauses behind.
  EXPECT_LT(stats.removed_clauses, stats.learned_clauses);
  EXPECT_GT(stats.db_size_after_reduce, 0u);
  // LBD histogram consistency: every learnt clause contributes >= 1 to the
  // sum, glue clauses are a subset, and the max bounds the mean.
  EXPECT_GE(stats.lbd_sum, stats.learned_clauses);
  EXPECT_LE(stats.glue_learned, stats.learned_clauses);
  EXPECT_GE(stats.max_lbd, 1u);
  EXPECT_GE(stats.max_lbd * stats.learned_clauses, stats.lbd_sum);
  EXPECT_LE(stats.learned_binary, stats.learned_clauses);
  // The surviving database is what was learnt minus what the two removal
  // paths dropped (simplify_removed_clauses also counts problem clauses,
  // hence the bracket rather than an equality).
  EXPECT_LE(s.num_learnts(), stats.learned_clauses - stats.removed_clauses);
  EXPECT_GE(s.num_learnts() + stats.removed_clauses +
                stats.simplify_removed_clauses,
            stats.learned_clauses);
  // And the answer is still the answer: re-solving the same instance in the
  // same (now clause-laden) solver must agree.
  EXPECT_EQ(s.solve(), r);
}

// Incremental use with explicit simplify() between solves — the SAT-attack
// shape: add constraint clauses, solve, simplify, repeat. Every round must
// match a fresh solver over the accumulated formula.
TEST(SolverProperties, SimplifyPreservesAnswersAcrossIncrementalSolves) {
  std::mt19937_64 seeds(515);
  for (int trial = 0; trial < 8; ++trial) {
    KSatConfig config;
    config.num_vars = 24;
    config.num_clauses = 80;
    config.seed = seeds();
    Cnf accumulated = random_ksat(config);

    Solver incremental;
    for (int v = 0; v < accumulated.num_vars; ++v) incremental.new_var();
    bool ok = true;
    for (const Clause& c : accumulated.clauses) {
      ok &= incremental.add_clause(c);
    }
    for (int round = 0; round < 25; ++round) {
      const LBool inc = ok ? incremental.solve() : LBool::kFalse;
      const LBool fresh = solve_cnf(accumulated);
      ASSERT_EQ(inc, fresh) << "trial " << trial << " round " << round;
      if (inc != LBool::kTrue) break;
      // Ban the found model (over a prefix of the variables, so the bans
      // bite quickly) and force a root-level simplification pass.
      Clause ban;
      for (Var v = 0; v < 6; ++v) {
        ban.push_back(Lit(v, incremental.value_of(v)));
      }
      accumulated.add(ban);
      ok &= incremental.add_clause(ban);
      incremental.simplify();
    }
  }
}

// Learnt-clause reduction must not change answers (stress enough conflicts
// to trigger reduce_db).
TEST(SolverProperties, SolvesHardInstanceAcrossRestarts) {
  KSatConfig config;
  config.num_vars = 120;
  config.num_clauses = 516;  // ratio 4.3
  config.seed = 4242;
  const Cnf cnf = random_ksat(config);
  SolverStats stats;
  std::vector<bool> model;
  const LBool r = solve_cnf(cnf, &model, &stats);
  ASSERT_NE(r, LBool::kUndef);
  if (r == LBool::kTrue) {
    EXPECT_TRUE(model_satisfies(cnf, model));
  }
  EXPECT_GT(stats.conflicts, 0u);
}

}  // namespace
}  // namespace fl::sat
