// CDCL solver unit tests: correctness against brute force, incremental use,
// assumptions, budgets.
#include <gtest/gtest.h>

#include <random>

#include "sat/ksat.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

bool brute_force_sat(const Cnf& cnf) {
  if (cnf.num_vars > 20) throw std::logic_error("too big for brute force");
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << cnf.num_vars); ++m) {
    bool all = true;
    for (const Clause& c : cnf.clauses) {
      bool sat = false;
      for (const Lit l : c) {
        const bool v = ((m >> l.var()) & 1) != 0;
        if (v != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (const Lit l : c) {
      if (model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.value_of(v));
}

TEST(SatSolver, ContradictoryUnits) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v)}));
  EXPECT_FALSE(s.add_clause({neg(v)}));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatSolver, TautologyIsDropped) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v), neg(v)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(s.add_clause({neg(v[i]), pos(v[i + 1])}));
  }
  ASSERT_TRUE(s.add_clause({pos(v[0])}));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value_of(v[i])) << i;
}

TEST(SatSolver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance requiring real search.
  constexpr int P = 4, H = 3;
  Solver s;
  Var x[P][H];
  for (int p = 0; p < P; ++p) {
    for (int h = 0; h < H; ++h) x[p][h] = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    Clause c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    ASSERT_TRUE(s.add_clause(c));
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        ASSERT_TRUE(s.add_clause({neg(x[p1][h]), neg(x[p2][h])}));
      }
    }
  }
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatSolver, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  const Lit assume_na[] = {neg(a)};
  ASSERT_EQ(s.solve(assume_na), LBool::kTrue);
  EXPECT_FALSE(s.value_of(a));
  EXPECT_TRUE(s.value_of(b));
  // Solver stays reusable after assumption solving.
  const Lit assume_nb[] = {neg(b)};
  ASSERT_EQ(s.solve(assume_nb), LBool::kTrue);
  EXPECT_TRUE(s.value_of(a));
}

TEST(SatSolver, ConflictingAssumptionsReturnFalse) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  const Lit assume[] = {neg(a)};
  EXPECT_EQ(s.solve(assume), LBool::kFalse);
  // And without the assumption it is still satisfiable.
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, IncrementalTightening) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 4; ++i) v.push_back(s.new_var());
  ASSERT_TRUE(s.add_clause({pos(v[0]), pos(v[1]), pos(v[2]), pos(v[3])}));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  // Forbid the returned model, re-solve, repeat: must enumerate and finally
  // exhaust all 15 satisfying assignments.
  int models = 0;
  while (s.solve() == LBool::kTrue) {
    Clause block;
    for (const Var var : v) {
      block.push_back(Lit(var, s.value_of(var)));
    }
    ++models;
    ASSERT_LE(models, 15);
    if (!s.add_clause(block)) break;
  }
  EXPECT_EQ(models, 15);
}

TEST(SatSolver, RandomInstancesMatchBruteForce) {
  std::mt19937_64 seeds(7);
  for (int trial = 0; trial < 60; ++trial) {
    KSatConfig config;
    config.num_vars = 12;
    config.num_clauses = 12 + static_cast<int>(seeds() % 50);
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);
    std::vector<bool> model;
    const LBool got = solve_cnf(cnf, &model);
    const bool expected = brute_force_sat(cnf);
    ASSERT_EQ(got == LBool::kTrue, expected) << "trial " << trial;
    if (got == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(cnf, model)) << "trial " << trial;
    }
  }
}

TEST(SatSolver, ConflictBudgetYieldsUndef) {
  // A hard random instance near the phase transition with a tiny budget.
  KSatConfig config;
  config.num_vars = 150;
  config.num_clauses = 645;
  config.seed = 99;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  // Removing the budget lets it finish.
  s.set_conflict_budget(0);
  EXPECT_NE(s.solve(), LBool::kUndef);
}

TEST(SatSolver, DeadlineYieldsUndef) {
  KSatConfig config;
  config.num_vars = 300;
  config.num_clauses = 1280;
  config.seed = 3;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  s.set_deadline(std::chrono::steady_clock::now());  // already expired
  EXPECT_EQ(s.solve(), LBool::kUndef);
}

TEST(SatSolver, LastSolveInterruptedDistinguishesBudgetFromAnswer) {
  KSatConfig config;
  config.num_vars = 150;
  config.num_clauses = 645;
  config.seed = 99;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  s.set_conflict_budget(5);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_TRUE(s.last_solve_interrupted());
  s.set_conflict_budget(0);
  ASSERT_NE(s.solve(), LBool::kUndef);
  EXPECT_FALSE(s.last_solve_interrupted());
}

TEST(SatSolver, InterruptFlagCutsSolveShort) {
  KSatConfig config;
  config.num_vars = 200;
  config.num_clauses = 860;
  config.seed = 17;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  std::atomic<bool> flag{true};  // raised before the solve starts
  s.set_interrupt(&flag);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  EXPECT_TRUE(s.last_solve_interrupted());
  // Lowering the flag makes the same solver finish for real.
  flag.store(false);
  EXPECT_NE(s.solve(), LBool::kUndef);
  EXPECT_FALSE(s.last_solve_interrupted());
  // Detaching works too.
  s.set_interrupt(nullptr);
  EXPECT_NE(s.solve(), LBool::kUndef);
}

TEST(SatSolver, ExpiredDeadlineReturnsPromptly) {
  KSatConfig config;
  config.num_vars = 300;
  config.num_clauses = 1280;
  config.seed = 3;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  s.set_deadline(std::chrono::steady_clock::now());
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(s.solve(), LBool::kUndef);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_TRUE(s.last_solve_interrupted());
  // Deadline checks fire at decision boundaries and conflicts, not only
  // every few hundred propagations, so an expired deadline returns fast.
  EXPECT_LT(waited, 1.0);
}

TEST(SatSolver, CustomConfigStillCorrect) {
  // Aggressive restarts and fast decays must not change answers, only
  // search order — cross-check every portfolio-style config on random
  // instances against brute force.
  const SolverConfig configs[] = {
      {0.80, 0.999, 32}, {0.99, 0.995, 512}, {0.95, 0.999, 1024}};
  std::mt19937_64 seeds(23);
  for (const SolverConfig& cfg : configs) {
    for (int trial = 0; trial < 20; ++trial) {
      KSatConfig config;
      config.num_vars = 12;
      config.num_clauses = 12 + static_cast<int>(seeds() % 50);
      config.seed = seeds();
      const Cnf cnf = random_ksat(config);
      Solver s(cfg);
      for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
      for (const Clause& c : cnf.clauses) s.add_clause(c);
      const LBool got = s.solve();
      ASSERT_EQ(got == LBool::kTrue, brute_force_sat(cnf))
          << "trial " << trial;
    }
  }
}

TEST(SatSolver, StatsArePopulated) {
  KSatConfig config;
  config.num_vars = 60;
  config.num_clauses = 258;
  config.seed = 5;
  const Cnf cnf = random_ksat(config);
  SolverStats stats;
  solve_cnf(cnf, nullptr, &stats);
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.propagations, 0u);
}

TEST(SatSolver, StopReasonTracksWhyTheSolveStopped) {
  KSatConfig config;
  config.num_vars = 150;
  config.num_clauses = 645;
  config.seed = 99;
  const Cnf cnf = random_ksat(config);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);

  s.set_conflict_budget(5);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kConflictBudget);

  s.set_conflict_budget(0);
  s.set_deadline(std::chrono::steady_clock::now());  // already expired
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kDeadline);

  s.set_deadline(std::nullopt);
  std::atomic<bool> flag{true};
  s.set_interrupt(&flag);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kInterrupt);

  // A decisive solve resets the reason to kNone.
  s.set_interrupt(nullptr);
  ASSERT_NE(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kNone);
}

TEST(SatSolver, MemoryBudgetStopsRunawaySolve) {
  // An instance whose clause store alone dwarfs a 1 MB budget: the solve
  // must stop at the first memory checkpoint instead of grinding on.
  KSatConfig config;
  config.num_vars = 20000;
  config.num_clauses = 86000;
  config.seed = 12;
  const Cnf cnf = random_ksat(config);
  SolverConfig solver_config;
  solver_config.memory_limit_mb = 1;
  Solver s(solver_config);
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  EXPECT_GT(s.memory_bytes(), std::size_t{1} << 20);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kOutOfMemory);
  EXPECT_TRUE(s.last_solve_interrupted());
  EXPECT_GE(s.stats().peak_memory_bytes, s.memory_bytes());
}

TEST(SatSolver, GenerousMemoryBudgetDoesNotTrip) {
  KSatConfig config;
  config.num_vars = 60;
  config.num_clauses = 258;
  config.seed = 5;
  const Cnf cnf = random_ksat(config);
  SolverConfig solver_config;
  solver_config.memory_limit_mb = 512;
  Solver s(solver_config);
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const Clause& c : cnf.clauses) s.add_clause(c);
  EXPECT_NE(s.solve(), LBool::kUndef);
  EXPECT_EQ(s.last_stop_reason(), StopReason::kNone);
  EXPECT_GT(s.stats().peak_memory_bytes, 0u);
}

TEST(SatSolver, StopReasonToStringIsStable) {
  // JSONL consumers key on these strings; changing them breaks resume files.
  EXPECT_STREQ(to_string(StopReason::kNone), "none");
  EXPECT_STREQ(to_string(StopReason::kConflictBudget), "conflict-budget");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kInterrupt), "interrupt");
  EXPECT_STREQ(to_string(StopReason::kOutOfMemory), "out-of-memory");
}

}  // namespace
}  // namespace fl::sat
