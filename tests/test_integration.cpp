// End-to-end integration: every scheme locked on benchmark profiles, full
// verify + attack pipelines, cross-checks between attacks.
#include <gtest/gtest.h>

#include "attacks/appsat.h"
#include "attacks/brute_force.h"
#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"

namespace fl {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

// Every scheme on every small profile verifies under its correct key.
struct SchemeCase {
  const char* scheme;
  const char* profile;
};

class EveryScheme : public ::testing::TestWithParam<SchemeCase> {};

LockedCircuit lock_with(const std::string& scheme, const Netlist& original) {
  if (scheme == "full-lock") {
    return core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  }
  if (scheme == "rll") {
    lock::RllConfig c;
    c.num_keys = 16;
    return lock::rll_lock(original, c);
  }
  if (scheme == "sarlock") {
    lock::SarLockConfig c;
    c.num_keys = 10;
    return lock::sarlock_lock(original, c);
  }
  if (scheme == "antisat") {
    lock::AntiSatConfig c;
    c.block_inputs = 8;
    return lock::antisat_lock(original, c);
  }
  if (scheme == "lut-lock") {
    lock::LutLockConfig c;
    c.num_luts = 8;
    return lock::lutlock_lock(original, c);
  }
  lock::CrossLockConfig c;
  c.num_sources = 8;
  c.num_destinations = 10;
  return lock::crosslock_lock(original, c);
}

TEST_P(EveryScheme, CorrectKeyUnlocksAndRoundTrips) {
  const SchemeCase param = GetParam();
  const Netlist original = netlist::make_circuit(param.profile, 1);
  const LockedCircuit locked = lock_with(param.scheme, original);
  EXPECT_EQ(locked.scheme, param.scheme);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1, /*sat=*/true));
  // The locked design survives a .bench round trip with keys intact.
  const Netlist reparsed = netlist::read_bench_string(
      netlist::write_bench_string(locked.netlist));
  EXPECT_TRUE(core::verify_unlocks(original, reparsed, locked.correct_key,
                                   8, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EveryScheme,
    ::testing::Values(SchemeCase{"full-lock", "c432"},
                      SchemeCase{"full-lock", "c880"},
                      SchemeCase{"full-lock", "i4"},
                      SchemeCase{"rll", "c432"},
                      SchemeCase{"rll", "apex2"},
                      SchemeCase{"sarlock", "c499"},
                      SchemeCase{"antisat", "c432"},
                      SchemeCase{"lut-lock", "c880"},
                      SchemeCase{"cross-lock", "c1355"}));

TEST(Integration, SatAndBruteForceAgree) {
  const Netlist original = netlist::make_circuit("c432", 201);
  lock::RllConfig config;
  config.num_keys = 10;
  const LockedCircuit locked = lock::rll_lock(original, config);
  const attacks::Oracle oracle(original);
  const attacks::AttackResult sat = attacks::SatAttack().run(locked, oracle);
  const attacks::BruteForceResult brute =
      attacks::brute_force_attack(locked, oracle);
  ASSERT_EQ(sat.status, attacks::AttackStatus::kSuccess);
  ASSERT_TRUE(brute.found);
  // Keys may differ bitwise (unconstrained bits) but both must unlock.
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, sat.key, 16, 1,
                                   /*sat=*/true));
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, brute.key, 16, 1,
                                   /*sat=*/true));
}

TEST(Integration, SatAttackScalesWithClnSize) {
  // The central claim at miniature scale: attack effort grows steeply with
  // CLN size (Table 2 trend).
  const Netlist original = netlist::make_circuit("c880", 202);
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 120.0;
  double t4 = 0, t8 = 0;
  for (const int n : {4, 8}) {
    const LockedCircuit locked =
        core::full_lock(original, core::FullLockConfig::with_plrs({n}));
    const attacks::AttackResult result =
        attacks::SatAttack(options).run(locked, oracle);
    ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess) << n;
    (n == 4 ? t4 : t8) = result.solver_stats.decisions;
  }
  EXPECT_GT(t8, t4);
}

TEST(Integration, CyclicFullLockPipeline) {
  const Netlist original = netlist::make_circuit("c499", 203);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {4}, core::ClnTopology::kBanyanNonBlocking, core::CycleMode::kForce);
  const LockedCircuit locked = core::full_lock(original, config);
  ASSERT_TRUE(locked.netlist.is_cyclic());
  // Verify, attack with CycSAT, confirm removal fails when drivers negated.
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1));
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 120.0;
  const attacks::AttackResult result =
      attacks::CycSat(options).run(locked, oracle);
  ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 32, 2));
}

TEST(Integration, OracleQueryCountEqualsDipCount) {
  const Netlist original = netlist::make_circuit("c432", 204);
  lock::LutLockConfig config;
  config.num_luts = 6;
  const LockedCircuit locked = lock::lutlock_lock(original, config);
  const attacks::Oracle oracle(original);
  const attacks::AttackResult result =
      attacks::SatAttack().run(locked, oracle);
  ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess);
  EXPECT_EQ(oracle.num_queries(), result.iterations);
}

}  // namespace
}  // namespace fl
