// Oracle-guided SAT attack: breaks every acyclic scheme at small key sizes,
// respects budgets, reports faithful statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

void expect_breaks(const Netlist& original, const LockedCircuit& locked,
                   std::uint64_t max_expected_iterations = 0) {
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess) << locked.scheme;
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*sat=*/true))
      << locked.scheme;
  if (max_expected_iterations != 0) {
    EXPECT_LE(result.iterations, max_expected_iterations) << locked.scheme;
  }
  EXPECT_EQ(result.oracle_queries, result.iterations);
}

TEST(SatAttack, BreaksRll) {
  const Netlist original = netlist::make_circuit("c432", 90);
  lock::RllConfig config;
  config.num_keys = 24;
  expect_breaks(original, lock::rll_lock(original, config), 64);
}

TEST(SatAttack, BreaksLutLock) {
  const Netlist original = netlist::make_circuit("c499", 91);
  lock::LutLockConfig config;
  config.num_luts = 8;
  expect_breaks(original, lock::lutlock_lock(original, config), 128);
}

TEST(SatAttack, BreaksSmallCrossLock) {
  const Netlist original = netlist::make_circuit("c880", 92);
  lock::CrossLockConfig config;
  config.num_sources = 8;
  config.num_destinations = 8;
  expect_breaks(original, lock::crosslock_lock(original, config));
}

TEST(SatAttack, BreaksSmallFullLock) {
  const Netlist original = netlist::make_circuit("c432", 93);
  expect_breaks(original,
                core::full_lock(original, core::FullLockConfig::with_plrs({4})));
}

TEST(SatAttack, SarlockNeedsExponentialIterations) {
  // The SAT attack still *succeeds* on SARLock, but needs ~2^k DIPs —
  // the paper's N-vs-M tradeoff (§2). With k=6: ~64 iterations.
  const Netlist original = netlist::make_circuit("c432", 94);
  lock::SarLockConfig config;
  config.num_keys = 6;
  const LockedCircuit locked = lock::sarlock_lock(original, config);
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_GE(result.iterations, 32u);  // close to 2^6
  EXPECT_TRUE(
      core::verify_unlocks(original, locked.netlist, result.key, 16, 2, true));
}

TEST(SatAttack, IterationLimitHonored) {
  const Netlist original = netlist::make_circuit("c432", 95);
  lock::SarLockConfig config;
  config.num_keys = 12;
  const LockedCircuit locked = lock::sarlock_lock(original, config);
  const Oracle oracle(original);
  AttackOptions options;
  options.max_iterations = 5;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kIterationLimit);
  EXPECT_EQ(result.iterations, 5u);
  // Even a truncated attack reports a best-effort key sized to the key
  // width: consumers (AppSAT warm starts, JSONL writers) index it
  // unconditionally.
  EXPECT_EQ(result.key.size(), locked.key_bits());
}

TEST(SatAttack, TimeoutReported) {
  const Netlist original = netlist::make_circuit("c432", 96);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 0.05;  // far too little for a 16x16 PLR
  const AttackResult result = SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kTimeout);
  EXPECT_EQ(result.stop_reason, sat::StopReason::kDeadline);
  EXPECT_LT(result.seconds, 5.0);  // deadline actually cuts the solve short
  EXPECT_EQ(result.key.size(), locked.key_bits());  // best-effort key
}

TEST(SatAttack, MemoryBudgetSurfacesAsOutOfMemory) {
  // A lock big enough that the solver's tracked memory crosses a 1 MB
  // budget almost immediately: the attack must stop with kOutOfMemory
  // instead of growing until the process is killed.
  const Netlist original = netlist::make_circuit("c880", 97);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16, 16}));
  const Oracle oracle(original);
  AttackOptions options;
  options.memory_limit_mb = 1;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kOutOfMemory);
  EXPECT_EQ(result.stop_reason, sat::StopReason::kOutOfMemory);
  EXPECT_EQ(result.key.size(), locked.key_bits());
}

TEST(SatAttack, KeylessCircuitTrivial) {
  const Netlist c17 = netlist::make_c17();
  LockedCircuit unlocked;
  unlocked.netlist = c17;
  unlocked.scheme = "none";
  const Oracle oracle(c17);
  const AttackResult result = SatAttack().run(unlocked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(SatAttack, RatioStatTracked) {
  const Netlist original = netlist::make_circuit("c432", 97);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_GT(result.mean_clause_var_ratio, 1.0);
  EXPECT_LT(result.mean_clause_var_ratio, 10.0);
}

TEST(SatAttack, MeanIterationTimesOnlyTheDipLoop) {
  const Netlist original = netlist::make_circuit("c432", 98);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  ASSERT_GT(result.iterations, 0u);
  EXPECT_GT(result.mean_iteration_seconds, 0.0);
  // The mean covers the DIP-loop body only, so iterations * mean can never
  // exceed the total wall time (which adds miter encoding + key extraction).
  EXPECT_LE(result.mean_iteration_seconds * result.iterations,
            result.seconds);
}

TEST(SatAttack, MeanIterationZeroWhenNoIterations) {
  const Netlist c17 = netlist::make_c17();
  LockedCircuit unlocked;
  unlocked.netlist = c17;
  unlocked.scheme = "none";
  const Oracle oracle(c17);
  const AttackResult result = SatAttack().run(unlocked, oracle);
  ASSERT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.mean_iteration_seconds, 0.0);
}

TEST(SatAttack, PortfolioBreaksLockAndReportsWinner) {
  const Netlist original = netlist::make_circuit("c432", 99);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  options.portfolio = 3;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_GE(result.portfolio_winner, 0);
  EXPECT_LT(result.portfolio_winner, 3);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*sat=*/true));
  // All racers share the oracle; the portfolio total covers every query.
  EXPECT_GE(result.oracle_queries, result.iterations);
}

TEST(SatAttack, PortfolioConfigsAreDiverse) {
  // Every racer up to a 16-wide portfolio gets a distinct schedule: the
  // hand-picked table covers k <= 5 and deterministic jitter takes over
  // beyond it (no silent modulo wrap back into the table).
  std::vector<sat::SolverConfig> configs;
  for (int k = 0; k < 16; ++k) configs.push_back(SatAttack::portfolio_config(k));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_GT(configs[i].var_decay, 0.0);
    EXPECT_LT(configs[i].var_decay, 1.0);
    EXPECT_GT(configs[i].restart_unit, 0);
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_TRUE(configs[i].var_decay != configs[j].var_decay ||
                  configs[i].clause_decay != configs[j].clause_decay ||
                  configs[i].restart_unit != configs[j].restart_unit)
          << "configs " << i << " and " << j << " collide";
    }
  }
}

TEST(SatAttack, PortfolioAggregatesAllRacersStats) {
  // The losing racers' solver work must show up in the portfolio result,
  // not just the winner's counters.
  const Netlist original = netlist::make_circuit("c432", 99);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  options.portfolio = 3;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  // Every racer runs its own DIP loop to some depth, so the aggregate must
  // strictly exceed what any single racer could report alone: at least one
  // decision per racer is a safe floor on a lock this size.
  EXPECT_GE(result.solver_stats.decisions, 3u);
  EXPECT_GT(result.solver_stats.propagations, 0u);
}

TEST(SatAttack, PortfolioExternalInterruptReported) {
  // A pre-tripped external interrupt must surface as kInterrupted (sweeps
  // treat that status as "do not record").
  const Netlist original = netlist::make_circuit("c880", 92);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Oracle oracle(original);
  std::atomic<bool> interrupt{true};
  AttackOptions options;
  options.timeout_s = 60.0;
  options.portfolio = 2;
  options.interrupt = &interrupt;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kInterrupted);
}

TEST(SatAttack, PortfolioLoserCancellationNeverSurfaces) {
  // The winner cancels the losers through the shared race token; a loser's
  // kInterrupted must never become the portfolio's result. Repeat a fast
  // race several times to give the cancellation path chances to misfire.
  const Netlist original = netlist::make_circuit("c432", 93);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  for (int round = 0; round < 5; ++round) {
    AttackOptions options;
    options.timeout_s = 60.0;
    options.portfolio = 4;
    const AttackResult result = SatAttack(options).run(locked, oracle);
    ASSERT_NE(result.status, AttackStatus::kInterrupted) << "round " << round;
    ASSERT_EQ(result.status, AttackStatus::kSuccess) << "round " << round;
  }
}

TEST(SatAttack, SingleRunReportsNoPortfolioWinner) {
  const Netlist c17 = netlist::make_c17();
  LockedCircuit unlocked;
  unlocked.netlist = c17;
  unlocked.scheme = "none";
  const Oracle oracle(c17);
  const AttackResult result = SatAttack().run(unlocked, oracle);
  EXPECT_EQ(result.portfolio_winner, -1);
}

}  // namespace
}  // namespace fl::attacks
