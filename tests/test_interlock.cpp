// InterLock: logic folded into key-routed CLN blocks. The point of the
// scheme is that the removal attack — even with the correct permutation in
// hand — rips out real logic along with the routing fabric, so the bypass
// fails *functionally*, not just structurally.
#include <gtest/gtest.h>

#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "attacks/sat_attack.h"
#include "attacks/sps.h"
#include "core/verify.h"
#include "locking/interlock.h"
#include "locking/scheme.h"
#include "netlist/profiles.h"

namespace fl {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

LockedCircuit lock_c432(const std::string& params, std::uint64_t seed = 5) {
  const Netlist original = netlist::make_circuit("c432", 2);
  return lock::lock_with("interlock", original,
                         lock::make_options(seed, {}, params));
}

TEST(InterLock, CorrectKeyUnlocksWithSatProof) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original, lock::make_options(5, {}, "sizes=8"));
  EXPECT_FALSE(locked.netlist.is_cyclic());
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1,
                                   /*also_sat_check=*/true));
  EXPECT_FALSE(locked.routing_blocks.empty());
  EXPECT_GT(locked.key_bits(), 0u);
}

TEST(InterLock, ReportCountsFoldedGatesAndKeys) {
  const Netlist original = netlist::make_circuit("c432", 2);
  lock::InterLockReport report;
  const LockedCircuit locked = lock::interlock_lock(
      original, lock::InterLockConfig::with_blocks({8}, 1.0, 0.5, 5),
      &report);
  EXPECT_EQ(report.num_blocks, 1);
  EXPECT_GT(report.num_folded_gates, 0);
  EXPECT_EQ(static_cast<std::size_t>(report.key_bits), locked.key_bits());
}

TEST(InterLock, RemovalAttackFailsFunctionally) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original, lock::make_options(5, {}, "sizes=8"));
  const attacks::Oracle oracle(original);
  const attacks::RemovalResult removal =
      attacks::removal_attack(locked, oracle);
  EXPECT_GT(removal.blocks_bypassed, 0);
  // Folded logic went with the fabric: the bypassed netlist mis-computes
  // even with all remaining keys set correctly.
  EXPECT_FALSE(removal.exact);
  EXPECT_GT(removal.error_rate, 0.01);
}

TEST(InterLock, AblationWithoutFoldingOrNegationIsRemovable) {
  // fold=0 + negate=0 degrades InterLock to a pure routing lock — exactly
  // the configuration the removal attack recovers. This pins down *why*
  // the scheme resists removal (the folding, not the fabric).
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original,
      lock::make_options(5, {}, "sizes=8,fold=0,negate=0"));
  const attacks::Oracle oracle(original);
  const attacks::RemovalResult removal =
      attacks::removal_attack(locked, oracle);
  EXPECT_TRUE(removal.exact);
  EXPECT_EQ(removal.error_rate, 0.0);
}

TEST(InterLock, SpsFindsNoSkewFoothold) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original, lock::make_options(5, {}, "sizes=8"));
  const attacks::SpsReport sps = attacks::sps_attack(locked.netlist);
  // Routing MUX nets stay near p = 0.5 — nothing like a point function's
  // ~always-0 flip signal.
  EXPECT_LT(sps.mean_skew, 0.9);
}

TEST(InterLock, SatAttackRecoversAWorkingKey) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original, lock::make_options(3, {}, "sizes=8"));
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 120.0;
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*also_sat_check=*/true));
}

TEST(InterLock, DeterministicInSeed) {
  const LockedCircuit a = lock_c432("sizes=8", 11);
  const LockedCircuit b = lock_c432("sizes=8", 11);
  EXPECT_EQ(a.correct_key, b.correct_key);
  EXPECT_EQ(a.netlist.num_gates(), b.netlist.num_gates());
  const LockedCircuit c = lock_c432("sizes=8", 12);
  EXPECT_TRUE(c.correct_key != a.correct_key ||
              c.netlist.num_gates() != a.netlist.num_gates());
}

TEST(InterLock, MultiBlockConfiguration) {
  const Netlist original = netlist::make_circuit("c880", 2);
  const LockedCircuit locked = lock::lock_with(
      "interlock", original, lock::make_options(9, {}, "sizes=8+8"));
  EXPECT_EQ(locked.routing_blocks.size(), 2u);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 12, 1));
}

}  // namespace
}  // namespace fl
