// Anti-SAT-specific claims: the two-block K1 == K2 structure. Generic lock
// invariants run for every registry scheme in test_lock_properties.cpp.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/antisat.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(AntiSat, AnyEqualKeyPairUnlocks) {
  const Netlist original = netlist::make_circuit("c432", 61);
  AntiSatConfig config;
  config.block_inputs = 6;
  const core::LockedCircuit locked = antisat_lock(original, config);
  ASSERT_EQ(locked.key_bits(), 12u);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1, /*sat=*/true));
  // Property: *any* K1 == K2 unlocks, not just the stored one.
  std::vector<bool> alt(12);
  for (int i = 0; i < 6; ++i) {
    alt[i] = (i % 2) == 0;
    alt[6 + i] = (i % 2) == 0;
  }
  EXPECT_TRUE(
      core::verify_unlocks(original, locked.netlist, alt, 16, 2, true));
}

TEST(AntiSat, UnequalKeysErrOnOnePattern) {
  Netlist original;
  std::vector<netlist::GateId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(original.add_input("x"));
  original.mark_output(
      original.add_gate(netlist::GateType::kOr, {ins[0], ins[4]}), "y");
  AntiSatConfig config;
  config.block_inputs = 5;
  config.seed = 2;
  const core::LockedCircuit locked = antisat_lock(original, config);
  std::vector<bool> wrong = locked.correct_key;
  wrong[0] = !wrong[0];  // K1 != K2 now
  int mismatches = 0;
  for (int x = 0; x < 32; ++x) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = ((x >> i) & 1) != 0;
    if (netlist::eval_once(original, in, {}) !=
        netlist::eval_once(locked.netlist, in, wrong)) {
      ++mismatches;
    }
  }
  // Y fires exactly where X = ~K1 (and g(X^K2) != 1): exactly one pattern.
  EXPECT_EQ(mismatches, 1);
}

TEST(AntiSat, BlockWidthClamped) {
  const Netlist c17 = netlist::make_c17();
  AntiSatConfig config;
  config.block_inputs = 99;
  const core::LockedCircuit locked = antisat_lock(c17, config);
  EXPECT_EQ(locked.key_bits(), 10u);  // 2 x 5 inputs
}

}  // namespace
}  // namespace fl::lock
