// Synthetic circuit generator: budgets, determinism, structural health.
#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/structure.h"

namespace fl::netlist {
namespace {

TEST(Generator, MeetsBudgets) {
  GeneratorConfig config;
  config.num_inputs = 12;
  config.num_outputs = 6;
  config.num_gates = 150;
  config.seed = 3;
  const Netlist n = generate_circuit(config);
  EXPECT_EQ(n.num_inputs(), 12u);
  EXPECT_EQ(n.num_outputs(), 6u);
  EXPECT_EQ(n.num_logic_gates(), 150u);
  EXPECT_FALSE(n.is_cyclic());
  EXPECT_NO_THROW(n.validate());
}

TEST(Generator, Deterministic) {
  GeneratorConfig config;
  config.num_gates = 80;
  config.seed = 77;
  const Netlist a = generate_circuit(config);
  const Netlist b = generate_circuit(config);
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_gates = 80;
  config.seed = 1;
  const Netlist a = generate_circuit(config);
  config.seed = 2;
  const Netlist b = generate_circuit(config);
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, OutputsAreDistinctLogicGates) {
  GeneratorConfig config;
  config.num_inputs = 8;
  config.num_outputs = 8;
  config.num_gates = 40;
  config.seed = 5;
  const Netlist n = generate_circuit(config);
  std::vector<GateId> outs;
  for (const OutputPort& o : n.outputs()) {
    EXPECT_FALSE(is_source(n.gate(o.gate).type));
    outs.push_back(o.gate);
  }
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::unique(outs.begin(), outs.end()), outs.end());
}

TEST(Generator, RejectsBadBudgets) {
  GeneratorConfig config;
  config.num_gates = 0;
  EXPECT_THROW(generate_circuit(config), std::invalid_argument);
  config.num_gates = 10;
  config.num_inputs = 0;
  EXPECT_THROW(generate_circuit(config), std::invalid_argument);
  config.num_inputs = 4;
  config.max_fanin = 1;
  EXPECT_THROW(generate_circuit(config), std::invalid_argument);
}

TEST(Generator, MostLogicIsLive) {
  GeneratorConfig config;
  config.num_inputs = 16;
  config.num_outputs = 8;
  config.num_gates = 200;
  config.seed = 13;
  const Netlist n = generate_circuit(config);
  const auto live = live_gates(n);
  std::size_t live_count = 0, logic = 0;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (is_source(n.gate(g).type)) continue;
    ++logic;
    if (live[g]) ++live_count;
  }
  // The generator wires outputs to sinks, so a healthy majority of the
  // logic must reach an output.
  EXPECT_GT(live_count * 2, logic);
}

TEST(Profiles, Table5ShapesMatchPaper) {
  const auto profiles = table5_profiles();
  ASSERT_EQ(profiles.size(), 13u);
  const auto c432 = find_profile("c432");
  ASSERT_TRUE(c432.has_value());
  EXPECT_EQ(c432->num_gates, 160u);
  EXPECT_EQ(c432->num_inputs, 36u);
  EXPECT_EQ(c432->num_outputs, 7u);
  const auto apex4 = find_profile("apex4");
  ASSERT_TRUE(apex4.has_value());
  EXPECT_EQ(apex4->num_gates, 5360u);
}

TEST(Profiles, MakeCircuitHonorsProfile) {
  const Netlist n = make_circuit("c880", 4);
  EXPECT_EQ(n.num_inputs(), 60u);
  EXPECT_EQ(n.num_outputs(), 26u);
  EXPECT_EQ(n.num_logic_gates(), 386u);
  EXPECT_EQ(n.name(), "c880");
}

TEST(Profiles, UnknownProfileThrows) {
  EXPECT_THROW(make_circuit("c9999", 1), std::invalid_argument);
  EXPECT_FALSE(find_profile("c9999").has_value());
}

TEST(Profiles, DifferentProfilesDifferAtSameSeed) {
  const Netlist a = make_circuit("c432", 1);
  const Netlist b = make_circuit("c499", 1);
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

}  // namespace
}  // namespace fl::netlist
