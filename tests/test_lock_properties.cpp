// Cross-scheme property sweeps: every locking transform must (1) preserve
// the interface, (2) unlock under its correct key, (3) be deterministic in
// its seed, (4) produce keys following the keyinput naming convention, and
// (5) never leave the correct key as the all-zeros vector by construction
// accident more often than chance would allow.
#include <gtest/gtest.h>

#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace fl {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

LockedCircuit lock_with(const std::string& scheme, const Netlist& original,
                        std::uint64_t seed) {
  if (scheme == "rll") {
    lock::RllConfig c;
    c.num_keys = 12;
    c.seed = seed;
    return lock::rll_lock(original, c);
  }
  if (scheme == "sarlock") {
    lock::SarLockConfig c;
    c.num_keys = 8;
    c.seed = seed;
    return lock::sarlock_lock(original, c);
  }
  if (scheme == "antisat") {
    lock::AntiSatConfig c;
    c.block_inputs = 6;
    c.seed = seed;
    return lock::antisat_lock(original, c);
  }
  if (scheme == "lut-lock") {
    lock::LutLockConfig c;
    c.num_luts = 6;
    c.seed = seed;
    return lock::lutlock_lock(original, c);
  }
  if (scheme == "cross-lock") {
    lock::CrossLockConfig c;
    c.num_sources = 8;
    c.num_destinations = 10;
    c.seed = seed;
    return lock::crosslock_lock(original, c);
  }
  core::FullLockConfig c = core::FullLockConfig::with_plrs({8});
  c.seed = seed;
  return core::full_lock(original, c);
}

struct PropertyCase {
  const char* scheme;
  const char* profile;
  std::uint64_t seed;
};

class LockProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LockProperty, InterfaceAndUnlockInvariants) {
  const PropertyCase p = GetParam();
  const Netlist original = netlist::make_circuit(p.profile, p.seed);
  const LockedCircuit locked = lock_with(p.scheme, original, p.seed);

  // (1) Interface preserved.
  ASSERT_EQ(locked.netlist.num_inputs(), original.num_inputs());
  ASSERT_EQ(locked.netlist.num_outputs(), original.num_outputs());
  ASSERT_EQ(locked.netlist.num_keys(), locked.correct_key.size());
  ASSERT_GT(locked.key_bits(), 0u);
  EXPECT_NO_THROW(locked.netlist.validate());

  // (2) Correct key unlocks (simulation; SAT proof where acyclic).
  EXPECT_TRUE(core::verify_unlocks(original, locked, 12, p.seed,
                                   !locked.netlist.is_cyclic()));

  // (3) Deterministic in the seed.
  const LockedCircuit again = lock_with(p.scheme, original, p.seed);
  EXPECT_EQ(again.correct_key, locked.correct_key);
  EXPECT_EQ(again.netlist.num_gates(), locked.netlist.num_gates());

  // (4) Key naming convention.
  for (const netlist::GateId k : locked.netlist.keys()) {
    EXPECT_TRUE(locked.netlist.gate(k).name.starts_with("keyinput"))
        << locked.netlist.gate(k).name;
  }
}

std::vector<PropertyCase> grid() {
  std::vector<PropertyCase> cases;
  for (const char* scheme : {"full-lock", "rll", "sarlock", "antisat",
                             "lut-lock", "cross-lock"}) {
    for (const char* profile : {"c499", "i4"}) {
      for (const std::uint64_t seed : {3ull, 17ull}) {
        cases.push_back({scheme, profile, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, LockProperty, ::testing::ValuesIn(grid()),
                         [](const auto& info) {
                           std::string name = info.param.scheme;
                           name += "_";
                           name += info.param.profile;
                           name += "_s" + std::to_string(info.param.seed);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fl
