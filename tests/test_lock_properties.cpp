// Cross-scheme property sweeps over the lock-scheme registry: every
// registered transform must (1) preserve the interface and account for its
// key width, (2) unlock under its correct key, (3) be deterministic in its
// seed, (4) produce keys following the keyinput naming convention,
// (5) stamp its canonical scheme/params provenance, and (6) corrupt wrong
// keys in the shape its capability flags promise (point functions err on
// almost nothing; the rest corrupt measurably).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/profiles.h"

namespace fl {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

// Small-but-representative parameters per scheme, keeping the whole grid
// fast. A scheme added to the registry without a row here fails loudly.
const std::map<std::string, std::string>& test_params() {
  static const std::map<std::string, std::string> params = {
      {"antisat", "inputs=6"},
      {"cross-lock", "sources=8,dests=10"},
      {"full-lock", "sizes=8"},
      {"interlock", "sizes=8"},
      {"lut-lock", "luts=6"},
      {"rll", "keys=12"},
      {"sarlock", "keys=8"},
      {"sfll-hd", "keys=8,hd=1"},
  };
  return params;
}

struct PropertyCase {
  std::string scheme;
  const char* profile;
  std::uint64_t seed;
};

LockedCircuit lock_case(const PropertyCase& p, const Netlist& original) {
  const auto it = test_params().find(p.scheme);
  if (it == test_params().end()) {
    ADD_FAILURE() << "scheme '" << p.scheme
                  << "' has no test parameters; add a test_params() row";
  }
  const std::string params =
      it == test_params().end() ? std::string() : it->second;
  return lock::lock_with(p.scheme, original,
                         lock::make_options(p.seed, {}, params));
}

class LockProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LockProperty, InterfaceAndUnlockInvariants) {
  const PropertyCase p = GetParam();
  const Netlist original = netlist::make_circuit(p.profile, p.seed);
  const LockedCircuit locked = lock_case(p, original);

  // (1) Interface preserved, key width accounted for.
  ASSERT_EQ(locked.netlist.num_inputs(), original.num_inputs());
  ASSERT_EQ(locked.netlist.num_outputs(), original.num_outputs());
  ASSERT_EQ(locked.netlist.num_keys(), locked.correct_key.size());
  ASSERT_GT(locked.key_bits(), 0u);
  EXPECT_NO_THROW(locked.netlist.validate());

  // (2) Correct key unlocks (simulation; SAT proof where acyclic).
  EXPECT_TRUE(core::verify_unlocks(original, locked, 12, p.seed,
                                   !locked.netlist.is_cyclic()));

  // (3) Deterministic in the seed.
  const LockedCircuit again = lock_case(p, original);
  EXPECT_EQ(again.correct_key, locked.correct_key);
  EXPECT_EQ(again.netlist.num_gates(), locked.netlist.num_gates());

  // (4) Key naming convention.
  for (const netlist::GateId k : locked.netlist.keys()) {
    EXPECT_TRUE(locked.netlist.gate(k).name.starts_with("keyinput"))
        << locked.netlist.gate(k).name;
  }

  // (5) Canonical provenance stamped by the registry.
  EXPECT_EQ(locked.scheme, p.scheme);
  EXPECT_FALSE(locked.params.empty());

  // (6) Wrong-key corruption matches the declared capability class.
  const lock::LockScheme* scheme = lock::find_scheme(p.scheme);
  ASSERT_NE(scheme, nullptr);
  const lock::SchemeCaps caps = scheme->caps(
      lock::make_options(p.seed, {}, test_params().at(p.scheme)));
  if (caps.point_function) {
    // Each wrong key errs on a vanishing fraction of the input space.
    const core::CorruptionStats corruption =
        core::output_corruption(original, locked, 8, 4, p.seed);
    EXPECT_LT(corruption.mean_error_rate, 0.05)
        << "point-function scheme corrupts too much";
  } else {
    // The maximally-wrong key (all bits flipped: every truth table
    // complemented, every XOR inverted, every route permuted) is provably a
    // different function. Random sampling can miss the corrupted minterms
    // for schemes with few small key cones (e.g. lut-lock's 6 LUTs deep in
    // i4's wide AND cones), so where the netlist is acyclic we settle it
    // with the SAT miter instead of pattern counting.
    std::vector<bool> flipped = locked.correct_key;
    flipped.flip();
    EXPECT_FALSE(core::verify_unlocks(original, locked.netlist, flipped, 16,
                                      p.seed, !locked.netlist.is_cyclic()))
        << "non-point-function scheme is equivalent under the flipped key";
  }
}

std::vector<PropertyCase> grid() {
  std::vector<PropertyCase> cases;
  for (const lock::LockScheme* scheme : lock::registry()) {
    for (const char* profile : {"c499", "i4"}) {
      for (const std::uint64_t seed : {3ull, 17ull}) {
        cases.push_back({std::string(scheme->name()), profile, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, LockProperty, ::testing::ValuesIn(grid()),
                         [](const auto& info) {
                           std::string name = info.param.scheme;
                           name += "_";
                           name += info.param.profile;
                           name += "_s" + std::to_string(info.param.seed);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fl
