// Miter construction and SAT equivalence checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>

#include "attacks/oracle.h"
#include "cnf/miter.h"
#include "core/full_lock.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"
#include "netlist/structure.h"
#include "sat/solver.h"

namespace fl::cnf {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

TEST(CheckEquivalence, CircuitEqualsItself) {
  const Netlist c17 = netlist::make_c17();
  EXPECT_TRUE(check_equivalence(c17, {}, c17, {}));
}

TEST(CheckEquivalence, DetectsSingleGateChange) {
  const Netlist c17 = netlist::make_c17();
  Netlist mutated = c17;
  mutated.retype(mutated.outputs()[0].gate, GateType::kAnd);  // NAND -> AND
  std::vector<bool> cex;
  EXPECT_FALSE(check_equivalence(c17, {}, mutated, {}, &cex));
  ASSERT_EQ(cex.size(), c17.num_inputs());
  // The counterexample actually distinguishes them.
  const auto out_a = netlist::eval_once(c17, cex, {});
  const auto out_b = netlist::eval_once(mutated, cex, {});
  EXPECT_NE(out_a, out_b);
}

TEST(CheckEquivalence, StructurallyDifferentButEqual) {
  // DeMorgan: NAND(a,b) == OR(NOT a, NOT b).
  Netlist lhs;
  {
    const GateId a = lhs.add_input("a");
    const GateId b = lhs.add_input("b");
    lhs.mark_output(lhs.add_gate(GateType::kNand, {a, b}), "y");
  }
  Netlist rhs;
  {
    const GateId a = rhs.add_input("a");
    const GateId b = rhs.add_input("b");
    const GateId na = rhs.add_gate(GateType::kNot, {a});
    const GateId nb = rhs.add_gate(GateType::kNot, {b});
    rhs.mark_output(rhs.add_gate(GateType::kOr, {na, nb}), "y");
  }
  EXPECT_TRUE(check_equivalence(lhs, {}, rhs, {}));
}

TEST(CheckEquivalence, KeyedCircuitUnderCorrectKey) {
  // locked = XOR(original, key): equal iff key = 0.
  Netlist original;
  const GateId a0 = original.add_input("a");
  original.mark_output(original.add_gate(GateType::kNot, {a0}), "y");
  Netlist locked;
  const GateId a1 = locked.add_input("a");
  const GateId k = locked.add_key("k");
  const GateId inv = locked.add_gate(GateType::kNot, {a1});
  locked.mark_output(locked.add_gate(GateType::kXor, {inv, k}), "y");
  EXPECT_TRUE(check_equivalence(original, {}, locked, {false}));
  EXPECT_FALSE(check_equivalence(original, {}, locked, {true}));
}

TEST(CheckEquivalence, InterfaceMismatchThrows) {
  const Netlist c17 = netlist::make_c17();
  Netlist tiny;
  tiny.add_input("a");
  tiny.mark_output(tiny.add_gate(GateType::kNot, {0}), "y");
  EXPECT_THROW(check_equivalence(c17, {}, tiny, {}), std::invalid_argument);
}

TEST(AttackMiter, KeylessCircuitIsTriviallyEqual) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  const AttackMiter miter = encode_attack_miter(c17, solver);
  EXPECT_TRUE(miter.trivially_equal);
}

TEST(AttackMiter, FindsDipForKeyedCircuit) {
  Netlist locked;
  const GateId a = locked.add_input("a");
  const GateId k = locked.add_key("k");
  locked.mark_output(locked.add_gate(GateType::kXor, {a, k}), "y");
  sat::Solver solver;
  const AttackMiter miter = encode_attack_miter(locked, solver);
  ASSERT_FALSE(miter.trivially_equal);
  const sat::Lit assume[] = {miter.activate};
  // Keys differ -> outputs differ on every input: SAT.
  ASSERT_EQ(solver.solve(assume), sat::LBool::kTrue);
  EXPECT_NE(solver.value_of(miter.key1[0]), solver.value_of(miter.key2[0]));
}

TEST(AttackMiter, IoConstraintPinsKey) {
  Netlist locked;
  const GateId a = locked.add_input("a");
  const GateId k = locked.add_key("k");
  locked.mark_output(locked.add_gate(GateType::kXor, {a, k}), "y");
  sat::Solver solver;
  const AttackMiter miter = encode_attack_miter(locked, solver);
  // Oracle says: input a=0 -> output 0. Then k must be 0 in both copies.
  add_io_constraint(locked, solver, miter.key1, {false}, {false});
  add_io_constraint(locked, solver, miter.key2, {false}, {false});
  const sat::Lit assume[] = {miter.activate};
  EXPECT_EQ(solver.solve(assume), sat::LBool::kFalse);  // no DIP remains
  ASSERT_EQ(solver.solve(), sat::LBool::kTrue);
  EXPECT_FALSE(solver.value_of(miter.key1[0]));
}

TEST(AttackMiter, SharedInputsAcrossCopies) {
  const Netlist profile = netlist::make_circuit("i4", 3);
  // Give it a key so the miter is non-trivial.
  Netlist locked = profile;
  const GateId k = locked.add_key("k");
  const GateId old_out = locked.outputs()[0].gate;
  const GateId g = locked.add_gate(GateType::kXor, {old_out, k});
  locked.set_output_gate(0, g);
  sat::Solver solver;
  const AttackMiter miter = encode_attack_miter(locked, solver);
  ASSERT_EQ(miter.inputs.size(), locked.num_inputs());
  ASSERT_EQ(miter.key1.size(), 1u);
  ASSERT_EQ(miter.key2.size(), 1u);
  EXPECT_NE(miter.key1[0], miter.key2[0]);
}

TEST(AttackMiter, SharedInputsMatchDuplicatedEncoding) {
  // The miter encodes its two copies directly over one input vector. The
  // older construction — fresh inputs for copy 2, tied back with pairwise
  // equality clauses — must be strictly larger yet find the same DIPs.
  Netlist locked;
  const GateId a = locked.add_input("a");
  const GateId b = locked.add_input("b");
  const GateId k0 = locked.add_key("k0");
  const GateId k1 = locked.add_key("k1");
  const GateId x0 = locked.add_gate(GateType::kXor, {a, k0});
  const GateId x1 = locked.add_gate(GateType::kXor, {b, k1});
  locked.mark_output(locked.add_gate(GateType::kNand, {x0, x1}), "y");

  sat::Solver shared;
  const AttackMiter miter = encode_attack_miter(locked, shared);
  ASSERT_FALSE(miter.trivially_equal);

  sat::Solver dup;
  SolverSink sink(dup);
  const EncodedCircuit copy1 = encode(locked, sink);
  const EncodedCircuit copy2 = encode(locked, sink);
  for (std::size_t i = 0; i < copy1.input_vars.size(); ++i) {
    const sat::Lit p = sat::pos(copy1.input_vars[i]);
    const sat::Lit q = sat::pos(copy2.input_vars[i]);
    dup.add_clause({~p, q});
    dup.add_clause({p, ~q});
  }
  const NetLit diff = encode_difference(copy1.outputs, copy2.outputs, sink);
  ASSERT_FALSE(diff.is_const());
  dup.add_clause({diff.lit});

  EXPECT_LT(shared.num_vars(), dup.num_vars());
  EXPECT_LT(shared.num_clauses(), dup.num_clauses());

  // Differential DIP enumeration: both constructions expose the same set of
  // distinguishing input patterns (one key pair suffices per pattern here).
  const auto dips = [&](sat::Solver& solver, std::span<const sat::Var> inputs,
                        const sat::Lit* activate) {
    std::vector<int> patterns;
    while (true) {
      const sat::LBool r = activate != nullptr
                               ? solver.solve(std::span(activate, 1))
                               : solver.solve();
      if (r != sat::LBool::kTrue) break;
      int pattern = 0;
      sat::Clause ban;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const bool v = solver.value_of(inputs[i]);
        pattern |= static_cast<int>(v) << i;
        ban.push_back(sat::Lit(inputs[i], v));
      }
      patterns.push_back(pattern);
      if (!solver.add_clause(ban)) break;
    }
    std::sort(patterns.begin(), patterns.end());
    return patterns;
  };
  const std::vector<int> shared_dips =
      dips(shared, miter.inputs, &miter.activate);
  const std::vector<int> dup_dips = dips(dup, copy1.input_vars, nullptr);
  EXPECT_EQ(shared_dips, dup_dips);
  EXPECT_FALSE(shared_dips.empty());
}


TEST(DeobfuscationRatio, UnitPinnedInputsKeepVariables) {
  // inputs_as_unit_clauses must allocate input vars and pin them, unlike
  // the folding default which substitutes constants.
  const Netlist c17 = netlist::make_c17();
  sat::Cnf folded_cnf, pinned_cnf;
  {
    CnfSink sink(folded_cnf);
    EncodeOptions options;
    options.fixed_inputs = {true, false, true, false, true};
    encode(c17, sink, options);
  }
  {
    CnfSink sink(pinned_cnf);
    EncodeOptions options;
    options.fold_constants = false;
    options.inputs_as_unit_clauses = true;
    options.fixed_inputs = {true, false, true, false, true};
    const EncodedCircuit enc = encode(c17, sink, options);
    for (const sat::Var v : enc.input_vars) EXPECT_NE(v, sat::kNullVar);
  }
  EXPECT_EQ(folded_cnf.num_vars, 0);   // whole circuit folded away
  EXPECT_EQ(pinned_cnf.num_vars, 11);  // 5 inputs + 6 gates
  // 6 NANDs x 3 clauses + 5 unit pins.
  EXPECT_EQ(pinned_cnf.clauses.size(), 23u);
}

TEST(DeobfuscationRatio, PureMuxFabricApproachesFour) {
  // A deep MUX cascade (key-selected) is the paper's hard-instance shape:
  // 1 var / 4 clauses per MUX, so with inputs pinned the ratio approaches 4.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  GateId cur = a;
  for (int i = 0; i < 200; ++i) {
    const GateId k = n.add_key("keyinput" + std::to_string(i));
    cur = n.add_gate(GateType::kMux, {k, cur, b});
  }
  n.mark_output(cur, "y");
  const double ratio = deobfuscation_cnf_ratio(n, /*num_dips=*/64, 5);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.05);
}

TEST(DeobfuscationRatio, MoreDipsDiluteFreeKeyVariables) {
  const Netlist original = netlist::make_circuit("c432", 7);
  Netlist locked = original;
  // A key-heavy lock: ratio must rise as DIP copies amortize the key vars.
  for (int i = 0; i < 64; ++i) {
    const GateId k = locked.add_key("keyinput" + std::to_string(i));
    const GateId w = locked.outputs()[i % locked.num_outputs()].gate;
    const GateId g = locked.add_gate(GateType::kXor, {w, k});
    locked.set_output_gate(i % locked.num_outputs(), g);
  }
  const double few = deobfuscation_cnf_ratio(locked, 2, 9);
  const double many = deobfuscation_cnf_ratio(locked, 48, 9);
  EXPECT_GT(many, few);
}

TEST(IoConstraintCone, MatchesLegacyKeySpace) {
  // The soundness claim behind cone-restricted DIP constraints: after the
  // same sequence of (pattern, response) pairs, the legacy full re-encode
  // and the cone encode (fixed region swept by simulation, dead residue
  // pruned) admit exactly the same keys. Fuzzed by key-membership queries.
  using netlist::Word;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Netlist original = netlist::make_circuit("c432", 40 + seed);
    core::FullLockConfig config = core::FullLockConfig::with_plrs({4});
    config.seed = seed;
    const core::LockedCircuit locked = core::full_lock(original, config);
    const Netlist& net = locked.netlist;
    if (net.is_cyclic()) continue;
    netlist::KeyConePartition partition(net);
    const attacks::Oracle oracle(original);
    std::mt19937_64 rng(seed * 1234567);

    sat::Solver legacy_solver, cone_solver;
    std::vector<sat::Var> legacy_keys(net.num_keys()), cone_keys(net.num_keys());
    for (auto& v : legacy_keys) v = legacy_solver.new_var();
    for (auto& v : cone_keys) v = cone_solver.new_var();
    netlist::Simulator fixed_sim(partition.fixed_region());
    const std::span<const GateId> taps = partition.taps();

    for (int d = 0; d < 5; ++d) {
      std::vector<bool> pattern(net.num_inputs());
      for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = rng() & 1;
      const std::vector<bool> response = oracle.query(pattern);
      add_io_constraint(net, legacy_solver, legacy_keys, pattern, response);

      // Cone path: sweep the fixed region once, hand the tap values to the
      // encoder as frontier constants.
      std::vector<Word> words(net.num_inputs());
      for (std::size_t i = 0; i < words.size(); ++i) {
        words[i] = pattern[i] ? ~Word{0} : Word{0};
      }
      const std::vector<Word> tap_values = fixed_sim.run(words, {});
      std::vector<NetLit> frontier(net.num_gates(), NetLit::constant(false));
      for (std::size_t t = 0; t < taps.size(); ++t) {
        frontier[taps[t]] = NetLit::constant((tap_values[t] & 1) != 0);
      }
      add_io_constraint_cone(net, cone_solver, cone_keys,
                             partition.cone_topo(), frontier, response);
    }

    // The correct key plus random probes must be admitted or rejected
    // identically by both encodings.
    for (int trial = 0; trial < 120; ++trial) {
      std::vector<bool> key(net.num_keys());
      if (trial == 0) {
        key = locked.correct_key;
      } else {
        for (std::size_t i = 0; i < key.size(); ++i) key[i] = rng() & 1;
      }
      std::vector<sat::Lit> legacy_assume, cone_assume;
      for (std::size_t i = 0; i < key.size(); ++i) {
        legacy_assume.push_back(sat::Lit(legacy_keys[i], !key[i]));
        cone_assume.push_back(sat::Lit(cone_keys[i], !key[i]));
      }
      const sat::LBool expected = legacy_solver.solve(legacy_assume);
      EXPECT_EQ(cone_solver.solve(cone_assume), expected)
          << "seed " << seed << " trial " << trial;
      if (trial == 0) {
        EXPECT_EQ(expected, sat::LBool::kTrue);
      }
    }
  }
}

}  // namespace
}  // namespace fl::cnf
