// Key-programmable LUT replacement (the "L" of PLR).
#include <gtest/gtest.h>

#include <random>

#include "core/plr.h"
#include "netlist/simulator.h"

namespace fl::core {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::Word;

TEST(KeyLut, Replaceability) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("k");
  const GateId g2 = n.add_gate(GateType::kAnd, {a, a});
  std::vector<GateId> wide(6, a);
  // 6-input gate exceeds kMaxLutInputs... need distinct fanins:
  Netlist big;
  std::vector<GateId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(big.add_input("x"));
  const GateId g6 = big.add_gate(GateType::kAnd, ins);
  EXPECT_TRUE(lut_replaceable(n, g2));
  EXPECT_FALSE(lut_replaceable(n, a));
  EXPECT_FALSE(lut_replaceable(n, k));
  EXPECT_FALSE(lut_replaceable(big, g6));
}

// Property: for every 2-input gate type, LUT replacement with the correct
// key preserves the function on all input combinations.
class KeyLutSemantics : public ::testing::TestWithParam<GateType> {};

TEST_P(KeyLutSemantics, CorrectKeyPreservesFunction) {
  const GateType type = GetParam();
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const int arity = netlist::fixed_arity(type) == 1 ? 1 : 2;
  const GateId g = arity == 1 ? n.add_gate(type, {a})
                              : n.add_gate(type, {a, b});
  n.mark_output(g, "y");
  Netlist original = n;

  const KeyLutResult lut = replace_with_key_lut(n, g, "lut");
  ASSERT_EQ(lut.key_gates.size(), std::size_t{1} << arity);
  ASSERT_EQ(lut.correct_key.size(), lut.key_gates.size());
  EXPECT_EQ(n.outputs()[0].gate, lut.root);

  for (int combo = 0; combo < 4; ++combo) {
    const std::vector<bool> in{(combo & 1) != 0, (combo & 2) != 0};
    const auto want = netlist::eval_once(original, in, {});
    const auto got = netlist::eval_once(n, in, lut.correct_key);
    EXPECT_EQ(want[0], got[0]) << to_string(type) << " combo " << combo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, KeyLutSemantics,
    ::testing::Values(GateType::kAnd, GateType::kNand, GateType::kOr,
                      GateType::kNor, GateType::kXor, GateType::kXnor,
                      GateType::kBuf, GateType::kNot));

TEST(KeyLut, FiveInputGate) {
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(n.add_input("x"));
  const GateId g = n.add_gate(GateType::kXor, ins);
  n.mark_output(g, "y");
  Netlist original = n;
  const KeyLutResult lut = replace_with_key_lut(n, g, "lut");
  EXPECT_EQ(lut.key_gates.size(), 32u);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (rng() & 1) != 0;
    EXPECT_EQ(netlist::eval_once(original, in, {})[0],
              netlist::eval_once(n, in, lut.correct_key)[0]);
  }
}

TEST(KeyLut, WrongTruthTableChangesFunction) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g, "y");
  const KeyLutResult lut = replace_with_key_lut(n, g, "lut");
  std::vector<bool> wrong = lut.correct_key;
  wrong[3] = !wrong[3];  // flip the (1,1) row: AND becomes constant-0 table
  const auto out = netlist::eval_once(n, std::vector<bool>{true, true}, wrong);
  EXPECT_FALSE(out[0]);
}

TEST(KeyLut, MuxGateIsReplaceable) {
  Netlist n;
  const GateId s = n.add_input("s");
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kMux, {s, a, b});
  n.mark_output(g, "y");
  Netlist original = n;
  const KeyLutResult lut = replace_with_key_lut(n, g, "lut");
  for (int combo = 0; combo < 8; ++combo) {
    const std::vector<bool> in{(combo & 1) != 0, (combo & 2) != 0,
                               (combo & 4) != 0};
    EXPECT_EQ(netlist::eval_once(original, in, {})[0],
              netlist::eval_once(n, in, lut.correct_key)[0]);
  }
}

TEST(KeyLut, ReplacingSourceThrows) {
  Netlist n;
  const GateId a = n.add_input("a");
  n.mark_output(n.add_gate(GateType::kNot, {a}), "y");
  EXPECT_THROW(replace_with_key_lut(n, a, "lut"), std::invalid_argument);
}

}  // namespace
}  // namespace fl::core
