// End-to-end through the serve daemon's production job runners (below the
// socket/scheduler): a lock job writes scheme provenance the attack job
// recovers, the FALL runner defeats SFLL-HD from files alone, and sweep
// records carry the scheme axis.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"
#include "runtime/jsonl.h"
#include "serve/jobs.h"
#include "serve/protocol.h"

namespace fl::serve {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// Runs a spec through the production runner with a collecting context.
std::string run_job(const JobSpec& spec,
                    std::vector<std::string>* events = nullptr) {
  JobContext context;
  context.id = 1;
  context.emit = [events](const char* type, runtime::JsonObject payload) {
    if (events != nullptr) {
      events->push_back(std::string(type) + " " + payload.str());
    }
  };
  JobResult result = default_job_runner()(spec, context);
  EXPECT_FALSE(result.interrupted);
  return result.fields.str();
}

TEST(ServeJobs, LockThenAttackKeepsSchemeProvenance) {
  const netlist::Netlist original = netlist::make_circuit("c432", 1);
  const std::string bench = temp_path("jobs_c432.bench");
  netlist::write_bench_file(original, bench);

  JobSpec lock;
  lock.kind = JobKind::kLock;
  lock.bench_path = bench;
  lock.out_path = temp_path("jobs_locked.bench");
  lock.scheme = "sfll-hd";
  lock.scheme_params = "keys=8,hd=1";
  lock.seed = 7;
  validate_spec(lock);
  const std::string lock_fields = run_job(lock);
  EXPECT_NE(lock_fields.find("\"scheme\":\"sfll-hd\""), std::string::npos)
      << lock_fields;

  // Provenance round-trips through the .bench header, never "file".
  const core::LockedCircuit reloaded =
      lock::read_locked_circuit(lock.out_path);
  EXPECT_EQ(reloaded.scheme, "sfll-hd");
  EXPECT_FALSE(reloaded.params.empty());

  JobSpec attack;
  attack.kind = JobKind::kAttack;
  attack.locked_path = lock.out_path;
  attack.oracle_path = bench;
  attack.attack = "fall";
  validate_spec(attack);
  const std::string attack_fields = run_job(attack);
  EXPECT_NE(attack_fields.find("\"scheme\":\"sfll-hd\""), std::string::npos)
      << attack_fields;
  EXPECT_NE(attack_fields.find("\"status\":\"success\""), std::string::npos)
      << attack_fields;
  const std::optional<std::string> key =
      runtime::json_string_field(attack_fields, "key");
  ASSERT_TRUE(key.has_value());
  ASSERT_EQ(key->size(), 8u);
  std::vector<bool> key_bits;
  for (const char c : *key) key_bits.push_back(c == '1');
  EXPECT_TRUE(core::verify_unlocks(original, reloaded.netlist, key_bits, 16, 1,
                                   /*also_sat_check=*/true));
}

TEST(ServeJobs, SweepRecordsCarryTheSchemeAxis) {
  const netlist::Netlist original = netlist::make_circuit("c432", 1);
  const std::string bench = temp_path("jobs_sweep_c432.bench");
  netlist::write_bench_file(original, bench);

  JobSpec sweep;
  sweep.kind = JobKind::kSweep;
  sweep.bench_path = bench;
  sweep.jsonl_path = temp_path("jobs_sweep.jsonl");
  sweep.scheme = "rll";
  sweep.scheme_params = "keys=12";
  sweep.sizes = {4};
  sweep.replicas = 1;
  sweep.attack = "sat";
  sweep.attack_timeout_s = 60.0;
  validate_spec(sweep);
  std::vector<std::string> events;
  const std::string fields = run_job(sweep, &events);
  EXPECT_NE(fields.find("\"cells\":1"), std::string::npos) << fields;

  // Both the durable JSONL checkpoint and the streamed cell event carry the
  // scheme so downstream analysis can group by it.
  std::ifstream jsonl(sweep.jsonl_path);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  bool found_record = false;
  while (std::getline(jsonl, line)) {
    if (line.find("\"scheme\":\"rll\"") != std::string::npos) {
      found_record = true;
    }
  }
  EXPECT_TRUE(found_record);
  bool found_event = false;
  for (const std::string& event : events) {
    if (event.rfind("cell ", 0) == 0 &&
        event.find("\"scheme\":\"rll\"") != std::string::npos) {
      found_event = true;
    }
  }
  EXPECT_TRUE(found_event);
}

}  // namespace
}  // namespace fl::serve
