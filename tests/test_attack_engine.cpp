// Shared DIP engine (attacks/engine.h): every oracle-guided attack recovers
// keys through the same loop, maps exhausted budgets to the same statuses,
// and feeds the same per-iteration trace records.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/appsat.h"
#include "attacks/cycsat.h"
#include "attacks/double_dip.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "cnf/miter.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/profiles.h"
#include "runtime/jsonl.h"

namespace fl::attacks {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

// Runs one named engine-backed attack and returns the sliced base result.
AttackResult run_attack(const std::string& name, const AttackOptions& options,
                        const LockedCircuit& locked, const Oracle& oracle) {
  if (name == "sat") return SatAttack(options).run(locked, oracle);
  if (name == "cycsat") return CycSat(options).run(locked, oracle);
  if (name == "appsat") {
    AppSatOptions app;
    app.base = options;
    // Exact mode: settlement may legitimately stop on an approximate key
    // within error_threshold, which the strict SAT verification these
    // differential tests apply rejects by design. Settlement behavior has
    // its own coverage in test_appsat.cpp.
    app.settle_every = 1 << 20;
    app.error_threshold = 0.0;
    return AppSat(app).run(locked, oracle);
  }
  return DoubleDip(options).run(locked, oracle);
}

const std::vector<std::string>& engine_attacks() {
  static const std::vector<std::string> names = {"sat", "cycsat", "appsat",
                                                 "double-dip"};
  return names;
}

TEST(AttackEngine, AllAttacksRecoverVerifiedKeys) {
  // Differential check: the same lock falls to every engine-backed attack,
  // and every recovered key passes the SAT-based unlock verifier.
  const Netlist original = netlist::make_circuit("c432", 41);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  for (const std::string& name : engine_attacks()) {
    AttackOptions options;
    options.timeout_s = 60.0;
    const AttackResult result = run_attack(name, options, locked, oracle);
    ASSERT_EQ(result.status, AttackStatus::kSuccess) << name;
    EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                     1, /*sat=*/true))
        << name;
    EXPECT_EQ(result.key.size(), locked.key_bits()) << name;
    // The engine's uniform per-iteration accounting holds for every attack.
    EXPECT_GT(result.mean_clause_var_ratio, 1.0) << name;
    if (result.iterations > 0) {
      EXPECT_GT(result.mean_iteration_seconds, 0.0) << name;
      EXPECT_LE(result.mean_iteration_seconds * result.iterations,
                result.seconds)
          << name;
    }
  }
}

TEST(AttackEngine, TimeoutStatusIdenticalAcrossAttacks) {
  const Netlist original = netlist::make_circuit("c432", 42);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Oracle oracle(original);
  for (const std::string& name : engine_attacks()) {
    AttackOptions options;
    options.timeout_s = 0.05;  // far too little for a 16x16 PLR
    const AttackResult result = run_attack(name, options, locked, oracle);
    EXPECT_EQ(result.status, AttackStatus::kTimeout) << name;
    EXPECT_EQ(result.stop_reason, sat::StopReason::kDeadline) << name;
    EXPECT_LT(result.seconds, 5.0) << name;
    EXPECT_EQ(result.key.size(), locked.key_bits()) << name;
  }
}

TEST(AttackEngine, InterruptStatusIdenticalAcrossAttacks) {
  const Netlist original = netlist::make_circuit("c432", 43);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const Oracle oracle(original);
  const std::atomic<bool> interrupt{true};  // cancelled before the attack
  for (const std::string& name : engine_attacks()) {
    AttackOptions options;
    options.interrupt = &interrupt;
    const AttackResult result = run_attack(name, options, locked, oracle);
    EXPECT_EQ(result.status, AttackStatus::kInterrupted) << name;
    EXPECT_EQ(result.stop_reason, sat::StopReason::kInterrupt) << name;
    EXPECT_EQ(result.key.size(), locked.key_bits()) << name;
  }
}

TEST(AttackEngine, MemoryBudgetStatusIdenticalAcrossAttacks) {
  const Netlist original = netlist::make_circuit("c880", 44);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16, 16}));
  const Oracle oracle(original);
  for (const std::string& name : engine_attacks()) {
    AttackOptions options;
    options.memory_limit_mb = 1;
    const AttackResult result = run_attack(name, options, locked, oracle);
    EXPECT_EQ(result.status, AttackStatus::kOutOfMemory) << name;
    EXPECT_EQ(result.stop_reason, sat::StopReason::kOutOfMemory) << name;
    EXPECT_EQ(result.key.size(), locked.key_bits()) << name;
  }
}

TEST(AttackEngine, TraceSinkRecordsEveryIteration) {
  const Netlist original = netlist::make_circuit("c432", 45);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  std::ostringstream out;
  JsonlTraceSink sink(out);
  AttackOptions options;
  options.timeout_s = 60.0;
  options.trace = &sink;
  const AttackResult result = SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  ASSERT_GT(result.iterations, 0u);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t records = 0;
  while (std::getline(lines, line)) {
    const auto attack = runtime::json_string_field(line, "attack");
    ASSERT_TRUE(attack.has_value()) << line;
    EXPECT_EQ(*attack, "sat");
    // One record per counted iteration, in order.
    const auto iter = runtime::json_int_field(line, "iter");
    ASSERT_TRUE(iter.has_value()) << line;
    EXPECT_EQ(static_cast<std::uint64_t>(*iter), records);
    const auto dip = runtime::json_string_field(line, "dip");
    ASSERT_TRUE(dip.has_value()) << line;
    EXPECT_EQ(dip->size(), locked.netlist.num_inputs());
    for (const char c : *dip) EXPECT_TRUE(c == '0' || c == '1') << line;
    // The numeric solve fields are always present (values vary per run).
    for (const char* key : {"cv_ratio", "decisions", "propagations",
                            "conflicts", "solve_s"}) {
      EXPECT_NE(line.find('"' + std::string(key) + "\":"), std::string::npos)
          << key << " missing from " << line;
    }
    // No sweep driver involved: records carry no cell stamp.
    EXPECT_FALSE(runtime::json_int_field(line, "cell").has_value()) << line;
    ++records;
  }
  EXPECT_EQ(records, result.iterations);
}

TEST(AttackEngine, TraceCellStampedAndAttackLabeled) {
  const Netlist original = netlist::make_circuit("c432", 46);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  std::ostringstream out;
  JsonlTraceSink sink(out);
  AttackOptions options;
  options.timeout_s = 60.0;
  options.trace = &sink;
  options.trace_cell = 7;
  const DoubleDipResult result = DoubleDip(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t two_dip_records = 0;
  std::uint64_t mop_up_records = 0;
  while (std::getline(lines, line)) {
    const auto cell = runtime::json_int_field(line, "cell");
    ASSERT_TRUE(cell.has_value()) << line;
    EXPECT_EQ(*cell, 7);
    const auto attack = runtime::json_string_field(line, "attack");
    ASSERT_TRUE(attack.has_value()) << line;
    // The 2-DIP loop and its SAT-attack mop-up share the sink; each labels
    // its own records.
    if (*attack == "double-dip") {
      ++two_dip_records;
    } else {
      EXPECT_EQ(*attack, "sat") << line;
      ++mop_up_records;
    }
  }
  EXPECT_EQ(two_dip_records, result.iterations);
  EXPECT_EQ(mop_up_records, result.fallback_iterations);
}

TEST(AttackEngine, EncodeModesAndPreprocessingRecoverEquivalentKeys) {
  // The perf machinery must not change what any attack computes: every
  // combination of encoding shape (full re-encode vs key-cone) and CNF
  // preprocessing (on/off) succeeds and recovers a verified key, for every
  // engine-backed attack.
  const Netlist original = netlist::make_circuit("c432", 47);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Oracle oracle(original);
  struct Config {
    EncodeMode mode;
    bool preprocess;
  };
  const Config configs[] = {{EncodeMode::kFull, false},
                            {EncodeMode::kCone, false},
                            {EncodeMode::kFull, true},
                            {EncodeMode::kCone, true}};
  for (const std::string& name : engine_attacks()) {
    for (const Config& config : configs) {
      AttackOptions options;
      options.timeout_s = 60.0;
      options.encode_mode = config.mode;
      options.preprocess = config.preprocess;
      const AttackResult result = run_attack(name, options, locked, oracle);
      const std::string label = name + " mode=" + to_string(config.mode) +
                                " preprocess=" +
                                (config.preprocess ? "on" : "off");
      ASSERT_EQ(result.status, AttackStatus::kSuccess) << label;
      EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key,
                                       16, 1, /*sat=*/true))
          << label;
      EXPECT_GT(result.iterations, 0u) << label;
      EXPECT_EQ(result.preprocess.ran, config.preprocess) << label;
    }
  }
}

TEST(AttackEngine, EncodeModesEnumerateConsistentDipCounts) {
  // Lockstep sanity on the DIP loop itself: with a deterministic solver,
  // the cone and full encodings of the *same* lock both converge, and each
  // DIP either encoding learns is consistent with the other's final key
  // (both keys unlock, so both CNFs ended with equivalent key spaces).
  const Netlist original = netlist::make_circuit("c880", 48);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4, 4}));
  const Oracle oracle(original);

  AttackOptions full_options;
  full_options.timeout_s = 120.0;
  full_options.encode_mode = EncodeMode::kFull;
  full_options.preprocess = false;
  const AttackResult full = SatAttack(full_options).run(locked, oracle);

  AttackOptions cone_options;
  cone_options.timeout_s = 120.0;
  cone_options.encode_mode = EncodeMode::kCone;
  const AttackResult cone = SatAttack(cone_options).run(locked, oracle);

  ASSERT_EQ(full.status, AttackStatus::kSuccess);
  ASSERT_EQ(cone.status, AttackStatus::kSuccess);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, full.key, 16, 1,
                                   /*sat=*/true));
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, cone.key, 16, 1,
                                   /*sat=*/true));
  // Equivalent constraint encodings: the recovered keys make the locked
  // circuit the same function, so they unlock each other's view.
  EXPECT_TRUE(cnf::check_equivalence(locked.netlist, full.key, locked.netlist,
                                     cone.key));
}

TEST(AttackEngine, BudgetGuardMapsEachBudgetToItsStatus) {
  AttackOptions unlimited;
  EXPECT_FALSE(BudgetGuard(unlimited).limited());
  EXPECT_FALSE(BudgetGuard(unlimited).exhausted().has_value());

  AttackOptions timed;
  timed.timeout_s = 1e-9;
  const BudgetGuard expired(timed);
  ASSERT_TRUE(expired.exhausted().has_value());
  EXPECT_EQ(*expired.exhausted(), AttackStatus::kTimeout);

  const std::atomic<bool> interrupt{true};
  AttackOptions cancelled;
  cancelled.interrupt = &interrupt;
  const BudgetGuard stopped(cancelled);
  ASSERT_TRUE(stopped.exhausted().has_value());
  // Cancellation wins over any other budget: it is not the paper's "TO".
  EXPECT_EQ(*stopped.exhausted(), AttackStatus::kInterrupted);
}

}  // namespace
}  // namespace fl::attacks
