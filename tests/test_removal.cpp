// Removal attack: succeeds against routing-only locking, fails against
// Full-Lock's twisted logic (§4.2.2).
#include <gtest/gtest.h>

#include "attacks/oracle.h"
#include "attacks/removal.h"
#include "core/full_lock.h"
#include "locking/crosslock.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::CycleMode;
using core::LockedCircuit;
using netlist::Netlist;

TEST(Removal, RecoversCrossLockExactly) {
  // Cross-Lock is pure interconnect: an adversary who knows the routing
  // rebuilds the circuit perfectly.
  const Netlist original = netlist::make_circuit("c880", 121);
  lock::CrossLockConfig config;
  config.num_sources = 8;
  config.num_destinations = 12;
  const LockedCircuit locked = lock::crosslock_lock(original, config);
  const Oracle oracle(original);
  const RemovalResult result = removal_attack(locked, oracle);
  EXPECT_GT(result.blocks_bypassed, 0);
  EXPECT_EQ(result.error_rate, 0.0);
  EXPECT_TRUE(result.exact);
}

TEST(Removal, FailsOnFullLockWithNegatedDrivers) {
  // Force negation of every negatable driver: bypassing the CLN (and its
  // inverters) leaves the negations uncompensated.
  const Netlist original = netlist::make_circuit("c880", 122);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {16}, core::ClnTopology::kBanyanNonBlocking, CycleMode::kAvoid,
      /*twist_luts=*/true, /*negate_probability=*/1.0);
  const LockedCircuit locked = core::full_lock(original, config);
  const Oracle oracle(original);
  const RemovalResult result = removal_attack(locked, oracle);
  EXPECT_FALSE(result.exact);
  EXPECT_GT(result.error_rate, 0.01);
}

TEST(Removal, AblationNoNegationNoLuts) {
  // Ablation: Full-Lock *without* twisting (no negation, no LUTs) is just a
  // routing lock — removal recovers it, demonstrating why §3.2 matters.
  const Netlist original = netlist::make_circuit("c880", 123);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {8}, core::ClnTopology::kBanyanNonBlocking, CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.0);
  const LockedCircuit locked = core::full_lock(original, config);
  const Oracle oracle(original);
  const RemovalResult result = removal_attack(locked, oracle);
  EXPECT_TRUE(result.exact);
}

TEST(Removal, NoBlocksIsHarmlessNoop) {
  const Netlist original = netlist::make_circuit("c432", 124);
  LockedCircuit unlocked;
  unlocked.netlist = original;
  unlocked.scheme = "none";
  const Oracle oracle(original);
  const RemovalResult result = removal_attack(unlocked, oracle);
  EXPECT_EQ(result.blocks_bypassed, 0);
  EXPECT_TRUE(result.exact);
}

}  // namespace
}  // namespace fl::attacks
