// Cross-Lock-specific claims: crossbar geometry and corruption magnitude.
// Generic lock invariants run for every registry scheme in
// test_lock_properties.cpp.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/crosslock.h"
#include "netlist/profiles.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(CrossLock, KeyBitsPerDestination) {
  const Netlist original = netlist::make_circuit("c1908", 82);
  CrossLockConfig config;
  config.num_sources = 16;  // 4 select bits
  config.num_destinations = 9;
  const core::LockedCircuit locked = crosslock_lock(original, config);
  EXPECT_EQ(locked.key_bits() % 4, 0u);
  EXPECT_LE(locked.key_bits() / 4, 9u);
  EXPECT_EQ(locked.routing_blocks.size(), locked.key_bits() / 4);
}

TEST(CrossLock, WrongRoutingCorruptsBroadly) {
  // Unlike point functions, mis-routed wires corrupt a macroscopic slice of
  // the input space — the corruption *magnitude* is the scheme's claim.
  const Netlist original = netlist::make_circuit("c880", 83);
  CrossLockConfig config;
  config.num_sources = 8;
  config.num_destinations = 16;
  const core::LockedCircuit locked = crosslock_lock(original, config);
  const core::CorruptionStats stats =
      core::output_corruption(original, locked, 16, 4, 2);
  EXPECT_GT(stats.mean_error_rate, 0.01);
}

TEST(CrossLock, Paper32x36Shape) {
  const Netlist original = netlist::make_circuit("c5315", 84);
  CrossLockConfig config;  // defaults: 32 x 36
  const core::LockedCircuit locked = crosslock_lock(original, config);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 8, 3));
  // 5 select bits per destination.
  EXPECT_EQ(locked.key_bits() % 5, 0u);
}

TEST(CrossLock, NonPowerOfTwoSources) {
  const Netlist original = netlist::make_circuit("c880", 85);
  CrossLockConfig config;
  config.num_sources = 6;
  config.num_destinations = 8;
  const core::LockedCircuit locked = crosslock_lock(original, config);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 4, /*sat=*/true));
}

TEST(CrossLock, TinyCircuitThrows) {
  const Netlist c17 = netlist::make_c17();
  CrossLockConfig config;
  config.num_sources = 64;
  EXPECT_THROW(crosslock_lock(c17, config), std::invalid_argument);
}

}  // namespace
}  // namespace fl::lock
