// SPS attack: locates Anti-SAT's skewed flip signal; finds nothing in
// Full-Lock's balanced CLN (§2 property 3).
//
// The host must be probability-balanced (XOR-only) so that any skew seen by
// the attack is introduced by the locking scheme, not the host logic.
#include <gtest/gtest.h>

#include <random>

#include "attacks/sps.h"
#include "core/full_lock.h"
#include "locking/antisat.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

// XOR/XNOR-only circuit: every internal net has p = 0.5 exactly.
Netlist balanced_host(int inputs, int gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Netlist n("balanced");
  std::vector<GateId> nets;
  for (int i = 0; i < inputs; ++i) nets.push_back(n.add_input("x"));
  for (int g = 0; g < gates; ++g) {
    std::uniform_int_distribution<std::size_t> pick(0, nets.size() - 1);
    GateId a = nets[pick(rng)];
    GateId b = nets[pick(rng)];
    while (b == a) b = nets[pick(rng)];
    nets.push_back(n.add_gate((rng() & 1) != 0 ? GateType::kXor
                                               : GateType::kXnor,
                              {a, b}));
  }
  for (int o = 0; o < 8; ++o) {
    n.mark_output(nets[nets.size() - 1 - o], "po" + std::to_string(o));
  }
  return n;
}

TEST(Sps, FlagsAntiSatBlock) {
  const Netlist original = balanced_host(16, 120, 131);
  lock::AntiSatConfig config;
  config.block_inputs = 12;
  const core::LockedCircuit locked = lock::antisat_lock(original, config);
  const SpsReport report = sps_attack(locked.netlist, 5);
  // The Anti-SAT AND-tree output has p ~ 2^-12: skew ~ 1.
  EXPECT_GT(report.max_skew, 0.99);
}

TEST(Sps, FullLockStaysBalanced) {
  const Netlist original = balanced_host(16, 120, 132);
  const core::LockedCircuit locked = core::full_lock(
      original, core::FullLockConfig::with_plrs({16}));
  const SpsReport report = sps_attack(locked.netlist, 5);
  // CLN MUX fabric, inverters and LUTs all preserve p = 0.5 on a balanced
  // host: nothing for SPS to latch onto.
  EXPECT_LT(report.max_skew, 0.2);
  EXPECT_LT(report.mean_skew, 0.1);
}

TEST(Sps, ContrastIsDecisive) {
  // The discriminator the attack relies on: Anti-SAT max skew dwarfs
  // Full-Lock max skew on identical hosts.
  const Netlist original = balanced_host(16, 120, 133);
  lock::AntiSatConfig as;
  as.block_inputs = 10;
  const SpsReport anti =
      sps_attack(lock::antisat_lock(original, as).netlist, 3);
  const SpsReport full = sps_attack(
      core::full_lock(original, core::FullLockConfig::with_plrs({8})).netlist,
      3);
  EXPECT_GT(anti.max_skew, 4 * full.max_skew);
}

TEST(Sps, ReportShapes) {
  const Netlist original = netlist::make_circuit("c432", 133);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const SpsReport report = sps_attack(locked.netlist, 3);
  EXPECT_LE(report.top.size(), 3u);
  for (std::size_t i = 1; i < report.top.size(); ++i) {
    EXPECT_GE(report.top[i - 1].skew, report.top[i].skew);  // sorted
  }
  EXPECT_GE(report.mean_skew, 0.0);
  EXPECT_LE(report.mean_skew, 1.0);
}

TEST(Sps, KeyFreeCircuitHasNoKeyDependentNets) {
  const Netlist c17 = netlist::make_c17();
  const SpsReport report = sps_attack(c17, 5);
  EXPECT_TRUE(report.top.empty());
  EXPECT_EQ(report.max_skew, 0.0);
}

}  // namespace
}  // namespace fl::attacks
