// .bench reader/writer: round-trips, key-input convention, error paths.
#include <gtest/gtest.h>

#include <random>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::netlist {
namespace {

TEST(BenchIo, ParsesC17) {
  const Netlist c17 = make_c17();
  EXPECT_EQ(c17.num_inputs(), 5u);
  EXPECT_EQ(c17.num_outputs(), 2u);
  EXPECT_EQ(c17.num_logic_gates(), 6u);
  const auto hist = c17.type_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kNand)], 6u);
}

TEST(BenchIo, KeyInputConvention) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)");
  EXPECT_EQ(n.num_inputs(), 1u);
  EXPECT_EQ(n.num_keys(), 1u);
}

TEST(BenchIo, RoundTripPreservesFunction) {
  GeneratorConfig config;
  config.num_inputs = 8;
  config.num_outputs = 4;
  config.num_gates = 60;
  config.seed = 21;
  const Netlist original = generate_circuit(config);
  const Netlist reparsed =
      read_bench_string(write_bench_string(original), "reparsed");
  ASSERT_EQ(reparsed.num_inputs(), original.num_inputs());
  ASSERT_EQ(reparsed.num_outputs(), original.num_outputs());
  const Simulator sim_a(original);
  const Simulator sim_b(reparsed);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 16; ++round) {
    std::vector<Word> in(original.num_inputs());
    for (Word& w : in) w = rng();
    const auto out_a = sim_a.run(in, {});
    const auto out_b = sim_b.run(in, {});
    for (std::size_t o = 0; o < out_a.size(); ++o) {
      ASSERT_EQ(out_a[o], out_b[o]) << "round " << round << " output " << o;
    }
  }
}

TEST(BenchIo, OutOfOrderDefinitionsResolve) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(t)      # uses t before its definition
t = BUF(a)
)");
  EXPECT_EQ(n.num_logic_gates(), 2u);
  EXPECT_FALSE(n.is_cyclic());
}

TEST(BenchIo, CyclicBenchIsRepresentable) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = OR(a, z)
z = BUF(y)
)");
  EXPECT_TRUE(n.is_cyclic());
  // And it round-trips.
  const Netlist again = read_bench_string(write_bench_string(n));
  EXPECT_TRUE(again.is_cyclic());
}

TEST(BenchIo, MuxAndConstantsSupported) {
  const Netlist n = read_bench_string(R"(
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
c1 = CONST1()
m = MUX(s, a, b)
y = AND(m, c1)
)");
  EXPECT_EQ(n.num_logic_gates(), 2u);
  const auto out = eval_once(n, std::vector<bool>{true, false, true}, {});
  EXPECT_TRUE(out[0]);  // s=1 selects b=1
}

TEST(BenchIo, ErrorsAreLineNumbered) {
  try {
    read_bench_string("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, UndefinedSignalRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n"),
               std::runtime_error);
}

TEST(BenchIo, UndefinedOutputRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(nope)\n"),
               std::runtime_error);
}

TEST(BenchIo, DuplicateDefinitionRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const Netlist n = read_bench_string(R"(
# header comment

INPUT(a)   # trailing comment
OUTPUT(y)
y = NOT(a)
)");
  EXPECT_EQ(n.num_logic_gates(), 1u);
}

TEST(BenchIo, MalformedDeclarationsAreLineNumbered) {
  const struct {
    const char* text;
    int line;
  } cases[] = {
      {"INPUT(a\nOUTPUT(y)\ny = NOT(a)\n", 1},       // missing ')'
      {"INPUT(a)\nOUTPUT(y) junk\ny = NOT(a)\n", 2},  // trailing characters
      {"INPUT(a)\nOUTPUT()\ny = NOT(a)\n", 2},        // empty name
      {"INPUT(a)\nOUTPUT(a=b)\ny = NOT(a)\n", 2},     // structural char in name
      {"INPUT(a)\nFROB(a)\ny = NOT(a)\n", 2},         // unknown declaration
      {"INPUT(a)\nOUTPUT(y)\njust a bare line\n", 3},  // no '=' and no '('
  };
  for (const auto& c : cases) {
    try {
      read_bench_string(c.text);
      FAIL() << "expected parse error for: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what())
                    .find("line " + std::to_string(c.line)),
                std::string::npos)
          << c.text << " -> " << e.what();
    }
  }
}

TEST(BenchIo, MalformedGateDefinitionsAreLineNumbered) {
  const struct {
    const char* text;
    int line;
  } cases[] = {
      {"INPUT(a)\nOUTPUT(y)\ny = NOT a\n", 3},        // missing '('
      {"INPUT(a)\nOUTPUT(y)\ny = NOT(a\n", 3},        // missing ')'
      {"INPUT(a)\nOUTPUT(y)\ny = NOT(a) x\n", 3},     // trailing characters
      {"INPUT(a)\nOUTPUT(y)\ny =\n", 3},              // empty right-hand side
      {"INPUT(a)\nOUTPUT(y)\ny = AND(a,)\n", 3},      // dangling comma
      {"INPUT(a)\nOUTPUT(y)\ny = AND(a,,a)\n", 3},    // empty fanin token
      {"INPUT(a)\nOUTPUT(y)\n = NOT(a)\n", 3},        // empty gate name
  };
  for (const auto& c : cases) {
    try {
      read_bench_string(c.text);
      FAIL() << "expected parse error for: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what())
                    .find("line " + std::to_string(c.line)),
                std::string::npos)
          << c.text << " -> " << e.what();
    }
  }
}

TEST(BenchIo, ConstGatesStillAcceptEmptyArgumentList) {
  const Netlist n = read_bench_string("OUTPUT(y)\ny = CONST1()\n");
  const auto out = eval_once(n, std::vector<bool>{}, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]);
}

TEST(BenchIo, WriterEmitsKeysAsKeyinputs) {
  Netlist n;
  n.add_input("a");
  const GateId k = n.add_key("keyinput0");
  const GateId g = n.add_gate(GateType::kXor, {0, k}, "y");
  n.mark_output(g, "y");
  const Netlist round = read_bench_string(write_bench_string(n));
  EXPECT_EQ(round.num_keys(), 1u);
}

}  // namespace
}  // namespace fl::netlist
