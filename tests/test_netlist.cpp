// Netlist container: construction, edits, graph queries.
#include <gtest/gtest.h>

#include "netlist/netlist.h"

namespace fl::netlist {
namespace {

Netlist small_chain() {
  Netlist n("chain");
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, b}, "g1");
  const GateId g2 = n.add_gate(GateType::kNot, {g1}, "g2");
  n.mark_output(g2, "y");
  return n;
}

TEST(Netlist, BasicConstruction) {
  const Netlist n = small_chain();
  EXPECT_EQ(n.num_gates(), 4u);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_outputs(), 1u);
  EXPECT_EQ(n.num_logic_gates(), 2u);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, ArityIsEnforced) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kMux, {a, a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kInput, {}), std::invalid_argument);
}

TEST(Netlist, FaninMustExist) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kNot, {a + 5}), std::invalid_argument);
}

TEST(Netlist, KeyAndInputIndices) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k0 = n.add_key("k0");
  const GateId k1 = n.add_key("k1");
  EXPECT_EQ(n.key_index(k0), 0);
  EXPECT_EQ(n.key_index(k1), 1);
  EXPECT_EQ(n.key_index(a), -1);
  EXPECT_EQ(n.input_index(a), 0);
  EXPECT_EQ(n.input_index(k0), -1);
}

TEST(Netlist, TopologicalOrderOnDag) {
  const Netlist n = small_chain();
  const auto order = n.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), n.num_gates());
  // Every gate appears after its fanins.
  std::vector<int> position(n.num_gates());
  for (std::size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    for (const GateId f : n.gate(g).fanin) {
      EXPECT_LT(position[f], position[g]);
    }
  }
  EXPECT_FALSE(n.is_cyclic());
}

TEST(Netlist, CycleDetection) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a}, "g1");
  const GateId g2 = n.add_gate(GateType::kOr, {g1, a}, "g2");
  n.replace_fanin_of(g1, a, g2);  // g1 reads g2, g2 reads g1: cycle
  EXPECT_TRUE(n.is_cyclic());
  EXPECT_FALSE(n.topological_order().has_value());
  EXPECT_FALSE(n.levels().has_value());
}

TEST(Netlist, FanoutMap) {
  const Netlist n = small_chain();
  const auto fanout = n.fanout_map();
  EXPECT_EQ(fanout[0].size(), 1u);  // a -> g1
  EXPECT_EQ(fanout[2].size(), 1u);  // g1 -> g2
  EXPECT_TRUE(fanout[3].empty());   // g2 is a sink
}

TEST(Netlist, FaninAndFanoutCones) {
  const Netlist n = small_chain();
  const auto cone_in = n.fanin_cone(3);
  EXPECT_TRUE(cone_in[0]);
  EXPECT_TRUE(cone_in[1]);
  EXPECT_TRUE(cone_in[2]);
  EXPECT_TRUE(cone_in[3]);
  const auto cone_out = n.fanout_cone(0);
  EXPECT_TRUE(cone_out[2]);
  EXPECT_TRUE(cone_out[3]);
  EXPECT_FALSE(cone_out[1]);
}

TEST(Netlist, ReplaceNetRewiresReadersAndOutputs) {
  Netlist n = small_chain();
  const GateId a = 0;
  const GateId spare = n.add_input("c");
  n.replace_net(a, spare);
  EXPECT_EQ(n.gate(2).fanin[0], spare);
  // Output port replacement too.
  n.replace_net(3, spare);
  EXPECT_EQ(n.outputs()[0].gate, spare);
}

TEST(Netlist, RetypeValidatesArity) {
  Netlist n = small_chain();
  n.retype(2, GateType::kNand);  // AND -> NAND fine
  EXPECT_EQ(n.gate(2).type, GateType::kNand);
  EXPECT_THROW(n.retype(2, GateType::kNot), std::invalid_argument);
}

TEST(Netlist, LevelsAreMonotone) {
  const Netlist n = small_chain();
  const auto levels = n.levels();
  ASSERT_TRUE(levels.has_value());
  EXPECT_EQ((*levels)[0], 0);
  EXPECT_EQ((*levels)[2], 1);
  EXPECT_EQ((*levels)[3], 2);
}

TEST(Netlist, TypeHistogram) {
  const Netlist n = small_chain();
  const auto hist = n.type_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kInput)], 2u);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kAnd)], 1u);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kNot)], 1u);
}

TEST(Netlist, SetOutputGateBounds) {
  Netlist n = small_chain();
  EXPECT_THROW(n.set_output_gate(5, 0), std::invalid_argument);
  EXPECT_THROW(n.set_output_gate(0, 99), std::invalid_argument);
  n.set_output_gate(0, 2);
  EXPECT_EQ(n.outputs()[0].gate, 2u);
  EXPECT_EQ(n.outputs()[0].name, "y");  // name preserved
}

TEST(Netlist, DuplicateFaninTopologicalOrder) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kXor, {a, a}, "g");
  n.mark_output(g, "y");
  EXPECT_TRUE(n.topological_order().has_value());
}

}  // namespace
}  // namespace fl::netlist
