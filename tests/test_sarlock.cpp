// SARLock-specific claims: the exact point-function shape. Generic lock
// invariants run for every registry scheme in test_lock_properties.cpp.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(SarLock, WrongKeyErrsOnExactlyItsOwnPattern) {
  // With k = num_inputs the flip fires on exactly one input pattern.
  Netlist original;
  std::vector<netlist::GateId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(original.add_input("x"));
  original.mark_output(
      original.add_gate(netlist::GateType::kXor, {ins[0], ins[1]}), "y");
  SarLockConfig config;
  config.num_keys = 6;
  config.seed = 3;
  const core::LockedCircuit locked = sarlock_lock(original, config);

  std::vector<bool> wrong = locked.correct_key;
  wrong[0] = !wrong[0];
  int mismatches = 0;
  int mismatch_pattern = -1;
  for (int x = 0; x < 64; ++x) {
    std::vector<bool> in(6);
    for (int i = 0; i < 6; ++i) in[i] = ((x >> i) & 1) != 0;
    const auto want = netlist::eval_once(original, in, {});
    const auto got = netlist::eval_once(locked.netlist, in, wrong);
    if (want != got) {
      ++mismatches;
      mismatch_pattern = x;
    }
  }
  EXPECT_EQ(mismatches, 1);
  // The erring pattern is the wrong key itself (X == K fires the flip).
  int wrong_as_int = 0;
  for (int i = 0; i < 6; ++i) wrong_as_int |= (wrong[i] ? 1 : 0) << i;
  EXPECT_EQ(mismatch_pattern, wrong_as_int);
}

TEST(SarLock, KeyWidthClampedToInputs) {
  const Netlist c17 = netlist::make_c17();  // 5 inputs
  SarLockConfig config;
  config.num_keys = 64;
  const core::LockedCircuit locked = sarlock_lock(c17, config);
  EXPECT_EQ(locked.key_bits(), 5u);
  EXPECT_TRUE(core::verify_unlocks(c17, locked, 16, 1, /*sat=*/true));
}

}  // namespace
}  // namespace fl::lock
