// CycSAT: attacking cyclically locked circuits.
#include <gtest/gtest.h>

#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::CycleMode;
using core::LockedCircuit;
using netlist::Netlist;

LockedCircuit cyclic_lock(const Netlist& original, int n, std::uint64_t seed) {
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {n}, core::ClnTopology::kBanyanNonBlocking, CycleMode::kForce);
  config.seed = seed;
  return core::full_lock(original, config);
}

TEST(CycSat, BreaksCyclicFullLockSmall) {
  const Netlist original = netlist::make_circuit("c432", 101);
  const LockedCircuit locked = cyclic_lock(original, 4, 7);
  ASSERT_TRUE(locked.netlist.is_cyclic());
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 120.0;
  CycSat attack(options);
  const AttackResult result = attack.run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_GT(attack.preprocess_stats().feedback_edges, 0);
  // The recovered key must functionally unlock (simulation check; the
  // netlist is cyclic so SAT equivalence does not apply).
  EXPECT_TRUE(
      core::verify_unlocks(original, locked.netlist, result.key, 32, 1));
}

TEST(CycSat, NcConditionsAdmitCorrectKey) {
  // The NC preprocessing must never exclude the correct key: assert the
  // conditions, pin the correct key, and the formula stays satisfiable.
  const Netlist original = netlist::make_circuit("c880", 102);
  const LockedCircuit locked = cyclic_lock(original, 8, 9);
  ASSERT_TRUE(locked.netlist.is_cyclic());

  sat::Solver solver;
  std::vector<sat::Var> key1, key2;
  for (std::size_t i = 0; i < locked.key_bits(); ++i) key1.push_back(solver.new_var());
  for (std::size_t i = 0; i < locked.key_bits(); ++i) key2.push_back(solver.new_var());
  const CycSatStats stats =
      add_nc_conditions(locked.netlist, solver, key1, key2);
  EXPECT_GT(stats.feedback_edges, 0);
  std::vector<sat::Lit> assume;
  for (std::size_t i = 0; i < locked.key_bits(); ++i) {
    assume.push_back(sat::Lit(key1[i], !locked.correct_key[i]));
    assume.push_back(sat::Lit(key2[i], !locked.correct_key[i]));
  }
  EXPECT_EQ(solver.solve(assume), sat::LBool::kTrue);
}

TEST(CycSat, AcyclicPreprocessIsNoop) {
  const Netlist original = netlist::make_circuit("c432", 103);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  ASSERT_FALSE(locked.netlist.is_cyclic());
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  CycSat attack(options);
  const AttackResult result = attack.run(locked, oracle);
  EXPECT_EQ(attack.preprocess_stats().feedback_edges, 0);
  EXPECT_EQ(result.status, AttackStatus::kSuccess);
}

TEST(CycSat, PlainSatAttackStruggleOnCycles) {
  // Without NC clauses the plain attack can settle on a cycle-latching
  // key; CycSAT's recovered key must be functionally correct while being
  // found with the same budget.
  const Netlist original = netlist::make_circuit("c499", 104);
  const LockedCircuit locked = cyclic_lock(original, 4, 11);
  ASSERT_TRUE(locked.netlist.is_cyclic());
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 120.0;
  const AttackResult cyc = CycSat(options).run(locked, oracle);
  ASSERT_EQ(cyc.status, AttackStatus::kSuccess);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, cyc.key, 32, 2));
}

}  // namespace
}  // namespace fl::attacks
